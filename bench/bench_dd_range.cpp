// Experiment E10 (Corollary 2, d = 3): three-dimensional orthogonal range
// search.  Predicted cooperative time ((log n)/log p)^2 + log log n + k/p
// for direct retrieval; the bench sweeps p and box width.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>

#include "range/range_tree.hpp"
#include "range/range_tree_kd.hpp"

namespace {

const range::RangeTree3D& instance(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<range::RangeTree3D>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::mt19937_64 rng(n);
    std::vector<range::RangeTree3D::Point3> pts;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({geom::Coord(rng() % 100000), geom::Coord(rng() % 100000),
                     geom::Coord(rng() % 100000)});
    }
    it = cache.emplace(n, std::make_unique<range::RangeTree3D>(std::move(pts)))
             .first;
  }
  return *it->second;
}

void BM_RangeSearch3D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const geom::Coord width = geom::Coord(state.range(2));
  const auto& t = instance(n);
  std::mt19937_64 rng(n * 3 + p);
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord y1 = geom::Coord(rng() % 100000);
    const geom::Coord z1 = geom::Coord(rng() % 100000);
    pram::Machine m(p);
    const auto ids =
        t.coop_query(m, x1, x1 + width, y1, y1 + width, z1, z1 + width);
    benchmark::DoNotOptimize(ids.data());
    steps += m.stats().steps;
    reported += ids.size();
    ++queries;
  }
  const double logn = std::log2(double(n));
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["pred_sq"] = (logn / logp) * (logn / logp);
}

void BM_Sequential3D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& t = instance(n);
  std::mt19937_64 rng(n * 13);
  for (auto _ : state) {
    const geom::Coord x1 = geom::Coord(rng() % 100000);
    const geom::Coord y1 = geom::Coord(rng() % 100000);
    const geom::Coord z1 = geom::Coord(rng() % 100000);
    benchmark::DoNotOptimize(
        t.query(x1, x1 + 20000, y1, y1 + 20000, z1, z1 + 20000));
  }
  state.counters["n"] = double(n);
  state.counters["entries"] = double(t.total_entries());
}

const range::RangeTreeKD& kd_instance(std::size_t d, std::size_t n) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<range::RangeTreeKD>>
      cache;
  const auto key = std::make_pair(d, n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::mt19937_64 rng(d * 1000 + n);
    std::vector<range::RangeTreeKD::PointKD> pts;
    for (std::size_t i = 0; i < n; ++i) {
      range::RangeTreeKD::PointKD p(d);
      for (auto& c : p) {
        c = geom::Coord(rng() % 10000);
      }
      pts.push_back(std::move(p));
    }
    it = cache
             .emplace(key,
                      std::make_unique<range::RangeTreeKD>(std::move(pts)))
             .first;
  }
  return *it->second;
}

void BM_RangeSearchKD(benchmark::State& state) {
  // The generic recursion of Corollary 2 for d = 3, 4 — one extra
  // ((log n)/log p) factor per dimension.
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const std::size_t n = 2048;
  const auto& t = kd_instance(d, n);
  std::mt19937_64 rng(d * 31 + p);
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    range::RangeTreeKD::PointKD lo(d), hi(d);
    for (std::size_t c = 0; c < d; ++c) {
      lo[c] = geom::Coord(rng() % 10000);
      hi[c] = lo[c] + 4000;
    }
    pram::Machine m(p);
    const auto ids = t.coop_query(m, lo, hi);
    benchmark::DoNotOptimize(ids.data());
    steps += m.stats().steps;
    reported += ids.size();
    ++queries;
  }
  const double logn = std::log2(double(n));
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  state.counters["d"] = double(d);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["pred_pow"] = std::pow(logn / logp, double(d) - 1.0);
  state.counters["entries"] = double(t.total_entries());
}

}  // namespace

BENCHMARK(BM_RangeSearchKD)
    ->ArgsProduct({{3, 4}, {4, 64, 1024}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeSearch3D)
    ->ArgsProduct({{4096}, {4, 64, 1024}, {5000, 20000, 50000}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Sequential3D)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
