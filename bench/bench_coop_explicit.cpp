// Experiment E1 (Theorem 1, explicit search): cooperative search steps
// along root-to-leaf paths as a function of p, for several n.  The paper
// predicts steps ~ c * (log n)/(log p) for every 1 <= p <= n; the bench
// reports measured PRAM steps, the predicted ratio, and their quotient
// (which should stay roughly constant across the p sweep).

#include "common.hpp"

namespace {

void BM_ExplicitSearch(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const std::size_t entries = std::size_t(1) << (height + 4);
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 42);
  std::mt19937_64 rng(p * 997 + height);
  std::uint64_t steps = 0, work = 0, hops = 0, queries = 0;
  for (auto _ : state) {
    const auto path = bench::leftish_path(inst.tree, rng());
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(*inst.coop, m, path, y);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    work += m.stats().work;
    hops += r.hops;
    ++queries;
  }
  const double avg_steps = double(steps) / double(queries);
  state.counters["n"] = double(entries);
  state.counters["p"] = double(p);
  state.counters["steps"] = avg_steps;
  state.counters["work"] = double(work) / double(queries);
  state.counters["hops"] = double(hops) / double(queries);
  state.counters["logn_div_logp"] = bench::predicted_ratio(entries, p);
  state.counters["steps_over_pred"] =
      avg_steps / bench::predicted_ratio(entries, p);
}

}  // namespace

BENCHMARK(BM_ExplicitSearch)
    ->ArgsProduct({{10, 14, 16}, {1, 2, 4, 16, 64, 256, 1024, 4096, 65536}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
