// Experiment E9 (Theorem 6): orthogonal segment intersection, orthogonal
// range search, and point enclosure, with both retrieval modes:
//
//   * direct:   O((log n)/log p + log log n + k/p)  (CREW)
//   * indirect: O((log n)/log p)                    (CRCW)
//
// The query width sweeps k so the k/p term becomes visible, and the
// p sweep shows the crossover between the two modes.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>

#include "range/point_enclosure.hpp"
#include "range/range_tree.hpp"
#include "range/segment_tree.hpp"
#include "serve_compare.hpp"

namespace {

const range::SegmentIntersectionTree& seg_instance(std::size_t n) {
  static std::map<std::size_t,
                  std::unique_ptr<range::SegmentIntersectionTree>>
      cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::mt19937_64 rng(n);
    std::vector<range::VSegment> segs;
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Coord x = geom::Coord(rng() % 1'000'000) * 2;
      const geom::Coord ylo = geom::Coord(rng() % 500'000) * 2;
      segs.push_back(range::VSegment{
          x, ylo, ylo + 2 + geom::Coord(rng() % 200'000) * 2});
    }
    it = cache
             .emplace(n, std::make_unique<range::SegmentIntersectionTree>(
                             std::move(segs)))
             .first;
  }
  return *it->second;
}

void BM_SegmentIntersectionDirect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const geom::Coord width = geom::Coord(state.range(2));
  const auto& t = seg_instance(n);
  std::mt19937_64 rng(n + p + std::size_t(width));
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    const geom::Coord y = 2 * geom::Coord(rng() % 600'000) + 1;
    const geom::Coord x1 = 2 * geom::Coord(rng() % 1'000'000);
    pram::Machine m(p);
    const auto ranges = t.coop_query_ranges(m, y, x1, x1 + width);
    const auto ids = range::retrieve_direct(t.tree(), m, ranges);
    benchmark::DoNotOptimize(ids.data());
    steps += m.stats().steps;
    reported += ids.size();
    ++queries;
  }
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  state.counters["predicted"] = std::log2(double(n)) / logp +
                                std::log2(std::log2(double(n))) +
                                double(reported) / double(queries) / double(p);
}

void BM_SegmentIntersectionIndirect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const geom::Coord width = geom::Coord(state.range(2));
  const auto& t = seg_instance(n);
  std::mt19937_64 rng(n + p + std::size_t(width) + 1);
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    const geom::Coord y = 2 * geom::Coord(rng() % 600'000) + 1;
    const geom::Coord x1 = 2 * geom::Coord(rng() % 1'000'000);
    pram::Machine m(p, pram::Model::kCrcw);
    const auto ranges = t.coop_query_ranges(m, y, x1, x1 + width);
    const auto list = range::retrieve_indirect(m, ranges);
    benchmark::DoNotOptimize(list.data());
    steps += m.stats().steps;
    reported += range::total_count(list);
    ++queries;
  }
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
}

const range::RangeTree2D& rt_instance(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<range::RangeTree2D>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::mt19937_64 rng(n * 3);
    std::vector<range::Point2> pts;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(range::Point2{geom::Coord(rng() % 1'000'000),
                                  geom::Coord(rng() % 1'000'000)});
    }
    it = cache.emplace(n, std::make_unique<range::RangeTree2D>(std::move(pts)))
             .first;
  }
  return *it->second;
}

void BM_RangeSearch2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& t = rt_instance(n);
  std::mt19937_64 rng(n * 5 + p);
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    const geom::Coord x1 = geom::Coord(rng() % 1'000'000);
    const geom::Coord y1 = geom::Coord(rng() % 1'000'000);
    pram::Machine m(p);
    const auto ranges =
        t.coop_query_ranges(m, x1, x1 + 100'000, y1, y1 + 100'000);
    const auto ids = range::retrieve_direct(t.tree(), m, ranges);
    benchmark::DoNotOptimize(ids.data());
    steps += m.stats().steps;
    reported += ids.size();
    ++queries;
  }
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
}

const range::PointEnclosureTree& pe_instance(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<range::PointEnclosureTree>>
      cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    std::mt19937_64 rng(n * 7);
    std::vector<range::Rect> rects;
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Coord x1 = geom::Coord(rng() % 1'000'000);
      const geom::Coord y1 = geom::Coord(rng() % 1'000'000);
      rects.push_back(range::Rect{x1, x1 + geom::Coord(rng() % 200'000), y1,
                                  y1 + geom::Coord(rng() % 200'000)});
    }
    it = cache
             .emplace(n, std::make_unique<range::PointEnclosureTree>(
                             std::move(rects)))
             .first;
  }
  return *it->second;
}

void BM_PointEnclosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& t = pe_instance(n);
  std::mt19937_64 rng(n * 11 + p);
  std::uint64_t steps = 0, reported = 0, queries = 0;
  for (auto _ : state) {
    const geom::Coord x = geom::Coord(rng() % 1'200'000);
    const geom::Coord y = geom::Coord(rng() % 1'200'000);
    pram::Machine m(p);
    const auto ids = t.coop_query(m, x, y);
    benchmark::DoNotOptimize(ids.data());
    steps += m.stats().steps;
    reported += ids.size();
    ++queries;
  }
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["k_avg"] = double(reported) / double(queries);
  state.counters["steps"] = double(steps) / double(queries);
}

}  // namespace

BENCHMARK(BM_SegmentIntersectionDirect)
    ->ArgsProduct({{65536}, {4, 64, 1024}, {1000, 100000, 1000000}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SegmentIntersectionIndirect)
    ->ArgsProduct({{65536}, {4, 64, 1024}, {1000, 100000, 1000000}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeSearch2D)
    ->ArgsProduct({{4096, 32768}, {4, 64, 1024}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PointEnclosure)
    ->ArgsProduct({{4096, 32768}, {4, 64, 1024}})
    ->Unit(benchmark::kMicrosecond);

// `--json[=FILE]` switches to the serving-layer throughput comparison
// (flat arena vs simulator, BENCH_serve.json); anything else runs the
// google-benchmark step-count experiments as before.
int main(int argc, char** argv) {
  serve_bench::Options opts;
  if (serve_bench::parse_args(argc, argv, opts, "BENCH_serve.json")) {
    return serve_bench::run_paths_compare(opts);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
