// Ablation: the design constants DESIGN.md calls out.
//
//   * sampling factor k (= fan-out bound b): space of the cascading
//     structure and of the skeletons vs search cost.  Larger b shrinks
//     the augmented catalogs but blows up s_i = (2b+2)(2b+1)^{h_i} and
//     with it the hop ranges.
//   * substructure choice: forcing a query to run on the "wrong" T_i
//     shows why the log p ranges 2^{2^i} < p <= 2^{2^{i+1}} matter.

#include "common.hpp"

namespace {

void BM_SampleFactor(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t height = 12;
  const std::size_t entries = 1 << 16;
  std::mt19937_64 rng(k);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree, k);
  const auto cs = coop::CoopStructure::build(s);
  std::uint64_t steps = 0, queries = 0;
  for (auto _ : state) {
    const auto path = bench::leftish_path(tree, rng());
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(256);
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    ++queries;
  }
  state.counters["b"] = double(k);
  state.counters["aug_entries"] = double(s.total_aug_entries());
  state.counters["skeleton_entries"] = double(cs.total_skeleton_entries());
  state.counters["alpha"] = coop::Params(k).alpha;
  state.counters["s0"] = double(coop::Params(k).s(0));
  state.counters["steps_p256"] = double(steps) / double(queries);
}

void BM_AlphaScale(benchmark::State& state) {
  // The paper's alpha keeps every hop within O(p) virtual processors but
  // makes h_i = 1 for all practical p, so the hop machinery barely beats
  // the sequential bridge walk (DESIGN.md deviation 2).  Scaling alpha
  // buys taller hops at the cost of wider Step 3 ranges (Brent-charged
  // when they exceed p).  steps * overshoot shows the true cost.
  const double scale = double(state.range(0));
  const std::uint32_t height = 16;
  const std::size_t entries = 1 << 20;
  const std::size_t p = 1 << 12;
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 42);
  const auto cs = coop::CoopStructure::build(*inst.fc, scale);
  std::mt19937_64 rng(std::uint64_t(scale * 100));
  std::uint64_t steps = 0, queries = 0, max_active = 0;
  for (auto _ : state) {
    const auto path = bench::leftish_path(inst.tree, rng());
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    max_active = std::max(max_active, m.stats().max_active);
    ++queries;
  }
  state.counters["alpha_scale"] = scale;
  state.counters["h_for_p4096"] = double(cs.for_processors(p).h);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["proc_overshoot"] = double(max_active) / double(p);
  state.counters["skeleton_entries"] = double(cs.total_skeleton_entries());
}

void BM_ForcedSubstructure(benchmark::State& state) {
  const auto forced_i = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t height = 14;
  const std::size_t entries = 1 << 18;
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 48);
  // Build an isolated copy with only the forced substructure, so the
  // query has no choice.
  const std::vector<std::uint32_t> only{forced_i};
  const auto cs = coop::CoopStructure::build_subset(*inst.fc, only);
  std::mt19937_64 rng(forced_i);
  std::uint64_t steps = 0, queries = 0;
  for (auto _ : state) {
    const auto path = bench::leftish_path(inst.tree, rng());
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(256);  // T_2 is the "right" structure for p = 256
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    ++queries;
  }
  state.counters["forced_i"] = double(forced_i);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["h_i"] = double(cs.substructure(0).h);
}

}  // namespace

BENCHMARK(BM_SampleFactor)->Arg(3)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AlphaScale)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForcedSubstructure)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
