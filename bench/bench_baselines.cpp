// Experiment E11 (Section 1 motivation + Snir [16]): the two baseline
// comparisons underlying the whole paper.
//
//   1. Sequential fractional cascading vs independent binary search per
//      catalog: comparisons O(log n + m b) vs O(m log n).
//   2. Snir's cooperative (p+1)-ary search vs one-processor binary search
//      on a sorted array: rounds log n / log p vs log n.

#include "common.hpp"
#include "pram/coop_search.hpp"

namespace {

void BM_FcVsIndependentBinary(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 47);
  std::mt19937_64 rng(height);
  std::uint64_t fc_cost = 0, baseline_cost = 0, queries = 0;
  for (auto _ : state) {
    const auto path = bench::leftish_path(inst.tree, rng());
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    fc::SearchStats a, b;
    benchmark::DoNotOptimize(
        fc::search_explicit(*inst.fc, path, y, &a).proper_index.data());
    benchmark::DoNotOptimize(
        fc::search_binary_baseline(inst.tree, path, y, &b)
            .proper_index.data());
    fc_cost += a.comparisons + a.bridge_walks;
    baseline_cost += b.comparisons;
    ++queries;
  }
  state.counters["n"] = double(entries);
  state.counters["path_len"] = double(height + 1);
  state.counters["fc_comparisons"] = double(fc_cost) / double(queries);
  state.counters["baseline_comparisons"] =
      double(baseline_cost) / double(queries);
  state.counters["speedup"] = double(baseline_cost) / double(fc_cost);
}

void BM_SnirVsBinary(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 20;
  static std::vector<cat::Key> sorted;
  if (sorted.empty()) {
    sorted.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sorted[i] = cat::Key(i) * 3;
    }
  }
  std::mt19937_64 rng(p);
  std::uint64_t coop_steps = 0, queries = 0;
  for (auto _ : state) {
    const cat::Key y = cat::Key(rng() % (3 * n));
    pram::Machine m(p);
    benchmark::DoNotOptimize(pram::coop_lower_bound<cat::Key>(
        m, std::span<const cat::Key>(sorted), y));
    coop_steps += m.stats().steps;
    ++queries;
  }
  state.counters["n"] = double(n);
  state.counters["p"] = double(p);
  state.counters["coop_steps"] = double(coop_steps) / double(queries);
  state.counters["binary_steps"] = std::log2(double(n));
  state.counters["predicted_rounds"] =
      double(pram::coop_search_rounds(n, p));
}

void BM_ErewVsCrewSearch(benchmark::State& state) {
  // The paper's EREW remark: without concurrent reads the lower bound
  // rises to Omega(log(n/p)).  Compare our EREW O(log p + log(n/p))
  // search against the CREW O(log n / log p) one.
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 20;
  static std::vector<cat::Key> sorted;
  if (sorted.empty()) {
    sorted.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sorted[i] = cat::Key(i) * 3;
    }
  }
  std::mt19937_64 rng(p);
  std::uint64_t erew_steps = 0, crew_steps = 0, queries = 0;
  for (auto _ : state) {
    const cat::Key y = cat::Key(rng() % (3 * n));
    pram::Machine erew(p, pram::Model::kErew);
    benchmark::DoNotOptimize(pram::erew_lower_bound<cat::Key>(
        erew, std::span<const cat::Key>(sorted), y));
    pram::Machine crew(p, pram::Model::kCrew);
    benchmark::DoNotOptimize(pram::coop_lower_bound<cat::Key>(
        crew, std::span<const cat::Key>(sorted), y));
    erew_steps += erew.stats().steps;
    crew_steps += crew.stats().steps;
    ++queries;
  }
  state.counters["p"] = double(p);
  state.counters["erew_steps"] = double(erew_steps) / double(queries);
  state.counters["crew_steps"] = double(crew_steps) / double(queries);
  state.counters["erew_lower_bound"] =
      std::log2(double(n) / double(p) + 2.0);
}

}  // namespace

BENCHMARK(BM_ErewVsCrewSearch)
    ->Arg(2)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FcVsIndependentBinary)
    ->Arg(6)->Arg(10)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnirVsBinary)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
