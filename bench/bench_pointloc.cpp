// Experiment E7 (Theorem 4 + Figures 5-6): planar point location.
//
// Reports, for several subdivision sizes and every p: cooperative steps
// vs the (log n)/log p prediction, the sequential bridged-separator-tree
// query cost, and the no-bridge O(log^2 n) baseline.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>

#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "pointloc/slab_index.hpp"
#include "serve_compare.hpp"

namespace {

struct PlInstance {
  geom::MonotoneSubdivision sub;
  std::unique_ptr<pointloc::SeparatorTree> st;
  std::vector<geom::Point> queries;  // pre-generated: the rejection
                                     // sampler is O(edges) and must stay
                                     // out of the timed loop
};

const PlInstance& pl_instance(std::size_t regions) {
  static std::map<std::size_t, std::unique_ptr<PlInstance>> cache;
  auto it = cache.find(regions);
  if (it == cache.end()) {
    auto inst = std::make_unique<PlInstance>();
    std::mt19937_64 rng(regions);
    inst->sub = geom::make_random_monotone(regions, 64, rng);
    inst->st = std::make_unique<pointloc::SeparatorTree>(inst->sub);
    for (int i = 0; i < 256; ++i) {
      inst->queries.push_back(geom::random_query_point(inst->sub, rng));
    }
    it = cache.emplace(regions, std::move(inst)).first;
  }
  return *it->second;
}

void BM_CoopPointLocation(benchmark::State& state) {
  const std::size_t regions = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& inst = pl_instance(regions);
  std::size_t qi = 0;
  std::uint64_t steps = 0, hops = 0, queries = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    pram::Machine m(p);
    std::uint64_t h = 0;
    benchmark::DoNotOptimize(pointloc::coop_locate(*inst.st, m, q, &h));
    steps += m.stats().steps;
    hops += h;
    ++queries;
  }
  const double n = double(inst.sub.edges.size());
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  state.counters["n_edges"] = n;
  state.counters["p"] = double(p);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["hops"] = double(hops) / double(queries);
  state.counters["logn_div_logp"] = std::max(1.0, std::log2(n) / logp);
}

void BM_SequentialPointLocation(benchmark::State& state) {
  const std::size_t regions = static_cast<std::size_t>(state.range(0));
  const auto& inst = pl_instance(regions);
  std::size_t qi = 0;
  std::uint64_t comparisons = 0, queries = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    fc::SearchStats stats;
    benchmark::DoNotOptimize(inst.st->locate(q, &stats));
    comparisons += stats.comparisons + stats.bridge_walks;
    ++queries;
  }
  state.counters["n_edges"] = double(inst.sub.edges.size());
  state.counters["comparisons"] = double(comparisons) / double(queries);
}

void BM_NoBridgeBaseline(benchmark::State& state) {
  const std::size_t regions = static_cast<std::size_t>(state.range(0));
  const auto& inst = pl_instance(regions);
  std::size_t qi = 0;
  std::uint64_t comparisons = 0, queries = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    fc::SearchStats stats;
    benchmark::DoNotOptimize(inst.st->locate_no_bridges(q, &stats));
    comparisons += stats.comparisons;
    ++queries;
  }
  state.counters["n_edges"] = double(inst.sub.edges.size());
  state.counters["comparisons"] = double(comparisons) / double(queries);
}

void BM_SlabIndexBaseline(benchmark::State& state) {
  const std::size_t regions = static_cast<std::size_t>(state.range(0));
  const auto& inst = pl_instance(regions);
  static std::map<std::size_t, std::unique_ptr<pointloc::SlabIndex>> cache;
  auto it = cache.find(regions);
  if (it == cache.end()) {
    it = cache
             .emplace(regions,
                      std::make_unique<pointloc::SlabIndex>(inst.sub))
             .first;
  }
  const auto& idx = *it->second;
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    benchmark::DoNotOptimize(idx.locate(q));
  }
  state.counters["n_edges"] = double(inst.sub.edges.size());
  state.counters["slab_crossings"] = double(idx.total_crossings());
  state.counters["septree_entries"] = double(inst.st->total_entries());
}

void BM_BatchThroughput(benchmark::State& state) {
  const std::size_t regions = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& inst = pl_instance(regions);
  std::uint64_t steps = 0, rounds_run = 0;
  for (auto _ : state) {
    pram::Machine m(p);
    const auto got =
        pointloc::coop_locate_batch(*inst.st, m, inst.queries);
    benchmark::DoNotOptimize(got.data());
    steps += m.stats().steps;
    ++rounds_run;
  }
  state.counters["n_edges"] = double(inst.sub.edges.size());
  state.counters["p"] = double(p);
  state.counters["batch_size"] = double(inst.queries.size());
  state.counters["steps_per_query"] =
      double(steps) / double(rounds_run) / double(inst.queries.size());
}

}  // namespace

BENCHMARK(BM_CoopPointLocation)
    ->ArgsProduct({{64, 512, 4096}, {1, 4, 16, 64, 256, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialPointLocation)
    ->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoBridgeBaseline)
    ->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SlabIndexBaseline)
    ->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BatchThroughput)
    ->ArgsProduct({{512, 4096}, {64, 1024, 65536}})
    ->Unit(benchmark::kMicrosecond);

// `--json[=FILE]` switches to the serving-layer throughput comparison
// (flat point locator vs simulator, BENCH_pointloc_serve.json); anything
// else runs the google-benchmark step-count experiments as before.
int main(int argc, char** argv) {
  serve_bench::Options opts;
  if (serve_bench::parse_args(argc, argv, opts, "BENCH_pointloc_serve.json")) {
    return serve_bench::run_pointloc_compare(opts);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
