// Experiment E5 (Theorem 2): explicit cooperative search along long paths
// (length k >> log n) in a path tree.  The paper predicts
// O((log n)/log p + k/(p^{1-eps} log p)); the bench sweeps k and p and
// reports measured steps against that curve.

#include "common.hpp"
#include "core/general_tree.hpp"

namespace {

void BM_LongPath(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const double eps = 0.5;
  const auto& inst = bench::path_instance(length, length * 10, 46);
  std::vector<cat::NodeId> path(inst.tree.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    path[i] = cat::NodeId(i);
  }
  std::mt19937_64 rng(length + p);
  std::uint64_t steps = 0, queries = 0;
  for (auto _ : state) {
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(p);
    const auto r = coop::coop_search_long_path(*inst.coop, m, path, y, eps);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    ++queries;
  }
  const double n = double(inst.tree.total_catalog_size());
  const double logn = std::log2(n);
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  const double predicted =
      logn / logp + double(length) / (std::pow(double(p), 1.0 - eps) * logp);
  state.counters["k"] = double(length);
  state.counters["p"] = double(p);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["predicted"] = predicted;
  state.counters["steps_over_pred"] =
      double(steps) / double(queries) / predicted;
}

}  // namespace

BENCHMARK(BM_LongPath)
    ->ArgsProduct({{256, 1024, 4096, 16384}, {4, 16, 64, 256, 1024}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
