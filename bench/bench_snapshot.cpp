// Snapshot subsystem benchmark (DESIGN.md §8): what binary persistence
// buys at startup, and what hot-swap costs under traffic.
//
//   bench_snapshot [--json[=FILE]] [--smoke] [--queries=Q]
//
//   * cold start:  fc::Structure::build + FlatCascade::compile from the
//     source tree (what a server pays without a snapshot)
//   * mmap start:  snapshot::open on the serialized arena — CRC + bounds
//     validation, zero copies (acceptance: >= 10x faster at n = 2^20)
//   * hot swap:    qps of a QueryEngine serving continuously while a
//     publisher thread pushes fresh versions through snapshot::Registry,
//     with every answer checked against the tree oracle
//
// Always runs (no google-benchmark harness); --json additionally writes
// BENCH_snapshot.json for scripts/summarize_bench.py and the bench-smoke
// CI job.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "serve_compare.hpp"
#include "snapshot/registry.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using serve_bench::Options;
using serve_bench::seconds_since;

int run(const Options& o, bool emit_json) {
  const std::uint32_t height = o.smoke ? 10 : 16;
  const std::size_t entries = o.smoke ? (std::size_t{1} << 16)
                                      : (std::size_t{1} << 20);
  const std::size_t num_queries =
      o.queries != 0 ? o.queries : (o.smoke ? 2000 : 20000);
  const std::string snap_path = o.out_path + ".arena.snap";

  std::printf("building: height %u, %zu entries...\n", height, entries);
  std::mt19937_64 rng(42);
  const auto tree = cat::make_balanced_binary(height, entries,
                                              cat::CatalogShape::kRandom, rng);

  // Cold start: the full preprocessing pipeline a snapshot-less server
  // pays on every boot.
  const auto t_cold = std::chrono::steady_clock::now();
  const auto s = fc::Structure::build(tree);
  auto flat_e = serve::FlatCascade::compile(s);
  const double cold_sec = seconds_since(t_cold);
  if (!flat_e.ok()) {
    std::fprintf(stderr, "error: %s\n", flat_e.status().to_string().c_str());
    return 1;
  }
  serve::FlatCascade flat = flat_e.take();

  const auto t_write = std::chrono::steady_clock::now();
  if (const auto st = snapshot::write(flat, snap_path); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  const double write_sec = seconds_since(t_write);

  // mmap start: best of a few opens (the first pass may also pay page
  // faults; the steady state is what a restart on a warm box sees).
  double load_sec = 1e30;
  for (int i = 0; i < 5; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto snap = snapshot::open(snap_path);
    const double sec = seconds_since(t0);
    if (!snap.ok()) {
      std::fprintf(stderr, "error: %s\n", snap.status().to_string().c_str());
      return 1;
    }
    load_sec = std::min(load_sec, sec);
  }
  const double load_speedup = cold_sec / load_sec;
  std::printf("cold build %.3f s, snapshot write %.3f s, mmap load %.3f ms "
              "(%.0fx faster than cold build)\n",
              cold_sec, write_sec, load_sec * 1e3, load_speedup);

  // Query set + oracle (tree binary search) for the differential checks.
  std::vector<serve::PathQuery> queries(num_queries);
  std::vector<std::vector<std::uint32_t>> expected(num_queries);
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    std::vector<cat::NodeId> path{tree.root()};
    while (!tree.is_leaf(path.back())) {
      const auto kids = tree.children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    queries[qi].y = cat::Key(rng() % 1'000'000'000);
    for (const cat::NodeId v : path) {
      expected[qi].push_back(
          static_cast<std::uint32_t>(tree.catalog(v).find(queries[qi].y)));
    }
    queries[qi].path = std::move(path);
  }

  // Round-trip fidelity gate: the mmap-loaded arena must answer
  // bit-identically to the in-memory one it was written from.
  bool equal = true;
  {
    auto snap = snapshot::open(snap_path);
    const std::size_t check = std::min<std::size_t>(500, num_queries);
    for (std::size_t qi = 0; qi < check && equal; ++qi) {
      const auto a = flat.search(queries[qi].path, queries[qi].y);
      const auto b = snap->cascade.search(queries[qi].path, queries[qi].y);
      for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
        if (a.aug_index[i] != b.aug_index[i] ||
            a.proper_index[i] != b.proper_index[i] ||
            b.proper_index[i] != expected[qi][i]) {
          equal = false;
        }
      }
    }
  }

  // Hot swap under traffic: serve continuously while a publisher thread
  // pushes fresh versions (alternating mmap reopens and the in-memory
  // arena's last hurrah via a fresh compile).  Zero mismatches required.
  snapshot::Registry registry;
  registry.publish(snapshot::Snapshot::in_memory(std::move(flat)));
  const double publish_gap_sec = o.smoke ? 0.04 : 0.1;
  const int target_publishes = 12;
  std::atomic<bool> done{false};
  std::size_t publishes = 0;

  // The publisher always completes its full schedule; the serving loop
  // below runs until it does, so every run exercises >= target_publishes
  // hot swaps regardless of how long each open/compile takes.
  std::thread publisher([&] {
    for (int i = 0; i < target_publishes; ++i) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(publish_gap_sec));
      if (i % 2 == 0) {
        auto snap = snapshot::open(snap_path);
        if (snap.ok()) {
          registry.publish(snap.take());
          ++publishes;
        }
      } else {
        auto again = serve::FlatCascade::compile(s);
        if (again.ok()) {
          registry.publish(snapshot::Snapshot::in_memory(again.take()));
          ++publishes;
        }
      }
    }
    done.store(true);
  });

  serve::QueryEngine engine(4);
  std::size_t served = 0, mismatches = 0, batches = 0;
  const auto t_swap = std::chrono::steady_clock::now();
  while (!done.load()) {
    std::vector<serve::PathAnswer> out;
    if (!snapshot::serve_path_queries(registry, engine, queries, out).ok()) {
      ++mismatches;
      continue;
    }
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      for (std::size_t i = 0; i < expected[qi].size(); ++i) {
        mismatches += out[qi].proper_index[i] != expected[qi][i] ? 1 : 0;
      }
    }
    served += num_queries;
    ++batches;
  }
  const double swap_elapsed = seconds_since(t_swap);
  publisher.join();
  const double swap_qps = double(served) / swap_elapsed;

  std::printf("hot swap: %zu publishes across %zu batches, %.0f queries/sec, "
              "%zu mismatches, %zu retired pending\n",
              publishes, batches, swap_qps, mismatches,
              registry.retired_count());
  std::printf("answers equal: %s\n", equal ? "yes" : "NO");

  if (emit_json) {
    std::FILE* f = std::fopen(o.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", o.out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"snapshot\",\n  \"smoke\": %s,\n",
                 o.smoke ? "true" : "false");
    std::fprintf(f, "  \"n\": %zu,\n  \"queries\": %zu,\n", entries,
                 num_queries);
    std::fprintf(f, "  \"cold_build_sec\": %.6f,\n", cold_sec);
    std::fprintf(f, "  \"snapshot_write_sec\": %.6f,\n", write_sec);
    std::fprintf(f, "  \"mmap_load_sec\": %.6f,\n", load_sec);
    std::fprintf(f, "  \"load_speedup\": %.1f,\n", load_speedup);
    std::fprintf(f, "  \"swap_publishes\": %zu,\n", publishes);
    std::fprintf(f, "  \"swap_batches\": %zu,\n", batches);
    std::fprintf(f, "  \"swap_qps\": %.1f,\n", swap_qps);
    std::fprintf(f, "  \"swap_mismatches\": %zu,\n", mismatches);
    std::fprintf(f, "  \"equal_answers\": %s\n}\n", equal ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", o.out_path.c_str());
  }
  std::remove(snap_path.c_str());
  return equal && mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  const bool emit_json =
      serve_bench::parse_args(argc, argv, o, "BENCH_snapshot.json");
  return run(o, emit_json);
}
