// Experiment E6 (Theorem 3): trees of degree d are searched through their
// binarized version; the cooperative search time gains a log d factor
// (our caterpillar binarization gives the simple d-factor path stretch;
// both curves are reported).

#include "common.hpp"
#include "core/general_tree.hpp"

namespace {

struct DegreeInstance {
  cat::Tree tree;
  cat::Tree binarized;
  std::vector<cat::NodeId> orig_of_new;
  std::unique_ptr<fc::Structure> fc;
  std::unique_ptr<coop::CoopStructure> coop;
};

const DegreeInstance& degree_instance(std::size_t degree) {
  static std::map<std::size_t, std::unique_ptr<DegreeInstance>> cache;
  auto it = cache.find(degree);
  if (it == cache.end()) {
    auto inst = std::make_unique<DegreeInstance>();
    std::mt19937_64 rng(degree * 7);
    inst->tree = cat::make_random_tree(4096, degree, 40960,
                                       cat::CatalogShape::kRandom, rng);
    inst->binarized = cat::binarize(inst->tree, inst->orig_of_new);
    inst->fc =
        std::make_unique<fc::Structure>(fc::Structure::build(inst->binarized));
    inst->coop = std::make_unique<coop::CoopStructure>(
        coop::CoopStructure::build(*inst->fc));
    it = cache.emplace(degree, std::move(inst)).first;
  }
  return *it->second;
}

void BM_DegreeReducedSearch(benchmark::State& state) {
  const std::size_t degree = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& inst = degree_instance(degree);
  std::mt19937_64 rng(degree * 31 + p);
  std::uint64_t steps = 0, lifted_len = 0, orig_len = 0, queries = 0;
  for (auto _ : state) {
    std::vector<cat::NodeId> path{inst.tree.root()};
    while (!inst.tree.is_leaf(path.back())) {
      const auto kids = inst.tree.children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    const auto lifted = coop::lift_path_to_binarized(
        inst.tree, inst.binarized, inst.orig_of_new, path);
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    pram::Machine m(p);
    const auto r = coop::coop_search_segment(*inst.coop, m, lifted, y);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    lifted_len += lifted.size();
    orig_len += path.size();
    ++queries;
  }
  state.counters["d"] = double(degree);
  state.counters["p"] = double(p);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["path_stretch"] = double(lifted_len) / double(orig_len);
  state.counters["logd"] =
      std::log2(std::max<double>(2.0, double(degree)));
}

}  // namespace

BENCHMARK(BM_DegreeReducedSearch)
    ->ArgsProduct({{2, 3, 4, 8, 16}, {16, 256, 4096}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
