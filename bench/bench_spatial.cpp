// Experiment E8 (Theorem 5 + Corollary 1): spatial point location in an
// acyclic cell complex.  The paper predicts O((log^2 n)/log^2 p); the
// bench sweeps p and reports steps against that curve, plus the
// sequential O(log^2 n) walk.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>

#include "pointloc/spatial.hpp"

namespace {

struct SpInstance {
  geom::TerrainComplex complex;
  std::unique_ptr<pointloc::SpatialTree> st;
  std::vector<geom::Point3> queries;  // pre-generated (sampler is O(edges))
};

const SpInstance& sp_instance(std::size_t surfaces) {
  static std::map<std::size_t, std::unique_ptr<SpInstance>> cache;
  auto it = cache.find(surfaces);
  if (it == cache.end()) {
    auto inst = std::make_unique<SpInstance>();
    std::mt19937_64 rng(surfaces);
    inst->complex = geom::make_terrain_complex(surfaces, 64, 16, rng);
    inst->st = std::make_unique<pointloc::SpatialTree>(inst->complex);
    for (int i = 0; i < 256; ++i) {
      inst->queries.push_back(geom::random_query_point3(inst->complex, rng));
    }
    it = cache.emplace(surfaces, std::move(inst)).first;
  }
  return *it->second;
}

void BM_CoopSpatial(benchmark::State& state) {
  const std::size_t surfaces = static_cast<std::size_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const auto& inst = sp_instance(surfaces);
  std::size_t qi = 0;
  std::uint64_t steps = 0, hops = 0, queries = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    pram::Machine m(p);
    std::uint64_t h = 0;
    benchmark::DoNotOptimize(inst.st->coop_locate(m, q, &h));
    steps += m.stats().steps;
    hops += h;
    ++queries;
  }
  const double n = double(inst.complex.num_facets());
  const double logn = std::log2(n);
  const double logp = std::log2(std::max<double>(2.0, double(p)));
  state.counters["n_facets"] = n;
  state.counters["p"] = double(p);
  state.counters["steps"] = double(steps) / double(queries);
  state.counters["outer_hops"] = double(hops) / double(queries);
  state.counters["log2n_div_log2p"] =
      std::max(1.0, (logn * logn) / (logp * logp));
}

void BM_SequentialSpatial(benchmark::State& state) {
  const std::size_t surfaces = static_cast<std::size_t>(state.range(0));
  const auto& inst = sp_instance(surfaces);
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto q = inst.queries[qi++ % inst.queries.size()];
    benchmark::DoNotOptimize(inst.st->locate(q));
  }
  state.counters["n_facets"] = double(inst.complex.num_facets());
}

}  // namespace

BENCHMARK(BM_CoopSpatial)
    ->ArgsProduct({{16, 64, 256}, {4, 16, 64, 256, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialSpatial)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
