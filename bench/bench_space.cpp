// Experiment E4 (Lemma 2 + Figure 3): the storage of T' is O(n).
//
// Reports, per n: augmented-catalog entries (the cascading structure S),
// skeleton entries per substructure T_i (which must decay geometrically
// thanks to the truncation), and the grand total divided by n (which must
// approach a constant).

#include "common.hpp"

namespace {

void BM_SpacePerSubstructure(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.coop->total_skeleton_entries());
  }
  state.counters["n"] = double(entries);
  state.counters["aug_entries"] = double(inst.fc->total_aug_entries());
  state.counters["skeleton_total"] =
      double(inst.coop->total_skeleton_entries());
  state.counters["total_over_n"] =
      double(inst.coop->total_entries()) / double(entries);
  for (std::uint32_t i = 0; i < inst.coop->substructure_count(); ++i) {
    state.counters["T" + std::to_string(i)] =
        double(inst.coop->substructure(i).skeleton_entries);
  }
}

void BM_SpaceByShape(benchmark::State& state) {
  // Lemma 2 must hold regardless of how the entries are distributed; the
  // paper singles out variable catalog sizes as the hard case.
  const auto shape = static_cast<cat::CatalogShape>(state.range(0));
  const std::uint32_t height = 14;
  const std::size_t entries = 1 << 18;
  const auto& inst = bench::balanced_instance(height, entries, shape, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.coop->total_skeleton_entries());
  }
  state.counters["n"] = double(entries);
  state.counters["total_over_n"] =
      double(inst.coop->total_entries()) / double(entries);
}

}  // namespace

BENCHMARK(BM_SpacePerSubstructure)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpaceByShape)
    ->Arg(int(cat::CatalogShape::kUniform))
    ->Arg(int(cat::CatalogShape::kRandom))
    ->Arg(int(cat::CatalogShape::kRootHeavy))
    ->Arg(int(cat::CatalogShape::kLeafHeavy))
    ->Arg(int(cat::CatalogShape::kSkewed))
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
