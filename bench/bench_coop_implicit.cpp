// Experiment E2 (Theorem 1, implicit search): same sweep as E1 but the
// branch taken at each node is decided by a secondary comparison (a BST
// over per-node split keys, satisfying the consistency assumption).  The
// paper predicts the same O((log n)/log p) bound with the processor count
// still O(p) (Section 2.3).

#include "common.hpp"

namespace {

std::vector<cat::Key> bst_splits(const cat::Tree& t) {
  std::vector<cat::Key> split(t.num_nodes());
  std::vector<cat::NodeId> inorder;
  std::vector<std::pair<cat::NodeId, int>> stack{{t.root(), 0}};
  while (!stack.empty()) {
    auto& [v, s] = stack.back();
    if (s == 0) {
      s = 1;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[0], 0});
        continue;
      }
    }
    if (s == 1) {
      inorder.push_back(v);
      s = 2;
      if (!t.is_leaf(v)) {
        stack.push_back({t.children(v)[1], 0});
        continue;
      }
    }
    stack.pop_back();
  }
  for (std::size_t i = 0; i < inorder.size(); ++i) {
    split[inorder[i]] = cat::Key(i) * 100;
  }
  return split;
}

void BM_ImplicitSearch(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t p = static_cast<std::size_t>(state.range(1));
  const std::size_t entries = std::size_t(1) << (height + 4);
  const auto& inst = bench::balanced_instance(
      height, entries, cat::CatalogShape::kRandom, 43);
  const auto splits = bst_splits(inst.tree);
  std::mt19937_64 rng(p * 131 + height);
  std::uint64_t steps = 0, work = 0, queries = 0;
  for (auto _ : state) {
    const cat::Key x = cat::Key(rng() % (inst.tree.num_nodes() * 100));
    const cat::Key y = cat::Key(rng() % 1'000'000'000);
    const auto branch = [&](cat::NodeId v, std::size_t) -> std::uint32_t {
      return x <= splits[v] ? 0 : 1;
    };
    pram::Machine m(p);
    const auto r = coop::coop_search_implicit(*inst.coop, m, y, branch);
    benchmark::DoNotOptimize(r.proper_index.data());
    steps += m.stats().steps;
    work += m.stats().work;
    ++queries;
  }
  const double avg_steps = double(steps) / double(queries);
  state.counters["n"] = double(entries);
  state.counters["p"] = double(p);
  state.counters["steps"] = avg_steps;
  state.counters["work"] = double(work) / double(queries);
  state.counters["logn_div_logp"] = bench::predicted_ratio(entries, p);
  state.counters["steps_over_pred"] =
      avg_steps / bench::predicted_ratio(entries, p);
}

}  // namespace

BENCHMARK(BM_ImplicitSearch)
    ->ArgsProduct({{10, 14, 16}, {1, 2, 4, 16, 64, 256, 1024, 4096, 65536}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
