// Experiment E3 (Theorem 1, preprocessing): construction cost vs n.
//
//   * sequential builder: wall-clock, O(n) work reference;
//   * PRAM builder: measured depth and work under the level-synchronous
//     substitution (DESIGN.md deviation 1: depth O(log^2 n), work
//     O(n log n), vs the paper's ACG O(log n)/O(n)); counters expose both
//     predicted curves so the gap is visible;
//   * Step 2 (substructures T_i): wall-clock and resulting entry counts.

#include "common.hpp"
#include "fc/parallel_build.hpp"

namespace {

void BM_SequentialBuild(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  std::mt19937_64 rng(7);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);
  for (auto _ : state) {
    const auto s = fc::Structure::build(tree);
    benchmark::DoNotOptimize(s.total_aug_entries());
  }
  state.counters["n"] = double(entries);
  state.counters["aug_entries"] =
      double(fc::Structure::build(tree).total_aug_entries());
}

void BM_ParallelBuild(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  std::mt19937_64 rng(8);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);
  std::uint64_t steps = 0, work = 0, runs = 0;
  for (auto _ : state) {
    pram::Machine m(std::max<std::size_t>(
        1, entries / std::max<std::uint32_t>(1, height)));  // n / log n
    const auto s = fc::build_parallel(tree, m);
    benchmark::DoNotOptimize(s.total_aug_entries());
    steps += m.stats().steps;
    work += m.stats().work;
    ++runs;
  }
  const double logn = std::log2(double(entries));
  state.counters["n"] = double(entries);
  state.counters["depth"] = double(steps) / double(runs);
  state.counters["work"] = double(work) / double(runs);
  state.counters["paper_depth_logn"] = logn;
  state.counters["ours_depth_log2n"] = logn * logn;
  state.counters["work_per_nlogn"] =
      double(work) / double(runs) / (double(entries) * logn);
}

void BM_SubstructureBuild(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  std::mt19937_64 rng(9);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  for (auto _ : state) {
    const auto cs = coop::CoopStructure::build(s);
    benchmark::DoNotOptimize(cs.total_skeleton_entries());
  }
  const auto cs = coop::CoopStructure::build(s);
  state.counters["n"] = double(entries);
  state.counters["skeleton_entries"] = double(cs.total_skeleton_entries());
  state.counters["substructures"] = double(cs.substructure_count());
}

void BM_SubstructureBuildParallel(benchmark::State& state) {
  // Step 2 on the PRAM: root samples + one instruction per block level.
  const auto height = static_cast<std::uint32_t>(state.range(0));
  const std::size_t entries = std::size_t(1) << (height + 4);
  std::mt19937_64 rng(10);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  std::uint64_t steps = 0, work = 0, runs = 0;
  for (auto _ : state) {
    pram::Machine m(std::max<std::size_t>(
        1, entries / std::max<std::uint32_t>(1, height)));
    const auto cs = coop::CoopStructure::build_parallel(s, m);
    benchmark::DoNotOptimize(cs.total_skeleton_entries());
    steps += m.stats().steps;
    work += m.stats().work;
    ++runs;
  }
  state.counters["n"] = double(entries);
  state.counters["depth"] = double(steps) / double(runs);
  state.counters["work"] = double(work) / double(runs);
  state.counters["logn"] = std::log2(double(entries));
}

}  // namespace

BENCHMARK(BM_SequentialBuild)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelBuild)
    ->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SubstructureBuild)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubstructureBuildParallel)
    ->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
