// Overload benchmark (DESIGN.md §9): what admission control buys when
// offered load exceeds capacity.
//
//   bench_overload [--json[=FILE]] [--smoke] [--queries=Q]
//
//   * capacity:  batch qps of a single client driving serve::Frontend
//     with an uncontended admission budget — the service's ceiling
//   * overload:  ~2x capacity offered across paced clients against a
//     tight in-flight budget; the frontend must shed the excess with
//     RESOURCE_EXHAUSTED while admitted batches keep their latency
//     (p50/p99 of admitted batch round-trips reported)
//
// Every spot-checked answer is verified against the source tree's own
// binary search.  Always runs standalone (no google-benchmark harness);
// --json writes BENCH_overload.json for scripts/summarize_bench.py and
// the bench-smoke CI job.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "serve_compare.hpp"
#include "serve/frontend.hpp"
#include "snapshot/registry.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using serve_bench::Options;
using serve_bench::seconds_since;
using Clock = std::chrono::steady_clock;

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) {
    return 0;
  }
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

int run(const Options& o, bool emit_json) {
  const std::uint32_t height = o.smoke ? 10 : 16;
  const std::size_t entries = o.smoke ? (std::size_t{1} << 16)
                                      : (std::size_t{1} << 20);
  const std::size_t batch_queries =
      o.queries != 0 ? o.queries : (o.smoke ? 256 : 1024);
  const double capacity_sec = o.smoke ? 0.3 : 1.0;
  const double overload_sec = o.smoke ? 0.6 : 2.0;
  const std::string snap_path = o.out_path + ".arena.snap";

  std::printf("building: height %u, %zu entries...\n", height, entries);
  std::mt19937_64 rng(42);
  const auto tree = cat::make_balanced_binary(height, entries,
                                              cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  auto flat = serve::FlatCascade::compile(s);
  if (!flat.ok()) {
    std::fprintf(stderr, "error: %s\n", flat.status().to_string().c_str());
    return 1;
  }
  if (const auto st = snapshot::write(*flat, snap_path); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  snapshot::Registry registry;
  {
    auto snap = snapshot::open(snap_path);
    if (!snap.ok()) {
      std::fprintf(stderr, "error: %s\n", snap.status().to_string().c_str());
      return 1;
    }
    registry.publish(snap.take());
  }

  std::vector<serve::PathQuery> queries(batch_queries);
  for (auto& q : queries) {
    std::vector<cat::NodeId> path{tree.root()};
    while (!tree.is_leaf(path.back())) {
      const auto kids = tree.children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    q.path = std::move(path);
    q.y = cat::Key(rng() % 1'000'000'000);
  }

  serve::QueryEngine engine(4);

  // Differential gate: frontend answers are defined by the source
  // catalogs' binary search.
  bool equal = true;
  {
    serve::FrontendOptions fopts;
    fopts.max_inflight = 1;
    serve::Frontend frontend(registry, engine, fopts);
    std::vector<serve::PathAnswer> answers;
    if (!frontend.serve_paths(queries, answers).ok()) {
      equal = false;
    }
    const std::size_t check = std::min<std::size_t>(200, batch_queries);
    for (std::size_t qi = 0; qi < check && equal; ++qi) {
      for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
        if (answers[qi].proper_index[i] !=
            tree.catalog(queries[qi].path[i]).find(queries[qi].y)) {
          equal = false;
        }
      }
    }
  }

  // Phase 1 — capacity: one client, uncontended budget.
  double capacity_qps = 0;
  {
    serve::FrontendOptions fopts;
    fopts.max_inflight = 64;
    serve::Frontend frontend(registry, engine, fopts);
    std::vector<serve::PathAnswer> answers;
    std::size_t served = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
      if (frontend.serve_paths(queries, answers).ok()) {
        served += batch_queries;
      }
      elapsed = seconds_since(t0);
    } while (elapsed < capacity_sec);
    capacity_qps = static_cast<double>(served) / elapsed;
  }
  std::printf("capacity: %.0f queries/sec (batch %zu, 1 client)\n",
              capacity_qps, batch_queries);

  // Phase 2 — overload: offer ~2x capacity across paced clients against a
  // tight in-flight budget.  Each client fires batches on a fixed cadence
  // (open-loop: a shed batch is NOT retried, the next one stays on
  // schedule), so offered load is independent of how the service copes.
  const std::size_t n_clients = 4;
  const double offered_target = 2.0 * capacity_qps;
  const double batches_per_sec_per_client =
      offered_target / static_cast<double>(batch_queries * n_clients);
  const auto cadence = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / batches_per_sec_per_client));

  serve::FrontendOptions fopts;
  fopts.max_inflight = 2;  // the bottleneck under test
  fopts.max_retries = 0;   // open-loop: shedding is the release valve
  serve::Frontend frontend(registry, engine, fopts);

  struct ClientResult {
    std::size_t offered = 0, admitted = 0, shed = 0, other = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<ClientResult> results(n_clients);
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  const auto t_start = Clock::now();
  for (std::size_t ci = 0; ci < n_clients; ++ci) {
    clients.emplace_back([&, ci] {
      ClientResult& r = results[ci];
      std::vector<serve::PathAnswer> answers;
      auto next_at = t_start + cadence * static_cast<int>(ci + 1);
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_until(next_at);
        next_at += cadence;
        const auto t0 = Clock::now();
        const auto st = frontend.serve_paths(queries, answers);
        ++r.offered;
        if (st.ok()) {
          ++r.admitted;
          r.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count());
        } else if (st.code() == coop::StatusCode::kResourceExhausted) {
          ++r.shed;
        } else {
          ++r.other;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(overload_sec));
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) {
    c.join();
  }
  const double elapsed = seconds_since(t_start);

  std::size_t offered = 0, admitted = 0, shed = 0, other = 0;
  std::vector<double> latencies;
  for (const auto& r : results) {
    offered += r.offered;
    admitted += r.admitted;
    shed += r.shed;
    other += r.other;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double q = static_cast<double>(batch_queries);
  const double offered_qps = static_cast<double>(offered) * q / elapsed;
  const double admitted_qps = static_cast<double>(admitted) * q / elapsed;
  const double shed_qps = static_cast<double>(shed) * q / elapsed;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  std::printf("overload: offered %.0f q/s (target %.0f), admitted %.0f q/s, "
              "shed %.0f q/s, %zu other errors\n",
              offered_qps, offered_target, admitted_qps, shed_qps, other);
  std::printf("admitted batch latency: p50 %.2f ms, p99 %.2f ms "
              "(%zu batches)\n", p50, p99, latencies.size());
  std::printf("answers equal: %s\n", equal ? "yes" : "NO");

  if (emit_json) {
    std::FILE* f = std::fopen(o.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", o.out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"overload\",\n  \"smoke\": %s,\n",
                 o.smoke ? "true" : "false");
    std::fprintf(f, "  \"n\": %zu,\n  \"queries\": %zu,\n", entries,
                 batch_queries);
    std::fprintf(f, "  \"clients\": %zu,\n  \"max_inflight\": %zu,\n",
                 n_clients, fopts.max_inflight);
    std::fprintf(f, "  \"capacity_qps\": %.1f,\n", capacity_qps);
    std::fprintf(f, "  \"offered_qps\": %.1f,\n", offered_qps);
    std::fprintf(f, "  \"admitted_qps\": %.1f,\n", admitted_qps);
    std::fprintf(f, "  \"shed_qps\": %.1f,\n", shed_qps);
    std::fprintf(f, "  \"other_errors\": %zu,\n", other);
    std::fprintf(f, "  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n", p50, p99);
    std::fprintf(f, "  \"equal_answers\": %s\n}\n", equal ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", o.out_path.c_str());
  }
  std::remove(snap_path.c_str());
  return equal && other == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  const bool emit_json =
      serve_bench::parse_args(argc, argv, o, "BENCH_overload.json");
  return run(o, emit_json);
}
