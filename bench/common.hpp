#pragma once

// Shared helpers for the experiment benches (see DESIGN.md section 3).
//
// The primary metric of every experiment is the simulated PRAM step count
// (what the paper's theorems bound); wall-clock time of the simulation is
// reported by google-benchmark as a secondary signal.  Expensive data
// structures are cached across benchmark repetitions.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <tuple>

#include "catalog/tree.hpp"
#include "core/explicit_search.hpp"
#include "core/implicit_search.hpp"
#include "fc/build.hpp"
#include "fc/search.hpp"
#include "pram/machine.hpp"

namespace bench {

/// A tree-of-catalogs instance with its preprocessing, cached by key.
struct Instance {
  cat::Tree tree;
  std::unique_ptr<fc::Structure> fc;
  std::unique_ptr<coop::CoopStructure> coop;
};

inline const Instance& balanced_instance(std::uint32_t height,
                                         std::size_t entries,
                                         cat::CatalogShape shape,
                                         std::uint64_t seed) {
  using KeyT = std::tuple<std::uint32_t, std::size_t, int, std::uint64_t>;
  static std::map<KeyT, std::unique_ptr<Instance>> cache;
  const KeyT key{height, entries, int(shape), seed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto inst = std::make_unique<Instance>();
    std::mt19937_64 rng(seed);
    inst->tree = cat::make_balanced_binary(height, entries, shape, rng);
    inst->fc = std::make_unique<fc::Structure>(fc::Structure::build(inst->tree));
    inst->coop = std::make_unique<coop::CoopStructure>(
        coop::CoopStructure::build(*inst->fc));
    it = cache.emplace(key, std::move(inst)).first;
  }
  return *it->second;
}

inline const Instance& path_instance(std::size_t length, std::size_t entries,
                                     std::uint64_t seed) {
  using KeyT = std::tuple<std::size_t, std::size_t, std::uint64_t>;
  static std::map<KeyT, std::unique_ptr<Instance>> cache;
  const KeyT key{length, entries, seed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto inst = std::make_unique<Instance>();
    std::mt19937_64 rng(seed);
    inst->tree = cat::make_path_tree(length, entries,
                                     cat::CatalogShape::kRandom, rng);
    inst->fc = std::make_unique<fc::Structure>(fc::Structure::build(inst->tree));
    inst->coop = std::make_unique<coop::CoopStructure>(
        coop::CoopStructure::build(*inst->fc));
    it = cache.emplace(key, std::move(inst)).first;
  }
  return *it->second;
}

/// The paper's predicted speedup factor log n / log p (>= 1).
inline double predicted_ratio(std::size_t n, std::size_t p) {
  const double lp = std::log2(std::max<double>(2.0, double(p)));
  return std::max(1.0, std::log2(std::max<double>(2.0, double(n))) / lp);
}

inline std::vector<cat::NodeId> leftish_path(const cat::Tree& t,
                                             std::uint64_t salt) {
  std::mt19937_64 rng(salt);
  std::vector<cat::NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    const auto kids = t.children(path.back());
    path.push_back(kids[rng() % kids.size()]);
  }
  return path;
}

}  // namespace bench
