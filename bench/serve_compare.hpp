#pragma once

// Flat-arena serving layer vs PRAM simulator: wall-clock throughput
// comparison with machine-readable JSON output (DESIGN.md §7).
//
// The google-benchmark experiments measure *simulated step counts* — the
// quantity the paper's theorems bound.  This mode measures the orthogonal
// production question: real queries per second.  Invoked from the bench
// binaries as
//
//   bench_retrieval --json[=FILE] [--smoke] [--queries=Q]
//   bench_pointloc  --json[=FILE] [--smoke] [--queries=Q]
//
// which bypasses google-benchmark entirely, runs the comparison, prints a
// summary, and writes the JSON (default BENCH_serve.json /
// BENCH_pointloc_serve.json; consumed by scripts/summarize_bench.py and
// the bench-smoke CI job).  --smoke shrinks the instance so CI finishes
// in seconds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <thread>

#include "catalog/tree.hpp"
#include "core/explicit_search.hpp"
#include "fc/search.hpp"
#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "serve/flat_pointloc.hpp"
#include "serve/query_engine.hpp"
#include "serve/simd_find.hpp"

namespace serve_bench {

struct Options {
  std::string out_path;  ///< JSON destination
  bool smoke = false;    ///< CI-sized instance
  std::size_t queries = 0;  ///< 0 = mode default
};

/// True iff --json was passed; fills `o` from the other flags.
inline bool parse_args(int argc, char** argv, Options& o,
                       const char* default_out) {
  bool json = false;
  o.out_path = default_out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json = true;
      o.out_path = a + 7;
    } else if (std::strcmp(a, "--smoke") == 0) {
      o.smoke = true;
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      o.queries = static_cast<std::size_t>(std::strtoull(a + 10, nullptr, 10));
    }
  }
  return json;
}

struct Row {
  std::string mode;
  std::size_t threads = 1;
  double qps = 0;
  double p99_ns = 0;  ///< p99 per-query latency at chunk granularity
};

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measured {
  double qps = 0;
  double p99_ns = 0;
};

/// Throughput of `run(begin, count)` over a query set of size `total`.
/// One untimed warm-up pass first (cold caches and first-touch page
/// faults are not the steady state the regression gate tracks), then
/// three independent timed epochs of `min_sec / 3` each; the reported
/// qps is the *fastest* epoch.  A single long-window average folds
/// scheduler preemption on a busy host into every number, while the
/// best epoch approaches the machine's true throughput — the same
/// min-of-k discipline the baseline refresh applies across whole runs.
/// The tail estimate is the 99th percentile of per-chunk wall time
/// (over all epochs) divided by chunk size.
template <typename RunChunk>
Measured measure(std::size_t total, std::size_t chunk, double min_sec,
                 RunChunk&& run) {
  for (std::size_t at = 0; at < total; at += chunk) {
    run(at, std::min(chunk, total - at));
  }
  constexpr int kEpochs = 3;
  std::vector<double> per_query_ns;
  double best_qps = 0;
  std::size_t at = 0;
  for (int e = 0; e < kEpochs; ++e) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t done = 0;
    double elapsed = 0;
    do {
      const std::size_t c = std::min(chunk, total - at);
      const auto c0 = std::chrono::steady_clock::now();
      run(at, c);
      per_query_ns.push_back(
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - c0)
              .count() /
          double(c));
      done += c;
      at = (at + c) % total;
      elapsed = seconds_since(t0);
    } while (elapsed < min_sec / kEpochs);
    best_qps = std::max(best_qps, double(done) / elapsed);
  }
  std::sort(per_query_ns.begin(), per_query_ns.end());
  const std::size_t p99_idx =
      (per_query_ns.size() - 1) * 99 / 100;
  return Measured{best_qps, per_query_ns[p99_idx]};
}

inline Row make_row(std::string mode, std::size_t threads, Measured m) {
  return Row{std::move(mode), threads, m.qps, m.p99_ns};
}

inline void write_json_to(std::FILE* f, const Options& o,
                          const char* bench_name, std::size_t n,
                          std::size_t num_queries,
                          const std::vector<Row>& rows, double speedup,
                          bool equal_answers) {
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"smoke\": %s,\n", bench_name,
               o.smoke ? "true" : "false");
  std::fprintf(f, "  \"n\": %zu,\n  \"queries\": %zu,\n", n, num_queries);
  std::fprintf(f, "  \"simd\": \"%s\",\n", serve::simd::dispatch_name());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %zu, \"qps\": %.1f, "
                 "\"p99_ns\": %.1f}%s\n",
                 rows[i].mode.c_str(), rows[i].threads, rows[i].qps,
                 rows[i].p99_ns, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_flat_vs_simulator\": %.2f,\n", speedup);
  std::fprintf(f, "  \"equal_answers\": %s\n}\n",
               equal_answers ? "true" : "false");
}

/// The JSON document goes to stdout (the machine-readable channel — every
/// diagnostic in this header goes to stderr) AND to o.out_path for the CI
/// artifact flow.
inline void write_json(const Options& o, const char* bench_name,
                       std::size_t n, std::size_t num_queries,
                       const std::vector<Row>& rows, double speedup,
                       bool equal_answers) {
  write_json_to(stdout, o, bench_name, n, num_queries, rows, speedup,
                equal_answers);
  std::FILE* f = std::fopen(o.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", o.out_path.c_str());
    return;
  }
  write_json_to(f, o, bench_name, n, num_queries, rows, speedup,
                equal_answers);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", o.out_path.c_str());
}

inline void print_rows(const std::vector<Row>& rows) {
  std::fprintf(stderr, "%-16s %8s %14s %12s\n", "mode", "threads",
               "queries/sec", "p99(ns)");
  for (const auto& r : rows) {
    std::fprintf(stderr, "%-16s %8zu %14.1f %12.1f\n", r.mode.c_str(),
                 r.threads, r.qps, r.p99_ns);
  }
}

/// Guard a single RAII scope with a forced simd dispatch, restoring the
/// runtime choice on exit — the bench rows below measure both kernels on
/// the same process without re-execing.
struct ForcedDispatch {
  explicit ForcedDispatch(bool scalar) {
    serve::simd::set_force_scalar(scalar);
  }
  ~ForcedDispatch() { serve::simd::set_force_scalar(false); }
};

/// Monotone thread scaling: on a machine with >= 4 hardware threads, the
/// 4-thread flat_batch row must not be slower than the 1-thread row
/// (3% tolerance for run-to-run noise).  On smaller machines — including
/// the 1-vCPU containers where oversubscription makes "negative scaling"
/// the physically correct outcome — the check is skipped and says so.
/// Returns false (and prints why) on violation.
inline bool check_thread_scaling(const std::vector<Row>& rows) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::fprintf(stderr,
                 "thread-scaling check skipped: %u hardware threads < 4\n",
                 hw);
    return true;
  }
  double qps1 = 0, qps4 = 0;
  for (const auto& r : rows) {
    if (r.mode == "flat_batch" && r.threads == 1) qps1 = r.qps;
    if (r.mode == "flat_batch" && r.threads == 4) qps4 = r.qps;
  }
  if (qps1 <= 0 || qps4 <= 0) {
    return true;  // rows absent (e.g. a trimmed mode list)
  }
  if (qps4 < 0.97 * qps1) {
    std::fprintf(stderr,
                 "FAIL: negative thread scaling: flat_batch@4 %.1f qps < "
                 "flat_batch@1 %.1f qps on a %u-thread machine\n",
                 qps4, qps1, hw);
    return false;
  }
  std::fprintf(stderr, "thread scaling ok: flat_batch 1->4 threads %.2fx\n",
               qps4 / qps1);
  return true;
}

/// bench_retrieval --json: explicit-path search throughput, simulator vs
/// flat arena.  n = 2^20 catalog entries (acceptance size) unless --smoke.
inline int run_paths_compare(const Options& o) {
  const std::uint32_t height = o.smoke ? 10 : 16;
  const std::size_t entries = o.smoke ? (std::size_t{1} << 16)
                                      : (std::size_t{1} << 20);
  const std::size_t num_queries =
      o.queries != 0 ? o.queries : (o.smoke ? 2000 : 20000);
  const std::size_t sim_p = 16;

  std::fprintf(stderr, "building: height %u, %zu entries...\n", height, entries);
  std::mt19937_64 rng(42);
  const auto tree = cat::make_balanced_binary(height, entries,
                                              cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(tree);
  const auto cs = coop::CoopStructure::build(s);
  auto flat_e = serve::FlatCascade::compile(s);
  if (!flat_e.ok()) {
    std::fprintf(stderr, "error: %s\n", flat_e.status().to_string().c_str());
    return 1;
  }
  const serve::FlatCascade flat = flat_e.take();
  std::fprintf(stderr, "arena: %.1f MiB for %zu augmented entries\n",
              double(flat.arena_bytes()) / (1024.0 * 1024.0),
              flat.total_entries());

  std::vector<serve::PathQuery> queries(num_queries);
  for (auto& q : queries) {
    std::vector<cat::NodeId> path{tree.root()};
    while (!tree.is_leaf(path.back())) {
      const auto kids = tree.children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    q.path = std::move(path);
    q.y = cat::Key(rng() % 1'000'000'000);
  }

  // Differential gate first: every serving-mode answer is defined by the
  // sequential oracle — including the grouped kernel under BOTH simd
  // dispatches, so a dispatch-dependent wrong answer can never post a
  // throughput number.
  bool equal = true;
  const std::size_t check = std::min<std::size_t>(500, num_queries);
  std::vector<serve::PathAnswer> grouped(check), grouped_scalar(check);
  serve::search_paths_grouped(flat, queries.data(), check, grouped.data());
  {
    ForcedDispatch scalar(true);
    serve::search_paths_grouped(flat, queries.data(), check,
                                grouped_scalar.data());
  }
  serve::PathAnswerSet flat_set;
  {
    serve::QueryEngine eng1(1);
    (void)serve::serve_path_queries_flat(
        flat, eng1, std::span<const serve::PathQuery>(queries).first(check),
        flat_set);
  }
  for (std::size_t qi = 0; qi < check && equal; ++qi) {
    const auto oracle = fc::search_explicit(s, queries[qi].path, queries[qi].y);
    const auto got = flat.search(queries[qi].path, queries[qi].y);
    pram::Machine m(sim_p);
    const auto sim = coop::coop_search_explicit(cs, m, queries[qi].path,
                                                queries[qi].y);
    for (std::size_t i = 0; i < queries[qi].path.size(); ++i) {
      if (got.proper_index[i] != oracle.proper_index[i] ||
          sim.proper_index[i] != oracle.proper_index[i] ||
          grouped[qi].proper_index[i] != oracle.proper_index[i] ||
          grouped[qi].aug_index[i] != oracle.aug_index[i] ||
          grouped_scalar[qi].proper_index[i] != oracle.proper_index[i] ||
          grouped_scalar[qi].aug_index[i] != oracle.aug_index[i] ||
          flat_set.proper(qi)[i] != oracle.proper_index[i] ||
          flat_set.aug(qi)[i] != oracle.aug_index[i]) {
        equal = false;
      }
    }
  }

  std::vector<Row> rows;
  const double min_sec = o.smoke ? 0.2 : 0.5;

  rows.push_back(make_row("simulator", 1,
                  measure(num_queries, 50, min_sec,
                              [&](std::size_t at, std::size_t c) {
                                for (std::size_t qi = at; qi < at + c; ++qi) {
                                  pram::Machine m(sim_p);
                                  (void)coop::coop_search_explicit(
                                      cs, m, queries[qi].path, queries[qi].y);
                                }
                              })));
  rows.push_back(make_row("fc_sequential", 1,
                  measure(num_queries, 200, min_sec,
                              [&](std::size_t at, std::size_t c) {
                                for (std::size_t qi = at; qi < at + c; ++qi) {
                                  (void)fc::search_explicit(
                                      s, queries[qi].path, queries[qi].y);
                                }
                              })));
  {
    // One query at a time: reused output buffers, no allocation — the
    // serving latency per query (each hop's cache miss serializes).
    std::vector<std::uint32_t> aug(height + 2), prop(height + 2);
    rows.push_back(make_row("flat_single", 1,
                    measure(num_queries, 1000, min_sec,
                                [&](std::size_t at, std::size_t c) {
                                  for (std::size_t qi = at; qi < at + c;
                                       ++qi) {
                                    flat.search_path(queries[qi].path,
                                                     queries[qi].y, aug.data(),
                                                     prop.data());
                                  }
                                })));
  }
  {
    // The engine's single-thread kernel: lockstep groups overlap the
    // per-hop misses across 16 queries — the flat engine's throughput,
    // under the runtime-chosen simd dispatch.
    std::vector<serve::PathAnswer> chunk_out(1000);
    rows.push_back(
        make_row("flat", 1,
         measure(num_queries, 1000, min_sec,
                     [&](std::size_t at, std::size_t c) {
                       serve::search_paths_grouped(flat, queries.data() + at,
                                                   c, chunk_out.data());
                     })));
    // The same kernel pinned to each dispatch: flat_scalar isolates the
    // memory-layout + pipelining win, flat_simd (only where avx2 exists)
    // adds the vector rank step — the delta between them is the pure
    // SIMD contribution.
    {
      ForcedDispatch scalar(true);
      rows.push_back(
          make_row("flat_scalar", 1,
           measure(num_queries, 1000, min_sec,
                       [&](std::size_t at, std::size_t c) {
                         serve::search_paths_grouped(flat, queries.data() + at,
                                                     c, chunk_out.data());
                       })));
    }
    if (serve::simd::dispatch_is_avx2()) {
      rows.push_back(
          make_row("flat_simd", 1,
           measure(num_queries, 1000, min_sec,
                       [&](std::size_t at, std::size_t c) {
                         serve::search_paths_grouped(flat, queries.data() + at,
                                                     c, chunk_out.data());
                       })));
    }
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    serve::QueryEngine engine(threads);
    serve::PathAnswerSet out;
    rows.push_back(
        make_row("flat_batch", threads,
         measure(num_queries, num_queries, min_sec,
                     [&](std::size_t, std::size_t) {
                       (void)serve::serve_path_queries_flat(flat, engine,
                                                            queries, out);
                     })));
  }

  double flat_qps = 0, sim_qps = 0;
  for (const auto& r : rows) {
    if (r.mode == "flat") flat_qps = r.qps;
    if (r.mode == "simulator") sim_qps = r.qps;
  }
  const double speedup = flat_qps / sim_qps;
  print_rows(rows);
  const bool scaling_ok = check_thread_scaling(rows);
  std::fprintf(stderr,
              "flat vs simulator (single thread): %.1fx; answers equal: %s\n",
              speedup, equal ? "yes" : "NO");
  write_json(o, "serve_paths", entries, num_queries, rows, speedup, equal);
  return equal && scaling_ok ? 0 : 1;
}

/// bench_pointloc --json: point-location throughput, simulator vs flat.
inline int run_pointloc_compare(const Options& o) {
  const std::size_t regions = o.smoke ? 256 : 4096;
  const std::size_t bands = o.smoke ? 32 : 64;
  const std::size_t num_queries =
      o.queries != 0 ? o.queries : (o.smoke ? 2000 : 20000);
  const std::size_t sim_p = 16;

  std::fprintf(stderr, "building: %zu regions x %zu bands...\n", regions, bands);
  std::mt19937_64 rng(7);
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  const pointloc::SeparatorTree st(sub);
  auto loc_e = serve::FlatPointLocator::compile(st);
  if (!loc_e.ok()) {
    std::fprintf(stderr, "error: %s\n", loc_e.status().to_string().c_str());
    return 1;
  }
  const serve::FlatPointLocator loc = loc_e.take();
  std::fprintf(stderr, "subdivision: %zu edges; arena %.1f MiB\n", sub.edges.size(),
              double(loc.arena_bytes()) / (1024.0 * 1024.0));

  std::vector<geom::Point> queries(num_queries);
  for (auto& q : queries) {
    q = geom::random_query_point(sub, rng);
  }

  bool equal = true;
  const std::size_t check = std::min<std::size_t>(200, num_queries);
  for (std::size_t qi = 0; qi < check && equal; ++qi) {
    const std::size_t expect = st.locate(queries[qi]);
    pram::Machine m(sim_p);
    if (loc.locate(queries[qi]) != expect ||
        pointloc::coop_locate(st, m, queries[qi]) != expect ||
        sub.locate_brute(queries[qi]) != expect) {
      equal = false;
    }
    // Same point under the scalar kernel: locate() descends find(), so
    // this pins both dispatches to the brute-force geometry oracle.
    ForcedDispatch scalar(true);
    if (loc.locate(queries[qi]) != expect) {
      equal = false;
    }
  }

  std::vector<Row> rows;
  const double min_sec = o.smoke ? 0.2 : 0.5;
  rows.push_back(make_row("simulator", 1,
                  measure(num_queries, 50, min_sec,
                              [&](std::size_t at, std::size_t c) {
                                for (std::size_t qi = at; qi < at + c; ++qi) {
                                  pram::Machine m(sim_p);
                                  (void)pointloc::coop_locate(st, m,
                                                              queries[qi]);
                                }
                              })));
  rows.push_back(make_row("septree_seq", 1,
                  measure(num_queries, 200, min_sec,
                              [&](std::size_t at, std::size_t c) {
                                for (std::size_t qi = at; qi < at + c; ++qi) {
                                  (void)st.locate(queries[qi]);
                                }
                              })));
  rows.push_back(make_row("flat", 1,
                  measure(num_queries, 1000, min_sec,
                              [&](std::size_t at, std::size_t c) {
                                for (std::size_t qi = at; qi < at + c; ++qi) {
                                  (void)loc.locate(queries[qi]);
                                }
                              })));
  {
    ForcedDispatch scalar(true);
    rows.push_back(make_row("flat_scalar", 1,
                    measure(num_queries, 1000, min_sec,
                                [&](std::size_t at, std::size_t c) {
                                  for (std::size_t qi = at; qi < at + c;
                                       ++qi) {
                                    (void)loc.locate(queries[qi]);
                                  }
                                })));
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    serve::QueryEngine engine(threads);
    std::vector<std::size_t> out;
    rows.push_back(
        make_row("flat_batch", threads,
         measure(num_queries, num_queries, min_sec,
                     [&](std::size_t, std::size_t) {
                       (void)serve::serve_point_queries(loc, engine, queries,
                                                        out);
                     })));
  }

  const double speedup = rows[2].qps / rows[0].qps;
  print_rows(rows);
  const bool scaling_ok = check_thread_scaling(rows);
  std::fprintf(stderr,
              "flat vs simulator (single thread): %.1fx; answers equal: %s\n",
              speedup, equal ? "yes" : "NO");
  write_json(o, "serve_pointloc", sub.edges.size(), num_queries, rows, speedup,
             equal);
  return equal && scaling_ok ? 0 : 1;
}

}  // namespace serve_bench
