// Spatial point location in a stacked-layer model (Theorem 5 /
// Corollary 1): a geological volume of stratified layers — which stratum
// contains each borehole sample point?
//
//   $ ./examples/geology_spatial [layers] [regions] [samples]

#include <cstdio>
#include <random>

#include "pointloc/spatial.hpp"

int main(int argc, char** argv) {
  const std::size_t layers = argc > 1 ? std::size_t(atoll(argv[1])) : 64;
  const std::size_t regions = argc > 2 ? std::size_t(atoll(argv[2])) : 32;
  const std::size_t samples = argc > 3 ? std::size_t(atoll(argv[3])) : 300;

  std::mt19937_64 rng(17);
  std::printf("generating %zu stacked stratum surfaces over a %zu-region "
              "footprint...\n", layers, regions);
  const auto volume = geom::make_terrain_complex(layers, regions, 12, rng);
  std::printf("  %zu cells, %zu facets (the paper's n)\n", volume.num_cells(),
              volume.num_facets());

  const pointloc::SpatialTree st(volume);

  std::vector<geom::Point3> pts;
  for (std::size_t i = 0; i < samples; ++i) {
    pts.push_back(geom::random_query_point3(volume, rng));
  }

  // Sequential reference (O(log S * log n), like the paper's canal-tree
  // comparison) and the cooperative sweep.
  std::size_t mismatches = 0;
  for (const auto& q : pts) {
    if (st.locate(q) != volume.locate_brute(q)) {
      ++mismatches;
    }
  }
  std::printf("sequential: %zu mismatches\n", mismatches);

  std::printf("\n%8s %12s %10s   (cooperative spatial location)\n", "p",
              "steps/query", "outer hops");
  for (std::size_t p : {4, 64, 1024, 16384}) {
    std::uint64_t steps = 0, hops = 0;
    std::size_t bad = 0;
    for (const auto& q : pts) {
      pram::Machine m(p);
      std::uint64_t h = 0;
      if (st.coop_locate(m, q, &h) != volume.locate_brute(q)) {
        ++bad;
      }
      steps += m.stats().steps;
      hops += h;
    }
    std::printf("%8zu %12.1f %10.1f   %s\n", p,
                double(steps) / double(samples),
                double(hops) / double(samples),
                bad == 0 ? "all correct" : "MISMATCHES!");
  }

  // Depth profile along one borehole: cells must be monotone in z.
  const auto q2 = geom::random_query_point(volume.footprint, rng);
  std::printf("\nborehole at (%lld, %lld):\n", (long long)q2.x,
              (long long)q2.y);
  std::size_t prev = 0;
  pram::Machine m(256);
  for (geom::Coord z = 1; z < geom::Coord((layers + 2) * 1000);
       z += geom::Coord(layers * 250)) {
    const auto cell = st.coop_locate(m, geom::Point3{q2.x, q2.y, z | 1});
    if (cell < prev) {
      std::printf("  NON-MONOTONE at z=%lld!\n", (long long)z);
      return 1;
    }
    prev = cell;
  }
  std::printf("  stratum index is monotone in depth: OK\n");
  return 0;
}
