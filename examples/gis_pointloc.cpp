// GIS-style point location (the paper's Section 1 motivation): locate a
// batch of query points in a map-like monotone subdivision, comparing the
// sequential bridged separator tree against cooperative point location.
//
//   $ ./examples/gis_pointloc [regions] [bands] [queries]

#include <cstdio>
#include <random>

#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"

int main(int argc, char** argv) {
  const std::size_t regions = argc > 1 ? std::size_t(atoll(argv[1])) : 1024;
  const std::size_t bands = argc > 2 ? std::size_t(atoll(argv[2])) : 64;
  const std::size_t queries = argc > 3 ? std::size_t(atoll(argv[3])) : 1000;

  std::mt19937_64 rng(7);
  std::printf("generating a monotone 'map' with %zu regions, %zu bands...\n",
              regions, bands);
  const auto map = geom::make_random_monotone(regions, bands, rng);
  std::printf("  %zu edges; validation: %s\n", map.edges.size(),
              map.validate().empty() ? "OK" : map.validate().c_str());

  std::size_t shared = 0;
  for (const auto& e : map.edges) {
    if (e.max_sep > e.min_sep) {
      ++shared;
    }
  }
  std::printf("  %zu edges shared by several separators (%.0f%%) — these "
              "create the inactive nodes of Section 3\n",
              shared, 100.0 * double(shared) / double(map.edges.size()));

  std::printf("building the bridged separator tree...\n");
  const pointloc::SeparatorTree st(map);
  std::printf("  total structure: %zu entries (%.2fx the edge count)\n\n",
              st.total_entries(),
              double(st.total_entries()) / double(map.edges.size()));

  // Batch of queries: every mode must agree with the brute-force oracle.
  std::vector<geom::Point> pts;
  pts.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    pts.push_back(geom::random_query_point(map, rng));
  }

  std::uint64_t seq_cost = 0;
  std::size_t mismatches = 0;
  for (const auto& q : pts) {
    fc::SearchStats stats;
    const std::size_t got = st.locate(q, &stats);
    seq_cost += stats.comparisons + stats.bridge_walks;
    if (got != map.locate_brute(q)) {
      ++mismatches;
    }
  }
  std::printf("sequential: %.1f comparisons/query, %zu mismatches\n",
              double(seq_cost) / double(queries), mismatches);

  std::printf("\n%8s %12s %8s   (cooperative point location)\n", "p",
              "steps/query", "hops");
  for (std::size_t p : {1, 16, 256, 4096, 65536}) {
    std::uint64_t steps = 0, hops = 0;
    std::size_t bad = 0;
    for (const auto& q : pts) {
      pram::Machine m(p);
      std::uint64_t h = 0;
      const std::size_t got = pointloc::coop_locate(st, m, q, &h);
      steps += m.stats().steps;
      hops += h;
      if (got != map.locate_brute(q)) {
        ++bad;
      }
    }
    std::printf("%8zu %12.1f %8.1f   %s\n", p,
                double(steps) / double(queries),
                double(hops) / double(queries),
                bad == 0 ? "all correct" : "MISMATCHES!");
  }
  return 0;
}
