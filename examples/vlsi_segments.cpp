// VLSI-style orthogonal segment intersection (Theorem 6): vertical wire
// segments on a chip; horizontal scan queries report every wire crossed.
// Demonstrates both retrieval modes: direct (materialize the ids) and
// indirect (hand back the linked list of catalog ranges).
//
//   $ ./examples/vlsi_segments [wires] [queries]

#include <cstdio>
#include <random>

#include "range/segment_tree.hpp"

int main(int argc, char** argv) {
  const std::size_t wires = argc > 1 ? std::size_t(atoll(argv[1])) : 20000;
  const std::size_t queries = argc > 2 ? std::size_t(atoll(argv[2])) : 200;

  std::mt19937_64 rng(11);
  std::vector<range::VSegment> segs;
  segs.reserve(wires);
  // Wires cluster into "channels" like routed nets.
  for (std::size_t i = 0; i < wires; ++i) {
    const geom::Coord channel = geom::Coord(rng() % 64) * 32'000;
    const geom::Coord x = channel + geom::Coord(rng() % 16'000) * 2;
    const geom::Coord ylo = geom::Coord(rng() % 400'000) * 2;
    const geom::Coord len = 2 + geom::Coord(rng() % 150'000) * 2;
    segs.push_back(range::VSegment{x, ylo, ylo + len});
  }
  std::printf("building the segment tree over %zu wires...\n", wires);
  const range::SegmentIntersectionTree t(std::move(segs));

  std::uint64_t direct_steps = 0, indirect_steps = 0, reported = 0;
  std::size_t mismatches = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const geom::Coord y = 2 * geom::Coord(rng() % 500'000) + 1;
    const geom::Coord x1 = 2 * geom::Coord(rng() % 1'000'000);
    const geom::Coord x2 = x1 + 2 * geom::Coord(rng() % 800'000);

    // Direct retrieval on a CREW machine.
    pram::Machine direct_m(1024);
    const auto ranges = t.coop_query_ranges(direct_m, y, x1, x2);
    auto ids = range::retrieve_direct(t.tree(), direct_m, ranges);
    direct_steps += direct_m.stats().steps;

    // Indirect retrieval on a CRCW machine (never touches the items).
    pram::Machine indirect_m(1024, pram::Model::kCrcw);
    const auto ranges2 = t.coop_query_ranges(indirect_m, y, x1, x2);
    const auto list = range::retrieve_indirect(indirect_m, ranges2);
    indirect_steps += indirect_m.stats().steps;

    auto expect = t.query_brute(y, x1, x2);
    std::sort(ids.begin(), ids.end());
    std::sort(expect.begin(), expect.end());
    if (ids != expect || range::total_count(list) != expect.size()) {
      ++mismatches;
    }
    reported += ids.size();
  }
  std::printf("%zu queries, avg %.1f wires reported each, %zu mismatches\n",
              queries, double(reported) / double(queries), mismatches);
  std::printf("  direct   (CREW, p=1024): %.1f steps/query (includes k/p "
              "for touching every id)\n",
              double(direct_steps) / double(queries));
  std::printf("  indirect (CRCW, p=1024): %.1f steps/query (k-independent "
              "range list)\n",
              double(indirect_steps) / double(queries));
  return mismatches == 0 ? 0 : 1;
}
