// Event analytics with orthogonal range reporting (Theorem 6 /
// Corollary 2): events carry (timestamp, latency, size); dashboards ask
// "events in this time window with latency in [a,b]" (2D) and the same
// with a size band (3D).
//
//   $ ./examples/timeseries_range [events] [queries]

#include <algorithm>
#include <cstdio>
#include <random>

#include "range/range_tree.hpp"

int main(int argc, char** argv) {
  const std::size_t events = argc > 1 ? std::size_t(atoll(argv[1])) : 8192;
  const std::size_t queries = argc > 2 ? std::size_t(atoll(argv[2])) : 100;

  std::mt19937_64 rng(13);
  std::vector<range::Point2> ev2;
  std::vector<range::RangeTree3D::Point3> ev3;
  for (std::size_t i = 0; i < events; ++i) {
    const geom::Coord ts = geom::Coord(i) * 7 + geom::Coord(rng() % 7);
    // Latency: log-normal-ish spikes.
    const geom::Coord lat =
        geom::Coord(50 + rng() % 100 + (rng() % 20 == 0 ? rng() % 5000 : 0));
    const geom::Coord size = geom::Coord(rng() % 100000);
    ev2.push_back(range::Point2{ts, lat});
    ev3.push_back({ts, lat, size});
  }
  const geom::Coord horizon = geom::Coord(events) * 7;

  std::printf("indexing %zu events (2D range tree + 3D range tree)...\n",
              events);
  const range::RangeTree2D t2(std::move(ev2));
  const range::RangeTree3D t3(std::move(ev3));

  std::size_t mismatches = 0;
  std::uint64_t steps2 = 0, k2 = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const geom::Coord w0 = geom::Coord(rng() % std::max<geom::Coord>(1, horizon));
    const geom::Coord w1 = w0 + horizon / 10;
    const geom::Coord lat_lo = geom::Coord(rng() % 200);
    const geom::Coord lat_hi = lat_lo + 100 + geom::Coord(rng() % 5000);
    pram::Machine m(256);
    const auto ranges = t2.coop_query_ranges(m, w0, w1, lat_lo, lat_hi);
    auto got = range::retrieve_direct(t2.tree(), m, ranges);
    auto expect = t2.query_brute(w0, w1, lat_lo, lat_hi);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    if (got != expect) {
      ++mismatches;
    }
    steps2 += m.stats().steps;
    k2 += got.size();
  }
  std::printf("2D window queries: avg %.1f events, %.1f PRAM steps (p=256), "
              "%zu mismatches\n",
              double(k2) / double(queries), double(steps2) / double(queries),
              mismatches);

  std::uint64_t steps3 = 0, k3 = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const geom::Coord w0 = geom::Coord(rng() % std::max<geom::Coord>(1, horizon));
    const geom::Coord w1 = w0 + horizon / 8;
    pram::Machine m(256);
    auto got = t3.coop_query(m, w0, w1, 0, 400, 10'000, 60'000);
    auto expect = t3.query_brute(w0, w1, 0, 400, 10'000, 60'000);
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    if (got != expect) {
      ++mismatches;
    }
    steps3 += m.stats().steps;
    k3 += got.size();
  }
  std::printf("3D box queries:    avg %.1f events, %.1f PRAM steps (p=256), "
              "%zu total mismatches\n",
              double(k3) / double(queries), double(steps3) / double(queries),
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
