// Quickstart: build a balanced tree of catalogs, preprocess it into the
// cooperative-search structure T' (Theorem 1), and run explicit and
// implicit cooperative searches with different processor counts.
//
//   $ ./examples/quickstart [height] [entries]

#include <cstdio>
#include <random>

#include "core/explicit_search.hpp"
#include "core/implicit_search.hpp"
#include "fc/parallel_build.hpp"
#include "fc/search.hpp"

int main(int argc, char** argv) {
  const std::uint32_t height = argc > 1 ? std::uint32_t(atoi(argv[1])) : 12;
  const std::size_t entries =
      argc > 2 ? std::size_t(atoll(argv[2])) : (std::size_t(1) << (height + 4));

  std::mt19937_64 rng(2026);
  std::printf("building a balanced binary tree: height %u, %zu catalog "
              "entries...\n", height, entries);
  const auto tree = cat::make_balanced_binary(
      height, entries, cat::CatalogShape::kRandom, rng);

  // Step 1 of preprocessing: the fractional cascaded structure S.
  const auto s = fc::Structure::build(tree);
  std::printf("fractional cascading: %zu augmented entries (b = %u), "
              "properties: %s\n",
              s.total_aug_entries(), s.fanout_bound(),
              s.verify_properties().empty() ? "OK" : "VIOLATED");

  // Step 2: the substructures T_i.
  const auto cs = coop::CoopStructure::build(s);
  std::printf("T' built: %u substructures, %zu skeleton entries "
              "(%.2fx the input)\n\n",
              cs.substructure_count(), cs.total_skeleton_entries(),
              double(cs.total_entries()) / double(entries));

  // A query: find the successor of y in every catalog on a random
  // root-to-leaf path.
  std::vector<cat::NodeId> path{tree.root()};
  while (!tree.is_leaf(path.back())) {
    path.push_back(tree.children(path.back())[rng() % 2]);
  }
  const cat::Key y = cat::Key(rng() % 1'000'000'000);

  // Sequential reference (Chazelle-Guibas walk).
  fc::SearchStats seq_stats;
  const auto seq = fc::search_explicit(s, path, y, &seq_stats);
  std::printf("sequential FC search: %llu comparisons + %llu bridge walks\n",
              (unsigned long long)seq_stats.comparisons,
              (unsigned long long)seq_stats.bridge_walks);

  std::printf("\n%8s %10s %10s %6s %8s  (explicit cooperative search)\n",
              "p", "steps", "work", "hops", "T_i");
  for (std::size_t p : {1, 4, 16, 256, 4096, 65536}) {
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    if (r.proper_index != seq.proper_index) {
      std::printf("MISMATCH at p=%zu!\n", p);
      return 1;
    }
    std::printf("%8zu %10llu %10llu %6llu %8u\n", p,
                (unsigned long long)m.stats().steps,
                (unsigned long long)m.stats().work,
                (unsigned long long)r.hops, r.substructure_used);
  }

  // Implicit search: the branch at each node is a secondary comparison.
  // Here: a binary search tree over per-node split keys assigned by
  // inorder position (this satisfies the paper's consistency assumption:
  // off-path nodes always point towards the path).
  std::printf("\nimplicit search (branch decided at each node):\n");
  std::vector<cat::Key> split(tree.num_nodes());
  {
    std::vector<std::pair<cat::NodeId, int>> stack{{tree.root(), 0}};
    cat::Key next = 0;
    while (!stack.empty()) {
      auto& [v, st] = stack.back();
      if (st == 0) {
        st = 1;
        if (!tree.is_leaf(v)) {
          stack.push_back({tree.children(v)[0], 0});
          continue;
        }
      }
      if (st == 1) {
        split[v] = (next += 100);
        st = 2;
        if (!tree.is_leaf(v)) {
          stack.push_back({tree.children(v)[1], 0});
          continue;
        }
      }
      stack.pop_back();
    }
  }
  const cat::Key x = cat::Key(rng() % (tree.num_nodes() * 100));
  const auto branch = [&](cat::NodeId v, std::size_t) -> std::uint32_t {
    return x <= split[v] ? 0u : 1u;
  };
  pram::Machine m(256);
  const auto r = coop::coop_search_implicit(cs, m, y, branch);
  std::printf("  reached leaf %d in %llu steps; find(y, leaf) = catalog "
              "position %zu\n",
              r.path.back(), (unsigned long long)m.stats().steps,
              r.proper_index.back());
  std::printf("\nall searches agree with the brute-force oracle.\n");
  return 0;
}
