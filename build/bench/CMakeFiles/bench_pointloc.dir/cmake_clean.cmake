file(REMOVE_RECURSE
  "CMakeFiles/bench_pointloc.dir/bench_pointloc.cpp.o"
  "CMakeFiles/bench_pointloc.dir/bench_pointloc.cpp.o.d"
  "bench_pointloc"
  "bench_pointloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pointloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
