# Empty dependencies file for bench_pointloc.
# This may be replaced when dependencies are built.
