# Empty compiler generated dependencies file for bench_coop_implicit.
# This may be replaced when dependencies are built.
