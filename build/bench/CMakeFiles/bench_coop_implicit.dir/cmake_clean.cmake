file(REMOVE_RECURSE
  "CMakeFiles/bench_coop_implicit.dir/bench_coop_implicit.cpp.o"
  "CMakeFiles/bench_coop_implicit.dir/bench_coop_implicit.cpp.o.d"
  "bench_coop_implicit"
  "bench_coop_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coop_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
