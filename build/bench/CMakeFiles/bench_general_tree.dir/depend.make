# Empty dependencies file for bench_general_tree.
# This may be replaced when dependencies are built.
