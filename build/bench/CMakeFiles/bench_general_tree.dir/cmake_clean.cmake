file(REMOVE_RECURSE
  "CMakeFiles/bench_general_tree.dir/bench_general_tree.cpp.o"
  "CMakeFiles/bench_general_tree.dir/bench_general_tree.cpp.o.d"
  "bench_general_tree"
  "bench_general_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
