file(REMOVE_RECURSE
  "CMakeFiles/bench_dd_range.dir/bench_dd_range.cpp.o"
  "CMakeFiles/bench_dd_range.dir/bench_dd_range.cpp.o.d"
  "bench_dd_range"
  "bench_dd_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dd_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
