# Empty dependencies file for bench_dd_range.
# This may be replaced when dependencies are built.
