# Empty dependencies file for bench_degree.
# This may be replaced when dependencies are built.
