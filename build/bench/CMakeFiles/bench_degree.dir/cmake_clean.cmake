file(REMOVE_RECURSE
  "CMakeFiles/bench_degree.dir/bench_degree.cpp.o"
  "CMakeFiles/bench_degree.dir/bench_degree.cpp.o.d"
  "bench_degree"
  "bench_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
