# Empty compiler generated dependencies file for bench_coop_explicit.
# This may be replaced when dependencies are built.
