file(REMOVE_RECURSE
  "CMakeFiles/bench_coop_explicit.dir/bench_coop_explicit.cpp.o"
  "CMakeFiles/bench_coop_explicit.dir/bench_coop_explicit.cpp.o.d"
  "bench_coop_explicit"
  "bench_coop_explicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coop_explicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
