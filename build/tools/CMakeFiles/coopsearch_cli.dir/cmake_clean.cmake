file(REMOVE_RECURSE
  "CMakeFiles/coopsearch_cli.dir/coopsearch_cli.cpp.o"
  "CMakeFiles/coopsearch_cli.dir/coopsearch_cli.cpp.o.d"
  "coopsearch_cli"
  "coopsearch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coopsearch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
