# Empty compiler generated dependencies file for coopsearch_cli.
# This may be replaced when dependencies are built.
