# Empty compiler generated dependencies file for vlsi_segments.
# This may be replaced when dependencies are built.
