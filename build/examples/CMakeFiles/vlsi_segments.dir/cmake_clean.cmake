file(REMOVE_RECURSE
  "CMakeFiles/vlsi_segments.dir/vlsi_segments.cpp.o"
  "CMakeFiles/vlsi_segments.dir/vlsi_segments.cpp.o.d"
  "vlsi_segments"
  "vlsi_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsi_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
