file(REMOVE_RECURSE
  "CMakeFiles/geology_spatial.dir/geology_spatial.cpp.o"
  "CMakeFiles/geology_spatial.dir/geology_spatial.cpp.o.d"
  "geology_spatial"
  "geology_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geology_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
