# Empty dependencies file for geology_spatial.
# This may be replaced when dependencies are built.
