
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/geology_spatial.cpp" "examples/CMakeFiles/geology_spatial.dir/geology_spatial.cpp.o" "gcc" "examples/CMakeFiles/geology_spatial.dir/geology_spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pram/CMakeFiles/pram.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/fc/CMakeFiles/fc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coop.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pointloc/CMakeFiles/pointloc.dir/DependInfo.cmake"
  "/root/repo/build/src/range/CMakeFiles/range.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
