file(REMOVE_RECURSE
  "CMakeFiles/timeseries_range.dir/timeseries_range.cpp.o"
  "CMakeFiles/timeseries_range.dir/timeseries_range.cpp.o.d"
  "timeseries_range"
  "timeseries_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
