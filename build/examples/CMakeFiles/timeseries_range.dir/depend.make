# Empty dependencies file for timeseries_range.
# This may be replaced when dependencies are built.
