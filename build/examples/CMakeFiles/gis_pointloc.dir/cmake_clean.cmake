file(REMOVE_RECURSE
  "CMakeFiles/gis_pointloc.dir/gis_pointloc.cpp.o"
  "CMakeFiles/gis_pointloc.dir/gis_pointloc.cpp.o.d"
  "gis_pointloc"
  "gis_pointloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_pointloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
