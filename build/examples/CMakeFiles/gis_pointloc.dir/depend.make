# Empty dependencies file for gis_pointloc.
# This may be replaced when dependencies are built.
