# Empty compiler generated dependencies file for catalog.
# This may be replaced when dependencies are built.
