file(REMOVE_RECURSE
  "CMakeFiles/catalog.dir/tree.cpp.o"
  "CMakeFiles/catalog.dir/tree.cpp.o.d"
  "CMakeFiles/catalog.dir/tree_ops.cpp.o"
  "CMakeFiles/catalog.dir/tree_ops.cpp.o.d"
  "libcatalog.a"
  "libcatalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
