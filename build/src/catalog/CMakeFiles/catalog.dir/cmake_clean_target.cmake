file(REMOVE_RECURSE
  "libcatalog.a"
)
