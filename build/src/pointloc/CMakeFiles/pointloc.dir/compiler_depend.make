# Empty compiler generated dependencies file for pointloc.
# This may be replaced when dependencies are built.
