file(REMOVE_RECURSE
  "libpointloc.a"
)
