file(REMOVE_RECURSE
  "CMakeFiles/pointloc.dir/coop_pointloc.cpp.o"
  "CMakeFiles/pointloc.dir/coop_pointloc.cpp.o.d"
  "CMakeFiles/pointloc.dir/separator_tree.cpp.o"
  "CMakeFiles/pointloc.dir/separator_tree.cpp.o.d"
  "CMakeFiles/pointloc.dir/slab_index.cpp.o"
  "CMakeFiles/pointloc.dir/slab_index.cpp.o.d"
  "CMakeFiles/pointloc.dir/spatial.cpp.o"
  "CMakeFiles/pointloc.dir/spatial.cpp.o.d"
  "libpointloc.a"
  "libpointloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
