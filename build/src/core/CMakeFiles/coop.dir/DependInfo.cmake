
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/coop.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/batch.cpp.o.d"
  "/root/repo/src/core/explicit_search.cpp" "src/core/CMakeFiles/coop.dir/explicit_search.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/explicit_search.cpp.o.d"
  "/root/repo/src/core/general_tree.cpp" "src/core/CMakeFiles/coop.dir/general_tree.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/general_tree.cpp.o.d"
  "/root/repo/src/core/implicit_search.cpp" "src/core/CMakeFiles/coop.dir/implicit_search.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/implicit_search.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/coop.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/params.cpp.o.d"
  "/root/repo/src/core/structure.cpp" "src/core/CMakeFiles/coop.dir/structure.cpp.o" "gcc" "src/core/CMakeFiles/coop.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fc/CMakeFiles/fc.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
