# Empty compiler generated dependencies file for coop.
# This may be replaced when dependencies are built.
