file(REMOVE_RECURSE
  "CMakeFiles/coop.dir/batch.cpp.o"
  "CMakeFiles/coop.dir/batch.cpp.o.d"
  "CMakeFiles/coop.dir/explicit_search.cpp.o"
  "CMakeFiles/coop.dir/explicit_search.cpp.o.d"
  "CMakeFiles/coop.dir/general_tree.cpp.o"
  "CMakeFiles/coop.dir/general_tree.cpp.o.d"
  "CMakeFiles/coop.dir/implicit_search.cpp.o"
  "CMakeFiles/coop.dir/implicit_search.cpp.o.d"
  "CMakeFiles/coop.dir/params.cpp.o"
  "CMakeFiles/coop.dir/params.cpp.o.d"
  "CMakeFiles/coop.dir/structure.cpp.o"
  "CMakeFiles/coop.dir/structure.cpp.o.d"
  "libcoop.a"
  "libcoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
