
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/range/point_enclosure.cpp" "src/range/CMakeFiles/range.dir/point_enclosure.cpp.o" "gcc" "src/range/CMakeFiles/range.dir/point_enclosure.cpp.o.d"
  "/root/repo/src/range/range_tree.cpp" "src/range/CMakeFiles/range.dir/range_tree.cpp.o" "gcc" "src/range/CMakeFiles/range.dir/range_tree.cpp.o.d"
  "/root/repo/src/range/range_tree_kd.cpp" "src/range/CMakeFiles/range.dir/range_tree_kd.cpp.o" "gcc" "src/range/CMakeFiles/range.dir/range_tree_kd.cpp.o.d"
  "/root/repo/src/range/retrieval.cpp" "src/range/CMakeFiles/range.dir/retrieval.cpp.o" "gcc" "src/range/CMakeFiles/range.dir/retrieval.cpp.o.d"
  "/root/repo/src/range/segment_tree.cpp" "src/range/CMakeFiles/range.dir/segment_tree.cpp.o" "gcc" "src/range/CMakeFiles/range.dir/segment_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/geom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coop.dir/DependInfo.cmake"
  "/root/repo/build/src/fc/CMakeFiles/fc.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
