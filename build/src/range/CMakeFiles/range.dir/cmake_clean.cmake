file(REMOVE_RECURSE
  "CMakeFiles/range.dir/point_enclosure.cpp.o"
  "CMakeFiles/range.dir/point_enclosure.cpp.o.d"
  "CMakeFiles/range.dir/range_tree.cpp.o"
  "CMakeFiles/range.dir/range_tree.cpp.o.d"
  "CMakeFiles/range.dir/range_tree_kd.cpp.o"
  "CMakeFiles/range.dir/range_tree_kd.cpp.o.d"
  "CMakeFiles/range.dir/retrieval.cpp.o"
  "CMakeFiles/range.dir/retrieval.cpp.o.d"
  "CMakeFiles/range.dir/segment_tree.cpp.o"
  "CMakeFiles/range.dir/segment_tree.cpp.o.d"
  "librange.a"
  "librange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
