# Empty compiler generated dependencies file for range.
# This may be replaced when dependencies are built.
