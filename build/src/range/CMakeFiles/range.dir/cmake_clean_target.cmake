file(REMOVE_RECURSE
  "librange.a"
)
