file(REMOVE_RECURSE
  "CMakeFiles/pram.dir/coop_search.cpp.o"
  "CMakeFiles/pram.dir/coop_search.cpp.o.d"
  "CMakeFiles/pram.dir/machine.cpp.o"
  "CMakeFiles/pram.dir/machine.cpp.o.d"
  "CMakeFiles/pram.dir/primitives.cpp.o"
  "CMakeFiles/pram.dir/primitives.cpp.o.d"
  "libpram.a"
  "libpram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
