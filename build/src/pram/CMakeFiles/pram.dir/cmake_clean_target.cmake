file(REMOVE_RECURSE
  "libpram.a"
)
