# Empty compiler generated dependencies file for pram.
# This may be replaced when dependencies are built.
