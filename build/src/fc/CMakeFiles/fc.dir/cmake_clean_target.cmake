file(REMOVE_RECURSE
  "libfc.a"
)
