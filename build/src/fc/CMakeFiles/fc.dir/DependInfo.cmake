
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fc/build.cpp" "src/fc/CMakeFiles/fc.dir/build.cpp.o" "gcc" "src/fc/CMakeFiles/fc.dir/build.cpp.o.d"
  "/root/repo/src/fc/dynamic.cpp" "src/fc/CMakeFiles/fc.dir/dynamic.cpp.o" "gcc" "src/fc/CMakeFiles/fc.dir/dynamic.cpp.o.d"
  "/root/repo/src/fc/parallel_build.cpp" "src/fc/CMakeFiles/fc.dir/parallel_build.cpp.o" "gcc" "src/fc/CMakeFiles/fc.dir/parallel_build.cpp.o.d"
  "/root/repo/src/fc/search.cpp" "src/fc/CMakeFiles/fc.dir/search.cpp.o" "gcc" "src/fc/CMakeFiles/fc.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
