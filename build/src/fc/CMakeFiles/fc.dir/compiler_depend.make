# Empty compiler generated dependencies file for fc.
# This may be replaced when dependencies are built.
