file(REMOVE_RECURSE
  "CMakeFiles/fc.dir/build.cpp.o"
  "CMakeFiles/fc.dir/build.cpp.o.d"
  "CMakeFiles/fc.dir/dynamic.cpp.o"
  "CMakeFiles/fc.dir/dynamic.cpp.o.d"
  "CMakeFiles/fc.dir/parallel_build.cpp.o"
  "CMakeFiles/fc.dir/parallel_build.cpp.o.d"
  "CMakeFiles/fc.dir/search.cpp.o"
  "CMakeFiles/fc.dir/search.cpp.o.d"
  "libfc.a"
  "libfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
