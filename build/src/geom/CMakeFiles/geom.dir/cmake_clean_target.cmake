file(REMOVE_RECURSE
  "libgeom.a"
)
