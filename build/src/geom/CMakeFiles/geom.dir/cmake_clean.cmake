file(REMOVE_RECURSE
  "CMakeFiles/geom.dir/generators.cpp.o"
  "CMakeFiles/geom.dir/generators.cpp.o.d"
  "CMakeFiles/geom.dir/subdivision.cpp.o"
  "CMakeFiles/geom.dir/subdivision.cpp.o.d"
  "libgeom.a"
  "libgeom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
