
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/generators.cpp" "src/geom/CMakeFiles/geom.dir/generators.cpp.o" "gcc" "src/geom/CMakeFiles/geom.dir/generators.cpp.o.d"
  "/root/repo/src/geom/subdivision.cpp" "src/geom/CMakeFiles/geom.dir/subdivision.cpp.o" "gcc" "src/geom/CMakeFiles/geom.dir/subdivision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
