file(REMOVE_RECURSE
  "CMakeFiles/test_integration_engines.dir/integration/test_engines_and_tuning.cpp.o"
  "CMakeFiles/test_integration_engines.dir/integration/test_engines_and_tuning.cpp.o.d"
  "test_integration_engines"
  "test_integration_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
