# Empty dependencies file for test_integration_engines.
# This may be replaced when dependencies are built.
