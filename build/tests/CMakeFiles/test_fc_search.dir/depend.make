# Empty dependencies file for test_fc_search.
# This may be replaced when dependencies are built.
