file(REMOVE_RECURSE
  "CMakeFiles/test_fc_search.dir/fc/test_search.cpp.o"
  "CMakeFiles/test_fc_search.dir/fc/test_search.cpp.o.d"
  "test_fc_search"
  "test_fc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
