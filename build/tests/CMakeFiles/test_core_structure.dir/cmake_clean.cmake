file(REMOVE_RECURSE
  "CMakeFiles/test_core_structure.dir/core/test_structure.cpp.o"
  "CMakeFiles/test_core_structure.dir/core/test_structure.cpp.o.d"
  "test_core_structure"
  "test_core_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
