file(REMOVE_RECURSE
  "CMakeFiles/test_range_retrieval.dir/range/test_retrieval.cpp.o"
  "CMakeFiles/test_range_retrieval.dir/range/test_retrieval.cpp.o.d"
  "test_range_retrieval"
  "test_range_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
