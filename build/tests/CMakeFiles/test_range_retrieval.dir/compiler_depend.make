# Empty compiler generated dependencies file for test_range_retrieval.
# This may be replaced when dependencies are built.
