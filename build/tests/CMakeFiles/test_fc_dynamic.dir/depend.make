# Empty dependencies file for test_fc_dynamic.
# This may be replaced when dependencies are built.
