file(REMOVE_RECURSE
  "CMakeFiles/test_fc_dynamic.dir/fc/test_dynamic.cpp.o"
  "CMakeFiles/test_fc_dynamic.dir/fc/test_dynamic.cpp.o.d"
  "test_fc_dynamic"
  "test_fc_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fc_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
