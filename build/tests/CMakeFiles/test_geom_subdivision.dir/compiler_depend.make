# Empty compiler generated dependencies file for test_geom_subdivision.
# This may be replaced when dependencies are built.
