file(REMOVE_RECURSE
  "CMakeFiles/test_geom_subdivision.dir/geom/test_subdivision.cpp.o"
  "CMakeFiles/test_geom_subdivision.dir/geom/test_subdivision.cpp.o.d"
  "test_geom_subdivision"
  "test_geom_subdivision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_subdivision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
