file(REMOVE_RECURSE
  "CMakeFiles/test_core_explicit.dir/core/test_explicit.cpp.o"
  "CMakeFiles/test_core_explicit.dir/core/test_explicit.cpp.o.d"
  "test_core_explicit"
  "test_core_explicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_explicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
