# Empty compiler generated dependencies file for test_core_explicit.
# This may be replaced when dependencies are built.
