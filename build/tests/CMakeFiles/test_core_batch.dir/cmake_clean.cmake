file(REMOVE_RECURSE
  "CMakeFiles/test_core_batch.dir/core/test_batch.cpp.o"
  "CMakeFiles/test_core_batch.dir/core/test_batch.cpp.o.d"
  "test_core_batch"
  "test_core_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
