# Empty dependencies file for test_core_batch.
# This may be replaced when dependencies are built.
