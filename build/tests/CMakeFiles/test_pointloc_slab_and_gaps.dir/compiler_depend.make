# Empty compiler generated dependencies file for test_pointloc_slab_and_gaps.
# This may be replaced when dependencies are built.
