file(REMOVE_RECURSE
  "CMakeFiles/test_pointloc_slab_and_gaps.dir/pointloc/test_slab_and_gaps.cpp.o"
  "CMakeFiles/test_pointloc_slab_and_gaps.dir/pointloc/test_slab_and_gaps.cpp.o.d"
  "test_pointloc_slab_and_gaps"
  "test_pointloc_slab_and_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointloc_slab_and_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
