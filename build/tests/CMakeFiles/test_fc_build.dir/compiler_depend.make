# Empty compiler generated dependencies file for test_fc_build.
# This may be replaced when dependencies are built.
