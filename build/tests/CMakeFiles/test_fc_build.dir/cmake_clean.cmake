file(REMOVE_RECURSE
  "CMakeFiles/test_fc_build.dir/fc/test_build.cpp.o"
  "CMakeFiles/test_fc_build.dir/fc/test_build.cpp.o.d"
  "test_fc_build"
  "test_fc_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fc_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
