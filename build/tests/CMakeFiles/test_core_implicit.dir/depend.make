# Empty dependencies file for test_core_implicit.
# This may be replaced when dependencies are built.
