file(REMOVE_RECURSE
  "CMakeFiles/test_core_implicit.dir/core/test_implicit.cpp.o"
  "CMakeFiles/test_core_implicit.dir/core/test_implicit.cpp.o.d"
  "test_core_implicit"
  "test_core_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
