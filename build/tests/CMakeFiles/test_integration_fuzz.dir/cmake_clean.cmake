file(REMOVE_RECURSE
  "CMakeFiles/test_integration_fuzz.dir/integration/test_fuzz.cpp.o"
  "CMakeFiles/test_integration_fuzz.dir/integration/test_fuzz.cpp.o.d"
  "test_integration_fuzz"
  "test_integration_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
