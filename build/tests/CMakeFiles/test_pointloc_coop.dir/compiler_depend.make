# Empty compiler generated dependencies file for test_pointloc_coop.
# This may be replaced when dependencies are built.
