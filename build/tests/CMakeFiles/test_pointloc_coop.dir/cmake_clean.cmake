file(REMOVE_RECURSE
  "CMakeFiles/test_pointloc_coop.dir/pointloc/test_coop_pointloc.cpp.o"
  "CMakeFiles/test_pointloc_coop.dir/pointloc/test_coop_pointloc.cpp.o.d"
  "test_pointloc_coop"
  "test_pointloc_coop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointloc_coop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
