file(REMOVE_RECURSE
  "CMakeFiles/test_core_general_tree.dir/core/test_general_tree.cpp.o"
  "CMakeFiles/test_core_general_tree.dir/core/test_general_tree.cpp.o.d"
  "test_core_general_tree"
  "test_core_general_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_general_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
