# Empty compiler generated dependencies file for test_core_general_tree.
# This may be replaced when dependencies are built.
