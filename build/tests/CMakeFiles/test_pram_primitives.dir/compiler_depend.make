# Empty compiler generated dependencies file for test_pram_primitives.
# This may be replaced when dependencies are built.
