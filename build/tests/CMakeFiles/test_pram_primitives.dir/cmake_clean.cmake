file(REMOVE_RECURSE
  "CMakeFiles/test_pram_primitives.dir/pram/test_primitives.cpp.o"
  "CMakeFiles/test_pram_primitives.dir/pram/test_primitives.cpp.o.d"
  "test_pram_primitives"
  "test_pram_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
