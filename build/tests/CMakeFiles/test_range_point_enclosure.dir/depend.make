# Empty dependencies file for test_range_point_enclosure.
# This may be replaced when dependencies are built.
