file(REMOVE_RECURSE
  "CMakeFiles/test_range_point_enclosure.dir/range/test_point_enclosure.cpp.o"
  "CMakeFiles/test_range_point_enclosure.dir/range/test_point_enclosure.cpp.o.d"
  "test_range_point_enclosure"
  "test_range_point_enclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_point_enclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
