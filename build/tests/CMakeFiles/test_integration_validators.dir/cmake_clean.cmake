file(REMOVE_RECURSE
  "CMakeFiles/test_integration_validators.dir/integration/test_validators.cpp.o"
  "CMakeFiles/test_integration_validators.dir/integration/test_validators.cpp.o.d"
  "test_integration_validators"
  "test_integration_validators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_validators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
