# Empty dependencies file for test_integration_validators.
# This may be replaced when dependencies are built.
