# Empty compiler generated dependencies file for test_pram_machine.
# This may be replaced when dependencies are built.
