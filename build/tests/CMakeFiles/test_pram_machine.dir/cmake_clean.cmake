file(REMOVE_RECURSE
  "CMakeFiles/test_pram_machine.dir/pram/test_machine.cpp.o"
  "CMakeFiles/test_pram_machine.dir/pram/test_machine.cpp.o.d"
  "test_pram_machine"
  "test_pram_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
