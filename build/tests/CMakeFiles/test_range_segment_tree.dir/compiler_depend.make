# Empty compiler generated dependencies file for test_range_segment_tree.
# This may be replaced when dependencies are built.
