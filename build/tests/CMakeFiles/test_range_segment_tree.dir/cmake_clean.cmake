file(REMOVE_RECURSE
  "CMakeFiles/test_range_segment_tree.dir/range/test_segment_tree.cpp.o"
  "CMakeFiles/test_range_segment_tree.dir/range/test_segment_tree.cpp.o.d"
  "test_range_segment_tree"
  "test_range_segment_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_segment_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
