file(REMOVE_RECURSE
  "CMakeFiles/test_pram_coop_search.dir/pram/test_coop_search.cpp.o"
  "CMakeFiles/test_pram_coop_search.dir/pram/test_coop_search.cpp.o.d"
  "test_pram_coop_search"
  "test_pram_coop_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram_coop_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
