# Empty compiler generated dependencies file for test_pram_coop_search.
# This may be replaced when dependencies are built.
