# Empty compiler generated dependencies file for test_pointloc_separator_tree.
# This may be replaced when dependencies are built.
