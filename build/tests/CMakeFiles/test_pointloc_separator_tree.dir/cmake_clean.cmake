file(REMOVE_RECURSE
  "CMakeFiles/test_pointloc_separator_tree.dir/pointloc/test_separator_tree.cpp.o"
  "CMakeFiles/test_pointloc_separator_tree.dir/pointloc/test_separator_tree.cpp.o.d"
  "test_pointloc_separator_tree"
  "test_pointloc_separator_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointloc_separator_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
