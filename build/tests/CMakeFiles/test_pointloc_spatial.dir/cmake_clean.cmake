file(REMOVE_RECURSE
  "CMakeFiles/test_pointloc_spatial.dir/pointloc/test_spatial.cpp.o"
  "CMakeFiles/test_pointloc_spatial.dir/pointloc/test_spatial.cpp.o.d"
  "test_pointloc_spatial"
  "test_pointloc_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointloc_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
