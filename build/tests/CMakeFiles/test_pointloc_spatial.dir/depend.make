# Empty dependencies file for test_pointloc_spatial.
# This may be replaced when dependencies are built.
