# Empty dependencies file for test_range_tree.
# This may be replaced when dependencies are built.
