# Empty dependencies file for test_range_tree_kd.
# This may be replaced when dependencies are built.
