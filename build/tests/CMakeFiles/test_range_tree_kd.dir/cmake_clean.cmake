file(REMOVE_RECURSE
  "CMakeFiles/test_range_tree_kd.dir/range/test_range_tree_kd.cpp.o"
  "CMakeFiles/test_range_tree_kd.dir/range/test_range_tree_kd.cpp.o.d"
  "test_range_tree_kd"
  "test_range_tree_kd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_tree_kd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
