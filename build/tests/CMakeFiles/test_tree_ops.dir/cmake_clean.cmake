file(REMOVE_RECURSE
  "CMakeFiles/test_tree_ops.dir/catalog/test_tree_ops.cpp.o"
  "CMakeFiles/test_tree_ops.dir/catalog/test_tree_ops.cpp.o.d"
  "test_tree_ops"
  "test_tree_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
