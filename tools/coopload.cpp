// coopload: load generator and admin client for coopserve.
//
//   coopload --port N [--host H] --op bench --tree tree.txt
//            [--collection NAME]... [--threads N] [--duration-ms N]
//            [--batch N] [--tenant N] [--deadline-ns N] [--seed N]
//            [--check] [--json | --json=FILE]
//   coopload --port N --op metrics|health|drain
//   coopload --port N --op load|swap --collection NAME --snapshot F.snap
//   coopload --port N --op unload --collection NAME
//
// bench aims --threads clients at each named collection (default: just
// "main") for --duration-ms, sending --batch-query path batches built
// from random root-to-leaf walks of --tree (the same tree file the
// server's snapshot was compiled from).  --check verifies every answer
// against the in-process catalog oracle; any mismatch is a nonzero
// exit.  --json emits one {"bench":"wire","rows":[...]} document with a
// (mode, threads, qps, p99_ns) row per collection, the shape
// scripts/check_bench_regression.py gates against bench/baselines/.
// --port-file PATH reads the port coopserve wrote there.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "catalog/tree.hpp"
#include "net/client.hpp"
#include "serve/frontend.hpp"
#include "robust/loaders.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using coop::StatusCode;

int usage() {
  std::fprintf(
      stderr,
      "usage: coopload --port N | --port-file PATH [--host H]\n"
      "                --op bench|metrics|health|drain|load|swap|unload\n"
      "  bench:  --tree tree.txt [--collection NAME]... [--threads N]\n"
      "          [--duration-ms N] [--batch N] [--tenant N]\n"
      "          [--deadline-ns N] [--seed N] [--check]\n"
      "          [--json | --json=FILE]\n"
      "  load/swap: --collection NAME --snapshot FILE.snap\n"
      "  unload:    --collection NAME\n");
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return false;
  }
  out = v;
  return true;
}

struct BenchRow {
  std::string mode;
  std::size_t threads = 0;
  double qps = 0.0;
  std::uint64_t p99_ns = 0;
  std::uint64_t answered = 0;
  std::uint64_t sheds = 0;
};

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string op = "bench";
  std::vector<std::string> collections;
  std::string snapshot;
  std::string tree_path;
  std::size_t threads = 4;
  std::uint64_t duration_ms = 2000;
  std::size_t batch = 64;
  std::uint64_t tenant = 1;
  std::uint64_t deadline_ns = 0;
  std::uint64_t seed = 1;
  bool check = false;
  bool json = false;
  std::string json_path;  // empty -> stdout
};

int run_bench(const Args& a) {
  if (a.tree_path.empty()) {
    std::fprintf(stderr, "error: --op bench needs --tree tree.txt\n");
    return 2;
  }
  std::ifstream in(a.tree_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", a.tree_path.c_str());
    return 1;
  }
  auto loaded = robust::load_tree(in);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", a.tree_path.c_str(),
                 loaded.status().to_string().c_str());
    return 1;
  }
  const cat::Tree tree = loaded.take();
  const std::vector<std::string> cols =
      a.collections.empty() ? std::vector<std::string>{"main"}
                            : a.collections;

  std::vector<BenchRow> rows;
  std::uint64_t mismatches = 0, errors = 0;
  std::string first_error;
  for (const std::string& col : cols) {
    std::atomic<std::uint64_t> answered{0}, sheds{0}, bad{0}, errs{0};
    std::mutex err_mu;
    std::vector<std::vector<std::uint64_t>> lat(a.threads);
    std::vector<std::thread> fleet;
    const auto until =
        Clock::now() + std::chrono::milliseconds(a.duration_ms);
    for (std::size_t t = 0; t < a.threads; ++t) {
      fleet.emplace_back([&, t] {
        std::mt19937_64 rng(a.seed ^ (0xB0B0ull * (t + 1)));
        net::ClientOptions copts;
        copts.tenant = a.tenant + t;
        copts.deadline_ns = a.deadline_ns;
        auto c = net::Client::connect(a.host, a.port, copts);
        if (!c.ok()) {
          errs.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.empty()) {
            first_error = c.status().to_string();
          }
          return;
        }
        net::Client client = c.take();
        std::vector<serve::PathQuery> batch(a.batch);
        while (Clock::now() < until) {
          for (serve::PathQuery& q : batch) {
            std::vector<cat::NodeId> path{tree.root()};
            while (!tree.is_leaf(path.back())) {
              const auto kids = tree.children(path.back());
              path.push_back(kids[rng() % kids.size()]);
            }
            q.path = std::move(path);
            q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
          }
          const auto t0 = Clock::now();
          auto resp = client.path_batch(col, batch);
          const auto t1 = Clock::now();
          if (resp.ok()) {
            answered.fetch_add(batch.size(), std::memory_order_relaxed);
            lat[t].push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                     t0)
                    .count()));
            if (a.check) {
              for (std::size_t qi = 0; qi < batch.size(); ++qi) {
                const auto& ans = resp->answers[qi];
                for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
                  if (i >= ans.proper_index.size() ||
                      ans.proper_index[i] !=
                          tree.catalog(batch[qi].path[i]).find(
                              batch[qi].y)) {
                    bad.fetch_add(1, std::memory_order_relaxed);
                    break;
                  }
                }
              }
            }
          } else if (resp.status().code() ==
                     StatusCode::kResourceExhausted) {
            sheds.fetch_add(1, std::memory_order_relaxed);
          } else {
            errs.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error.empty()) {
              first_error = resp.status().to_string();
            }
            return;  // a broken stream will not heal; stop this thread
          }
        }
      });
    }
    const auto begun = Clock::now();
    for (std::thread& th : fleet) {
      th.join();
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - begun).count();

    std::vector<std::uint64_t> merged;
    for (auto& v : lat) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end());
    BenchRow row;
    row.mode = "paths:" + col;
    row.threads = a.threads;
    row.answered = answered.load();
    row.sheds = sheds.load();
    row.qps = secs > 0 ? static_cast<double>(row.answered) / secs : 0.0;
    row.p99_ns =
        merged.empty() ? 0 : merged[merged.size() * 99 / 100 ==
                                            merged.size()
                                        ? merged.size() - 1
                                        : merged.size() * 99 / 100];
    rows.push_back(row);
    mismatches += bad.load();
    errors += errs.load();
    std::fprintf(stderr,
                 "%-16s threads=%zu qps=%.0f p99=%.3fms answered=%llu "
                 "sheds=%llu\n",
                 row.mode.c_str(), row.threads, row.qps,
                 static_cast<double>(row.p99_ns) / 1e6,
                 static_cast<unsigned long long>(row.answered),
                 static_cast<unsigned long long>(row.sheds));
  }
  if (errors > 0) {
    std::fprintf(stderr, "coopload: %llu request errors (first: %s)\n",
                 static_cast<unsigned long long>(errors),
                 first_error.c_str());
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "coopload: %llu ORACLE MISMATCHES\n",
                 static_cast<unsigned long long>(mismatches));
  }

  if (a.json) {
    std::string doc = "{\"bench\":\"wire\",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"mode\":\"%s\",\"threads\":%zu,\"qps\":%.1f,"
                    "\"p99_ns\":%llu,\"sheds\":%llu}",
                    i == 0 ? "" : ",", rows[i].mode.c_str(),
                    rows[i].threads, rows[i].qps,
                    static_cast<unsigned long long>(rows[i].p99_ns),
                    static_cast<unsigned long long>(rows[i].sheds));
      doc += buf;
    }
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  "],\"checked\":%s,\"mismatches\":%llu,\"errors\":%llu}",
                  a.check ? "true" : "false",
                  static_cast<unsigned long long>(mismatches),
                  static_cast<unsigned long long>(errors));
    doc += tail;
    doc += "\n";
    if (a.json_path.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(a.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     a.json_path.c_str());
        return 1;
      }
      std::fputs(doc.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "coopload: wrote %s\n", a.json_path.c_str());
    }
  }
  return (mismatches == 0 && errors == 0) ? 0 : 1;
}

int run_admin(const Args& a) {
  net::ClientOptions copts;
  copts.tenant = a.tenant;
  auto c = net::Client::connect(a.host, a.port, copts);
  if (!c.ok()) {
    std::fprintf(stderr, "coopload: %s\n",
                 c.status().to_string().c_str());
    return 1;
  }
  net::Client client = c.take();
  if (a.op == "metrics") {
    auto m = client.metrics();
    if (!m.ok()) {
      std::fprintf(stderr, "coopload: %s\n",
                   m.status().to_string().c_str());
      return 1;
    }
    std::fputs(m->c_str(), stdout);
    return 0;
  }
  if (a.op == "health") {
    auto h = client.health();
    if (!h.ok()) {
      std::fprintf(stderr, "coopload: %s\n",
                   h.status().to_string().c_str());
      return 1;
    }
    std::printf("draining: %s\n", h->draining != 0 ? "yes" : "no");
    for (const auto& col : h->collections) {
      std::printf("collection %s: version %llu, %s\n", col.name.c_str(),
                  static_cast<unsigned long long>(col.version),
                  serve::to_string(
                      static_cast<serve::HealthState>(col.health)));
    }
    return 0;
  }
  if (a.op == "drain") {
    if (const auto st = client.drain(); !st.ok()) {
      std::fprintf(stderr, "coopload: %s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "coopload: drain acknowledged\n");
    return 0;
  }
  if (a.collections.size() != 1) {
    std::fprintf(stderr, "error: --op %s needs exactly one --collection\n",
                 a.op.c_str());
    return 2;
  }
  const std::string& col = a.collections.front();
  if (a.op == "unload") {
    if (const auto st = client.unload(col); !st.ok()) {
      std::fprintf(stderr, "coopload: %s\n", st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "coopload: unloaded '%s'\n", col.c_str());
    return 0;
  }
  if (a.snapshot.empty()) {
    std::fprintf(stderr, "error: --op %s needs --snapshot FILE.snap\n",
                 a.op.c_str());
    return 2;
  }
  auto v = a.op == "load" ? client.load(col, a.snapshot)
                          : client.swap(col, a.snapshot);
  if (!v.ok()) {
    std::fprintf(stderr, "coopload: %s\n",
                 v.status().to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "coopload: %s '%s' -> version %llu\n",
               a.op.c_str(), col.c_str(),
               static_cast<unsigned long long>(v.value()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--host") == 0) {
      const char* x = need("--host");
      if (x == nullptr) {
        return usage();
      }
      a.host = x;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* x = need("--port");
      if (x == nullptr || !parse_u64(x, v) || v == 0 || v > 65535) {
        return usage();
      }
      a.port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      const char* x = need("--port-file");
      if (x == nullptr) {
        return usage();
      }
      std::ifstream pf(x);
      if (!(pf >> v) || v == 0 || v > 65535) {
        std::fprintf(stderr, "error: %s does not hold a port\n", x);
        return 1;
      }
      a.port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--op") == 0) {
      const char* x = need("--op");
      if (x == nullptr) {
        return usage();
      }
      a.op = x;
    } else if (std::strcmp(argv[i], "--collection") == 0) {
      const char* x = need("--collection");
      if (x == nullptr) {
        return usage();
      }
      a.collections.emplace_back(x);
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      const char* x = need("--snapshot");
      if (x == nullptr) {
        return usage();
      }
      a.snapshot = x;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      const char* x = need("--tree");
      if (x == nullptr) {
        return usage();
      }
      a.tree_path = x;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* x = need("--threads");
      if (x == nullptr || !parse_u64(x, v) || v == 0 || v > 256) {
        return usage();
      }
      a.threads = v;
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      const char* x = need("--duration-ms");
      if (x == nullptr || !parse_u64(x, v) || v == 0) {
        return usage();
      }
      a.duration_ms = v;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      const char* x = need("--batch");
      if (x == nullptr || !parse_u64(x, v) || v == 0 || v > 65536) {
        return usage();
      }
      a.batch = v;
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      const char* x = need("--tenant");
      if (x == nullptr || !parse_u64(x, v)) {
        return usage();
      }
      a.tenant = v;
    } else if (std::strcmp(argv[i], "--deadline-ns") == 0) {
      const char* x = need("--deadline-ns");
      if (x == nullptr || !parse_u64(x, v)) {
        return usage();
      }
      a.deadline_ns = v;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* x = need("--seed");
      if (x == nullptr || !parse_u64(x, v)) {
        return usage();
      }
      a.seed = v;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      a.check = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      a.json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      a.json = true;
      a.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }
  if (a.port == 0) {
    std::fprintf(stderr, "error: --port or --port-file is required\n");
    return usage();
  }
  if (a.op == "bench") {
    return run_bench(a);
  }
  if (a.op == "metrics" || a.op == "health" || a.op == "drain" ||
      a.op == "load" || a.op == "swap" || a.op == "unload") {
    return run_admin(a);
  }
  std::fprintf(stderr, "error: unknown --op '%s'\n", a.op.c_str());
  return usage();
}
