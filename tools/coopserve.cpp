// coopserve: the framed-TCP serving daemon (DESIGN.md §11).
//
//   coopserve [--bind ADDR] [--port N] [--port-file PATH] [--workers N]
//             [--engine-threads N] [--max-conns N]
//             [--quota-rate R] [--quota-burst B]
//             [--collection NAME=FILE.snap]...
//             [--metrics-dump] [--remote-admin]
//   coopserve --soak <duration-ms> <seed> [clients] [--json]
//
// Trust model: the wire is unauthenticated, so LOAD/SWAP/UNLOAD/DRAIN
// admin frames are only honoured on loopback binds.  --remote-admin
// opts into accepting them on other binds — only do that behind a
// trusted network boundary.
//
// Serve mode binds (port 0 picks an ephemeral port, reported on stderr
// and, with --port-file, written to a file so CI can find it), loads
// each named collection from its snapshot, and serves until SIGTERM or
// SIGINT — which begins a graceful drain: stop accepting, refuse new
// batches with typed UNAVAILABLE, finish everything in flight, then
// exit 0.  A wire DRAIN frame triggers the same sequence.
//
// Soak mode runs net::run_wire_soak (self-contained fixtures + loopback
// server + chaos fleet) and exits 0 only on an "OK" verdict; --json
// emits the outcome as one JSON document on stdout.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "net/wire_soak.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "snapshot/snapshot.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: coopserve [--bind ADDR] [--port N] [--port-file PATH]\n"
      "                 [--workers N] [--engine-threads N] [--max-conns N]\n"
      "                 [--quota-rate R] [--quota-burst B]\n"
      "                 [--collection NAME=FILE.snap]... [--metrics-dump]\n"
      "                 [--remote-admin]\n"
      "       coopserve --soak <duration-ms> <seed> [clients] [--json]\n"
      "note: admin frames (LOAD/SWAP/UNLOAD/DRAIN) are refused with\n"
      "      PERMISSION_DENIED on non-loopback binds unless\n"
      "      --remote-admin is given.\n");
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return false;
  }
  out = v;
  return true;
}

int run_soak(int argc, char** argv) {
  bool json = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  std::uint64_t duration_ms = 0, seed = 0, clients = 4;
  if (rest.size() < 2 || !parse_u64(rest[0], duration_ms) ||
      !parse_u64(rest[1], seed) || duration_ms == 0 ||
      (rest.size() > 2 && !parse_u64(rest[2], clients))) {
    return usage();
  }
  net::WireSoakOptions opts;
  opts.duration = std::chrono::milliseconds(duration_ms);
  opts.seed = seed;
  opts.clients = clients;
  opts.verbose = !json;
  auto out = net::run_wire_soak(opts);
  if (!out.ok()) {
    std::fprintf(stderr, "wire soak setup failed: %s\n",
                 out.status().to_string().c_str());
    return 1;
  }
  const net::WireSoakOutcome& o = out.value();
  if (json) {
    std::printf(
        "{\"soak\":\"wire\",\"batches\":%llu,\"answered\":%llu,"
        "\"wrong_answers\":%llu,\"failed\":%llu,\"deadline_errors\":%llu,"
        "\"quota_sheds\":%llu,\"drain_refusals\":%llu,"
        "\"malformed_injected\":%llu,\"malformed_rejected\":%llu,"
        "\"resets_injected\":%llu,\"slow_reads\":%llu,\"reconnects\":%llu,"
        "\"swaps\":%llu,\"load_unload_cycles\":%llu,"
        "\"drained_in_grace\":%s,\"goals_met\":%s}\n",
        static_cast<unsigned long long>(o.batches),
        static_cast<unsigned long long>(o.answered),
        static_cast<unsigned long long>(o.wrong_answers),
        static_cast<unsigned long long>(o.failed),
        static_cast<unsigned long long>(o.deadline_errors),
        static_cast<unsigned long long>(o.quota_sheds),
        static_cast<unsigned long long>(o.drain_refusals),
        static_cast<unsigned long long>(o.malformed_injected),
        static_cast<unsigned long long>(o.malformed_rejected),
        static_cast<unsigned long long>(o.resets_injected),
        static_cast<unsigned long long>(o.slow_reads),
        static_cast<unsigned long long>(o.reconnects),
        static_cast<unsigned long long>(o.swaps),
        static_cast<unsigned long long>(o.load_unload_cycles),
        o.drained_in_grace ? "true" : "false",
        o.goals_met ? "true" : "false");
  }
  std::fprintf(stderr, "%s\n", o.verdict.c_str());
  std::fprintf(stderr,
               "  batches=%llu answered=%llu deadline=%llu quota=%llu "
               "malformed=%llu/%llu resets=%llu slow=%llu swaps=%llu "
               "cycles=%llu drain_refusals=%llu reconnects=%llu\n",
               static_cast<unsigned long long>(o.batches),
               static_cast<unsigned long long>(o.answered),
               static_cast<unsigned long long>(o.deadline_errors),
               static_cast<unsigned long long>(o.quota_sheds),
               static_cast<unsigned long long>(o.malformed_rejected),
               static_cast<unsigned long long>(o.malformed_injected),
               static_cast<unsigned long long>(o.resets_injected),
               static_cast<unsigned long long>(o.slow_reads),
               static_cast<unsigned long long>(o.swaps),
               static_cast<unsigned long long>(o.load_unload_cycles),
               static_cast<unsigned long long>(o.drain_refusals),
               static_cast<unsigned long long>(o.reconnects));
  return o.verdict.rfind("OK", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--soak") == 0) {
    return run_soak(argc - 2, argv + 2);
  }

  net::ServerOptions opts;
  std::string port_file;
  bool metrics_dump = false;
  std::vector<std::pair<std::string, std::string>> collections;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (std::strcmp(argv[i], "--bind") == 0) {
      const char* a = need("--bind");
      if (a == nullptr) {
        return usage();
      }
      opts.bind_address = a;
    } else if (std::strcmp(argv[i], "--remote-admin") == 0) {
      opts.enable_remote_admin = true;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* a = need("--port");
      if (a == nullptr || !parse_u64(a, v) || v > 65535) {
        return usage();
      }
      opts.port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      const char* a = need("--port-file");
      if (a == nullptr) {
        return usage();
      }
      port_file = a;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      const char* a = need("--workers");
      if (a == nullptr || !parse_u64(a, v) || v == 0 || v > 256) {
        return usage();
      }
      opts.workers = v;
    } else if (std::strcmp(argv[i], "--engine-threads") == 0) {
      const char* a = need("--engine-threads");
      if (a == nullptr || !parse_u64(a, v) || v > 256) {
        return usage();
      }
      opts.engine_threads = v;
    } else if (std::strcmp(argv[i], "--max-conns") == 0) {
      const char* a = need("--max-conns");
      if (a == nullptr || !parse_u64(a, v) || v == 0) {
        return usage();
      }
      opts.max_connections = v;
    } else if (std::strcmp(argv[i], "--quota-rate") == 0) {
      const char* a = need("--quota-rate");
      if (a == nullptr || !parse_u64(a, v)) {
        return usage();
      }
      opts.quota.tokens_per_sec = v;
    } else if (std::strcmp(argv[i], "--quota-burst") == 0) {
      const char* a = need("--quota-burst");
      if (a == nullptr || !parse_u64(a, v) || v == 0) {
        return usage();
      }
      opts.quota.burst = v;
    } else if (std::strcmp(argv[i], "--collection") == 0) {
      const char* a = need("--collection");
      if (a == nullptr) {
        return usage();
      }
      const char* eq = std::strchr(a, '=');
      if (eq == nullptr || eq == a || eq[1] == '\0') {
        std::fprintf(stderr,
                     "error: --collection wants NAME=FILE.snap, got '%s'\n",
                     a);
        return 2;
      }
      collections.emplace_back(std::string(a, eq), std::string(eq + 1));
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }

  auto started = net::Server::start(opts);
  if (!started.ok()) {
    std::fprintf(stderr, "coopserve: cannot start: %s\n",
                 started.status().to_string().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = started.take();

  for (const auto& [name, path] : collections) {
    auto snap = snapshot::open(path);
    if (!snap.ok()) {
      std::fprintf(stderr, "coopserve: cannot open %s: %s\n", path.c_str(),
                   snap.status().to_string().c_str());
      return 1;
    }
    if (const auto st = server->collections().load(name, snap.take());
        !st.ok()) {
      std::fprintf(stderr, "coopserve: cannot load '%s': %s\n",
                   name.c_str(), st.to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "coopserve: loaded collection '%s' from %s\n",
                 name.c_str(), path.c_str());
  }

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "coopserve: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server->port()));
    std::fclose(f);
  }
  std::fprintf(stderr, "coopserve listening on %s:%u (%zu workers)\n",
               opts.bind_address.c_str(),
               static_cast<unsigned>(server->port()), opts.workers);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Serve until a signal or a wire DRAIN frame flips the server into
  // lame-duck mode.
  while (g_signal == 0 && !server->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "coopserve: %s — draining\n",
               g_signal != 0 ? "signal received" : "DRAIN frame received");
  server->begin_drain();
  const bool drained =
      server->wait_drained(std::chrono::seconds(10));
  const net::ServerStats stats = server->stats();
  server->stop();
  std::fprintf(stderr,
               "coopserve: drain %s; served %llu batches over %llu "
               "connections (%llu frames in, %llu out, %llu malformed, "
               "%llu deadline-expired, %llu quota-shed)\n",
               drained ? "complete" : "TIMED OUT",
               static_cast<unsigned long long>(stats.batches_served),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.frames_out),
               static_cast<unsigned long long>(stats.malformed),
               static_cast<unsigned long long>(stats.deadline_expired),
               static_cast<unsigned long long>(stats.quota_shed));
  if (metrics_dump) {
    const std::string text =
        obs::to_prometheus(obs::Registry::global().scrape());
    std::fputs(text.c_str(), stderr);
  }
  return drained ? 0 : 1;
}
