// coopsearch_cli — drive the library from the command line.
//
//   coopsearch_cli gen-tree  <height> <entries> <seed>        > tree.txt
//   coopsearch_cli gen-sub   <regions> <bands> <seed>         > sub.txt
//   coopsearch_cli search    <tree.txt> <p> <y> [<y>...] [--threads]
//   coopsearch_cli validate  <tree.txt>
//   coopsearch_cli pointloc  <regions> <bands> <seed> <p> <queries>
//   coopsearch_cli pointloc-file <sub.txt> <p> <queries> <seed>
//   coopsearch_cli serve     <tree.txt> <threads> <queries> <seed>
//                            [--metrics[=file]]
//   coopsearch_cli serve     --soak <millis> <seed> [threads]
//                            [--json] [--metrics[=file]]
//   coopsearch_cli snapshot save  <tree.txt> <out.snap>
//   coopsearch_cli snapshot load  <file.snap>
//   coopsearch_cli snapshot serve <file.snap> <threads> <queries> <seed>
//                                 [--check-tree <tree.txt>]
//   coopsearch_cli stats     [--prometheus] [--trace]
//   coopsearch_cli selftest
//
// Observability (DESIGN.md §10): `stats` exercises the simulator and the
// serving engine, then prints the scraped metrics registry to stdout
// (JSON by default, Prometheus text with --prometheus).  `serve
// --metrics` dumps the same JSON on exit — to stderr in the bare form so
// the serving output stays intact, or to a file with --metrics=FILE.
// `serve --soak --json` prints a machine-readable outcome document on
// stdout with every human diagnostic routed to stderr.
//
// Tree file format: first line "N"; then one line per node
// "<parent|-1> <k> <key_1> ... <key_k>" in id order (node 0 is the root,
// parents must precede children).  Subdivision file format: first line
// "f ymin ymax E"; then one edge per line "lox loy hix hiy min_sep max_sep".
//
// All inputs (arguments and files) are untrusted: every parse and build
// goes through the checked entry points and prints a Status + non-zero
// exit instead of tripping asserts or UB.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>

#include <chrono>

#include "core/explicit_search.hpp"
#include "geom/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "robust/loaders.hpp"
#include "robust/validate.hpp"
#include "serve/query_engine.hpp"
#include "serve/soak.hpp"
#include "snapshot/registry.hpp"
#include "snapshot/snapshot.hpp"

namespace {

int fail(const coop::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
  return 1;
}

int usage(const char* msg) {
  std::fprintf(stderr, "usage: %s\n", msg);
  return 2;
}

/// Strict integer parsing: the whole token must be a number in range.
bool parse_i64(const char* arg, long long min, long long max,
               long long& out) {
  if (arg == nullptr || *arg == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || v < min || v > max) {
    return false;
  }
  out = v;
  return true;
}

bool parse_size(const char* arg, std::size_t max, std::size_t& out) {
  long long v = 0;
  const long long hi = max > static_cast<std::size_t>(LLONG_MAX)
                           ? LLONG_MAX
                           : static_cast<long long>(max);
  if (!parse_i64(arg, 0, hi, v)) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

/// `--metrics` / `--metrics=FILE`: dump the scraped registry on exit.
struct MetricsFlag {
  bool enabled = false;
  std::string path;  // empty -> stderr
};

/// Pull --metrics[=FILE] out of argv (anywhere), compacting the
/// remaining arguments in place.  Returns the new argc.
int extract_metrics_flag(int argc, char** argv, MetricsFlag& mf) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      mf.enabled = true;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      mf.enabled = true;
      mf.path = argv[i] + 10;
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

/// Same trick for a bare boolean flag (e.g. --json).  Returns new argc.
int extract_bool_flag(int argc, char** argv, const char* name, bool& found) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

int dump_metrics(const MetricsFlag& mf) {
  if (!mf.enabled) {
    return 0;
  }
  const std::string doc = obs::export_global_json(/*with_trace=*/true);
  if (mf.path.empty()) {
    std::fputs(doc.c_str(), stderr);
    return 0;
  }
  std::FILE* f = std::fopen(mf.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n",
                 mf.path.c_str());
    return 1;
  }
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "metrics: wrote %zu bytes to %s\n", doc.size(),
               mf.path.c_str());
  return 0;
}

int cmd_gen_tree(int argc, char** argv) {
  std::size_t height = 0, entries = 0, seed = 0;
  if (argc < 3 || !parse_size(argv[0], 24, height) ||
      !parse_size(argv[1], std::size_t{1} << 24, entries) ||
      !parse_size(argv[2], SIZE_MAX, seed)) {
    return usage("gen-tree <height<=24> <entries<=2^24> <seed>");
  }
  std::mt19937_64 rng(seed);
  const auto t = cat::make_balanced_binary(static_cast<std::uint32_t>(height),
                                           entries, cat::CatalogShape::kRandom,
                                           rng);
  std::printf("%zu\n", t.num_nodes());
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const auto& c = t.catalog(cat::NodeId(v));
    std::printf("%d %zu", t.parent(cat::NodeId(v)), c.real_size());
    for (std::size_t i = 0; i < c.real_size(); ++i) {
      std::printf(" %lld", (long long)c.key(i));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_gen_sub(int argc, char** argv) {
  std::size_t regions = 0, bands = 0, seed = 0;
  if (argc < 3 || !parse_size(argv[0], std::size_t{1} << 20, regions) ||
      regions == 0 || !parse_size(argv[1], std::size_t{1} << 16, bands) ||
      !parse_size(argv[2], SIZE_MAX, seed)) {
    return usage("gen-sub <regions<=2^20> <bands<=2^16> <seed>");
  }
  std::mt19937_64 rng(seed);
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  if (const auto s = robust::validate_subdivision(sub); !s.ok()) {
    return fail(coop::Status::internal("generator bug: " + s.message()));
  }
  std::printf("%zu %lld %lld %zu\n", sub.num_regions, (long long)sub.ymin,
              (long long)sub.ymax, sub.edges.size());
  for (const auto& e : sub.edges) {
    std::printf("%lld %lld %lld %lld %d %d\n", (long long)e.lo.x,
                (long long)e.lo.y, (long long)e.hi.x, (long long)e.hi.y,
                e.min_sep, e.max_sep);
  }
  return 0;
}

coop::Expected<cat::Tree> load_tree_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return coop::Status::invalid_argument(std::string("cannot open ") + path);
  }
  return robust::load_tree(in);
}

int cmd_search(int argc, char** argv) {
  const char* use =
      "search <tree.txt> <p> <y> [<y>...] [--threads]";
  if (argc < 3) {
    return usage(use);
  }
  bool threads = false;
  if (std::strcmp(argv[argc - 1], "--threads") == 0) {
    threads = true;
    --argc;
    if (argc < 3) {
      return usage(use);
    }
  }
  auto tree = load_tree_file(argv[0]);
  if (!tree.ok()) {
    return fail(tree.status());
  }
  std::size_t p = 0;
  if (!parse_size(argv[1], std::size_t{1} << 20, p) || p == 0) {
    return usage(use);
  }
  std::printf("tree: %zu nodes, height %u, %zu entries\n",
              tree->num_nodes(), tree->height(), tree->total_catalog_size());
  const auto s = fc::Structure::build_checked(*tree);
  if (!s.ok()) {
    return fail(s.status());
  }
  if (const auto st = robust::validate_fc(*s); !st.ok()) {
    return fail(st);
  }
  const auto cs = coop::CoopStructure::build_checked(*s);
  if (!cs.ok()) {
    return fail(cs.status());
  }
  std::printf("preprocessed: %zu aug entries, %zu skeleton entries, "
              "%u substructures\n",
              s->total_aug_entries(), cs->total_skeleton_entries(),
              cs->substructure_count());

  // Leftmost root-to-leaf path as the demo path.
  std::vector<cat::NodeId> path{tree->root()};
  while (!tree->is_leaf(path.back())) {
    path.push_back(tree->children(path.back())[0]);
  }
  const auto engine =
      threads ? pram::Engine::kThreads : pram::Engine::kSequential;
  for (int a = 2; a < argc; ++a) {
    long long yv = 0;
    if (!parse_i64(argv[a], INT64_MIN, INT64_MAX, yv)) {
      return usage(use);
    }
    const cat::Key y = cat::Key(yv);
    pram::RunReport report;
    const auto r = pram::run_resilient(
        p, pram::Model::kCrew, engine, std::chrono::seconds(30),
        [&](pram::Machine& m) {
          return coop::coop_search_explicit(*cs, m, path, y);
        },
        &report);
    std::printf("y=%lld (p=%zu, %llu steps, %llu hops%s): ", (long long)y, p,
                (unsigned long long)report.stats.steps,
                (unsigned long long)r.hops,
                report.degraded ? ", degraded" : "");
    if (report.degraded) {
      std::fprintf(stderr, "note: degraded run (%s)\n",
                   report.reason.c_str());
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      const auto& c = tree->catalog(path[i]);
      const std::size_t idx = r.proper_index[i];
      if (c.key(idx) == cat::kInfinity) {
        std::printf("[node %d: +inf] ", path[i]);
      } else {
        std::printf("[node %d: %lld] ", path[i], (long long)c.key(idx));
      }
      if (c.find(y) != idx) {
        std::fprintf(stderr, "\nMISMATCH vs binary search!\n");
        return 1;
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 1) {
    return usage("validate <tree.txt>");
  }
  auto tree = load_tree_file(argv[0]);
  if (!tree.ok()) {
    return fail(tree.status());
  }
  if (const auto s = robust::validate_tree(*tree); !s.ok()) {
    return fail(s);
  }
  const auto s = fc::Structure::build_checked(*tree);
  if (!s.ok()) {
    return fail(s.status());
  }
  const auto cs = coop::CoopStructure::build_checked(*s);
  if (!cs.ok()) {
    return fail(cs.status());
  }
  if (const auto st = robust::validate(*cs); !st.ok()) {
    return fail(st);
  }
  std::printf("OK: %zu nodes, %zu entries, %zu aug entries, "
              "%zu skeleton entries\n",
              tree->num_nodes(), tree->total_catalog_size(),
              s->total_aug_entries(), cs->total_skeleton_entries());
  return 0;
}

int run_pointloc(const geom::MonotoneSubdivision& sub, std::size_t p,
                 std::size_t queries, std::mt19937_64& rng) {
  auto st = pointloc::SeparatorTree::build_checked(sub);
  if (!st.ok()) {
    return fail(st.status());
  }
  std::printf("subdivision: %zu regions, %zu edges; structure %zu entries\n",
              sub.num_regions, sub.edges.size(), st->total_entries());
  std::uint64_t steps = 0;
  std::size_t mismatches = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const auto q = geom::random_query_point(sub, rng);
    pram::Machine m(p);
    const auto got = pointloc::coop_locate(*st, m, q);
    steps += m.stats().steps;
    if (got != sub.locate_brute(q)) {
      ++mismatches;
    }
    if (qi < 5) {
      std::printf("  q=(%lld,%lld) -> region %zu (%llu steps)\n",
                  (long long)q.x, (long long)q.y, got,
                  (unsigned long long)m.stats().steps);
    }
  }
  std::printf("%zu queries, avg %.1f steps, %zu mismatches\n", queries,
              queries ? double(steps) / double(queries) : 0.0, mismatches);
  return mismatches == 0 ? 0 : 1;
}

int cmd_pointloc(int argc, char** argv) {
  std::size_t regions = 0, bands = 0, seed = 0, p = 0, queries = 0;
  if (argc < 5 || !parse_size(argv[0], std::size_t{1} << 20, regions) ||
      regions == 0 || !parse_size(argv[1], std::size_t{1} << 16, bands) ||
      !parse_size(argv[2], SIZE_MAX, seed) ||
      !parse_size(argv[3], std::size_t{1} << 20, p) || p == 0 ||
      !parse_size(argv[4], std::size_t{1} << 24, queries)) {
    return usage("pointloc <regions> <bands> <seed> <p> <queries>");
  }
  std::mt19937_64 rng(seed);
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  if (const auto s = robust::validate_subdivision(sub); !s.ok()) {
    return fail(coop::Status::internal("generator bug: " + s.message()));
  }
  return run_pointloc(sub, p, queries, rng);
}

int cmd_pointloc_file(int argc, char** argv) {
  std::size_t p = 0, queries = 0, seed = 0;
  if (argc < 4 || !parse_size(argv[1], std::size_t{1} << 20, p) || p == 0 ||
      !parse_size(argv[2], std::size_t{1} << 24, queries) ||
      !parse_size(argv[3], SIZE_MAX, seed)) {
    return usage("pointloc-file <sub.txt> <p> <queries> <seed>");
  }
  std::ifstream in(argv[0]);
  if (!in) {
    return fail(coop::Status::invalid_argument(std::string("cannot open ") +
                                               argv[0]));
  }
  auto sub = robust::load_subdivision(in);
  if (!sub.ok()) {
    return fail(sub.status());
  }
  std::mt19937_64 rng(seed);
  return run_pointloc(*sub, p, queries, rng);
}

// Load a tree, compile the flat serving arena, run a batch of random
// root-leaf queries through the engine, and verify every answer against
// the catalogs' own binary search.  Untrusted input: a corrupted tree is
// rejected by the checked build / flat compiler, never served.
// serve --soak: the chaos soak (DESIGN.md §9) behind a CLI switch so CI
// and operators run the exact harness the integration test runs.  Exit 0
// only for a soak with zero wrong answers, zero unexpected failures, and
// every chaos goal observed (shed, breaker trip, quarantine, rollback).
int cmd_serve_soak(int argc, char** argv) {
  bool json_mode = false;
  argc = extract_bool_flag(argc, argv, "--json", json_mode);
  std::size_t millis = 0, seed = 0, threads = 4;
  if (argc < 2 || !parse_size(argv[0], 600'000, millis) || millis == 0 ||
      !parse_size(argv[1], SIZE_MAX, seed) ||
      (argc >= 3 && (!parse_size(argv[2], 256, threads) || threads == 0))) {
    return usage(
        "serve --soak <millis<=600000> <seed> [threads<=256] [--json]");
  }
  serve::SoakOptions opts;
  opts.seed = seed;
  opts.duration = std::chrono::milliseconds(millis);
  opts.engine_threads = threads;
  opts.verbose = true;
  const auto outcome = serve::run_chaos_soak(opts);
  if (!outcome.ok()) {
    return fail(outcome.status());
  }
  const serve::SoakOutcome& o = *outcome;
  // With --json the summary moves to stderr so stdout carries exactly
  // one machine-parseable document.
  std::FILE* hs = json_mode ? stderr : stdout;
  std::fprintf(hs,
               "batches: %llu submitted = %llu admitted + %llu shed + "
               "%llu breaker-shed + %llu failed (%llu degraded)\n",
               static_cast<unsigned long long>(o.batches),
               static_cast<unsigned long long>(o.admitted),
               static_cast<unsigned long long>(o.shed),
               static_cast<unsigned long long>(o.shed_breaker),
               static_cast<unsigned long long>(o.failed),
               static_cast<unsigned long long>(o.degraded));
  std::fprintf(hs, "breaker: %llu trips, %llu probes; health %s\n",
               static_cast<unsigned long long>(o.frontend.breaker_trips),
               static_cast<unsigned long long>(o.frontend.breaker_probes),
               serve::to_string(o.frontend.health));
  std::fprintf(hs,
               "scrubber: %llu passes (%llu clean), %llu quarantines, "
               "%llu rollbacks; %llu publishes, %llu bit flips\n",
               static_cast<unsigned long long>(o.scrubber.passes),
               static_cast<unsigned long long>(o.scrubber.clean_passes),
               static_cast<unsigned long long>(o.scrubber.quarantines),
               static_cast<unsigned long long>(o.scrubber.rollbacks),
               static_cast<unsigned long long>(o.publishes),
               static_cast<unsigned long long>(o.bitflips));
  std::fprintf(hs, "%s\n", o.verdict.c_str());
  const bool ok = o.wrong_answers == 0 && o.failed == 0 && o.goals_met;
  if (json_mode) {
    std::printf(
        "{\n"
        "  \"bench\": \"serve_soak\",\n"
        "  \"seed\": %llu,\n"
        "  \"millis\": %llu,\n"
        "  \"threads\": %zu,\n"
        "  \"batches\": %llu,\n"
        "  \"admitted\": %llu,\n"
        "  \"shed\": %llu,\n"
        "  \"shed_breaker\": %llu,\n"
        "  \"failed\": %llu,\n"
        "  \"degraded\": %llu,\n"
        "  \"wrong_answers\": %llu,\n"
        "  \"breaker_trips\": %llu,\n"
        "  \"breaker_probes\": %llu,\n"
        "  \"scrub_passes\": %llu,\n"
        "  \"quarantines\": %llu,\n"
        "  \"rollbacks\": %llu,\n"
        "  \"publishes\": %llu,\n"
        "  \"bitflips\": %llu,\n"
        "  \"goals_met\": %s,\n"
        "  \"ok\": %s,\n"
        "  \"rows\": []\n"
        "}\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(millis), threads,
        static_cast<unsigned long long>(o.batches),
        static_cast<unsigned long long>(o.admitted),
        static_cast<unsigned long long>(o.shed),
        static_cast<unsigned long long>(o.shed_breaker),
        static_cast<unsigned long long>(o.failed),
        static_cast<unsigned long long>(o.degraded),
        static_cast<unsigned long long>(o.wrong_answers),
        static_cast<unsigned long long>(o.frontend.breaker_trips),
        static_cast<unsigned long long>(o.frontend.breaker_probes),
        static_cast<unsigned long long>(o.scrubber.passes),
        static_cast<unsigned long long>(o.scrubber.quarantines),
        static_cast<unsigned long long>(o.scrubber.rollbacks),
        static_cast<unsigned long long>(o.publishes),
        static_cast<unsigned long long>(o.bitflips),
        o.goals_met ? "true" : "false", ok ? "true" : "false");
  }
  if (!ok) {
    return 1;
  }
  std::fprintf(hs, "chaos soak OK\n");
  return 0;
}

int cmd_serve_batch(int argc, char** argv) {
  std::size_t threads = 0, queries = 0, seed = 0;
  if (argc < 4 || !parse_size(argv[1], 256, threads) || threads == 0 ||
      !parse_size(argv[2], std::size_t{1} << 24, queries) ||
      !parse_size(argv[3], SIZE_MAX, seed)) {
    return usage("serve <tree.txt> <threads<=256> <queries<=2^24> <seed> "
                 "[--metrics[=file]]");
  }
  auto tree = load_tree_file(argv[0]);
  if (!tree.ok()) {
    return fail(tree.status());
  }
  const auto s = fc::Structure::build_checked(*tree);
  if (!s.ok()) {
    return fail(s.status());
  }
  auto flat = serve::FlatCascade::compile(*s);
  if (!flat.ok()) {
    return fail(flat.status());
  }
  std::printf("arena: %zu nodes, %zu aug entries, %zu bytes\n",
              flat->num_nodes(), flat->total_entries(), flat->arena_bytes());

  std::mt19937_64 rng(seed);
  std::vector<serve::PathQuery> batch(queries);
  for (auto& q : batch) {
    std::vector<cat::NodeId> path{tree->root()};
    while (!tree->is_leaf(path.back())) {
      const auto kids = tree->children(path.back());
      path.push_back(kids[rng() % kids.size()]);
    }
    q.path = std::move(path);
    q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
  }

  serve::QueryEngine engine(threads);
  std::vector<serve::PathAnswer> answers;
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = serve::serve_path_queries(*flat, engine, batch, answers);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (report.degraded) {
    std::printf("degraded: %s\n", report.reason.c_str());
  }

  std::size_t mismatches = 0;
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
      if (answers[qi].proper_index[i] !=
          tree->catalog(batch[qi].path[i]).find(batch[qi].y)) {
        ++mismatches;
      }
    }
  }
  std::printf("%zu queries on %zu threads: %.0f queries/sec, %zu mismatches\n",
              batch.size(), engine.threads(),
              sec > 0 ? double(batch.size()) / sec : 0.0, mismatches);
  if (mismatches != 0) {
    return 1;
  }
  std::printf("serve OK\n");
  return 0;
}

int cmd_serve(int argc, char** argv) {
  MetricsFlag mf;
  argc = extract_metrics_flag(argc, argv, mf);
  int rc;
  if (argc >= 1 && std::strcmp(argv[0], "--soak") == 0) {
    rc = cmd_serve_soak(argc - 1, argv + 1);
  } else {
    rc = cmd_serve_batch(argc, argv);
  }
  if (dump_metrics(mf) != 0 && rc == 0) {
    rc = 1;
  }
  return rc;
}

// snapshot save: tree file -> checked build -> flat compile -> binary
// snapshot on disk.  Untrusted input discipline as everywhere else: a
// malformed tree is a printed Status, never a written snapshot.
int cmd_snapshot_save(int argc, char** argv) {
  if (argc < 2) {
    return usage("snapshot save <tree.txt> <out.snap>");
  }
  auto tree = load_tree_file(argv[0]);
  if (!tree.ok()) {
    return fail(tree.status());
  }
  const auto s = fc::Structure::build_checked(*tree);
  if (!s.ok()) {
    return fail(s.status());
  }
  auto flat = serve::FlatCascade::compile(*s);
  if (!flat.ok()) {
    return fail(flat.status());
  }
  if (const auto st = snapshot::write(*flat, argv[1]); !st.ok()) {
    return fail(st);
  }
  std::printf("snapshot saved: %zu nodes, %zu aug entries, %zu arena bytes "
              "-> %s\n",
              flat->num_nodes(), flat->total_entries(), flat->arena_bytes(),
              argv[1]);
  return 0;
}

// snapshot load: open (mmap + full header/CRC/bounds verification) and
// report what the file holds.  Exit 0 only for a servable snapshot.
int cmd_snapshot_load(int argc, char** argv) {
  if (argc < 1) {
    return usage("snapshot load <file.snap>");
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto snap = snapshot::open(argv[0]);
  if (!snap.ok()) {
    return fail(snap.status());
  }
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const serve::FlatCascade& c = snap->kind == snapshot::SnapshotKind::kCascade
                                    ? snap->cascade
                                    : snap->pointloc->cascade();
  std::printf("snapshot OK: kind %s, %zu nodes, %zu aug entries, "
              "%zu mapped bytes, opened in %.3f ms\n",
              snap->kind == snapshot::SnapshotKind::kCascade ? "cascade"
                                                             : "pointloc",
              c.num_nodes(), c.total_entries(), snap->mapping.size(),
              sec * 1e3);
  return 0;
}

// snapshot serve: open the snapshot, publish it into a Registry, and
// serve a random batch through the engine via the epoch-pinned path.
// Every answer is checked grouped-kernel vs per-query; with
// --check-tree the answers are additionally checked against the source
// tree's own binary search (the full differential round-trip CI runs).
int cmd_snapshot_serve(int argc, char** argv) {
  const char* use = "snapshot serve <file.snap> <threads<=256> "
                    "<queries<=2^24> <seed> [--check-tree <tree.txt>]";
  const char* tree_path = nullptr;
  if (argc >= 6 && std::strcmp(argv[4], "--check-tree") == 0) {
    tree_path = argv[5];
    argc = 4;
  }
  std::size_t threads = 0, queries = 0, seed = 0;
  if (argc < 4 || !parse_size(argv[1], 256, threads) || threads == 0 ||
      !parse_size(argv[2], std::size_t{1} << 24, queries) ||
      !parse_size(argv[3], SIZE_MAX, seed)) {
    return usage(use);
  }
  auto snap = snapshot::open(argv[0]);
  if (!snap.ok()) {
    return fail(snap.status());
  }
  if (snap->kind != snapshot::SnapshotKind::kCascade) {
    return fail(coop::Status::failed_precondition(
        "snapshot serve expects a cascade snapshot"));
  }

  snapshot::Registry registry;
  registry.publish(snap.take());

  // Random root-to-leaf paths walked over the snapshot's own topology.
  std::mt19937_64 rng(seed);
  std::vector<serve::PathQuery> batch(queries);
  {
    const snapshot::Registry::Pin pin = registry.pin();
    const serve::FlatCascade& flat = pin.snapshot().cascade;
    for (auto& q : batch) {
      std::vector<cat::NodeId> path{
          static_cast<cat::NodeId>(flat.root())};
      std::uint32_t v = flat.root();
      while (!flat.is_leaf(v)) {
        v = flat.child(v, static_cast<std::uint32_t>(
                              rng() % flat.node(v).num_children));
        path.push_back(static_cast<cat::NodeId>(v));
      }
      q.path = std::move(path);
      q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
    }
  }

  serve::QueryEngine engine(threads);
  std::vector<serve::PathAnswer> answers;
  serve::BatchReport report;
  std::uint64_t version = 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (const auto st = snapshot::serve_path_queries(
          registry, engine, batch, answers, &report, &version);
      !st.ok()) {
    return fail(st);
  }
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (report.degraded) {
    std::printf("degraded: %s\n", report.reason.c_str());
  }

  std::size_t mismatches = 0;
  {
    const snapshot::Registry::Pin pin = registry.pin();
    const serve::FlatCascade& flat = pin.snapshot().cascade;
    std::vector<std::uint32_t> aug(64), prop(64);
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      aug.resize(batch[qi].path.size());
      prop.resize(batch[qi].path.size());
      flat.search_path(batch[qi].path, batch[qi].y, aug.data(), prop.data());
      for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
        if (answers[qi].aug_index[i] != aug[i] ||
            answers[qi].proper_index[i] != prop[i]) {
          ++mismatches;
        }
      }
    }
  }
  if (tree_path != nullptr) {
    auto tree = load_tree_file(tree_path);
    if (!tree.ok()) {
      return fail(tree.status());
    }
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
        if (answers[qi].proper_index[i] !=
            tree->catalog(batch[qi].path[i]).find(batch[qi].y)) {
          ++mismatches;
        }
      }
    }
    std::printf("checked against %s\n", tree_path);
  }
  std::printf("version %llu: %zu queries on %zu threads: %.0f queries/sec, "
              "%zu mismatches\n",
              (unsigned long long)version, batch.size(), engine.threads(),
              sec > 0 ? double(batch.size()) / sec : 0.0, mismatches);
  if (mismatches != 0) {
    return 1;
  }
  std::printf("snapshot serve OK\n");
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc < 1) {
    return usage("snapshot save|load|serve [args]");
  }
  if (std::strcmp(argv[0], "save") == 0) {
    return cmd_snapshot_save(argc - 1, argv + 1);
  }
  if (std::strcmp(argv[0], "load") == 0) {
    return cmd_snapshot_load(argc - 1, argv + 1);
  }
  if (std::strcmp(argv[0], "serve") == 0) {
    return cmd_snapshot_serve(argc - 1, argv + 1);
  }
  return usage("snapshot save|load|serve [args]");
}

// stats: run a small deterministic workload through the PRAM simulator
// and the serving engine so the registry has something to show, then
// print the scrape to stdout — JSON by default, Prometheus text format
// with --prometheus, trace events included with --trace.  Diagnostics
// go to stderr so stdout stays machine-parseable.
int cmd_stats(int argc, char** argv) {
  bool prometheus = false;
  bool with_trace = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prometheus") == 0) {
      prometheus = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_trace = true;
    } else {
      return usage("stats [--prometheus] [--trace]");
    }
  }
  obs::TraceRing::global().configure(/*seed=*/1, /*sample_period=*/1);
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(6, 1000,
                                           cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build_checked(t);
  if (!s.ok()) {
    return fail(s.status());
  }
  const auto cs = coop::CoopStructure::build_checked(*s);
  if (!cs.ok()) {
    return fail(cs.status());
  }
  std::vector<cat::NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    path.push_back(t.children(path.back())[0]);
  }
  {
    pram::Machine m(64);
    for (cat::Key y : {0, 1000, 999999999}) {
      (void)coop::coop_search_explicit(*cs, m, path, y);
    }
  }
  auto flat = serve::FlatCascade::compile(*s);
  if (!flat.ok()) {
    return fail(flat.status());
  }
  std::vector<serve::PathQuery> batch(64);
  for (auto& q : batch) {
    q.path = path;
    q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
  }
  serve::QueryEngine engine(2);
  std::vector<serve::PathAnswer> answers;
  (void)serve::serve_path_queries(*flat, engine, batch, answers);
  std::fprintf(stderr,
               "stats: exercised the simulator and serving engine on a "
               "%zu-node demo tree\n",
               t.num_nodes());
  if (prometheus) {
    std::fputs(obs::to_prometheus(obs::Registry::global().scrape()).c_str(),
               stdout);
  } else {
    std::fputs(obs::export_global_json(with_trace).c_str(), stdout);
  }
  return 0;
}

int cmd_selftest() {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(6, 1000,
                                           cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build_checked(t);
  if (!s.ok() || !robust::validate_fc(*s).ok()) {
    std::fprintf(stderr, "FAIL: cascading properties\n");
    return 1;
  }
  const auto cs = coop::CoopStructure::build_checked(*s);
  if (!cs.ok() || !robust::validate(*cs).ok()) {
    std::fprintf(stderr, "FAIL: coop structure invariants\n");
    return 1;
  }
  pram::Machine m(64);
  std::vector<cat::NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    path.push_back(t.children(path.back())[0]);
  }
  for (cat::Key y : {0, 1000, 999999999}) {
    const auto r = coop::coop_search_explicit(*cs, m, path, y);
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (r.proper_index[i] != t.catalog(path[i]).find(y)) {
        std::fprintf(stderr, "FAIL: search mismatch\n");
        return 1;
      }
    }
  }
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      return usage("coopsearch_cli gen-tree|gen-sub|search|validate|pointloc|"
                   "pointloc-file|serve|snapshot|stats|selftest [args]");
    }
    if (std::strcmp(argv[1], "gen-tree") == 0) {
      return cmd_gen_tree(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "gen-sub") == 0) {
      return cmd_gen_sub(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "search") == 0) {
      return cmd_search(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "validate") == 0) {
      return cmd_validate(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "pointloc") == 0) {
      return cmd_pointloc(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "pointloc-file") == 0) {
      return cmd_pointloc_file(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "serve") == 0) {
      return cmd_serve(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "snapshot") == 0) {
      return cmd_snapshot(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "stats") == 0) {
      return cmd_stats(argc - 2, argv + 2);
    }
    if (std::strcmp(argv[1], "selftest") == 0) {
      return cmd_selftest();
    }
    std::fprintf(stderr, "unknown command %s\n", argv[1]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: INTERNAL: unhandled exception: %s\n",
                 e.what());
    return 1;
  }
}
