// coopsearch_cli — drive the library from the command line.
//
//   coopsearch_cli gen-tree  <height> <entries> <seed>        > tree.txt
//   coopsearch_cli search    <tree.txt> <p> <y> [<y>...]
//   coopsearch_cli pointloc  <regions> <bands> <seed> <p> <queries>
//   coopsearch_cli selftest
//
// Tree file format: first line "N"; then one line per node
// "<parent|-1> <k> <key_1> ... <key_k>" in id order (node 0 is the root,
// parents must precede children).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>

#include "core/explicit_search.hpp"
#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"

namespace {

int cmd_gen_tree(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: gen-tree <height> <entries> <seed>\n");
    return 2;
  }
  const auto height = std::uint32_t(atoi(argv[0]));
  const auto entries = std::size_t(atoll(argv[1]));
  std::mt19937_64 rng(std::uint64_t(atoll(argv[2])));
  const auto t = cat::make_balanced_binary(height, entries,
                                           cat::CatalogShape::kRandom, rng);
  std::printf("%zu\n", t.num_nodes());
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const auto& c = t.catalog(cat::NodeId(v));
    std::printf("%d %zu", t.parent(cat::NodeId(v)), c.real_size());
    for (std::size_t i = 0; i < c.real_size(); ++i) {
      std::printf(" %lld", (long long)c.key(i));
    }
    std::printf("\n");
  }
  return 0;
}

bool load_tree(const char* path, cat::Tree& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::size_t n = 0;
  in >> n;
  if (n == 0) {
    std::fprintf(stderr, "empty tree\n");
    return false;
  }
  out = cat::Tree(n);
  std::vector<std::vector<cat::Key>> keys(n);
  for (std::size_t v = 0; v < n; ++v) {
    long long parent = 0;
    std::size_t k = 0;
    in >> parent >> k;
    if (!in) {
      std::fprintf(stderr, "truncated tree file at node %zu\n", v);
      return false;
    }
    if (v == 0 && parent != -1) {
      std::fprintf(stderr, "node 0 must be the root (parent -1)\n");
      return false;
    }
    if (v > 0) {
      if (parent < 0 || std::size_t(parent) >= v) {
        std::fprintf(stderr, "node %zu: parent must precede it\n", v);
        return false;
      }
      out.add_child(cat::NodeId(parent), cat::NodeId(v));
    }
    keys[v].resize(k);
    for (auto& key : keys[v]) {
      in >> key;
    }
    for (std::size_t i = 1; i < k; ++i) {
      if (keys[v][i - 1] >= keys[v][i]) {
        std::fprintf(stderr, "node %zu: keys must be strictly increasing\n",
                     v);
        return false;
      }
    }
  }
  out.finalize();
  for (std::size_t v = 0; v < n; ++v) {
    out.set_catalog(cat::NodeId(v), cat::Catalog::from_sorted_keys(keys[v]));
  }
  return true;
}

int cmd_search(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: search <tree.txt> <p> <y> [<y>...]\n");
    return 2;
  }
  cat::Tree tree;
  if (!load_tree(argv[0], tree)) {
    return 1;
  }
  const auto p = std::size_t(atoll(argv[1]));
  std::printf("tree: %zu nodes, height %u, %zu entries\n", tree.num_nodes(),
              tree.height(), tree.total_catalog_size());
  const auto s = fc::Structure::build(tree);
  const auto err = s.verify_properties();
  if (!err.empty()) {
    std::fprintf(stderr, "cascading property violation: %s\n", err.c_str());
    return 1;
  }
  const auto cs = coop::CoopStructure::build(s);
  std::printf("preprocessed: %zu aug entries, %zu skeleton entries, "
              "%u substructures\n",
              s.total_aug_entries(), cs.total_skeleton_entries(),
              cs.substructure_count());

  // Leftmost root-to-leaf path as the demo path.
  std::vector<cat::NodeId> path{tree.root()};
  while (!tree.is_leaf(path.back())) {
    path.push_back(tree.children(path.back())[0]);
  }
  for (int a = 2; a < argc; ++a) {
    const cat::Key y = cat::Key(atoll(argv[a]));
    pram::Machine m(p);
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    std::printf("y=%lld (p=%zu, %llu steps, %llu hops): ", (long long)y, p,
                (unsigned long long)m.stats().steps,
                (unsigned long long)r.hops);
    for (std::size_t i = 0; i < path.size(); ++i) {
      const auto& c = tree.catalog(path[i]);
      const std::size_t idx = r.proper_index[i];
      if (c.key(idx) == cat::kInfinity) {
        std::printf("[node %d: +inf] ", path[i]);
      } else {
        std::printf("[node %d: %lld] ", path[i], (long long)c.key(idx));
      }
      if (c.find(y) != idx) {
        std::fprintf(stderr, "\nMISMATCH vs binary search!\n");
        return 1;
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_pointloc(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: pointloc <regions> <bands> <seed> <p> <queries>\n");
    return 2;
  }
  const auto regions = std::size_t(atoll(argv[0]));
  const auto bands = std::size_t(atoll(argv[1]));
  std::mt19937_64 rng(std::uint64_t(atoll(argv[2])));
  const auto p = std::size_t(atoll(argv[3]));
  const auto queries = std::size_t(atoll(argv[4]));
  const auto sub = geom::make_random_monotone(regions, bands, rng);
  const auto err = sub.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "generator bug: %s\n", err.c_str());
    return 1;
  }
  const pointloc::SeparatorTree st(sub);
  std::printf("subdivision: %zu regions, %zu edges; structure %zu entries\n",
              sub.num_regions, sub.edges.size(), st.total_entries());
  std::uint64_t steps = 0;
  std::size_t mismatches = 0;
  for (std::size_t qi = 0; qi < queries; ++qi) {
    const auto q = geom::random_query_point(sub, rng);
    pram::Machine m(p);
    const auto got = pointloc::coop_locate(st, m, q);
    steps += m.stats().steps;
    if (got != sub.locate_brute(q)) {
      ++mismatches;
    }
    if (qi < 5) {
      std::printf("  q=(%lld,%lld) -> region %zu (%llu steps)\n",
                  (long long)q.x, (long long)q.y, got,
                  (unsigned long long)m.stats().steps);
    }
  }
  std::printf("%zu queries, avg %.1f steps, %zu mismatches\n", queries,
              queries ? double(steps) / double(queries) : 0.0, mismatches);
  return mismatches == 0 ? 0 : 1;
}

int cmd_selftest() {
  std::mt19937_64 rng(1);
  const auto t = cat::make_balanced_binary(6, 1000,
                                           cat::CatalogShape::kRandom, rng);
  const auto s = fc::Structure::build(t);
  if (!s.verify_properties().empty()) {
    std::fprintf(stderr, "FAIL: cascading properties\n");
    return 1;
  }
  const auto cs = coop::CoopStructure::build(s);
  pram::Machine m(64);
  std::vector<cat::NodeId> path{t.root()};
  while (!t.is_leaf(path.back())) {
    path.push_back(t.children(path.back())[0]);
  }
  for (cat::Key y : {0, 1000, 999999999}) {
    const auto r = coop::coop_search_explicit(cs, m, path, y);
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (r.proper_index[i] != t.catalog(path[i]).find(y)) {
        std::fprintf(stderr, "FAIL: search mismatch\n");
        return 1;
      }
    }
  }
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s gen-tree|search|pointloc|selftest [args]\n",
                 argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "gen-tree") == 0) {
    return cmd_gen_tree(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "search") == 0) {
    return cmd_search(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "pointloc") == 0) {
    return cmd_pointloc(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "selftest") == 0) {
    return cmd_selftest();
  }
  std::fprintf(stderr, "unknown command %s\n", argv[1]);
  return 2;
}
