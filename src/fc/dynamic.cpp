#include "fc/dynamic.hpp"

#include <algorithm>
#include <cassert>

namespace fc {

DynamicStructure::DynamicStructure(cat::Tree tree, double rebuild_fraction)
    : tree_(std::move(tree)),
      rebuild_fraction_(rebuild_fraction),
      inserted_(tree_.num_nodes()),
      deleted_(tree_.num_nodes()) {
  live_entries_ = tree_.total_catalog_size();
  fc_ = std::make_unique<Structure>(Structure::build(tree_));
}

bool DynamicStructure::insert(NodeId v, Key key, std::uint64_t payload) {
  assert(key < cat::kInfinity);
  // Reject duplicates against both the live snapshot and pending inserts.
  const auto& c = tree_.catalog(v);
  const std::size_t at = c.find(key);
  const bool in_snapshot = c.key(at) == key;
  auto& dels = deleted_[v];
  const bool snapshot_deleted =
      std::binary_search(dels.begin(), dels.end(), key);
  auto& ins = inserted_[v];
  const auto it = std::lower_bound(
      ins.begin(), ins.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it != ins.end() && it->key == key) {
    return false;  // already pending-inserted
  }
  if (in_snapshot && !snapshot_deleted) {
    return false;  // already live in the snapshot
  }
  if (in_snapshot && snapshot_deleted) {
    // Re-inserting a deleted snapshot key: cancel the deletion.  The
    // snapshot payload is resurrected (the paper's entries are identified
    // by their key).
    dels.erase(std::lower_bound(dels.begin(), dels.end(), key));
    --pending_;
  } else {
    ins.insert(it, Entry{key, payload});
    ++pending_;
  }
  ++live_entries_;
  maybe_rebuild();
  return true;
}

bool DynamicStructure::erase(NodeId v, Key key) {
  auto& ins = inserted_[v];
  const auto it = std::lower_bound(
      ins.begin(), ins.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it != ins.end() && it->key == key) {
    ins.erase(it);  // cancels a pending insert
    --pending_;
    --live_entries_;
    return true;
  }
  const auto& c = tree_.catalog(v);
  const std::size_t at = c.find(key);
  if (c.key(at) != key) {
    return false;
  }
  auto& dels = deleted_[v];
  const auto dit = std::lower_bound(dels.begin(), dels.end(), key);
  if (dit != dels.end() && *dit == key) {
    return false;  // already deleted
  }
  dels.insert(dit, key);
  ++pending_;
  --live_entries_;
  maybe_rebuild();
  return true;
}

DynamicStructure::Entry DynamicStructure::snapshot_successor(
    NodeId v, std::size_t idx) const {
  const auto& c = tree_.catalog(v);
  const auto& dels = deleted_[v];
  while (idx < c.size() &&
         std::binary_search(dels.begin(), dels.end(), c.key(idx))) {
    ++idx;  // skip pending-deleted snapshot entries
  }
  if (idx >= c.size()) {
    return Entry{};
  }
  return Entry{c.key(idx), c.payload(idx)};
}

DynamicStructure::Entry DynamicStructure::delta_successor(NodeId v,
                                                          Key y) const {
  const auto& ins = inserted_[v];
  const auto it = std::lower_bound(
      ins.begin(), ins.end(), y,
      [](const Entry& e, Key k) { return e.key < k; });
  return it == ins.end() ? Entry{} : *it;
}

DynamicStructure::Entry DynamicStructure::find(NodeId v, Key y) const {
  const Entry snap = snapshot_successor(v, tree_.catalog(v).find(y));
  const Entry delta = delta_successor(v, y);
  return snap.key <= delta.key ? snap : delta;
}

std::vector<DynamicStructure::Entry> DynamicStructure::search(
    std::span<const NodeId> path, Key y, SearchStats* stats) const {
  std::vector<Entry> out;
  out.reserve(path.size());
  if (path.empty()) {
    return out;
  }
  // Bridged walk on the snapshot, delta correction per node.
  std::size_t aug = fc_->aug_find(path.front(), y, stats);
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId v = path[i];
    if (i > 0) {
      const auto slot = static_cast<std::uint32_t>(tree_.child_slot(v));
      aug = fc_->follow_bridge(path[i - 1], aug, slot, y, stats);
    }
    const Entry snap = snapshot_successor(v, fc_->to_proper(v, aug));
    const Entry delta = delta_successor(v, y);
    out.push_back(snap.key <= delta.key ? snap : delta);
    if (stats != nullptr) {
      ++stats->nodes_visited;
    }
  }
  return out;
}

void DynamicStructure::rebuild() {
  for (std::size_t v = 0; v < tree_.num_nodes(); ++v) {
    auto& ins = inserted_[v];
    auto& dels = deleted_[v];
    if (ins.empty() && dels.empty()) {
      continue;
    }
    const auto& c = tree_.catalog(cat::NodeId(v));
    std::vector<Key> keys;
    std::vector<std::uint64_t> payloads;
    keys.reserve(c.real_size() + ins.size());
    payloads.reserve(c.real_size() + ins.size());
    std::size_t ii = 0;
    for (std::size_t i = 0; i < c.real_size(); ++i) {
      while (ii < ins.size() && ins[ii].key < c.key(i)) {
        keys.push_back(ins[ii].key);
        payloads.push_back(ins[ii].payload);
        ++ii;
      }
      if (!std::binary_search(dels.begin(), dels.end(), c.key(i))) {
        keys.push_back(c.key(i));
        payloads.push_back(c.payload(i));
      }
    }
    for (; ii < ins.size(); ++ii) {
      keys.push_back(ins[ii].key);
      payloads.push_back(ins[ii].payload);
    }
    tree_.set_catalog(cat::NodeId(v),
                      cat::Catalog::from_sorted(keys, payloads));
    ins.clear();
    dels.clear();
  }
  pending_ = 0;
  ++rebuilds_;
  fc_ = std::make_unique<Structure>(Structure::build(tree_));
}

void DynamicStructure::maybe_rebuild() {
  const std::size_t threshold = std::max<std::size_t>(
      8, static_cast<std::size_t>(rebuild_fraction_ *
                                  double(live_entries_ + 1)));
  if (pending_ >= threshold) {
    rebuild();
  }
}

}  // namespace fc
