#include "fc/search.hpp"

#include <algorithm>
#include <cassert>

namespace fc {

bool valid_root_path(const cat::Tree& tree, std::span<const NodeId> path) {
  if (path.empty() || path.front() != tree.root()) {
    return false;
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (tree.parent(path[i]) != path[i - 1]) {
      return false;
    }
  }
  return true;
}

PathSearchResult search_explicit(const Structure& s,
                                 std::span<const NodeId> path, Key y,
                                 SearchStats* stats) {
  assert(valid_root_path(s.tree(), path));
  PathSearchResult r;
  r.path.assign(path.begin(), path.end());
  r.proper_index.reserve(path.size());
  r.aug_index.reserve(path.size());

  std::size_t i = s.aug_find(path.front(), y, stats);
  r.aug_index.push_back(i);
  r.proper_index.push_back(s.to_proper(path.front(), i));
  if (stats != nullptr) {
    ++stats->nodes_visited;
  }
  for (std::size_t step = 1; step < path.size(); ++step) {
    const NodeId v = path[step - 1];
    const NodeId w = path[step];
    const std::uint32_t slot =
        static_cast<std::uint32_t>(s.tree().child_slot(w));
    i = s.follow_bridge(v, i, slot, y, stats);
    r.aug_index.push_back(i);
    r.proper_index.push_back(s.to_proper(w, i));
    if (stats != nullptr) {
      ++stats->nodes_visited;
    }
  }
  return r;
}

PathSearchResult search_implicit(const Structure& s, Key y,
                                 const BranchFn& branch, SearchStats* stats) {
  PathSearchResult r;
  NodeId v = s.tree().root();
  std::size_t i = s.aug_find(v, y, stats);
  for (;;) {
    r.path.push_back(v);
    r.aug_index.push_back(i);
    const std::size_t prop = s.to_proper(v, i);
    r.proper_index.push_back(prop);
    if (stats != nullptr) {
      ++stats->nodes_visited;
    }
    if (s.tree().is_leaf(v)) {
      break;
    }
    const std::uint32_t slot = branch(v, prop);
    assert(slot < s.tree().degree(v));
    i = s.follow_bridge(v, i, slot, y, stats);
    v = s.tree().children(v)[slot];
  }
  return r;
}

PathSearchResult search_binary_baseline(const cat::Tree& tree,
                                        std::span<const NodeId> path, Key y,
                                        SearchStats* stats) {
  assert(valid_root_path(tree, path));
  PathSearchResult r;
  r.path.assign(path.begin(), path.end());
  for (NodeId v : path) {
    const auto& c = tree.catalog(v);
    if (stats != nullptr) {
      // Count the comparisons a binary search performs.
      std::size_t n = c.size();
      while (n > 0) {
        ++stats->comparisons;
        n /= 2;
      }
      ++stats->nodes_visited;
    }
    r.proper_index.push_back(c.find(y));
    r.aug_index.push_back(r.proper_index.back());
  }
  return r;
}

}  // namespace fc
