#include "fc/build.hpp"

#include <algorithm>
#include <cassert>

namespace fc {

std::uint32_t auto_sample_k(const cat::Tree& tree) {
  return std::max<std::uint32_t>(
      4, 2 * static_cast<std::uint32_t>(tree.max_degree()));
}

namespace {

/// Back-samples (every k-th element counted from the end, so the +infinity
/// terminal is always included) of `keys`, replacing `out`'s contents in
/// ascending order.  Takes the output by reference so the build loops can
/// reuse one scratch buffer across every node instead of allocating a
/// fresh vector per tree edge.
void back_samples_into(const std::vector<Key>& keys, std::uint32_t k,
                       std::vector<Key>& out) {
  const SampleIndex si{keys.size(), k};
  out.clear();
  out.reserve(si.count());
  for (std::size_t t = 0; t < si.count(); ++t) {
    out.push_back(keys[si.position(t)]);
  }
}

/// Sorted union of `a` and `b`, deduplicated, replacing `out`'s contents.
/// `out` must not alias `a` or `b`.
void merge_dedup_into(const std::vector<Key>& a, const std::vector<Key>& b,
                      std::vector<Key>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

coop::Expected<Structure> Structure::build_checked(const cat::Tree& tree,
                                                   std::uint32_t sample_k) {
  using coop::Status;
  if (tree.num_nodes() == 0) {
    return Status::invalid_argument("catalog tree is empty");
  }
  if (!tree.validate()) {
    return Status::invalid_argument(
        "catalog tree fails structural validation (unfinalized tree, "
        "unreachable nodes, or unsorted/unterminated catalogs)");
  }
  const std::uint32_t k = sample_k == 0 ? auto_sample_k(tree) : sample_k;
  if (k <= tree.max_degree()) {
    return Status::invalid_argument(
        "sampling factor k=" + std::to_string(k) +
        " must exceed the tree's max degree " +
        std::to_string(tree.max_degree()) +
        " (otherwise augmented catalogs are not O(n))");
  }
  return build(tree, k);
}

Structure Structure::build(const cat::Tree& tree, std::uint32_t sample_k) {
  const std::uint32_t k = sample_k == 0 ? auto_sample_k(tree) : sample_k;
  assert(k > tree.max_degree() && "sampling factor must exceed max degree");

  const std::size_t nn = tree.num_nodes();

  // Phase 1 (bottom-up): B(v) = C(v) merged with back-samples of each
  // child's B.  This is the downward flow of the bidirectional cascading
  // of [1]/[3] specialized to trees.  `samples` and `merged` are the only
  // scratch buffers: the swap below recycles B(v)'s old storage as the
  // next merge's output, so the whole phase settles into a handful of
  // steady-state allocations instead of two frees + two mallocs per edge.
  std::vector<std::vector<Key>> up(nn);
  std::vector<Key> samples, merged;
  for (std::uint32_t d = tree.height() + 1; d-- > 0;) {
    for (NodeId v : tree.level(d)) {
      const auto own = tree.catalog(v).keys();
      up[v].assign(own.begin(), own.end());
      for (NodeId w : tree.children(v)) {
        back_samples_into(up[w], k, samples);
        merge_dedup_into(up[v], samples, merged);
        up[v].swap(merged);
      }
    }
  }

  // Phase 2 (top-down): A(v) = B(v) merged with back-samples of the
  // parent's *final* A.  This is the upward flow; it guarantees that
  // between two adjacent entries of a child's catalog there are at most
  // k-1 entries of the parent's catalog, which Lemma 1 of the paper needs
  // (via the reverse bridges of the bidirectional structure).
  std::vector<AugCatalog> aug(nn);
  for (std::uint32_t d = 0; d <= tree.height(); ++d) {
    for (NodeId v : tree.level(d)) {
      AugCatalog& a = aug[v];
      a.num_children = static_cast<std::uint32_t>(tree.degree(v));
      if (v == tree.root()) {
        a.keys = std::move(up[v]);
      } else {
        // A(v) owns its final buffer, so merge straight into it; only the
        // back-sample scratch is reused.
        back_samples_into(aug[tree.parent(v)].keys, k, samples);
        merge_dedup_into(up[v], samples, a.keys);
        up[v].clear();
        up[v].shrink_to_fit();
      }
    }
  }

  // proper[] and bridges on the final catalogs.  Bridges are exact
  // successor positions: bridge[v->w][i] is the smallest index in A(w)
  // with key >= A(v).keys[i]; by the mutual-density property the true
  // find(y, w) is at most b = k entries before it.
  for (std::size_t vi = 0; vi < nn; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    AugCatalog& a = aug[v];
    const auto own_keys = tree.catalog(v).keys();
    a.proper.resize(a.keys.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < a.keys.size(); ++i) {
      while (own_keys[j] < a.keys[i]) {
        ++j;
      }
      a.proper[i] = static_cast<std::int32_t>(j);
    }
    const auto kids = tree.children(v);
    a.bridge.resize(a.keys.size() * kids.size());
    for (std::uint32_t e = 0; e < kids.size(); ++e) {
      const AugCatalog& kid = aug[kids[e]];
      std::size_t t = 0;
      for (std::size_t i = 0; i < a.keys.size(); ++i) {
        while (kid.keys[t] < a.keys[i]) {
          ++t;  // safe: both catalogs end at +infinity
        }
        a.bridge[static_cast<std::size_t>(e) * a.keys.size() + i] =
            static_cast<std::int32_t>(t);
      }
    }
  }
  return Structure::from_parts(tree, k, std::move(aug));
}

std::size_t Structure::aug_find(NodeId v, Key y, SearchStats* stats) const {
  const auto& keys = aug_[v].keys;
  std::size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (stats != nullptr) {
      ++stats->comparisons;
    }
    if (keys[mid] < y) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t Structure::follow_bridge(NodeId v, std::size_t i,
                                     std::uint32_t child_slot, Key y,
                                     SearchStats* stats) const {
  const AugCatalog& a = aug_[v];
  const NodeId w = tree_->children(v)[child_slot];
  const auto& wkeys = aug_[w].keys;
  std::size_t pos = static_cast<std::size_t>(a.bridge_at(child_slot, i));
  // Walk back at most b entries to the true successor of y.
  while (pos > 0 && wkeys[pos - 1] >= y) {
    --pos;
    if (stats != nullptr) {
      ++stats->bridge_walks;
    }
  }
  return pos;
}

std::size_t Structure::total_aug_entries() const {
  std::size_t total = 0;
  for (const auto& a : aug_) {
    total += a.size();
  }
  return total;
}

std::string Structure::verify_properties() const {
  const cat::Tree& t = *tree_;
  for (std::size_t vi = 0; vi < t.num_nodes(); ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const AugCatalog& a = aug_[v];
    if (a.keys.empty() || a.keys.back() != cat::kInfinity) {
      return "augmented catalog missing +inf terminal at node " +
             std::to_string(vi);
    }
    for (std::size_t i = 1; i < a.keys.size(); ++i) {
      if (a.keys[i - 1] >= a.keys[i]) {
        return "augmented keys not strictly increasing at node " +
               std::to_string(vi);
      }
    }
    // proper[] correctness.
    const auto& own = t.catalog(v);
    for (std::size_t i = 0; i < a.keys.size(); ++i) {
      const std::size_t expect = own.find(a.keys[i]);
      if (static_cast<std::size_t>(a.proper[i]) != expect) {
        return "proper[] wrong at node " + std::to_string(vi);
      }
    }
    const auto kids = t.children(v);
    for (std::uint32_t e = 0; e < kids.size(); ++e) {
      const AugCatalog& kid = aug_[kids[e]];
      std::int32_t prev = -1;
      for (std::size_t i = 0; i < a.keys.size(); ++i) {
        const std::int32_t br = a.bridge_at(e, i);
        if (br < 0 || static_cast<std::size_t>(br) >= kid.size()) {
          return "bridge out of range at node " + std::to_string(vi);
        }
        // Property 3: bridges do not cross.
        if (br < prev) {
          return "bridges cross at node " + std::to_string(vi);
        }
        prev = br;
        // Bridges are exact successor positions.
        if (kid.keys[br] < a.keys[i]) {
          return "bridge key below entry key at node " + std::to_string(vi);
        }
        if (br > 0 && kid.keys[br - 1] >= a.keys[i]) {
          return "bridge is not the successor position at node " +
                 std::to_string(vi);
        }
        // Property 1 (fan out): every possible find(y, kid) with
        // aug_find(v, y) == i lies within b entries before the bridge.
        const Key prev_key_bound =
            (i == 0) ? std::numeric_limits<Key>::min() : a.keys[i - 1];
        std::size_t lo = static_cast<std::size_t>(br);
        while (lo > 0 && kid.keys[lo - 1] > prev_key_bound) {
          --lo;
        }
        if (static_cast<std::size_t>(br) - lo > k_) {
          return "fan-out bound violated at node " + std::to_string(vi) +
                 " (gap " + std::to_string(br - lo) + " > b=" +
                 std::to_string(k_) + ")";
        }
      }
      // Property 2: adjacent entries bridge <= 2b+1 apart.
      for (std::size_t i = 1; i < a.keys.size(); ++i) {
        const std::int32_t d = a.bridge_at(e, i) - a.bridge_at(e, i - 1);
        if (d > static_cast<std::int32_t>(2 * k_ + 1)) {
          return "adjacent bridges too far apart at node " +
                 std::to_string(vi);
        }
      }
      // Mutual density (bidirectional property used by Lemma 1): between
      // adjacent entries of the child's catalog there are at most k
      // entries of this catalog.
      std::size_t ai = 0;
      for (std::size_t wi = 1; wi < kid.keys.size(); ++wi) {
        std::size_t between = 0;
        while (ai < a.keys.size() && a.keys[ai] <= kid.keys[wi - 1]) {
          ++ai;
        }
        std::size_t probe = ai;
        while (probe < a.keys.size() && a.keys[probe] < kid.keys[wi]) {
          ++probe;
          ++between;
        }
        if (between > k_) {
          return "reverse density violated at node " + std::to_string(vi);
        }
      }
    }
  }
  return {};
}

}  // namespace fc
