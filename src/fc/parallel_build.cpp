#include "fc/parallel_build.hpp"

#include <algorithm>
#include <cassert>

#include "pram/memory.hpp"
#include "pram/primitives.hpp"

namespace fc {

namespace {

/// A view of one input list of a ranking merge: either a key vector
/// directly, or the (virtual) back-sample sequence of a key vector.
struct ListView {
  const std::vector<Key>* keys = nullptr;
  bool sampled = false;
  SampleIndex si{};

  [[nodiscard]] std::size_t size() const {
    return sampled ? si.count() : keys->size();
  }
  [[nodiscard]] Key at(std::size_t t) const {
    return sampled ? (*keys)[si.position(t)] : (*keys)[t];
  }
  [[nodiscard]] std::size_t lower(Key y) const {
    std::size_t lo = 0, hi = size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (at(mid) < y) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  [[nodiscard]] std::size_t upper(Key y) const {
    std::size_t lo = 0, hi = size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (at(mid) <= y) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

ListView direct_view(const std::vector<Key>& keys) {
  return ListView{&keys, false, {}};
}

ListView sample_view(const std::vector<Key>& keys, std::uint32_t k) {
  return ListView{&keys, true, SampleIndex{keys.size(), k}};
}

struct ElemDesc {
  std::uint32_t node;  // index into the level's node list
  std::uint32_t list;  // which input list of that node
  std::uint32_t idx;   // element index within the list
};

/// One level-synchronous round of ranking merges: for each node of the
/// level, merge (and deduplicate) its input lists into `out[node]`.
/// Charged as O(log n) steps with level_total processors.
void merge_level(pram::Machine& m,
                 const std::vector<std::vector<ListView>>& lists,
                 std::uint64_t logn,
                 std::vector<std::vector<Key>*> const& outs) {
  std::vector<std::size_t> node_offset(lists.size() + 1, 0);
  std::vector<ElemDesc> descs;
  std::size_t max_lists = 1;
  for (std::size_t vi = 0; vi < lists.size(); ++vi) {
    std::size_t total_v = 0;
    max_lists = std::max(max_lists, lists[vi].size());
    for (std::uint32_t li = 0; li < lists[vi].size(); ++li) {
      for (std::size_t e = 0; e < lists[vi][li].size(); ++e) {
        descs.push_back(ElemDesc{static_cast<std::uint32_t>(vi), li,
                                 static_cast<std::uint32_t>(e)});
      }
      total_v += lists[vi][li].size();
    }
    node_offset[vi + 1] = node_offset[vi] + total_v;
  }
  const std::size_t level_total = node_offset.back();
  if (level_total == 0) {
    return;
  }

  // Ranking merge: each element finds its slot in the merged-with-
  // duplicates sequence of its node (ties broken by list index).
  pram::SharedArray<Key> merged(level_total);
  m.exec_k(level_total, max_lists * (logn + 1), [&](std::size_t pid) {
    const ElemDesc& e = descs[pid];
    const auto& lv = lists[e.node];
    const Key key = lv[e.list].at(e.idx);
    std::size_t pos = e.idx;
    for (std::uint32_t li = 0; li < lv.size(); ++li) {
      if (li == e.list) {
        continue;
      }
      pos += (li < e.list) ? lv[li].upper(key) : lv[li].lower(key);
    }
    merged.write(node_offset[e.node] + pos, key);
  });

  // Keep the first occurrence of each key per node.
  pram::SharedArray<std::uint8_t> keep(level_total);
  m.exec(level_total, [&](std::size_t pid) {
    const ElemDesc& e = descs[pid];
    const bool first = pid == node_offset[e.node];
    keep.write(pid,
               (first || merged.read(pid) != merged.read(pid - 1)) ? 1 : 0);
  });
  pram::SharedArray<std::size_t> survivors;
  const std::size_t kept = pram::pack_indices(m, keep, survivors);
  m.charge((kept + m.processors() - 1) / m.processors(), kept);
  {
    std::size_t vi = 0;
    for (std::size_t s = 0; s < kept; ++s) {
      const std::size_t pos = survivors[s];
      while (pos >= node_offset[vi + 1]) {
        ++vi;
      }
      outs[vi]->push_back(merged[pos]);
    }
  }
}

}  // namespace

Structure build_parallel(const cat::Tree& tree, pram::Machine& m,
                         std::uint32_t sample_k) {
  const std::uint32_t k = sample_k == 0 ? auto_sample_k(tree) : sample_k;
  assert(k > tree.max_degree());

  const std::size_t nn = tree.num_nodes();
  const std::uint64_t logn = pram::ceil_log2(
      std::max<std::size_t>(2, tree.total_catalog_size() + nn));

  // Phase 1 (bottom-up sweep): up[v] = C(v) u back-samples of children.
  std::vector<std::vector<Key>> own(nn);
  for (std::size_t v = 0; v < nn; ++v) {
    const auto keys = tree.catalog(static_cast<NodeId>(v)).keys();
    own[v].assign(keys.begin(), keys.end());
  }
  std::vector<std::vector<Key>> up(nn);
  for (std::uint32_t d = tree.height() + 1; d-- > 0;) {
    const auto nodes = tree.level(d);
    std::vector<std::vector<ListView>> lists(nodes.size());
    std::vector<std::vector<Key>*> outs(nodes.size());
    for (std::size_t vi = 0; vi < nodes.size(); ++vi) {
      const NodeId v = nodes[vi];
      lists[vi].push_back(direct_view(own[v]));
      for (NodeId w : tree.children(v)) {
        lists[vi].push_back(sample_view(up[w], k));
      }
      outs[vi] = &up[v];
    }
    merge_level(m, lists, logn, outs);
  }

  // Phase 2 (top-down sweep): A(v) = up[v] u back-samples of A(parent).
  std::vector<AugCatalog> aug(nn);
  aug[tree.root()].keys = std::move(up[tree.root()]);
  for (std::uint32_t d = 1; d <= tree.height(); ++d) {
    const auto nodes = tree.level(d);
    std::vector<std::vector<ListView>> lists(nodes.size());
    std::vector<std::vector<Key>*> outs(nodes.size());
    for (std::size_t vi = 0; vi < nodes.size(); ++vi) {
      const NodeId v = nodes[vi];
      lists[vi].push_back(direct_view(up[v]));
      lists[vi].push_back(sample_view(aug[tree.parent(v)].keys, k));
      outs[vi] = &aug[v].keys;
    }
    merge_level(m, lists, logn, outs);
  }

  // proper[] and bridges: one binary search per entry / per (entry, child)
  // pair, flattened over the whole tree.
  struct EntryDesc {
    NodeId v;
    std::uint32_t idx;
  };
  std::vector<EntryDesc> entries;
  for (std::size_t v = 0; v < nn; ++v) {
    AugCatalog& a = aug[v];
    a.num_children = static_cast<std::uint32_t>(tree.degree(NodeId(v)));
    a.proper.resize(a.keys.size());
    a.bridge.resize(a.keys.size() * a.num_children);
    for (std::uint32_t i = 0; i < a.keys.size(); ++i) {
      entries.push_back(EntryDesc{static_cast<NodeId>(v), i});
    }
  }
  m.exec_k(entries.size(), logn + 1, [&](std::size_t pid) {
    const auto [v, idx] = entries[pid];
    AugCatalog& a = aug[v];
    a.proper[idx] =
        static_cast<std::int32_t>(tree.catalog(v).find(a.keys[idx]));
  });

  std::vector<std::pair<std::uint32_t, std::uint32_t>> bdesc;  // (entry, slot)
  for (std::uint32_t ei = 0; ei < entries.size(); ++ei) {
    for (std::uint32_t c = 0; c < tree.degree(entries[ei].v); ++c) {
      bdesc.emplace_back(ei, c);
    }
  }
  m.exec_k(bdesc.size(), logn + 1, [&](std::size_t pid) {
    const auto [ei, slot] = bdesc[pid];
    const auto [v, idx] = entries[ei];
    AugCatalog& a = aug[v];
    const NodeId w = tree.children(v)[slot];
    const auto& wkeys = aug[w].keys;
    // Exact successor position of the entry key in the child's catalog.
    std::size_t lo = 0, hi = wkeys.size();
    const Key key = a.keys[idx];
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (wkeys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    a.bridge[static_cast<std::size_t>(slot) * a.keys.size() + idx] =
        static_cast<std::int32_t>(lo);
  });
  return Structure::from_parts(tree, k, std::move(aug));
}

}  // namespace fc
