#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/tree.hpp"

namespace fc {

using cat::Key;
using cat::NodeId;

/// The augmented catalog of one tree node after fractional cascading.
///
/// Augmented entries are the node's own ("proper") catalog entries plus
/// "dummy" entries sampled from the neighbours' augmented catalogs (every
/// k-th entry counted from the back, so the +infinity terminal is always
/// sampled): a bottom-up pass samples the children, a top-down pass
/// samples the parent — the tree specialization of the paper's
/// *bidirectional* cascading.  `keys` is strictly increasing and ends with
/// +infinity.
struct AugCatalog {
  std::vector<Key> keys;

  /// proper[i]: index in the node's *original* catalog of the smallest
  /// proper entry with key >= keys[i].  Because the original catalog ends
  /// with +infinity this is always a valid index, so
  /// original.find(y) == proper[aug_find(y)].
  std::vector<std::int32_t> proper;

  /// Bridges, flattened by child slot: bridge[e * keys.size() + i] is the
  /// exact successor position in child e's augmented catalog — the
  /// smallest index whose key >= keys[i].  By the mutual-density property
  /// of the bidirectional construction, the true find(y, child) is at most
  /// `b` entries before that position (paper's "fan out" property 1).
  std::vector<std::int32_t> bridge;

  std::uint32_t num_children = 0;

  [[nodiscard]] std::size_t size() const { return keys.size(); }

  [[nodiscard]] std::int32_t bridge_at(std::uint32_t child_slot,
                                       std::size_t entry) const {
    return bridge[static_cast<std::size_t>(child_slot) * keys.size() + entry];
  }
};

/// Sampling geometry shared by the sequential and parallel builders: the
/// sampled positions of an augmented catalog of size `size` with sampling
/// factor k are size-1, size-1-k, size-1-2k, ...  (ascending order below).
struct SampleIndex {
  std::size_t size = 0;
  std::uint32_t k = 1;

  [[nodiscard]] std::size_t count() const {
    return size == 0 ? 0 : (size + k - 1) / k;
  }
  /// Position in the augmented catalog of sample number t (ascending).
  [[nodiscard]] std::size_t position(std::size_t t) const {
    return (size - 1) - (count() - 1 - t) * k;
  }
};

/// Statistics a search can optionally collect (used by tests/benches to
/// check the O(log n + m b) sequential bound).
struct SearchStats {
  std::uint64_t comparisons = 0;
  std::uint64_t bridge_walks = 0;  ///< total walk-back distance
  std::uint64_t nodes_visited = 0;
};

}  // namespace fc
