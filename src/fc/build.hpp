#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fc/types.hpp"
#include "robust/status.hpp"

namespace fc {

/// The fractional cascaded data structure S over a tree of catalogs
/// (paper Step 1 of preprocessing; built by [1] in the paper, here by a
/// Chazelle–Guibas-style bottom-up sampler or its PRAM parallelization).
///
/// Supports the three properties the paper relies on:
///   1. "fan out": find(y, child) is within b entries of the bridge from
///      find(y, parent);
///   2. adjacent parent entries bridge to child entries <= 2b+1 apart;
///   3. bridges do not cross.
class Structure {
 public:
  /// Bottom-up sequential construction.  `sample_k` is the sampling factor
  /// (every k-th entry of a child's augmented catalog is promoted); it must
  /// exceed the maximum degree for O(n) total size.  Pass 0 to choose
  /// max(4, 2 * max_degree) automatically.  The fan-out bound is b == k.
  static Structure build(const cat::Tree& tree, std::uint32_t sample_k = 0);

  /// Fallible variant of build() for untrusted trees: validates the input
  /// (non-empty finalized tree, sorted catalogs, sampling factor
  /// k > max_degree) and returns a Status instead of tripping an assert /
  /// invoking UB.  The happy path then delegates to build().
  static coop::Expected<Structure> build_checked(const cat::Tree& tree,
                                                 std::uint32_t sample_k = 0);

  [[nodiscard]] const cat::Tree& tree() const { return *tree_; }
  [[nodiscard]] std::uint32_t sample_k() const { return k_; }
  /// The paper's fan-out constant b.
  [[nodiscard]] std::uint32_t fanout_bound() const { return k_; }

  [[nodiscard]] const AugCatalog& aug(NodeId v) const { return aug_[v]; }

  /// Binary search: index of smallest augmented entry >= y at node v.
  [[nodiscard]] std::size_t aug_find(NodeId v, Key y,
                                     SearchStats* stats = nullptr) const;

  /// Move from entry `i` at node v (which must satisfy
  /// i == aug_find(v, y)) to aug_find(child, y) by following the bridge
  /// and walking back at most b entries.
  [[nodiscard]] std::size_t follow_bridge(NodeId v, std::size_t i,
                                          std::uint32_t child_slot, Key y,
                                          SearchStats* stats = nullptr) const;

  /// Map an augmented index at v to the original-catalog index of
  /// find(y, v) — valid when i == aug_find(v, y).
  [[nodiscard]] std::size_t to_proper(NodeId v, std::size_t i) const {
    return static_cast<std::size_t>(aug_[v].proper[i]);
  }

  /// Total augmented entries over all nodes (space, in entries).
  [[nodiscard]] std::size_t total_aug_entries() const;

  /// Verify the paper's properties 1–3 exhaustively (slow; tests only).
  /// Returns an empty string on success, else a description of the failure.
  [[nodiscard]] std::string verify_properties() const;

  /// Used by the parallel builder, which fills the same representation.
  static Structure from_parts(const cat::Tree& tree, std::uint32_t k,
                              std::vector<AugCatalog> aug) {
    Structure s;
    s.tree_ = &tree;
    s.k_ = k;
    s.aug_ = std::move(aug);
    return s;
  }

 private:
  Structure() = default;

  const cat::Tree* tree_ = nullptr;
  std::uint32_t k_ = 0;
  std::vector<AugCatalog> aug_;
};

/// Choose the automatic sampling factor for a tree.
[[nodiscard]] std::uint32_t auto_sample_k(const cat::Tree& tree);

}  // namespace fc
