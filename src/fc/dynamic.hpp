#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fc/build.hpp"
#include "fc/search.hpp"

namespace fc {

/// A semi-dynamic tree of catalogs: insertions and deletions of catalog
/// entries with fractional cascaded path queries in between.
///
/// The paper lists cooperative *updates* as open problem 4 and cites
/// Mehlhorn–Naher's sequential dynamic fractional cascading
/// (O(log log n) amortized update).  This class is the standard
/// global-rebuilding baseline for that problem: updates go into per-node
/// sorted delta buffers, queries combine the last snapshot's cascaded
/// search with a delta correction, and the cascading structure is rebuilt
/// whenever pending updates exceed `rebuild_fraction` of the catalog
/// total — O(log n + m b + D_v) query (D_v = deletions pending at the
/// node) and amortized O(1/rebuild_fraction) rebuild work per update.
class DynamicStructure {
 public:
  /// Result of find(y, v) on the *current* (snapshot + deltas) catalog.
  struct Entry {
    Key key = cat::kInfinity;
    std::uint64_t payload = cat::Catalog::kNoPayload;
  };

  /// Takes ownership of the tree (its catalogs seed the initial state).
  explicit DynamicStructure(cat::Tree tree, double rebuild_fraction = 0.25);

  DynamicStructure(const DynamicStructure&) = delete;

  [[nodiscard]] const cat::Tree& tree() const { return tree_; }
  [[nodiscard]] const Structure& snapshot() const { return *fc_; }

  /// Insert a (key, payload) entry into v's catalog.  Duplicate keys in
  /// one catalog are rejected (the paper assumes distinct entries).
  bool insert(NodeId v, Key key,
              std::uint64_t payload = cat::Catalog::kNoPayload);

  /// Remove the entry with this key from v's catalog; false if absent.
  bool erase(NodeId v, Key key);

  /// Smallest current entry >= y in v's catalog (the +infinity sentinel
  /// if none).
  [[nodiscard]] Entry find(NodeId v, Key y) const;

  /// Fractional cascaded search along a root-to-leaf chain: one binary
  /// search at the head, then bridges on the snapshot, with the delta
  /// correction applied per node.
  [[nodiscard]] std::vector<Entry> search(std::span<const NodeId> path,
                                          Key y,
                                          SearchStats* stats = nullptr) const;

  /// Apply all pending deltas and rebuild the cascading structure now.
  void rebuild();

  [[nodiscard]] std::size_t pending_updates() const { return pending_; }
  [[nodiscard]] std::size_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::size_t size() const { return live_entries_; }

 private:
  /// Smallest snapshot entry >= y at v that is not pending-deleted,
  /// starting the scan at snapshot index `idx`.
  [[nodiscard]] Entry snapshot_successor(NodeId v, std::size_t idx) const;
  [[nodiscard]] Entry delta_successor(NodeId v, Key y) const;
  void maybe_rebuild();

  cat::Tree tree_;
  std::unique_ptr<Structure> fc_;
  double rebuild_fraction_;
  // Per-node deltas, kept sorted by key.
  std::vector<std::vector<Entry>> inserted_;
  std::vector<std::vector<Key>> deleted_;
  std::size_t pending_ = 0;
  std::size_t live_entries_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace fc
