#pragma once

#include "fc/build.hpp"
#include "pram/machine.hpp"

namespace fc {

/// PRAM construction of the fractional cascaded structure (paper Step 1).
///
/// The paper cites Atallah–Cole–Goodrich cascading divide-and-conquer,
/// which achieves O(log n) depth and O(n) work on an EREW PRAM.  This
/// implementation substitutes level-synchronous ranking merges (see
/// DESIGN.md): per tree level one ranking-merge round, giving the *same
/// data structure* with O(log n) depth per level — O(log^2 n) depth and
/// O(n log n) work total on a CREW PRAM.  The preprocessing bench (E3)
/// reports the measured depth/work against both curves.
///
/// The produced structure is bit-identical to `Structure::build` with the
/// same sampling factor (tests assert this).
[[nodiscard]] Structure build_parallel(const cat::Tree& tree,
                                       pram::Machine& m,
                                       std::uint32_t sample_k = 0);

}  // namespace fc
