#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fc/build.hpp"

namespace fc {

/// Result of a search: for each node on the search path (root first), the
/// index in that node's *original* catalog of find(y, v) — the smallest
/// catalog entry >= y.
struct PathSearchResult {
  std::vector<NodeId> path;
  std::vector<std::size_t> proper_index;  ///< find(y, v) per path node
  std::vector<std::size_t> aug_index;     ///< augmented index per path node
};

/// Sequential explicit search (Chazelle–Guibas): binary search at the first
/// node, then one bridge hop per subsequent node.  O(log n + m b) time for
/// a path of length m.  `path` must start at the root and each node must be
/// a child of its predecessor.
[[nodiscard]] PathSearchResult search_explicit(const Structure& s,
                                               std::span<const NodeId> path,
                                               Key y,
                                               SearchStats* stats = nullptr);

/// Branch oracle for implicit searches: given the query, the node, and
/// find(y, v) (original-catalog index), return the child slot to descend
/// into.  Returning any value at a leaf is allowed (it is ignored).
using BranchFn =
    std::function<std::uint32_t(NodeId v, std::size_t proper_index)>;

/// Sequential implicit search from the root to a leaf: the branch taken at
/// each node is branch(v, find(y, v)).  O(log n + m b).
[[nodiscard]] PathSearchResult search_implicit(const Structure& s, Key y,
                                               const BranchFn& branch,
                                               SearchStats* stats = nullptr);

/// Baseline without fractional cascading: independent binary search in each
/// catalog on the path.  O(m log n).  Used by benches as the comparator the
/// paper's Section 1 motivates against.
[[nodiscard]] PathSearchResult search_binary_baseline(
    const cat::Tree& tree, std::span<const NodeId> path, Key y,
    SearchStats* stats = nullptr);

/// Check that `path` starts at the root of `tree` and is a valid
/// parent-to-child chain.
[[nodiscard]] bool valid_root_path(const cat::Tree& tree,
                                   std::span<const NodeId> path);

}  // namespace fc
