#include "range/retrieval.hpp"

#include <algorithm>

#include "pram/memory.hpp"
#include "pram/primitives.hpp"

namespace range {

std::size_t total_count(const std::vector<AnswerRange>& ranges) {
  std::size_t total = 0;
  for (const auto& r : ranges) {
    total += r.count();
  }
  return total;
}

std::vector<std::uint64_t> retrieve_direct(
    const cat::Tree& tree, pram::Machine& m,
    const std::vector<AnswerRange>& ranges) {
  const std::size_t nr = ranges.size();
  if (nr == 0) {
    return {};
  }
  // Prefix sum over the range sizes allocates one processor per item.
  pram::SharedArray<std::size_t> sizes(nr);
  m.exec(nr, [&](std::size_t i) { sizes.write(i, ranges[i].count()); });
  pram::SharedArray<std::size_t> offsets;
  pram::exclusive_scan(m, sizes, offsets, std::size_t{0},
                       [](std::size_t a, std::size_t b) { return a + b; });
  const std::size_t total = offsets[nr - 1] + ranges[nr - 1].count();
  std::vector<std::uint64_t> out(total);
  if (total == 0) {
    return out;
  }
  // One instruction: processor j finds its range by binary search over the
  // offsets and copies its item (the paper assigns processors directly;
  // the search is the standard O(1)-amortized decoding).
  m.exec_k(total, pram::ceil_log2(nr) + 1, [&](std::size_t j) {
    std::size_t lo = 0, hi = nr - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (offsets[mid] <= j) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const AnswerRange& r = ranges[lo];
    const std::size_t within = j - offsets[lo];
    out[j] = tree.catalog(r.node).payload(r.lo + within);
  });
  return out;
}

std::vector<AnswerRange> retrieve_indirect(
    pram::Machine& m, const std::vector<AnswerRange>& ranges) {
  const std::size_t nr = ranges.size();
  std::vector<AnswerRange> list;
  if (nr == 0) {
    return list;
  }
  const std::size_t logn2 =
      std::size_t(pram::ceil_log2(nr + 1)) * pram::ceil_log2(nr + 1);
  std::vector<std::int64_t> next(nr + 1, -1);
  if (m.processors() >= logn2 && m.model() == pram::Model::kCrcw) {
    // CRCW (priority-min) linking: one processor per (i, j) pair writes j
    // into next[i] if range j is nonempty and j >= i; the minimum write
    // wins.  One O(1) round with nr^2 <= log^2 n <= p processors.
    m.exec(nr * nr, [&](std::size_t pid) {
      const std::size_t i = pid / nr;  // predecessor slot (0 = head)
      const std::size_t j = pid % nr;
      if (j >= i && ranges[j].count() > 0) {
        // Priority-CRCW: smallest j wins.
        if (next[i] == -1 || next[i] > std::int64_t(j)) {
          next[i] = std::int64_t(j);
        }
      }
    });
  } else {
    // Prefix fallback: O(log nr / log p) via scan-based compaction.
    pram::SharedArray<std::uint8_t> flags(nr);
    m.exec(nr, [&](std::size_t i) {
      flags.write(i, ranges[i].count() > 0 ? 1 : 0);
    });
    pram::SharedArray<std::size_t> idx;
    const std::size_t cnt = pram::pack_indices(m, flags, idx);
    for (std::size_t t = 0; t < cnt; ++t) {
      list.push_back(ranges[idx[t]]);
    }
    return list;
  }
  // Materialize the linked list (head at slot 0 meaning "first nonempty
  // at or after 0").
  std::int64_t cur = next[0];
  while (cur != -1) {
    list.push_back(ranges[std::size_t(cur)]);
    cur = (std::size_t(cur) + 1 < nr) ? next[std::size_t(cur) + 1] : -1;
  }
  return list;
}

}  // namespace range
