#include "range/segment_tree.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pram/coop_search.hpp"

namespace range {

coop::Expected<SegmentIntersectionTree> SegmentIntersectionTree::build_checked(
    std::vector<VSegment> segments) {
  KeyCodec codec{static_cast<cat::Key>(
      std::bit_ceil(std::max<std::size_t>(2, segments.size() + 1)))};
  const cat::Key limit = codec.max_abs_coord();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const VSegment& s = segments[i];
    if (s.ylo >= s.yhi) {
      return coop::Status::invalid_argument(
          "segment " + std::to_string(i) + " has a degenerate span (ylo=" +
          std::to_string(s.ylo) + " >= yhi=" + std::to_string(s.yhi) + ")");
    }
    for (const geom::Coord c : {s.x, s.ylo, s.yhi}) {
      if (c < -limit || c > limit) {
        return coop::Status::invalid_argument(
            "segment " + std::to_string(i) +
            " has a coordinate outside the encodable range (|c| <= " +
            std::to_string(limit) + ")");
      }
    }
  }
  return SegmentIntersectionTree(std::move(segments));
}

SegmentIntersectionTree::SegmentIntersectionTree(std::vector<VSegment> segments)
    : segments_(std::move(segments)) {
  // Elementary slabs between distinct y endpoints.
  for (const auto& s : segments_) {
    assert(s.ylo < s.yhi);
    boundaries_.push_back(s.ylo);
    boundaries_.push_back(s.yhi);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  const std::size_t raw_slabs =
      boundaries_.empty() ? 1 : boundaries_.size() + 1;
  num_slabs_ = std::bit_ceil(std::max<std::size_t>(2, raw_slabs));
  const std::uint32_t height =
      static_cast<std::uint32_t>(std::bit_width(num_slabs_) - 1);
  const std::size_t num_nodes = 2 * num_slabs_ - 1;

  tree_ = std::make_unique<cat::Tree>(num_nodes);
  for (std::size_t v = 0; v + 1 < num_nodes; v += 1) {
    const std::size_t l = 2 * v + 1, r = 2 * v + 2;
    if (l < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(l));
    }
    if (r < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(r));
    }
  }
  tree_->finalize();

  codec_.stride = static_cast<cat::Key>(
      std::bit_ceil(std::max<std::size_t>(2, segments_.size() + 1)));

  // Canonical allocation: slab index i covers y in
  // [boundary[i-1], boundary[i]) with virtual -inf / +inf at the ends.
  // Node v at depth d with index j covers slabs [j*W, (j+1)*W), W =
  // num_slabs >> d.
  std::vector<std::vector<std::uint64_t>> assigned(num_nodes);
  const auto slab_of = [&](geom::Coord y) -> std::size_t {
    // First slab whose interval contains y: index = number of boundaries
    // <= y.
    return static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), y) -
        boundaries_.begin());
  };
  for (std::size_t id = 0; id < segments_.size(); ++id) {
    // Slabs fully inside [ylo, yhi): slab_of(ylo) .. slab_of(yhi)-1.
    const std::size_t first = slab_of(segments_[id].ylo);
    const std::size_t last = slab_of(segments_[id].yhi);  // exclusive
    // Recursive canonical decomposition of [first, last).
    struct Frame {
      std::size_t v, lo, hi;  // node covers slabs [lo, hi)
    };
    std::vector<Frame> stack{{0, 0, num_slabs_}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.lo >= last || f.hi <= first) {
        continue;
      }
      if (first <= f.lo && f.hi <= last) {
        assigned[f.v].push_back(id);
        continue;
      }
      const std::size_t mid = (f.lo + f.hi) / 2;
      stack.push_back(Frame{2 * f.v + 1, f.lo, mid});
      stack.push_back(Frame{2 * f.v + 2, mid, f.hi});
    }
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    auto& list = assigned[v];
    std::sort(list.begin(), list.end(), [&](std::uint64_t a, std::uint64_t b) {
      return codec_.encode(segments_[a].x, a) <
             codec_.encode(segments_[b].x, b);
    });
    std::vector<cat::Key> keys;
    keys.reserve(list.size());
    for (std::uint64_t id : list) {
      keys.push_back(codec_.encode(segments_[id].x, id));
    }
    tree_->set_catalog(cat::NodeId(v), cat::Catalog::from_sorted(keys, list));
  }
  (void)height;

  fc_ = std::make_unique<fc::Structure>(fc::Structure::build(*tree_));
  coop_ =
      std::make_unique<coop::CoopStructure>(coop::CoopStructure::build(*fc_));
}

std::vector<cat::NodeId> SegmentIntersectionTree::path_for(
    geom::Coord y) const {
  const std::size_t slab = static_cast<std::size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), y) -
      boundaries_.begin());
  std::vector<cat::NodeId> path;
  std::size_t v = 0, lo = 0, hi = num_slabs_;
  for (;;) {
    path.push_back(cat::NodeId(v));
    if (hi - lo == 1) {
      break;
    }
    const std::size_t mid = (lo + hi) / 2;
    if (slab < mid) {
      v = 2 * v + 1;
      hi = mid;
    } else {
      v = 2 * v + 2;
      lo = mid;
    }
  }
  return path;
}

std::vector<AnswerRange> SegmentIntersectionTree::ranges_from(
    const std::vector<cat::NodeId>& path, const std::vector<std::size_t>& lo,
    const std::vector<std::size_t>& hi) const {
  std::vector<AnswerRange> out;
  out.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    out.push_back(AnswerRange{path[i], static_cast<std::uint32_t>(lo[i]),
                              static_cast<std::uint32_t>(hi[i])});
  }
  return out;
}

std::vector<AnswerRange> SegmentIntersectionTree::query_ranges(
    geom::Coord y, geom::Coord x1, geom::Coord x2,
    fc::SearchStats* stats) const {
  const auto path = path_for(y);
  const auto lo = fc::search_explicit(*fc_, path, codec_.lower(x1), stats);
  const auto hi =
      fc::search_explicit(*fc_, path, codec_.upper_exclusive(x2), stats);
  return ranges_from(path, lo.proper_index, hi.proper_index);
}

std::vector<AnswerRange> SegmentIntersectionTree::coop_query_ranges(
    pram::Machine& m, geom::Coord y, geom::Coord x1, geom::Coord x2) const {
  // Dictionary search on y (cooperative), then path decode.
  (void)pram::coop_lower_bound<geom::Coord>(
      m, std::span<const geom::Coord>(boundaries_), y);
  const auto path = path_for(y);
  m.charge(1, path.size());
  const auto lo = coop::coop_search_explicit(*coop_, m, path, codec_.lower(x1));
  const auto hi =
      coop::coop_search_explicit(*coop_, m, path, codec_.upper_exclusive(x2));
  return ranges_from(path, lo.proper_index, hi.proper_index);
}

std::vector<std::uint64_t> SegmentIntersectionTree::query_brute(
    geom::Coord y, geom::Coord x1, geom::Coord x2) const {
  std::vector<std::uint64_t> out;
  for (std::size_t id = 0; id < segments_.size(); ++id) {
    const auto& s = segments_[id];
    if (s.ylo <= y && y < s.yhi && x1 <= s.x && s.x <= x2) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace range
