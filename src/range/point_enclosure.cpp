#include "range/point_enclosure.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "pram/primitives.hpp"

namespace range {

void PointEnclosureTree::Stabber::build(std::vector<geom::Coord> values) {
  y2 = std::move(values);
  const std::size_t m = y2.size();
  if (m == 0) {
    return;
  }
  const std::size_t base = std::bit_ceil(m);
  maxv.assign(2 * base, std::numeric_limits<geom::Coord>::min());
  for (std::size_t i = 0; i < m; ++i) {
    maxv[base + i] = y2[i];
  }
  for (std::size_t i = base - 1; i >= 1; --i) {
    maxv[i] = std::max(maxv[2 * i], maxv[2 * i + 1]);
  }
}

std::size_t PointEnclosureTree::Stabber::report(
    std::size_t prefix, geom::Coord threshold, const cat::Catalog& catalog,
    std::vector<std::uint64_t>& out) const {
  if (y2.empty() || prefix == 0) {
    return 1;
  }
  const std::size_t base = maxv.size() / 2;
  std::size_t comparisons = 0;
  // Descend from the root, pruning subtrees whose max < threshold or
  // whose range lies at/after `prefix`.
  struct Frame {
    std::size_t v, lo, hi;
  };
  std::vector<Frame> stack{{1, 0, base}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    ++comparisons;
    if (f.lo >= prefix || maxv[f.v] < threshold) {
      continue;
    }
    if (f.hi - f.lo == 1) {
      out.push_back(catalog.payload(f.lo));
      continue;
    }
    const std::size_t mid = (f.lo + f.hi) / 2;
    stack.push_back(Frame{2 * f.v, f.lo, mid});
    stack.push_back(Frame{2 * f.v + 1, mid, f.hi});
  }
  return comparisons;
}

coop::Expected<PointEnclosureTree> PointEnclosureTree::build_checked(
    std::vector<Rect> rects) {
  KeyCodec codec{static_cast<cat::Key>(
      std::bit_ceil(std::max<std::size_t>(2, rects.size() + 1)))};
  const cat::Key limit = codec.max_abs_coord();
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const Rect& r = rects[i];
    if (r.x1 > r.x2 || r.y1 > r.y2) {
      return coop::Status::invalid_argument(
          "rectangle " + std::to_string(i) +
          " is degenerate (needs x1 <= x2 and y1 <= y2)");
    }
    for (const geom::Coord c : {r.x1, r.x2, r.y1, r.y2}) {
      if (c < -limit || c > limit) {
        return coop::Status::invalid_argument(
            "rectangle " + std::to_string(i) +
            " has a coordinate outside the encodable range (|c| <= " +
            std::to_string(limit) + ")");
      }
    }
  }
  return PointEnclosureTree(std::move(rects));
}

PointEnclosureTree::PointEnclosureTree(std::vector<Rect> rects)
    : rects_(std::move(rects)) {
  for (const auto& r : rects_) {
    assert(r.x1 <= r.x2 && r.y1 <= r.y2);
    boundaries_.push_back(r.x1);
    boundaries_.push_back(r.x2 + 1);  // half-open canonical decomposition
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  const std::size_t raw = boundaries_.empty() ? 1 : boundaries_.size() + 1;
  num_slabs_ = std::bit_ceil(std::max<std::size_t>(2, raw));
  const std::size_t num_nodes = 2 * num_slabs_ - 1;

  tree_ = std::make_unique<cat::Tree>(num_nodes);
  for (std::size_t v = 0; v + 1 < num_nodes; ++v) {
    const std::size_t l = 2 * v + 1, r = 2 * v + 2;
    if (l < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(l));
    }
    if (r < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(r));
    }
  }
  tree_->finalize();
  codec_.stride = static_cast<cat::Key>(
      std::bit_ceil(std::max<std::size_t>(2, rects_.size() + 1)));

  const auto slab_of = [&](geom::Coord x) -> std::size_t {
    return static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
        boundaries_.begin());
  };
  std::vector<std::vector<std::uint64_t>> assigned(num_nodes);
  for (std::size_t id = 0; id < rects_.size(); ++id) {
    const std::size_t first = slab_of(rects_[id].x1);
    const std::size_t last = slab_of(rects_[id].x2 + 1);  // exclusive
    struct Frame {
      std::size_t v, lo, hi;
    };
    std::vector<Frame> stack{{0, 0, num_slabs_}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.lo >= last || f.hi <= first) {
        continue;
      }
      if (first <= f.lo && f.hi <= last) {
        assigned[f.v].push_back(id);
        continue;
      }
      const std::size_t mid = (f.lo + f.hi) / 2;
      stack.push_back(Frame{2 * f.v + 1, f.lo, mid});
      stack.push_back(Frame{2 * f.v + 2, mid, f.hi});
    }
  }
  stabbers_.resize(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    auto& list = assigned[v];
    std::sort(list.begin(), list.end(), [&](std::uint64_t a, std::uint64_t b) {
      return codec_.encode(rects_[a].y1, a) < codec_.encode(rects_[b].y1, b);
    });
    std::vector<cat::Key> keys;
    std::vector<geom::Coord> y2s;
    keys.reserve(list.size());
    y2s.reserve(list.size());
    for (std::uint64_t id : list) {
      keys.push_back(codec_.encode(rects_[id].y1, id));
      y2s.push_back(rects_[id].y2);
    }
    tree_->set_catalog(cat::NodeId(v), cat::Catalog::from_sorted(keys, list));
    stabbers_[v].build(std::move(y2s));
  }

  fc_ = std::make_unique<fc::Structure>(fc::Structure::build(*tree_));
  coop_ =
      std::make_unique<coop::CoopStructure>(coop::CoopStructure::build(*fc_));
}

std::vector<cat::NodeId> PointEnclosureTree::path_for(geom::Coord x) const {
  const std::size_t slab = static_cast<std::size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
      boundaries_.begin());
  std::vector<cat::NodeId> path;
  std::size_t v = 0, lo = 0, hi = num_slabs_;
  for (;;) {
    path.push_back(cat::NodeId(v));
    if (hi - lo == 1) {
      break;
    }
    const std::size_t mid = (lo + hi) / 2;
    if (slab < mid) {
      v = 2 * v + 1;
      hi = mid;
    } else {
      v = 2 * v + 2;
      lo = mid;
    }
  }
  return path;
}

std::vector<std::uint64_t> PointEnclosureTree::query(
    geom::Coord x, geom::Coord y, fc::SearchStats* stats) const {
  const auto path = path_for(x);
  // Prefix with y1 <= y at each node: positions < find((y+1) * stride).
  const auto res =
      fc::search_explicit(*fc_, path, codec_.upper_exclusive(y), stats);
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const auto v = static_cast<std::size_t>(path[i]);
    (void)stabbers_[v].report(res.proper_index[i], y, tree_->catalog(path[i]),
                              out);
  }
  return out;
}

std::vector<std::uint64_t> PointEnclosureTree::coop_query(
    pram::Machine& m, geom::Coord x, geom::Coord y) const {
  const auto path = path_for(x);
  m.charge(1, path.size());
  const auto res =
      coop::coop_search_explicit(*coop_, m, path, codec_.upper_exclusive(y));
  std::vector<std::uint64_t> out;
  // Each path node reports with its processor share; charged as the
  // per-node maximum (they run concurrently).
  const std::size_t share =
      std::max<std::size_t>(1, m.processors() / path.size());
  std::uint64_t max_steps = 0, total_work = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const auto v = static_cast<std::size_t>(path[i]);
    const std::size_t comparisons = stabbers_[v].report(
        res.proper_index[i], y, tree_->catalog(path[i]), out);
    max_steps = std::max<std::uint64_t>(
        max_steps, (comparisons + share - 1) / share +
                       pram::ceil_log2(comparisons + 1));
    total_work += comparisons;
  }
  m.charge(max_steps, total_work);
  return out;
}

std::vector<std::uint64_t> PointEnclosureTree::query_brute(
    geom::Coord x, geom::Coord y) const {
  std::vector<std::uint64_t> out;
  for (std::size_t id = 0; id < rects_.size(); ++id) {
    if (rects_[id].contains(x, y)) {
      out.push_back(id);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// PointEnclosure3D

PointEnclosure3D::PointEnclosure3D(std::vector<Box> boxes)
    : boxes_(std::move(boxes)) {
  for (const auto& b : boxes_) {
    assert(b.x1 <= b.x2 && b.y1 <= b.y2 && b.z1 <= b.z2);
    boundaries_.push_back(b.x1);
    boundaries_.push_back(b.x2 + 1);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
  const std::size_t raw = boundaries_.empty() ? 1 : boundaries_.size() + 1;
  num_slabs_ = std::bit_ceil(std::max<std::size_t>(2, raw));
  nodes_.resize(2 * num_slabs_ - 1);

  const auto slab_of = [&](geom::Coord x) -> std::size_t {
    return static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
        boundaries_.begin());
  };
  std::vector<std::vector<std::uint64_t>> assigned(nodes_.size());
  for (std::size_t id = 0; id < boxes_.size(); ++id) {
    const std::size_t first = slab_of(boxes_[id].x1);
    const std::size_t last = slab_of(boxes_[id].x2 + 1);  // exclusive
    struct Frame {
      std::size_t v, lo, hi;
    };
    std::vector<Frame> stack{{0, 0, num_slabs_}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.lo >= last || f.hi <= first) {
        continue;
      }
      if (first <= f.lo && f.hi <= last) {
        assigned[f.v].push_back(id);
        continue;
      }
      const std::size_t mid = (f.lo + f.hi) / 2;
      stack.push_back(Frame{2 * f.v + 1, f.lo, mid});
      stack.push_back(Frame{2 * f.v + 2, mid, f.hi});
    }
  }
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (assigned[v].empty()) {
      continue;
    }
    std::vector<Rect> cross;
    cross.reserve(assigned[v].size());
    for (std::uint64_t id : assigned[v]) {
      const auto& b = boxes_[id];
      cross.push_back(Rect{b.y1, b.y2, b.z1, b.z2});
    }
    nodes_[v].local_ids = std::move(assigned[v]);
    nodes_[v].sub = std::make_unique<PointEnclosureTree>(std::move(cross));
  }
}

std::size_t PointEnclosure3D::total_entries() const {
  std::size_t total = 0;
  for (const auto& xn : nodes_) {
    if (xn.sub) {
      total += xn.sub->rects().size();
    }
  }
  return total;
}

std::vector<std::size_t> PointEnclosure3D::path_for(geom::Coord x) const {
  const std::size_t slab = static_cast<std::size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
      boundaries_.begin());
  std::vector<std::size_t> path;
  std::size_t v = 0, lo = 0, hi = num_slabs_;
  for (;;) {
    path.push_back(v);
    if (hi - lo == 1) {
      break;
    }
    const std::size_t mid = (lo + hi) / 2;
    if (slab < mid) {
      v = 2 * v + 1;
      hi = mid;
    } else {
      v = 2 * v + 2;
      lo = mid;
    }
  }
  return path;
}

std::vector<std::uint64_t> PointEnclosure3D::query(geom::Coord x,
                                                   geom::Coord y,
                                                   geom::Coord z) const {
  std::vector<std::uint64_t> out;
  for (std::size_t v : path_for(x)) {
    if (!nodes_[v].sub) {
      continue;
    }
    for (std::uint64_t local : nodes_[v].sub->query(y, z)) {
      out.push_back(nodes_[v].local_ids[local]);
    }
  }
  return out;
}

std::vector<std::uint64_t> PointEnclosure3D::coop_query(pram::Machine& m,
                                                        geom::Coord x,
                                                        geom::Coord y,
                                                        geom::Coord z) const {
  std::vector<std::uint64_t> out;
  const auto path = path_for(x);
  m.charge(1, path.size());
  // Each path node's 2D subproblem runs concurrently with a processor
  // share (Corollary 2's recursive decomposition).
  const std::size_t share =
      std::max<std::size_t>(1, m.processors() / path.size());
  std::uint64_t max_steps = 0, total_work = 0;
  for (std::size_t v : path) {
    if (!nodes_[v].sub) {
      continue;
    }
    pram::Machine sub(share, m.model());
    for (std::uint64_t local : nodes_[v].sub->coop_query(sub, y, z)) {
      out.push_back(nodes_[v].local_ids[local]);
    }
    max_steps = std::max(max_steps, sub.stats().steps);
    total_work += sub.stats().work;
  }
  m.charge(max_steps, total_work);
  return out;
}

std::vector<std::uint64_t> PointEnclosure3D::query_brute(geom::Coord x,
                                                         geom::Coord y,
                                                         geom::Coord z) const {
  std::vector<std::uint64_t> out;
  for (std::size_t id = 0; id < boxes_.size(); ++id) {
    if (boxes_[id].contains(x, y, z)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace range
