#pragma once

#include <memory>
#include <vector>

#include "core/explicit_search.hpp"
#include "fc/search.hpp"
#include "geom/primitives.hpp"
#include "range/retrieval.hpp"
#include "robust/status.hpp"

namespace range {

/// An axis-parallel rectangle [x1, x2] x [y1, y2].
struct Rect {
  geom::Coord x1 = 0, x2 = 0;
  geom::Coord y1 = 0, y2 = 0;

  [[nodiscard]] bool contains(geom::Coord x, geom::Coord y) const {
    return x1 <= x && x <= x2 && y1 <= y && y <= y2;
  }
};

/// Theorem 6, Point Enclosure: a segment tree on the x-extents of the
/// rectangles; each canonical node's catalog holds its rectangles sorted
/// by y1.  A query (x, y) walks the path for x; the (cooperative)
/// explicit search on the y1-keys yields, per node, the prefix of
/// rectangles with y1 <= y, and a per-node range-max structure on y2
/// reports those with y2 >= y in O(log + k) — the tree-with-catalogs
/// layout of [15] with the stabbing done on the catalog prefix.
class PointEnclosureTree {
 public:
  explicit PointEnclosureTree(std::vector<Rect> rects);

  /// Fallible construction for untrusted rectangles: rejects degenerate
  /// rectangles (x1 > x2 or y1 > y2) and out-of-range coordinates with a
  /// Status instead of an assert / silent corruption.
  static coop::Expected<PointEnclosureTree> build_checked(
      std::vector<Rect> rects);

  PointEnclosureTree(const PointEnclosureTree&) = delete;
  PointEnclosureTree(PointEnclosureTree&&) = default;

  [[nodiscard]] const std::vector<Rect>& rects() const { return rects_; }
  [[nodiscard]] const cat::Tree& tree() const { return *tree_; }

  /// Sequential query: ids of rectangles containing (x, y).
  [[nodiscard]] std::vector<std::uint64_t> query(geom::Coord x, geom::Coord y,
                                                 fc::SearchStats* stats =
                                                     nullptr) const;

  /// Cooperative query: path search in O((log n)/log p) steps, then
  /// reporting with processors shared across the path nodes.
  [[nodiscard]] std::vector<std::uint64_t> coop_query(pram::Machine& m,
                                                      geom::Coord x,
                                                      geom::Coord y) const;

  [[nodiscard]] std::vector<std::uint64_t> query_brute(geom::Coord x,
                                                       geom::Coord y) const;

 private:
  /// Per-node stabbing helper: rectangles (catalog order) with their y2
  /// in a range-max tree; reports prefix entries with y2 >= threshold.
  struct Stabber {
    std::vector<geom::Coord> y2;    ///< catalog order
    std::vector<geom::Coord> maxv;  ///< range-max segment tree (size 2m)

    void build(std::vector<geom::Coord> values);
    /// Append to `out` all i < prefix with y2[i] >= threshold; returns the
    /// number of comparisons (for charging).
    std::size_t report(std::size_t prefix, geom::Coord threshold,
                       const cat::Catalog& catalog,
                       std::vector<std::uint64_t>& out) const;
  };

  [[nodiscard]] std::vector<cat::NodeId> path_for(geom::Coord x) const;

  std::vector<Rect> rects_;
  std::vector<geom::Coord> boundaries_;  ///< x slab boundaries
  std::size_t num_slabs_ = 0;
  KeyCodec codec_;
  std::unique_ptr<cat::Tree> tree_;
  std::unique_ptr<fc::Structure> fc_;
  std::unique_ptr<coop::CoopStructure> coop_;
  std::vector<Stabber> stabbers_;  ///< per tree node
};

/// An axis-parallel box [x1,x2] x [y1,y2] x [z1,z2].
struct Box {
  geom::Coord x1 = 0, x2 = 0;
  geom::Coord y1 = 0, y2 = 0;
  geom::Coord z1 = 0, z2 = 0;

  [[nodiscard]] bool contains(geom::Coord x, geom::Coord y,
                              geom::Coord z) const {
    return x1 <= x && x <= x2 && y1 <= y && y <= y2 && z1 <= z && z <= z2;
  }
};

/// Corollary 2, point enclosure with d = 3: a segment tree on the
/// x-extents whose canonical nodes each hold a 2D PointEnclosureTree over
/// the (y, z) cross-sections.  Query: walk the x-path, solve a 2D
/// enclosure subproblem at every node on it — cooperatively, each with a
/// share of the processors, giving ((log n)/log p)^2 + k/p.
class PointEnclosure3D {
 public:
  explicit PointEnclosure3D(std::vector<Box> boxes);

  PointEnclosure3D(const PointEnclosure3D&) = delete;
  PointEnclosure3D(PointEnclosure3D&&) = default;

  [[nodiscard]] const std::vector<Box>& boxes() const { return boxes_; }
  [[nodiscard]] std::size_t total_entries() const;

  [[nodiscard]] std::vector<std::uint64_t> query(geom::Coord x, geom::Coord y,
                                                 geom::Coord z) const;
  [[nodiscard]] std::vector<std::uint64_t> coop_query(pram::Machine& m,
                                                      geom::Coord x,
                                                      geom::Coord y,
                                                      geom::Coord z) const;
  [[nodiscard]] std::vector<std::uint64_t> query_brute(geom::Coord x,
                                                       geom::Coord y,
                                                       geom::Coord z) const;

 private:
  struct XNode {
    std::unique_ptr<PointEnclosureTree> sub;  ///< (y, z) enclosure tree
    std::vector<std::uint64_t> local_ids;     ///< local -> global box id
  };

  [[nodiscard]] std::vector<std::size_t> path_for(geom::Coord x) const;

  std::vector<Box> boxes_;
  std::vector<geom::Coord> boundaries_;  ///< x slab boundaries
  std::size_t num_slabs_ = 0;
  std::vector<XNode> nodes_;  ///< heap-indexed segment tree on x
};

}  // namespace range
