#pragma once

#include <memory>
#include <vector>

#include "geom/primitives.hpp"
#include "pram/machine.hpp"

namespace range {

/// Corollary 2 for arbitrary constant dimension d: a recursive range tree
/// whose level-j structure is a balanced tree over coordinate j, each node
/// pointing to a (d-1)-dimensional structure for its subtree, with the
/// base case a sorted array.  Space O(n log^{d-1} n); sequential query
/// O(log^d n + k); cooperative query O(((log n)/log p)^{d-1} * (log n /
/// log p) + k/p) by giving each canonical node of every level a processor
/// share (charged as group maxima).
///
/// The d = 2 and d = 3 fast paths live in RangeTree2D / RangeTree3D
/// (fractional cascading across the last two coordinates); this class is
/// the clean generic recursion the corollary states, used for d >= 3 and
/// cross-checked against the specialized trees in tests.
class RangeTreeKD {
 public:
  using PointKD = std::vector<geom::Coord>;

  /// All points must share the same dimension (>= 1).
  explicit RangeTreeKD(std::vector<PointKD> points);

  RangeTreeKD(const RangeTreeKD&) = delete;
  RangeTreeKD(RangeTreeKD&&) = default;

  [[nodiscard]] std::size_t dimension() const { return dim_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  /// Reported ids index into points() (the sorted order exposed here).
  [[nodiscard]] const std::vector<PointKD>& points() const { return points_; }
  [[nodiscard]] std::size_t total_entries() const;

  /// Box query: lo/hi give the inclusive bounds per coordinate.
  [[nodiscard]] std::vector<std::uint64_t> query(const PointKD& lo,
                                                 const PointKD& hi) const;

  /// Cooperative query (charged per-level group maxima).
  [[nodiscard]] std::vector<std::uint64_t> coop_query(pram::Machine& m,
                                                      const PointKD& lo,
                                                      const PointKD& hi) const;

  [[nodiscard]] std::vector<std::uint64_t> query_brute(
      const PointKD& lo, const PointKD& hi) const;

 private:
  struct Node;
  struct Level;

  /// Recursive structure over points_[ids], discriminating coordinate c.
  struct Sub {
    std::size_t coord = 0;
    // Base case (coord == dim-1): ids sorted by the last coordinate.
    std::vector<std::uint64_t> sorted_ids;
    // Recursive case: heap-layout tree over ids sorted by coordinate
    // `coord`; node v covers leaf interval [lo, hi) and owns a Sub over
    // the next coordinate.
    std::size_t num_leaves = 0;
    std::vector<std::uint64_t> by_coord;  // ids sorted by this coordinate
    std::vector<std::unique_ptr<Sub>> nodes;
  };

  std::unique_ptr<Sub> build(std::vector<std::uint64_t> ids,
                             std::size_t coord) const;
  void query_rec(const Sub& s, const PointKD& lo, const PointKD& hi,
                 pram::Machine* m, std::size_t procs,
                 std::uint64_t* charged_steps,
                 std::vector<std::uint64_t>& out) const;
  static std::size_t entries(const Sub& s);

  std::size_t dim_ = 0;
  std::vector<PointKD> points_;
  std::unique_ptr<Sub> root_;
};

}  // namespace range
