#pragma once

#include <cstdint>
#include <vector>

#include "catalog/tree.hpp"
#include "pram/machine.hpp"

namespace range {

/// Composite catalog keys: coordinate * stride + id keeps keys distinct
/// when coordinates repeat, while preserving coordinate order.  Queries
/// use [coord1 * stride, (coord2 + 1) * stride) half-open key ranges.
struct KeyCodec {
  cat::Key stride = 1;

  [[nodiscard]] cat::Key encode(cat::Key coord, std::uint64_t id) const {
    return coord * stride + static_cast<cat::Key>(id);
  }
  [[nodiscard]] cat::Key lower(cat::Key coord) const { return coord * stride; }
  [[nodiscard]] cat::Key upper_exclusive(cat::Key coord) const {
    return (coord + 1) * stride;
  }

  /// Largest |coordinate| this codec can encode without the composite key
  /// overflowing or colliding with the +infinity sentinel (headroom factor
  /// 4 leaves room for the +1 in upper_exclusive and query widening).  The
  /// `*_checked` builders reject coordinates outside this bound.
  [[nodiscard]] cat::Key max_abs_coord() const {
    return cat::kInfinity / 4 / stride;
  }
};

/// One reported range: catalog positions [lo, hi) at a tree node.
struct AnswerRange {
  cat::NodeId node = cat::kNullNode;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  [[nodiscard]] std::size_t count() const { return hi - lo; }
};

/// Theorem 6, direct retrieval: materialize the reported item ids (catalog
/// payloads) with processors allocated by a prefix sum over the ranges —
/// O(log log n + k/p) on top of the search.  EREW once the offsets are
/// known.
[[nodiscard]] std::vector<std::uint64_t> retrieve_direct(
    const cat::Tree& tree, pram::Machine& m,
    const std::vector<AnswerRange>& ranges);

/// Theorem 6, indirect retrieval: return the linked list of nonempty
/// ranges without touching the items.  With p = Omega(log^2 n) processors
/// the linking uses one CRCW (priority/min) write round, O(1) time;
/// otherwise it falls back to a prefix computation.  The list is returned
/// materialized as the ordered sequence of nonempty ranges.
[[nodiscard]] std::vector<AnswerRange> retrieve_indirect(
    pram::Machine& m, const std::vector<AnswerRange>& ranges);

/// Total number of items across ranges.
[[nodiscard]] std::size_t total_count(const std::vector<AnswerRange>& ranges);

}  // namespace range
