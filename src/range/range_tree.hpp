#pragma once

#include <memory>
#include <vector>

#include "core/explicit_search.hpp"
#include "fc/search.hpp"
#include "geom/primitives.hpp"
#include "range/retrieval.hpp"
#include "robust/status.hpp"

namespace range {

struct Point2 {
  geom::Coord x = 0;
  geom::Coord y = 0;
};

/// Theorem 6, Orthogonal Range Search (d = 2): a balanced tree over the
/// points sorted by x; each node's catalog holds the y-keys of the points
/// in its subtree.  A query decomposes [x1, x2] into O(log n) canonical
/// nodes hanging off the two root-to-leaf paths; the y-range positions in
/// every catalog along the paths come from explicit (cooperative)
/// searches, and canonical nodes off the paths take one bridge step from
/// their on-path parent.
class RangeTree2D {
 public:
  explicit RangeTree2D(std::vector<Point2> points);

  /// Fallible construction for untrusted point sets: rejects coordinates
  /// whose composite keys (coord * stride + id) would overflow or collide
  /// with the +infinity sentinel.
  static coop::Expected<RangeTree2D> build_checked(std::vector<Point2> points);

  RangeTree2D(const RangeTree2D&) = delete;
  RangeTree2D(RangeTree2D&&) = default;

  [[nodiscard]] const cat::Tree& tree() const { return *tree_; }
  [[nodiscard]] const std::vector<Point2>& points() const { return points_; }
  [[nodiscard]] std::size_t total_entries() const {
    return coop_->total_entries();
  }

  /// Sequential query, O(log n) with fractional cascading.
  [[nodiscard]] std::vector<AnswerRange> query_ranges(
      geom::Coord x1, geom::Coord x2, geom::Coord y1, geom::Coord y2,
      fc::SearchStats* stats = nullptr) const;

  /// Cooperative query, O((log n)/log p) CREW steps.
  [[nodiscard]] std::vector<AnswerRange> coop_query_ranges(
      pram::Machine& m, geom::Coord x1, geom::Coord x2, geom::Coord y1,
      geom::Coord y2) const;

  /// Brute-force oracle: indices into points().
  [[nodiscard]] std::vector<std::uint64_t> query_brute(geom::Coord x1,
                                                       geom::Coord x2,
                                                       geom::Coord y1,
                                                       geom::Coord y2) const;

 private:
  struct Canonical {
    cat::NodeId node;
    cat::NodeId parent_on_path;  // kNullNode if the node itself is on-path
    std::uint32_t slot = 0;      // child slot under parent_on_path
  };

  /// Canonical decomposition of the leaf interval [l, r] (inclusive).
  [[nodiscard]] std::vector<Canonical> canonical_nodes(std::size_t l,
                                                       std::size_t r) const;
  [[nodiscard]] std::vector<cat::NodeId> path_to_leaf(std::size_t leaf) const;
  /// Leaf index interval matching x in [x1, x2]; empty if l > r.
  [[nodiscard]] std::pair<std::size_t, std::size_t> leaf_interval(
      geom::Coord x1, geom::Coord x2) const;

  std::vector<Point2> points_;  ///< sorted by (x, input index)
  std::size_t num_leaves_ = 0;  ///< padded to a power of two
  KeyCodec codec_;
  std::unique_ptr<cat::Tree> tree_;
  std::unique_ptr<fc::Structure> fc_;
  std::unique_ptr<coop::CoopStructure> coop_;
};

/// Corollary 2 with d = 3: a balanced tree over x; every node points to a
/// 2D range tree on (y, z) for the points of its subtree.  Queries solve
/// O(log n) two-dimensional subproblems at the canonical x-nodes,
/// concurrently in the cooperative case.
class RangeTree3D {
 public:
  struct Point3 {
    geom::Coord x = 0;
    geom::Coord y = 0;
    geom::Coord z = 0;
  };

  explicit RangeTree3D(std::vector<Point3> points);

  RangeTree3D(const RangeTree3D&) = delete;
  RangeTree3D(RangeTree3D&&) = default;

  /// Reported ids are indices into the *sorted* point order exposed here.
  [[nodiscard]] const std::vector<Point3>& points() const { return points_; }
  [[nodiscard]] std::size_t total_entries() const;

  /// Sequential query: ids of points inside the box.
  [[nodiscard]] std::vector<std::uint64_t> query(geom::Coord x1,
                                                 geom::Coord x2,
                                                 geom::Coord y1,
                                                 geom::Coord y2,
                                                 geom::Coord z1,
                                                 geom::Coord z2) const;

  /// Cooperative query: the canonical x-nodes run their 2D queries
  /// concurrently, each with a share of the processors (charged as the
  /// group maximum).
  [[nodiscard]] std::vector<std::uint64_t> coop_query(
      pram::Machine& m, geom::Coord x1, geom::Coord x2, geom::Coord y1,
      geom::Coord y2, geom::Coord z1, geom::Coord z2) const;

  [[nodiscard]] std::vector<std::uint64_t> query_brute(
      geom::Coord x1, geom::Coord x2, geom::Coord y1, geom::Coord y2,
      geom::Coord z1, geom::Coord z2) const;

 private:
  struct XNode {
    std::size_t lo = 0, hi = 0;            // leaf interval (points) covered
    std::unique_ptr<RangeTree2D> sub;      // (y, z) tree; ids local to lo
    std::vector<std::uint64_t> local_ids;  // local -> global id map
  };

  std::vector<Point3> points_;  ///< sorted by (x, input index)
  std::size_t num_leaves_ = 0;
  std::vector<XNode> nodes_;  ///< heap-indexed complete binary tree
};

}  // namespace range
