#include "range/range_tree_kd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "pram/coop_search.hpp"
#include "pram/primitives.hpp"

namespace range {

RangeTreeKD::RangeTreeKD(std::vector<PointKD> points)
    : points_(std::move(points)) {
  dim_ = points_.empty() ? 1 : points_.front().size();
  assert(dim_ >= 1);
  for (const auto& p : points_) {
    assert(p.size() == dim_);
  }
  std::sort(points_.begin(), points_.end());
  std::vector<std::uint64_t> ids(points_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = i;
  }
  root_ = build(std::move(ids), 0);
}

std::unique_ptr<RangeTreeKD::Sub> RangeTreeKD::build(
    std::vector<std::uint64_t> ids, std::size_t coord) const {
  auto s = std::make_unique<Sub>();
  s->coord = coord;
  const auto by = [&](std::size_t c) {
    return [this, c](std::uint64_t a, std::uint64_t b) {
      if (points_[a][c] != points_[b][c]) {
        return points_[a][c] < points_[b][c];
      }
      return a < b;
    };
  };
  if (coord + 1 == dim_) {
    std::sort(ids.begin(), ids.end(), by(coord));
    s->sorted_ids = std::move(ids);
    return s;
  }
  std::sort(ids.begin(), ids.end(), by(coord));
  s->by_coord = std::move(ids);
  const std::size_t n = s->by_coord.size();
  s->num_leaves = std::bit_ceil(std::max<std::size_t>(2, n));
  s->nodes.resize(2 * s->num_leaves - 1);
  // Heap node v at depth d covers leaves [idx * W, (idx+1) * W).
  for (std::size_t v = 0; v < s->nodes.size(); ++v) {
    std::uint32_t d = 0;
    std::size_t first = 0;
    while (first + (std::size_t(1) << d) <= v) {
      first += std::size_t(1) << d;
      ++d;
    }
    const std::size_t w = s->num_leaves >> d;
    const std::size_t lo = (v - first) * w;
    const std::size_t hi = std::min(n, lo + w);
    if (lo >= hi) {
      continue;
    }
    std::vector<std::uint64_t> slice(s->by_coord.begin() + lo,
                                     s->by_coord.begin() + hi);
    s->nodes[v] = build(std::move(slice), coord + 1);
  }
  return s;
}

std::size_t RangeTreeKD::entries(const Sub& s) {
  std::size_t total = s.sorted_ids.size() + s.by_coord.size();
  for (const auto& n : s.nodes) {
    if (n) {
      total += entries(*n);
    }
  }
  return total;
}

std::size_t RangeTreeKD::total_entries() const {
  return root_ ? entries(*root_) : 0;
}

void RangeTreeKD::query_rec(const Sub& s, const PointKD& lo,
                            const PointKD& hi, pram::Machine* m,
                            std::size_t procs,
                            std::uint64_t* charged_steps,
                            std::vector<std::uint64_t>& out) const {
  const auto coord_less = [&](std::uint64_t id, geom::Coord v) {
    return points_[id][s.coord] < v;
  };
  if (s.coord + 1 == dim_) {
    const auto b = std::lower_bound(s.sorted_ids.begin(), s.sorted_ids.end(),
                                    lo[s.coord], coord_less);
    auto e = b;
    while (e != s.sorted_ids.end() && points_[*e][s.coord] <= hi[s.coord]) {
      out.push_back(*e);
      ++e;
    }
    if (charged_steps != nullptr) {
      // Cooperative: one boundary search plus k/procs reporting.
      const std::size_t k = static_cast<std::size_t>(e - b);
      *charged_steps += pram::coop_search_rounds(s.sorted_ids.size(),
                                                 std::max<std::size_t>(1, procs)) +
                        (k + procs - 1) / std::max<std::size_t>(1, procs);
    }
    return;
  }
  const std::size_t n = s.by_coord.size();
  const std::size_t l = static_cast<std::size_t>(
      std::lower_bound(s.by_coord.begin(), s.by_coord.end(), lo[s.coord],
                       coord_less) -
      s.by_coord.begin());
  const std::size_t r = static_cast<std::size_t>(
      std::upper_bound(s.by_coord.begin(), s.by_coord.end(), hi[s.coord],
                       [&](geom::Coord v, std::uint64_t id) {
                         return v < points_[id][s.coord];
                       }) -
      s.by_coord.begin());
  if (l >= r) {
    if (charged_steps != nullptr) {
      *charged_steps += pram::coop_search_rounds(
          std::max<std::size_t>(1, n), std::max<std::size_t>(1, procs));
    }
    return;
  }
  // Canonical decomposition of leaves [l, r).
  std::vector<std::size_t> canon;
  struct Frame {
    std::size_t v, lo, hi;
  };
  std::vector<Frame> stack{{0, 0, s.num_leaves}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.lo >= r || f.hi <= l) {
      continue;
    }
    if (l <= f.lo && f.hi <= r) {
      canon.push_back(f.v);
      continue;
    }
    const std::size_t mid = (f.lo + f.hi) / 2;
    stack.push_back(Frame{2 * f.v + 1, f.lo, mid});
    stack.push_back(Frame{2 * f.v + 2, mid, f.hi});
  }
  // Cooperative: canonical subproblems run concurrently with a processor
  // share; charge the boundary searches plus the slowest child.
  const std::size_t share = std::max<std::size_t>(
      1, procs / std::max<std::size_t>(1, canon.size()));
  std::uint64_t child_max = 0;
  for (std::size_t v : canon) {
    if (!s.nodes[v]) {
      continue;
    }
    std::uint64_t child_steps = 0;
    query_rec(*s.nodes[v], lo, hi, m, share,
              charged_steps != nullptr ? &child_steps : nullptr, out);
    child_max = std::max(child_max, child_steps);
  }
  if (charged_steps != nullptr) {
    *charged_steps += pram::coop_search_rounds(
                          std::max<std::size_t>(1, n),
                          std::max<std::size_t>(1, procs)) +
                      child_max;
  }
}

std::vector<std::uint64_t> RangeTreeKD::query(const PointKD& lo,
                                              const PointKD& hi) const {
  assert(lo.size() == dim_ && hi.size() == dim_);
  std::vector<std::uint64_t> out;
  if (root_ && !points_.empty()) {
    query_rec(*root_, lo, hi, nullptr, 1, nullptr, out);
  }
  return out;
}

std::vector<std::uint64_t> RangeTreeKD::coop_query(pram::Machine& m,
                                                   const PointKD& lo,
                                                   const PointKD& hi) const {
  assert(lo.size() == dim_ && hi.size() == dim_);
  std::vector<std::uint64_t> out;
  if (root_ && !points_.empty()) {
    std::uint64_t steps = 0;
    query_rec(*root_, lo, hi, &m, m.processors(), &steps, out);
    m.charge(steps, steps * m.processors());
  }
  return out;
}

std::vector<std::uint64_t> RangeTreeKD::query_brute(const PointKD& lo,
                                                    const PointKD& hi) const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    bool inside = true;
    for (std::size_t c = 0; c < dim_ && inside; ++c) {
      inside = lo[c] <= points_[i][c] && points_[i][c] <= hi[c];
    }
    if (inside) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace range
