#pragma once

#include <memory>
#include <vector>

#include "core/explicit_search.hpp"
#include "fc/search.hpp"
#include "geom/primitives.hpp"
#include "range/retrieval.hpp"
#include "robust/status.hpp"

namespace range {

/// A vertical segment x = const, ylo <= y < yhi (half-open).
struct VSegment {
  geom::Coord x = 0;
  geom::Coord ylo = 0;
  geom::Coord yhi = 0;
};

/// Theorem 6, Orthogonal Segment Intersection: a segment tree on the
/// y-extents of the vertical segments; each node's catalog holds the
/// segments allocated to it, sorted by x.  A horizontal query
/// (y, [x1, x2]) identifies a root-to-leaf path by a dictionary search on
/// y, then runs two explicit (cooperative) searches along the path on the
/// x-keys; every catalog on the path contains only segments spanning y,
/// so the reported items per node form one contiguous range.
class SegmentIntersectionTree {
 public:
  explicit SegmentIntersectionTree(std::vector<VSegment> segments);

  /// Fallible construction for untrusted segments: rejects degenerate
  /// spans (ylo >= yhi, which the half-open slab decomposition cannot
  /// represent) and coordinates outside the codec's safe range.
  static coop::Expected<SegmentIntersectionTree> build_checked(
      std::vector<VSegment> segments);

  SegmentIntersectionTree(const SegmentIntersectionTree&) = delete;
  SegmentIntersectionTree(SegmentIntersectionTree&&) = default;

  [[nodiscard]] const cat::Tree& tree() const { return *tree_; }
  [[nodiscard]] const std::vector<VSegment>& segments() const {
    return segments_;
  }

  /// Sequential query: the answer ranges along the path, O(log n).
  [[nodiscard]] std::vector<AnswerRange> query_ranges(
      geom::Coord y, geom::Coord x1, geom::Coord x2,
      fc::SearchStats* stats = nullptr) const;

  /// Cooperative query: O((log n)/log p) CREW steps for the search part.
  [[nodiscard]] std::vector<AnswerRange> coop_query_ranges(
      pram::Machine& m, geom::Coord y, geom::Coord x1, geom::Coord x2) const;

  /// Brute-force oracle: ids (indices into segments()) intersected by the
  /// query, in no particular order.
  [[nodiscard]] std::vector<std::uint64_t> query_brute(geom::Coord y,
                                                       geom::Coord x1,
                                                       geom::Coord x2) const;

  /// The root-to-leaf path for level y (the slab descent).
  [[nodiscard]] std::vector<cat::NodeId> path_for(geom::Coord y) const;

  [[nodiscard]] const KeyCodec& codec() const { return codec_; }
  [[nodiscard]] const coop::CoopStructure& coop_structure() const {
    return *coop_;
  }

 private:
  [[nodiscard]] std::vector<AnswerRange> ranges_from(
      const std::vector<cat::NodeId>& path,
      const std::vector<std::size_t>& lo,
      const std::vector<std::size_t>& hi) const;

  std::vector<VSegment> segments_;
  std::vector<geom::Coord> boundaries_;  ///< slab boundaries, sorted
  std::size_t num_slabs_ = 0;            ///< padded to a power of two
  KeyCodec codec_;
  std::unique_ptr<cat::Tree> tree_;
  std::unique_ptr<fc::Structure> fc_;
  std::unique_ptr<coop::CoopStructure> coop_;
};

}  // namespace range
