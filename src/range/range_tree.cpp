#include "range/range_tree.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

namespace range {

namespace {

/// Extract the item ids of answer ranges host-side (test/oracle helper;
/// the PRAM-accounted version is retrieve_direct).
std::vector<std::uint64_t> extract_ids(const cat::Tree& tree,
                                       const std::vector<AnswerRange>& rs) {
  std::vector<std::uint64_t> out;
  for (const auto& r : rs) {
    const auto& c = tree.catalog(r.node);
    for (std::uint32_t i = r.lo; i < r.hi; ++i) {
      out.push_back(c.payload(i));
    }
  }
  return out;
}

}  // namespace

coop::Expected<RangeTree2D> RangeTree2D::build_checked(
    std::vector<Point2> points) {
  KeyCodec codec{static_cast<cat::Key>(
      std::bit_ceil(std::max<std::size_t>(2, points.size() + 1)))};
  const cat::Key limit = codec.max_abs_coord();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].x < -limit || points[i].x > limit || points[i].y < -limit ||
        points[i].y > limit) {
      return coop::Status::invalid_argument(
          "point " + std::to_string(i) +
          " has a coordinate outside the encodable range (|c| <= " +
          std::to_string(limit) + " for " + std::to_string(points.size()) +
          " points)");
    }
  }
  return RangeTree2D(std::move(points));
}

RangeTree2D::RangeTree2D(std::vector<Point2> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const Point2& a, const Point2& b) {
              return a.x != b.x ? a.x < b.x : a.y < b.y;
            });
  const std::size_t n = points_.size();
  num_leaves_ = std::bit_ceil(std::max<std::size_t>(2, n));
  const std::size_t num_nodes = 2 * num_leaves_ - 1;
  codec_.stride =
      static_cast<cat::Key>(std::bit_ceil(std::max<std::size_t>(2, n + 1)));

  tree_ = std::make_unique<cat::Tree>(num_nodes);
  for (std::size_t v = 0; v + 1 < num_nodes; ++v) {
    const std::size_t l = 2 * v + 1, r = 2 * v + 2;
    if (l < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(l));
    }
    if (r < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(r));
    }
  }
  tree_->finalize();

  // Node v at depth d covers leaves [idx * W, (idx+1) * W), W = L >> d.
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const std::uint32_t d = tree_->depth(cat::NodeId(v));
    const std::size_t first_of_level = (std::size_t(1) << d) - 1;
    const std::size_t w = num_leaves_ >> d;
    const std::size_t lo = (v - first_of_level) * w;
    const std::size_t hi = std::min(n, lo + w);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      ids.push_back(i);
    }
    std::sort(ids.begin(), ids.end(), [&](std::uint64_t a, std::uint64_t b) {
      return codec_.encode(points_[a].y, a) < codec_.encode(points_[b].y, b);
    });
    std::vector<cat::Key> keys;
    keys.reserve(ids.size());
    for (std::uint64_t id : ids) {
      keys.push_back(codec_.encode(points_[id].y, id));
    }
    tree_->set_catalog(cat::NodeId(v), cat::Catalog::from_sorted(keys, ids));
  }

  fc_ = std::make_unique<fc::Structure>(fc::Structure::build(*tree_));
  coop_ =
      std::make_unique<coop::CoopStructure>(coop::CoopStructure::build(*fc_));
}

std::pair<std::size_t, std::size_t> RangeTree2D::leaf_interval(
    geom::Coord x1, geom::Coord x2) const {
  const auto lo = std::lower_bound(
      points_.begin(), points_.end(), x1,
      [](const Point2& p, geom::Coord x) { return p.x < x; });
  const auto hi = std::upper_bound(
      points_.begin(), points_.end(), x2,
      [](geom::Coord x, const Point2& p) { return x < p.x; });
  return {static_cast<std::size_t>(lo - points_.begin()),
          static_cast<std::size_t>(hi - points_.begin())};  // [l, r)
}

std::vector<cat::NodeId> RangeTree2D::path_to_leaf(std::size_t leaf) const {
  std::vector<cat::NodeId> path;
  std::size_t v = 0, lo = 0, hi = num_leaves_;
  for (;;) {
    path.push_back(cat::NodeId(v));
    if (hi - lo == 1) {
      break;
    }
    const std::size_t mid = (lo + hi) / 2;
    if (leaf < mid) {
      v = 2 * v + 1;
      hi = mid;
    } else {
      v = 2 * v + 2;
      lo = mid;
    }
  }
  return path;
}

std::vector<RangeTree2D::Canonical> RangeTree2D::canonical_nodes(
    std::size_t l, std::size_t r) const {
  // Decompose the half-open leaf interval [l, r).
  std::vector<Canonical> out;
  struct Frame {
    std::size_t v, lo, hi;
    cat::NodeId parent;
    std::uint32_t slot;
  };
  std::vector<Frame> stack{{0, 0, num_leaves_, cat::kNullNode, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.lo >= r || f.hi <= l) {
      continue;
    }
    if (l <= f.lo && f.hi <= r) {
      // Is this node itself on a boundary path?  It is iff its interval
      // contains leaf l or leaf r-1 — equivalently f.lo == l and l is ...
      // Simpler: the node is on the path to leaf l iff f.lo <= l < f.hi.
      const bool on_path = (f.lo <= l && l < f.hi) ||
                           (r > 0 && f.lo <= r - 1 && r - 1 < f.hi);
      out.push_back(Canonical{cat::NodeId(f.v),
                              on_path ? cat::kNullNode : f.parent,
                              on_path ? 0 : f.slot});
      continue;
    }
    const std::size_t mid = (f.lo + f.hi) / 2;
    stack.push_back(
        Frame{2 * f.v + 1, f.lo, mid, cat::NodeId(f.v), 0});
    stack.push_back(
        Frame{2 * f.v + 2, mid, f.hi, cat::NodeId(f.v), 1});
  }
  return out;
}

std::vector<AnswerRange> RangeTree2D::query_ranges(
    geom::Coord x1, geom::Coord x2, geom::Coord y1, geom::Coord y2,
    fc::SearchStats* stats) const {
  const auto [l, r] = leaf_interval(x1, x2);
  if (l >= r) {
    return {};
  }
  const cat::Key klo = codec_.lower(y1);
  const cat::Key khi = codec_.upper_exclusive(y2);
  const auto pl = path_to_leaf(l);
  const auto pr = path_to_leaf(r - 1);
  const auto pl_lo = fc::search_explicit(*fc_, pl, klo, stats);
  const auto pl_hi = fc::search_explicit(*fc_, pl, khi, stats);
  const auto pr_lo = fc::search_explicit(*fc_, pr, klo, stats);
  const auto pr_hi = fc::search_explicit(*fc_, pr, khi, stats);

  // Position lookup for on-path nodes (aug positions for bridging).
  std::map<cat::NodeId, std::pair<std::size_t, std::size_t>> aug_pos;
  std::map<cat::NodeId, std::pair<std::size_t, std::size_t>> proper_pos;
  for (std::size_t i = 0; i < pl.size(); ++i) {
    aug_pos[pl[i]] = {pl_lo.aug_index[i], pl_hi.aug_index[i]};
    proper_pos[pl[i]] = {pl_lo.proper_index[i], pl_hi.proper_index[i]};
  }
  for (std::size_t i = 0; i < pr.size(); ++i) {
    aug_pos[pr[i]] = {pr_lo.aug_index[i], pr_hi.aug_index[i]};
    proper_pos[pr[i]] = {pr_lo.proper_index[i], pr_hi.proper_index[i]};
  }

  std::vector<AnswerRange> out;
  for (const auto& c : canonical_nodes(l, r)) {
    std::size_t plo, phi;
    if (c.parent_on_path == cat::kNullNode) {
      plo = proper_pos.at(c.node).first;
      phi = proper_pos.at(c.node).second;
    } else {
      const auto [alo, ahi] = aug_pos.at(c.parent_on_path);
      const std::size_t blo =
          fc_->follow_bridge(c.parent_on_path, alo, c.slot, klo, stats);
      const std::size_t bhi =
          fc_->follow_bridge(c.parent_on_path, ahi, c.slot, khi, stats);
      plo = fc_->to_proper(c.node, blo);
      phi = fc_->to_proper(c.node, bhi);
    }
    out.push_back(AnswerRange{c.node, static_cast<std::uint32_t>(plo),
                              static_cast<std::uint32_t>(phi)});
  }
  return out;
}

std::vector<AnswerRange> RangeTree2D::coop_query_ranges(
    pram::Machine& m, geom::Coord x1, geom::Coord x2, geom::Coord y1,
    geom::Coord y2) const {
  const auto [l, r] = leaf_interval(x1, x2);
  if (l >= r) {
    return {};
  }
  const cat::Key klo = codec_.lower(y1);
  const cat::Key khi = codec_.upper_exclusive(y2);
  const auto pl = path_to_leaf(l);
  const auto pr = path_to_leaf(r - 1);
  m.charge(1, pl.size() + pr.size());
  const auto pl_lo = coop::coop_search_explicit(*coop_, m, pl, klo);
  const auto pl_hi = coop::coop_search_explicit(*coop_, m, pl, khi);
  const auto pr_lo = coop::coop_search_explicit(*coop_, m, pr, klo);
  const auto pr_hi = coop::coop_search_explicit(*coop_, m, pr, khi);

  std::map<cat::NodeId, std::pair<std::size_t, std::size_t>> aug_pos;
  std::map<cat::NodeId, std::pair<std::size_t, std::size_t>> proper_pos;
  for (std::size_t i = 0; i < pl.size(); ++i) {
    aug_pos[pl[i]] = {pl_lo.aug_index[i], pl_hi.aug_index[i]};
    proper_pos[pl[i]] = {pl_lo.proper_index[i], pl_hi.proper_index[i]};
  }
  for (std::size_t i = 0; i < pr.size(); ++i) {
    aug_pos[pr[i]] = {pr_lo.aug_index[i], pr_hi.aug_index[i]};
    proper_pos[pr[i]] = {pr_lo.proper_index[i], pr_hi.proper_index[i]};
  }

  const auto canon = canonical_nodes(l, r);
  std::vector<AnswerRange> out(canon.size());
  // One instruction: each canonical node takes its bridge steps (O(b)
  // work per processor).
  m.exec_k(canon.size(), 2 * (fc_->fanout_bound() + 1), [&](std::size_t i) {
    const auto& c = canon[i];
    std::size_t plo, phi;
    if (c.parent_on_path == cat::kNullNode) {
      plo = proper_pos.at(c.node).first;
      phi = proper_pos.at(c.node).second;
    } else {
      const auto [alo, ahi] = aug_pos.at(c.parent_on_path);
      const std::size_t blo =
          fc_->follow_bridge(c.parent_on_path, alo, c.slot, klo);
      const std::size_t bhi =
          fc_->follow_bridge(c.parent_on_path, ahi, c.slot, khi);
      plo = fc_->to_proper(c.node, blo);
      phi = fc_->to_proper(c.node, bhi);
    }
    out[i] = AnswerRange{c.node, static_cast<std::uint32_t>(plo),
                         static_cast<std::uint32_t>(phi)};
  });
  return out;
}

std::vector<std::uint64_t> RangeTree2D::query_brute(geom::Coord x1,
                                                    geom::Coord x2,
                                                    geom::Coord y1,
                                                    geom::Coord y2) const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (x1 <= p.x && p.x <= x2 && y1 <= p.y && p.y <= y2) {
      out.push_back(i);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RangeTree3D

RangeTree3D::RangeTree3D(std::vector<Point3> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const Point3& a, const Point3& b) {
              if (a.x != b.x) {
                return a.x < b.x;
              }
              if (a.y != b.y) {
                return a.y < b.y;
              }
              return a.z < b.z;
            });
  const std::size_t n = points_.size();
  num_leaves_ = std::bit_ceil(std::max<std::size_t>(2, n));
  const std::size_t num_nodes = 2 * num_leaves_ - 1;
  nodes_.resize(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    // Depth/interval from heap geometry.
    std::uint32_t d = 0;
    std::size_t first = 0;
    while (first + (std::size_t(1) << d) <= v) {
      first += std::size_t(1) << d;
      ++d;
    }
    const std::size_t w = num_leaves_ >> d;
    XNode& xn = nodes_[v];
    xn.lo = (v - first) * w;
    xn.hi = std::min(n, xn.lo + w);
    if (xn.lo >= xn.hi) {
      xn.lo = xn.hi = 0;
      continue;
    }
    // The inner 2D tree sorts by (its x = our y, insertion order); we
    // replicate that order to map local ids back to global ones.
    std::vector<std::uint64_t> ids;
    std::vector<Point2> locals;
    for (std::size_t i = xn.lo; i < xn.hi; ++i) {
      ids.push_back(i);
      locals.push_back(Point2{points_[i].y, points_[i].z});
    }
    std::stable_sort(ids.begin(), ids.end(),
                     [&](std::uint64_t a, std::uint64_t b) {
                       if (points_[a].y != points_[b].y) {
                         return points_[a].y < points_[b].y;
                       }
                       return points_[a].z < points_[b].z;
                     });
    xn.local_ids = std::move(ids);
    xn.sub = std::make_unique<RangeTree2D>(std::move(locals));
  }
}

std::size_t RangeTree3D::total_entries() const {
  std::size_t total = 0;
  for (const auto& xn : nodes_) {
    if (xn.sub) {
      total += xn.sub->total_entries();
    }
  }
  return total;
}

namespace {

/// Canonical x-node ids for the half-open leaf interval [l, r).
std::vector<std::size_t> canonical_heap_nodes(std::size_t num_leaves,
                                              std::size_t l, std::size_t r) {
  std::vector<std::size_t> out;
  struct Frame {
    std::size_t v, lo, hi;
  };
  std::vector<Frame> stack{{0, 0, num_leaves}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.lo >= r || f.hi <= l) {
      continue;
    }
    if (l <= f.lo && f.hi <= r) {
      out.push_back(f.v);
      continue;
    }
    const std::size_t mid = (f.lo + f.hi) / 2;
    stack.push_back(Frame{2 * f.v + 1, f.lo, mid});
    stack.push_back(Frame{2 * f.v + 2, mid, f.hi});
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> RangeTree3D::query(geom::Coord x1, geom::Coord x2,
                                              geom::Coord y1, geom::Coord y2,
                                              geom::Coord z1,
                                              geom::Coord z2) const {
  const auto lo_it = std::lower_bound(
      points_.begin(), points_.end(), x1,
      [](const Point3& p, geom::Coord x) { return p.x < x; });
  const auto hi_it = std::upper_bound(
      points_.begin(), points_.end(), x2,
      [](geom::Coord x, const Point3& p) { return x < p.x; });
  const std::size_t l = lo_it - points_.begin();
  const std::size_t r = hi_it - points_.begin();
  std::vector<std::uint64_t> out;
  if (l >= r) {
    return out;
  }
  for (std::size_t v : canonical_heap_nodes(num_leaves_, l, r)) {
    const XNode& xn = nodes_[v];
    if (!xn.sub) {
      continue;
    }
    const auto ranges = xn.sub->query_ranges(y1, y2, z1, z2);
    for (std::uint64_t local : extract_ids(xn.sub->tree(), ranges)) {
      out.push_back(xn.local_ids[local]);
    }
  }
  return out;
}

std::vector<std::uint64_t> RangeTree3D::coop_query(
    pram::Machine& m, geom::Coord x1, geom::Coord x2, geom::Coord y1,
    geom::Coord y2, geom::Coord z1, geom::Coord z2) const {
  const auto lo_it = std::lower_bound(
      points_.begin(), points_.end(), x1,
      [](const Point3& p, geom::Coord x) { return p.x < x; });
  const auto hi_it = std::upper_bound(
      points_.begin(), points_.end(), x2,
      [](geom::Coord x, const Point3& p) { return x < p.x; });
  const std::size_t l = lo_it - points_.begin();
  const std::size_t r = hi_it - points_.begin();
  std::vector<std::uint64_t> out;
  if (l >= r) {
    return out;
  }
  const auto canon = canonical_heap_nodes(num_leaves_, l, r);
  const std::size_t share = std::max<std::size_t>(
      1, m.processors() / std::max<std::size_t>(1, canon.size()));
  std::uint64_t max_steps = 0, total_work = 0;
  for (std::size_t v : canon) {
    const XNode& xn = nodes_[v];
    if (!xn.sub) {
      continue;
    }
    pram::Machine sub(share, m.model());
    const auto ranges = xn.sub->coop_query_ranges(sub, y1, y2, z1, z2);
    for (std::uint64_t local : extract_ids(xn.sub->tree(), ranges)) {
      out.push_back(xn.local_ids[local]);
    }
    max_steps = std::max(max_steps, sub.stats().steps);
    total_work += sub.stats().work;
  }
  m.charge(max_steps, total_work);
  return out;
}

std::vector<std::uint64_t> RangeTree3D::query_brute(
    geom::Coord x1, geom::Coord x2, geom::Coord y1, geom::Coord y2,
    geom::Coord z1, geom::Coord z2) const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (x1 <= p.x && p.x <= x2 && y1 <= p.y && p.y <= y2 && z1 <= p.z &&
        p.z <= z2) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace range
