#include "serve/frontend.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace serve {

using coop::Status;

const char* to_string(HealthState h) {
  switch (h) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kLameDuck: return "LAME_DUCK";
  }
  return "?";
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "CLOSED";
    case BreakerState::kOpen: return "OPEN";
    case BreakerState::kHalfOpen: return "HALF_OPEN";
  }
  return "?";
}

namespace {

/// splitmix64: the jitter stream.  Chosen over a stateful RNG so the
/// factor for (seed, batch, attempt) is a pure function — two runs with
/// the same seed produce byte-identical backoff schedules regardless of
/// interleaving.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::nanoseconds backoff_for(const FrontendOptions& o,
                                     std::uint64_t batch_seq,
                                     std::uint32_t attempt) {
  if (attempt == 0) {
    return std::chrono::nanoseconds{0};
  }
  const std::uint32_t exp = std::min<std::uint32_t>(attempt - 1, 30);
  const std::int64_t base = o.backoff_base.count();
  std::int64_t raw = base;
  if (base > 0 && exp < 63 && base <= (o.backoff_cap.count() >> exp)) {
    raw = base << exp;
  } else {
    raw = o.backoff_cap.count();
  }
  raw = std::min(raw, o.backoff_cap.count());
  // Jitter factor in [0.5, 1): half the nominal value is guaranteed, the
  // other half decorrelates retrying clients.
  const std::uint64_t r = splitmix64(o.jitter_seed ^
                                     splitmix64(batch_seq * 0x9E3779B9ull +
                                                attempt));
  const double factor = 0.5 + 0.5 * (static_cast<double>(r >> 11) /
                                     static_cast<double>(1ull << 53));
  return std::chrono::nanoseconds{
      static_cast<std::int64_t>(static_cast<double>(raw) * factor)};
}

Frontend::Frontend(snapshot::Registry& registry, QueryEngine& engine,
                   FrontendOptions opts)
    : registry_(registry), engine_(engine), opts_(std::move(opts)) {}

HealthState Frontend::health_locked() const {
  if (state_ == BreakerState::kOpen) {
    return HealthState::kLameDuck;
  }
  if (state_ == BreakerState::kHalfOpen || stats_.consecutive_degraded > 0) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

FrontendStats Frontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FrontendStats s = stats_;
  s.breaker = state_;
  s.health = health_locked();
  return s;
}

HealthState Frontend::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_locked();
}

BreakerState Frontend::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

Frontend::Mode Frontend::breaker_admit() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (state_ == BreakerState::kOpen && now >= open_until_) {
    state_ = BreakerState::kHalfOpen;
    probe_inflight_ = false;
  }
  switch (state_) {
    case BreakerState::kClosed:
      return Mode::kParallel;
    case BreakerState::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        ++stats_.breaker_probes;
        return Mode::kProbe;
      }
      [[fallthrough]];  // others wait out the probe like OPEN traffic
    case BreakerState::kOpen:
      return opts_.open_policy == OpenPolicy::kSequential
                 ? Mode::kSequentialOnly
                 : Mode::kShed;
  }
  return Mode::kParallel;
}

void Frontend::breaker_on_result(Mode mode, bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded) {
    ++stats_.consecutive_degraded;
    if (mode == Mode::kProbe) {
      // Failed probe: straight back to OPEN for another window (not a
      // new trip — the incident is still the one that opened it).
      probe_inflight_ = false;
      state_ = BreakerState::kOpen;
      open_until_ = std::chrono::steady_clock::now() + opts_.breaker_open_for;
    } else if (state_ == BreakerState::kClosed &&
               stats_.consecutive_degraded >= opts_.breaker_threshold) {
      state_ = BreakerState::kOpen;
      open_until_ = std::chrono::steady_clock::now() + opts_.breaker_open_for;
      ++stats_.breaker_trips;
    }
  } else {
    stats_.consecutive_degraded = 0;
    if (mode == Mode::kProbe) {
      probe_inflight_ = false;
      state_ = BreakerState::kClosed;
    }
  }
}

Status Frontend::run_admitted(snapshot::SnapshotKind need,
                              const BatchOptions* batch_override,
                              BatchReport* report,
                              std::uint64_t* served_version,
                              const AttemptFn& attempt) {
  const std::uint64_t seq =
      batch_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }

  // Admission: bounded in-flight budget, checked lock-free on the hot
  // path.  Shedding here is the overload contract — the caller gets an
  // immediate, retryable kResourceExhausted instead of a queue slot.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      opts_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
    return Status::resource_exhausted(
        "admission budget exhausted (" + std::to_string(opts_.max_inflight) +
        " batches in flight); batch shed");
  }
  struct InflightGuard {
    std::atomic<std::size_t>& n;
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_acq_rel); }
  } guard{inflight_};

  const Mode mode = breaker_admit();
  if (mode == Mode::kShed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_breaker;
    return Status::unavailable("circuit breaker open; batch shed");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.admitted;
    if (mode == Mode::kSequentialOnly) {
      ++stats_.sequential_batches;
    }
  }

  const BatchOptions& opts =
      batch_override != nullptr ? *batch_override : opts_.batch;
  const std::size_t max_attempts =
      mode == Mode::kSequentialOnly ? 1 : opts_.max_retries + 1;

  BatchReport final_report;
  std::vector<BatchAttempt> trail;
  for (std::uint32_t a = 0; a < max_attempts; ++a) {
    std::chrono::nanoseconds back{0};
    if (a > 0) {
      back = backoff_for(opts_, seq, a);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      if (opts_.sleep_on_backoff) {
        std::this_thread::sleep_for(back);
      }
    }
    // A fresh pin per attempt: a retry after a publish (or a rollback)
    // runs against the *new* current snapshot, which is the point of
    // retrying a batch that degraded while the structure was swapping.
    const snapshot::Registry::Pin pin = registry_.pin();
    if (!pin.has_snapshot()) {
      if (mode == Mode::kProbe) {
        breaker_on_result(mode, /*degraded=*/true);
      }
      return Status::unavailable("no snapshot published in the registry");
    }
    if (pin.snapshot().kind != need ||
        (need == snapshot::SnapshotKind::kPointLocator &&
         !pin.snapshot().pointloc.has_value())) {
      if (mode == Mode::kProbe) {
        breaker_on_result(mode, /*degraded=*/true);
      }
      return Status::failed_precondition(
          "current snapshot kind does not match the batch type");
    }
    QueryEngine& eng =
        mode == Mode::kSequentialOnly ? seq_engine_ : engine_;
    BatchReport r = attempt(eng, pin.snapshot(), opts, seq);
    trail.push_back(BatchAttempt{a, r.degraded, r.reason, back});
    if (served_version != nullptr) {
      *served_version = pin.version();
    }
    final_report = std::move(r);
    if (!final_report.degraded) {
      break;
    }
  }

  breaker_on_result(mode, final_report.degraded);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    if (final_report.degraded) {
      ++stats_.degraded_batches;
    }
  }
  final_report.attempts = std::move(trail);
  if (report != nullptr) {
    *report = std::move(final_report);
  }
  return coop::OkStatus();
}

Status Frontend::serve_paths(std::span<const PathQuery> queries,
                             std::vector<PathAnswer>& out,
                             BatchReport* report,
                             std::uint64_t* served_version,
                             const BatchOptions* batch_override,
                             const ChaosHooks* chaos) {
  const AttemptFn attempt = [&queries, &out, chaos](
                                QueryEngine& eng,
                                const snapshot::Snapshot& snap,
                                const BatchOptions& opts,
                                std::uint64_t seq) -> BatchReport {
    const FlatCascade& f = snap.cascade;
    out.assign(queries.size(), PathAnswer{});
    const std::size_t groups =
        (queries.size() + kPathGroup - 1) / kPathGroup;
    const auto run_group = [&](std::size_t gi) {
      const std::size_t begin = gi * kPathGroup;
      const std::size_t cnt = std::min(kPathGroup, queries.size() - begin);
      search_paths_grouped(f, queries.data() + begin, cnt,
                           out.data() + begin);
    };
    const std::function<void(std::size_t)> fn = [&](std::size_t gi) {
      if (chaos != nullptr && chaos->on_item) {
        chaos->on_item(seq, gi);
      }
      run_group(gi);
    };
    try {
      return eng.for_each(groups, fn, opts);
    } catch (const std::exception& e) {
      // The injected exception escaped the engine's worker try/catch —
      // it fired on the inline path (one-thread engine or the engine's
      // own sequential rerun).  The kernel itself never throws, so a
      // clean rerun completes the batch.
      for (std::size_t gi = 0; gi < groups; ++gi) {
        run_group(gi);
      }
      BatchReport r;
      r.degraded = true;
      r.reason = std::string("inline exception: ") + e.what();
      r.shards = 1;
      r.threads_used = 1;
      return r;
    }
  };
  return run_admitted(snapshot::SnapshotKind::kCascade, batch_override, report,
                      served_version, attempt);
}

Status Frontend::serve_points(std::span<const geom::Point> points,
                              std::vector<std::size_t>& out,
                              BatchReport* report,
                              std::uint64_t* served_version,
                              const BatchOptions* batch_override,
                              const ChaosHooks* chaos) {
  const AttemptFn attempt = [&points, &out, chaos](
                                QueryEngine& eng,
                                const snapshot::Snapshot& snap,
                                const BatchOptions& opts,
                                std::uint64_t seq) -> BatchReport {
    const FlatPointLocator& loc = *snap.pointloc;
    out.assign(points.size(), 0);
    const auto run_one = [&](std::size_t i) { out[i] = loc.locate(points[i]); };
    const std::function<void(std::size_t)> fn = [&](std::size_t i) {
      if (chaos != nullptr && chaos->on_item) {
        chaos->on_item(seq, i);
      }
      run_one(i);
    };
    try {
      return eng.for_each(points.size(), fn, opts);
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        run_one(i);
      }
      BatchReport r;
      r.degraded = true;
      r.reason = std::string("inline exception: ") + e.what();
      r.shards = 1;
      r.threads_used = 1;
      return r;
    }
  };
  return run_admitted(snapshot::SnapshotKind::kPointLocator, batch_override,
                      report,
                      served_version, attempt);
}

}  // namespace serve
