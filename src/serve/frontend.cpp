#include "serve/frontend.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace serve {

using coop::Status;

namespace {

/// Frontend metrics (DESIGN.md §10).  The per-batch counters mirror
/// FrontendStats so a scrape agrees with stats() modulo in-flight batches;
/// the gauges are the operator's one-glance view (breaker state, health,
/// in-flight).
struct FrontendMetrics {
  obs::Counter submitted;
  obs::Counter admitted;
  obs::Counter shed;
  obs::Counter shed_breaker;
  obs::Counter completed;
  obs::Counter degraded;
  obs::Counter degraded_deadline;
  obs::Counter retries;
  obs::Counter breaker_trips;
  obs::Counter breaker_probes;
  obs::Counter sequential;
  obs::Gauge breaker_state;
  obs::Gauge health;
  obs::Gauge inflight;
  obs::Histogram backoff_ns;
  obs::Histogram batch_latency_ns;
};

FrontendMetrics& frontend_metrics() {
  auto& r = obs::Registry::global();
  static FrontendMetrics m{
      r.counter("serve_frontend_submitted_total", "Batches submitted"),
      r.counter("serve_frontend_admitted_total",
                "Batches past admission and breaker"),
      r.counter("serve_frontend_shed_total",
                "Batches shed by the admission budget"),
      r.counter("serve_frontend_shed_breaker_total",
                "Batches shed by the OPEN breaker"),
      r.counter("serve_frontend_completed_total", "Batches completed"),
      r.counter("serve_frontend_degraded_total",
                "Batches whose final attempt degraded"),
      r.counter("serve_frontend_degraded_deadline_total",
                "Batches whose final attempt degraded by deadline expiry "
                "(subset of serve_frontend_degraded_total)"),
      r.counter("serve_frontend_retries_total",
                "Attempts beyond each batch's first"),
      r.counter("serve_frontend_breaker_trips_total",
                "CLOSED -> OPEN breaker transitions"),
      r.counter("serve_frontend_breaker_probes_total",
                "HALF_OPEN probes dispatched"),
      r.counter("serve_frontend_sequential_batches_total",
                "Batches served sequentially under the OPEN breaker"),
      r.gauge("serve_frontend_breaker_state",
              "Breaker state (0 CLOSED, 1 OPEN, 2 HALF_OPEN)"),
      r.gauge("serve_frontend_health",
              "Health (0 HEALTHY, 1 DEGRADED, 2 LAME_DUCK)"),
      r.gauge("serve_frontend_inflight_batches",
              "Admitted batches currently in flight"),
      r.histogram("serve_frontend_backoff_ns", obs::latency_bounds_ns(),
                  "Backoff slept (or recorded) before retry attempts, ns"),
      r.histogram("serve_frontend_batch_latency_ns", obs::latency_bounds_ns(),
                  "End-to-end batch wall time including retries, ns"),
  };
  return m;
}

}  // namespace

const char* to_string(HealthState h) {
  switch (h) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kLameDuck: return "LAME_DUCK";
  }
  return "?";
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "CLOSED";
    case BreakerState::kOpen: return "OPEN";
    case BreakerState::kHalfOpen: return "HALF_OPEN";
  }
  return "?";
}

namespace {

/// splitmix64: the jitter stream.  Chosen over a stateful RNG so the
/// factor for (seed, batch, attempt) is a pure function — two runs with
/// the same seed produce byte-identical backoff schedules regardless of
/// interleaving.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::nanoseconds backoff_for(const FrontendOptions& o,
                                     std::uint64_t batch_seq,
                                     std::uint32_t attempt) {
  if (attempt == 0) {
    return std::chrono::nanoseconds{0};
  }
  const std::uint32_t exp = std::min<std::uint32_t>(attempt - 1, 30);
  const std::int64_t base = o.backoff_base.count();
  std::int64_t raw = base;
  if (base > 0 && exp < 63 && base <= (o.backoff_cap.count() >> exp)) {
    raw = base << exp;
  } else {
    raw = o.backoff_cap.count();
  }
  raw = std::min(raw, o.backoff_cap.count());
  // Jitter factor in [0.5, 1): half the nominal value is guaranteed, the
  // other half decorrelates retrying clients.
  const std::uint64_t r = splitmix64(o.jitter_seed ^
                                     splitmix64(batch_seq * 0x9E3779B9ull +
                                                attempt));
  const double factor = 0.5 + 0.5 * (static_cast<double>(r >> 11) /
                                     static_cast<double>(1ull << 53));
  return std::chrono::nanoseconds{
      static_cast<std::int64_t>(static_cast<double>(raw) * factor)};
}

Frontend::Frontend(snapshot::Registry& registry, QueryEngine& engine,
                   FrontendOptions opts)
    : registry_(registry), engine_(engine), opts_(std::move(opts)) {}

HealthState Frontend::health_locked() const {
  if (state_ == BreakerState::kOpen) {
    return HealthState::kLameDuck;
  }
  if (state_ == BreakerState::kHalfOpen || stats_.consecutive_degraded > 0) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

FrontendStats Frontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FrontendStats s = stats_;
  s.breaker = state_;
  s.health = health_locked();
  return s;
}

HealthState Frontend::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_locked();
}

BreakerState Frontend::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

Frontend::Mode Frontend::breaker_admit(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (state_ == BreakerState::kOpen && now >= open_until_) {
    state_ = BreakerState::kHalfOpen;
    probe_inflight_ = false;
    note_breaker_locked(seq);
  }
  switch (state_) {
    case BreakerState::kClosed:
      return Mode::kParallel;
    case BreakerState::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        ++stats_.breaker_probes;
        frontend_metrics().breaker_probes.inc();
        return Mode::kProbe;
      }
      [[fallthrough]];  // others wait out the probe like OPEN traffic
    case BreakerState::kOpen:
      return opts_.open_policy == OpenPolicy::kSequential
                 ? Mode::kSequentialOnly
                 : Mode::kShed;
  }
  return Mode::kParallel;
}

void Frontend::breaker_on_result(Mode mode, bool degraded, std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded) {
    ++stats_.consecutive_degraded;
    if (mode == Mode::kProbe) {
      // Failed probe: straight back to OPEN for another window (not a
      // new trip — the incident is still the one that opened it).
      probe_inflight_ = false;
      state_ = BreakerState::kOpen;
      open_until_ = std::chrono::steady_clock::now() + opts_.breaker_open_for;
      note_breaker_locked(seq);
    } else if (state_ == BreakerState::kClosed &&
               stats_.consecutive_degraded >= opts_.breaker_threshold) {
      state_ = BreakerState::kOpen;
      open_until_ = std::chrono::steady_clock::now() + opts_.breaker_open_for;
      ++stats_.breaker_trips;
      frontend_metrics().breaker_trips.inc();
      note_breaker_locked(seq);
    }
  } else {
    const bool was_degraded = stats_.consecutive_degraded > 0;
    stats_.consecutive_degraded = 0;
    if (mode == Mode::kProbe) {
      probe_inflight_ = false;
      state_ = BreakerState::kClosed;
      note_breaker_locked(seq);
    } else if (was_degraded) {
      // No state change, but health drops back to HEALTHY.
      frontend_metrics().health.set(static_cast<std::int64_t>(health_locked()));
    }
  }
}

void Frontend::note_breaker_locked(std::uint64_t seq) {
  FrontendMetrics& fm = frontend_metrics();
  fm.breaker_state.set(static_cast<std::int64_t>(state_));
  fm.health.set(static_cast<std::int64_t>(health_locked()));
  // Transitions are rare (one per trip/probe window), so they are traced
  // unconditionally rather than sampled per batch.
  obs::TraceRing::global().emit(seq, obs::SpanKind::kBreaker,
                                static_cast<std::uint32_t>(state_));
}

Status Frontend::run_admitted(snapshot::SnapshotKind need,
                              const BatchOptions* batch_override,
                              BatchReport* report,
                              std::uint64_t* served_version,
                              const AttemptFn& attempt) {
  const std::uint64_t seq =
      batch_seq_.fetch_add(1, std::memory_order_relaxed);
  FrontendMetrics& fm = frontend_metrics();
  obs::TraceRing& ring = obs::TraceRing::global();
  const bool traced = ring.sampled(seq);
  fm.submitted.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }

  // Admission: bounded in-flight budget, checked lock-free on the hot
  // path.  Shedding here is the overload contract — the caller gets an
  // immediate, retryable kResourceExhausted instead of a queue slot.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      opts_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    fm.shed.inc();
    if (traced) {
      ring.emit(seq, obs::SpanKind::kShed);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
    return Status::resource_exhausted(
        "admission budget exhausted (" + std::to_string(opts_.max_inflight) +
        " batches in flight); batch shed");
  }
  struct InflightGuard {
    std::atomic<std::size_t>& n;
    obs::Gauge g;
    ~InflightGuard() {
      n.fetch_sub(1, std::memory_order_acq_rel);
      g.add(-1);
    }
  } guard{inflight_, fm.inflight};
  fm.inflight.add(1);
  const auto batch_start = std::chrono::steady_clock::now();

  const Mode mode = breaker_admit(seq);
  if (mode == Mode::kShed) {
    fm.shed_breaker.inc();
    if (traced) {
      ring.emit(seq, obs::SpanKind::kShedBreaker);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_breaker;
    return Status::unavailable("circuit breaker open; batch shed");
  }
  fm.admitted.inc();
  if (mode == Mode::kSequentialOnly) {
    fm.sequential.inc();
  }
  if (traced) {
    ring.emit(seq, obs::SpanKind::kAdmit, static_cast<std::uint32_t>(mode));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.admitted;
    if (mode == Mode::kSequentialOnly) {
      ++stats_.sequential_batches;
    }
  }

  const BatchOptions& opts =
      batch_override != nullptr ? *batch_override : opts_.batch;
  const std::size_t max_attempts =
      mode == Mode::kSequentialOnly ? 1 : opts_.max_retries + 1;

  BatchReport final_report;
  std::vector<BatchAttempt> trail;
  for (std::uint32_t a = 0; a < max_attempts; ++a) {
    std::chrono::nanoseconds back{0};
    if (a > 0) {
      back = backoff_for(opts_, seq, a);
      fm.retries.inc();
      fm.backoff_ns.record(static_cast<std::uint64_t>(back.count()));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      if (opts_.sleep_on_backoff) {
        std::this_thread::sleep_for(back);
      }
    }
    if (traced) {
      ring.emit(seq, obs::SpanKind::kAttempt, a,
                static_cast<std::uint64_t>(back.count()));
    }
    // A fresh pin per attempt: a retry after a publish (or a rollback)
    // runs against the *new* current snapshot, which is the point of
    // retrying a batch that degraded while the structure was swapping.
    const snapshot::Registry::Pin pin = registry_.pin();
    if (!pin.has_snapshot()) {
      if (mode == Mode::kProbe) {
        breaker_on_result(mode, /*degraded=*/true, seq);
      }
      return Status::unavailable("no snapshot published in the registry");
    }
    if (pin.snapshot().kind != need ||
        (need == snapshot::SnapshotKind::kPointLocator &&
         !pin.snapshot().pointloc.has_value())) {
      if (mode == Mode::kProbe) {
        breaker_on_result(mode, /*degraded=*/true, seq);
      }
      return Status::failed_precondition(
          "current snapshot kind does not match the batch type");
    }
    QueryEngine& eng =
        mode == Mode::kSequentialOnly ? seq_engine_ : engine_;
    BatchReport r = attempt(eng, pin.snapshot(), opts, seq);
    if (r.degraded && traced) {
      ring.emit(seq, obs::SpanKind::kDegraded, a);
    }
    trail.push_back(BatchAttempt{a, r.degraded, r.reason, back, r.cause});
    if (served_version != nullptr) {
      *served_version = pin.version();
    }
    final_report = std::move(r);
    if (!final_report.degraded) {
      break;
    }
  }

  breaker_on_result(mode, final_report.degraded, seq);
  fm.completed.inc();
  if (final_report.degraded) {
    fm.degraded.inc();
    if (final_report.cause == DegradeCause::kDeadline) {
      fm.degraded_deadline.inc();
    }
  }
  const auto latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - batch_start)
          .count());
  fm.batch_latency_ns.record(latency_ns);
  if (traced) {
    ring.emit(seq, obs::SpanKind::kComplete,
              final_report.degraded ? 1u : 0u, latency_ns);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    if (final_report.degraded) {
      ++stats_.degraded_batches;
      if (final_report.cause == DegradeCause::kDeadline) {
        ++stats_.degraded_deadline;
      }
    }
  }
  final_report.attempts = std::move(trail);
  if (report != nullptr) {
    *report = std::move(final_report);
  }
  return coop::OkStatus();
}

Status Frontend::serve_paths(std::span<const PathQuery> queries,
                             std::vector<PathAnswer>& out,
                             BatchReport* report,
                             std::uint64_t* served_version,
                             const BatchOptions* batch_override,
                             const ChaosHooks* chaos) {
  const AttemptFn attempt = [&queries, &out, chaos](
                                QueryEngine& eng,
                                const snapshot::Snapshot& snap,
                                const BatchOptions& opts,
                                std::uint64_t seq) -> BatchReport {
    const FlatCascade& f = snap.cascade;
    out.assign(queries.size(), PathAnswer{});
    const std::size_t groups =
        (queries.size() + kPathGroup - 1) / kPathGroup;
    const auto run_group = [&](std::size_t gi) {
      const std::size_t begin = gi * kPathGroup;
      const std::size_t cnt = std::min(kPathGroup, queries.size() - begin);
      search_paths_grouped(f, queries.data() + begin, cnt,
                           out.data() + begin);
    };
    const std::function<void(std::size_t)> fn = [&](std::size_t gi) {
      if (chaos != nullptr && chaos->on_item) {
        chaos->on_item(seq, gi);
      }
      run_group(gi);
    };
    try {
      return eng.for_each(groups, fn, opts);
    } catch (const std::exception& e) {
      // The injected exception escaped the engine's worker try/catch —
      // it fired on the inline path (one-thread engine or the engine's
      // own sequential rerun).  The kernel itself never throws, so a
      // clean rerun completes the batch.
      for (std::size_t gi = 0; gi < groups; ++gi) {
        run_group(gi);
      }
      BatchReport r;
      r.degraded = true;
      r.reason = std::string("inline exception: ") + e.what();
      r.cause = DegradeCause::kException;
      r.shards = 1;
      r.threads_used = 1;
      return r;
    }
  };
  return run_admitted(snapshot::SnapshotKind::kCascade, batch_override, report,
                      served_version, attempt);
}

Status Frontend::serve_points(std::span<const geom::Point> points,
                              std::vector<std::size_t>& out,
                              BatchReport* report,
                              std::uint64_t* served_version,
                              const BatchOptions* batch_override,
                              const ChaosHooks* chaos) {
  const AttemptFn attempt = [&points, &out, chaos](
                                QueryEngine& eng,
                                const snapshot::Snapshot& snap,
                                const BatchOptions& opts,
                                std::uint64_t seq) -> BatchReport {
    const FlatPointLocator& loc = *snap.pointloc;
    out.assign(points.size(), 0);
    const auto run_one = [&](std::size_t i) { out[i] = loc.locate(points[i]); };
    const std::function<void(std::size_t)> fn = [&](std::size_t i) {
      if (chaos != nullptr && chaos->on_item) {
        chaos->on_item(seq, i);
      }
      run_one(i);
    };
    try {
      return eng.for_each(points.size(), fn, opts);
    } catch (const std::exception& e) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        run_one(i);
      }
      BatchReport r;
      r.degraded = true;
      r.reason = std::string("inline exception: ") + e.what();
      r.cause = DegradeCause::kException;
      r.shards = 1;
      r.threads_used = 1;
      return r;
    }
  };
  return run_admitted(snapshot::SnapshotKind::kPointLocator, batch_override,
                      report,
                      served_version, attempt);
}

}  // namespace serve
