#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "geom/primitives.hpp"
#include "serve/flat_cascade.hpp"
#include "serve/flat_pointloc.hpp"

namespace serve {

/// Per-batch execution knobs.
struct BatchOptions {
  /// Watchdog for the parallel attempt; 0 disables it.  Mirrors the
  /// deadline discipline of pram::run_resilient: expiry abandons the
  /// parallel run and the batch is re-executed sequentially.
  std::chrono::nanoseconds deadline{0};
  /// Queries per shard.  Shards are the unit workers claim; a shard's
  /// queries run back-to-back on one core so their arena accesses amortize
  /// cache misses.  0 picks a default from the batch size.
  std::size_t shard_size = 0;
};

/// Why a batch degraded to the sequential rerun.  Deadline expiry is a
/// distinct cause (not just a reason string) so callers — the frontend's
/// stats, the obs counters, and the wire layer's kDeadlineExceeded typed
/// error — can tell a timing failure from a poisoned worker without
/// parsing free text.
enum class DegradeCause : int {
  kNone = 0,       ///< not degraded
  kDeadline = 1,   ///< the batch deadline expired mid-parallel-attempt
  kException = 2,  ///< a worker (or inline run) threw
};
[[nodiscard]] const char* to_string(DegradeCause c);

/// One execution attempt of a batch as retried by serve::Frontend: the
/// engine-level outcome plus the backoff that was slept *before* this
/// attempt ran (0 for the first attempt).  The trail is deterministic
/// given the frontend's jitter seed and the batch sequence number.
struct BatchAttempt {
  std::uint32_t attempt = 0;  ///< 0-based attempt index
  bool degraded = false;
  std::string reason;
  std::chrono::nanoseconds backoff{0};
  DegradeCause cause = DegradeCause::kNone;
};

/// Outcome of one batch, mirroring pram::RunReport: if the parallel
/// attempt failed (worker exception or deadline) the batch was transparently
/// re-run sequentially on the calling thread and `degraded` is set.
struct BatchReport {
  bool degraded = false;
  std::string reason;
  DegradeCause cause = DegradeCause::kNone;
  std::size_t shards = 0;        ///< shards the parallel attempt was cut into
  std::size_t threads_used = 0;  ///< 1 when run inline / degraded
  /// Per-attempt trail when the batch went through serve::Frontend's
  /// retry loop; empty for direct QueryEngine calls.  The final attempt's
  /// degraded/reason always equal the top-level fields.
  std::vector<BatchAttempt> attempts;
};

/// A persistent worker pool that serves independent queries against the
/// immutable flat structures.  Threads are spawned once and reused across
/// batches (no per-query or per-batch thread churn); a batch is sharded
/// and workers claim shards from an atomic cursor, so an imbalanced query
/// mix still load-balances.
///
/// Degradation discipline (from PR 1's run_resilient): the job function
/// must be idempotent per index — it only writes slot i of its own output.
/// If any worker throws, or the batch deadline expires, the parallel
/// attempt is drained, its partial output is discarded, and the whole
/// batch is re-run sequentially on the calling thread; the report carries
/// `degraded` and the reason.  A faulty worker can never tear down the
/// process or produce a torn batch.
class QueryEngine {
 public:
  /// `threads == 0` uses the hardware concurrency.  One thread means every
  /// batch runs inline on the calling thread (no pool is spawned).
  explicit QueryEngine(std::size_t threads = 0);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Run `fn(i)` for every i in [0, n), sharded across the pool.
  BatchReport for_each(std::size_t n,
                       const std::function<void(std::size_t)>& fn,
                       const BatchOptions& opts = {});

 private:
  void worker_loop();
  bool run_parallel(std::size_t n, std::size_t shard_size,
                    const std::function<void(std::size_t)>& fn,
                    std::chrono::steady_clock::time_point deadline_at,
                    bool deadline_armed, std::string& fail_reason);

  std::size_t threads_ = 1;
  /// Spin-then-wait enabled (threads fit the machine; see ctor).
  bool spin_ = false;
  std::vector<std::thread> workers_;
  /// Serializes whole batches.  mutex_ alone is not enough: the submitter
  /// releases it inside done_cv_.wait(), so without this outer lock a
  /// second for_each could republish the batch state mid-drain and the
  /// first caller would return "success" for work that never ran.
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<bool> shutdown_{false};

  // The cross-thread hot atomics, each alone on its cache line: at smoke
  // batch sizes a batch lasts ~100 us, so every worker hammers the shard
  // cursor while others poll abort_ / decrement remaining_ — co-locating
  // them (or parking them next to the batch fields below) turns that into
  // false-sharing ping-pong that erases multi-core scaling.
  alignas(kCacheLine) std::atomic<std::size_t> next_shard_{0};
  alignas(kCacheLine) std::atomic<bool> abort_{false};
  /// Bumped (under mutex_) to publish a batch; workers spin briefly on it
  /// before parking in work_cv_ so back-to-back batches skip the condvar
  /// wakeup latency.
  alignas(kCacheLine) std::atomic<std::uint64_t> generation_{0};
  /// Workers still in the current batch; the submitter spin-then-waits on
  /// it reaching zero.
  alignas(kCacheLine) std::atomic<std::size_t> remaining_{0};

  // Current batch (published under mutex_ before generation_ is bumped).
  alignas(kCacheLine) const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::size_t shard_size_ = 1;
  std::size_t num_shards_ = 0;
  std::exception_ptr error_;
  std::chrono::steady_clock::time_point deadline_at_{};
  bool deadline_armed_ = false;
};

/// One explicit-path query against a FlatCascade.
struct PathQuery {
  std::vector<NodeId> path;
  Key y = 0;
};

/// Answers for one PathQuery: find(y, v) per path node, root first —
/// identical, index for index, to fc::search_explicit's result.
struct PathAnswer {
  std::vector<std::uint32_t> aug_index;
  std::vector<std::uint32_t> proper_index;
};

/// Queries per lockstep group in search_paths_grouped: enough in-flight
/// misses to cover DRAM latency, small enough that per-query state stays
/// in registers / L1.
inline constexpr std::size_t kPathGroup = 16;

/// Single-thread batch kernel: serve `count` explicit-path queries,
/// advancing a group of up to kPathGroup queries one bridge hop per round.
/// Each round runs in phases (node metadata -> bridge cells -> landing key
/// blocks -> walk-backs) with the next phase's loads prefetched across the
/// whole group, so the per-hop cache miss of every grouped query overlaps
/// instead of serializing along one query's dependency chain.  Answers are
/// identical to per-query FlatCascade::search_path.
void search_paths_grouped(const FlatCascade& f, const PathQuery* queries,
                          std::size_t count, PathAnswer* out);

/// Serve a batch of explicit-path queries.  `out` is resized to the batch;
/// the batch is cut into kPathGroup-sized lockstep groups (the unit workers
/// claim), and answer q is written only by the worker that owns query q's
/// group.
BatchReport serve_path_queries(const FlatCascade& f, QueryEngine& engine,
                               std::span<const PathQuery> queries,
                               std::vector<PathAnswer>& out,
                               const BatchOptions& opts = {});

/// Variant of search_paths_grouped writing into caller-provided flat
/// buffers: out_aug[q] / out_proper[q] each point at queries[q].path.size()
/// writable uint32 slots.  Same answers, no per-query vector.
void search_paths_grouped_into(const FlatCascade& f, const PathQuery* queries,
                               std::size_t count,
                               std::uint32_t* const* out_aug,
                               std::uint32_t* const* out_proper);

/// Arena-backed answers for a whole path batch: two flat uint32 buffers
/// (aug + proper, prefix-summed per query) carved from a reusable
/// BumpArena, so steady-state serving allocates nothing per batch — the
/// malloc-free counterpart of std::vector<PathAnswer>.  Reusable: reset()
/// rewinds the arena and re-slices for the next batch.
class PathAnswerSet {
 public:
  /// Size the set for `queries` (invalidates previous contents).
  void reset(std::span<const PathQuery> queries) {
    off_.resize(queries.size() + 1);
    std::size_t total = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      off_[i] = total;
      total += queries[i].path.size();
    }
    off_[queries.size()] = total;
    arena_.reset();
    aug_ = arena_.alloc<std::uint32_t>(total);
    proper_ = arena_.alloc<std::uint32_t>(total);
  }

  [[nodiscard]] std::size_t size() const {
    return off_.empty() ? 0 : off_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint32_t> aug(std::size_t q) const {
    return {aug_ + off_[q], off_[q + 1] - off_[q]};
  }
  [[nodiscard]] std::span<const std::uint32_t> proper(std::size_t q) const {
    return {proper_ + off_[q], off_[q + 1] - off_[q]};
  }

  /// Writable slices for the batch kernel (query q's slots only).
  [[nodiscard]] std::uint32_t* aug_data(std::size_t q) {
    return aug_ + off_[q];
  }
  [[nodiscard]] std::uint32_t* proper_data(std::size_t q) {
    return proper_ + off_[q];
  }

 private:
  BumpArena arena_;
  std::uint32_t* aug_ = nullptr;
  std::uint32_t* proper_ = nullptr;
  std::vector<std::size_t> off_;
};

/// serve_path_queries into a PathAnswerSet: same engine sharding and
/// answers, zero steady-state allocation (the set's arena is reused).
BatchReport serve_path_queries_flat(const FlatCascade& f, QueryEngine& engine,
                                    std::span<const PathQuery> queries,
                                    PathAnswerSet& out,
                                    const BatchOptions& opts = {});

/// Serve a batch of point-location queries; out[i] is the region of
/// points[i].
BatchReport serve_point_queries(const FlatPointLocator& loc,
                                QueryEngine& engine,
                                std::span<const geom::Point> points,
                                std::vector<std::size_t>& out,
                                const BatchOptions& opts = {});

}  // namespace serve
