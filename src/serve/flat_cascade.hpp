#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fc/build.hpp"
#include "robust/status.hpp"
#include "serve/arena.hpp"
#include "serve/simd_find.hpp"

namespace snapshot {
struct ArenaAccess;  // snapshot (de)serializer backdoor, see snapshot.hpp
}  // namespace snapshot

namespace serve {

using cat::Key;
using cat::NodeId;

/// Per-node metadata of the flat arena: offsets into the SoA pools plus
/// the flattened topology.  24 bytes, so two-to-a-cache-line-pair; kept
/// deliberately small because the hot loop touches one FlatNode per path
/// node.
struct FlatNode {
  std::uint32_t key_off = 0;     ///< start of keys/proper slices
  std::uint32_t key_count = 0;   ///< augmented size (incl. +inf terminal)
  std::uint32_t bridge_off = 0;  ///< start of bridge rows (key_count each)
  std::uint32_t child_off = 0;   ///< start of child-index slice
  std::int32_t parent = -1;      ///< parent node index, -1 at the root
  std::uint16_t num_children = 0;
  std::uint16_t slot = 0;        ///< child slot in the parent (0 at root)
};
static_assert(sizeof(FlatNode) == 24);

/// The serving-layer compilation of an fc::Structure: every augmented
/// catalog's keys / proper / bridge columns packed into three contiguous
/// SoA pools (one 64-byte-aligned allocation each, `uint32` offsets), the
/// tree topology flattened to index arrays, so a whole cascaded-path query
/// runs on five base pointers with no per-node vector hops.  Immutable
/// after compile(); safe to share across query threads.
///
/// Answers are defined by the sequential oracles: for every valid path and
/// key, search() returns exactly the aug/proper indices of
/// fc::search_explicit on the source structure (tested differentially).
/// PRAM step-count claims stay on the simulator — the arena measures
/// seconds, not steps (DESIGN.md §7).
class FlatCascade {
 public:
  /// An empty cascade (0 nodes); assign from compile() before querying.
  FlatCascade() = default;

  /// Compile `s` into the arena.  `s` is validated structurally first
  /// (sorted keys, +inf terminals, exact-successor bridges, proper-map
  /// correctness, topology arity) so a corrupted structure — e.g. one
  /// mutated by robust::corrupt — is rejected with a Status instead of
  /// being baked into an arena that would read out of bounds.  The source
  /// structure is not referenced after compile() returns.
  [[nodiscard]] static coop::Expected<FlatCascade> compile(
      const fc::Structure& s);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::uint32_t fanout_bound() const { return b_; }
  [[nodiscard]] const FlatNode& node(std::uint32_t v) const {
    return nodes_[v];
  }
  [[nodiscard]] std::uint32_t root() const { return 0; }
  [[nodiscard]] bool is_leaf(std::uint32_t v) const {
    return nodes_[v].num_children == 0;
  }
  [[nodiscard]] std::uint32_t child(std::uint32_t v,
                                    std::uint32_t slot) const {
    return child_[nodes_[v].child_off + slot];
  }

  /// aug_find: index of the smallest augmented key >= y at node v.
  /// Branchless multiway descent over the node's blocked layout — one
  /// cache line (8 keys) ranked per step, AVX2 when the CPU has it
  /// (simd_find.hpp / DESIGN.md §12).  Always in [0, key_count): the
  /// +inf terminal guarantees a hit.
  [[nodiscard]] std::uint32_t find(std::uint32_t v, Key y) const {
    const FlatNode& nd = nodes_[v];
    const std::uint32_t off = simd_off_[v];
    return simd::lower_bound(simd_keys_.data() + off, simd_pos_.data() + off,
                             nd.key_count, y);
  }

  /// The pre-SIMD branch-light binary search over the sorted key slice.
  /// Kept as the differential reference for find(): both are exercised
  /// against each other in tests and the bench equal-answers gate.
  [[nodiscard]] std::uint32_t find_binary(std::uint32_t v, Key y) const {
    const FlatNode& nd = nodes_[v];
    const Key* base = keys_.data() + nd.key_off;
    const Key* k = base;
    std::uint32_t n = nd.key_count;
    while (n > 1) {
      const std::uint32_t half = n / 2;
      base += (base[half] < y) ? half : 0;
      n -= half;
    }
    return static_cast<std::uint32_t>(base - k) + (*base < y ? 1 : 0);
  }

  /// Move from entry i at v (== find(v, y)) to find(child, y): one bridge
  /// load, then a walk-back of at most fanout_bound() entries.  Prefetches
  /// the child's key block around the landing position before the
  /// dependent walk-back reads it.
  [[nodiscard]] std::uint32_t follow_bridge(std::uint32_t v, std::uint32_t i,
                                            std::uint32_t slot, Key y) const {
    const FlatNode& nd = nodes_[v];
    const std::uint32_t w = child_[nd.child_off + slot];
    const FlatNode& cn = nodes_[w];
    const Key* wk = keys_.data() + cn.key_off;
    std::uint32_t pos = bridge_[nd.bridge_off +
                                static_cast<std::size_t>(slot) * nd.key_count +
                                i];
    __builtin_prefetch(wk + (pos > b_ ? pos - b_ : 0));
    while (pos > 0 && wk[pos - 1] >= y) {
      --pos;
    }
    return pos;
  }

  /// Original-catalog index of find(y, v), valid when i == find(v, y).
  [[nodiscard]] std::uint32_t to_proper(std::uint32_t v,
                                        std::uint32_t i) const {
    return proper_[nodes_[v].key_off + i];
  }

  // follow_bridge, split into phases for lockstep batch kernels
  // (search_paths_grouped): the phases of a whole query group run
  // back-to-back, so each phase's cache misses overlap across the group
  // instead of serializing along one query's dependency chain.

  /// Address of the bridge cell follow_bridge(v, i, slot, .) loads first —
  /// exposed so a batch kernel can prefetch it one phase ahead.
  [[nodiscard]] const std::uint32_t* bridge_cell(std::uint32_t v,
                                                 std::uint32_t i,
                                                 std::uint32_t slot) const {
    const FlatNode& nd = nodes_[v];
    return bridge_.data() + nd.bridge_off +
           static_cast<std::size_t>(slot) * nd.key_count + i;
  }
  /// Key / proper addresses at node w around a bridge landing position
  /// (prefetch aids; the walk-back moves at most fanout_bound() entries).
  [[nodiscard]] const Key* key_ptr(std::uint32_t w, std::uint32_t pos) const {
    return keys_.data() + nodes_[w].key_off + pos;
  }
  [[nodiscard]] const std::uint32_t* proper_ptr(std::uint32_t w,
                                                std::uint32_t pos) const {
    return proper_.data() + nodes_[w].key_off + pos;
  }
  /// Walk-back half of follow_bridge: refine landing `pos` to find(w, y).
  [[nodiscard]] std::uint32_t walk_back(std::uint32_t w, std::uint32_t pos,
                                        Key y) const {
    const Key* wk = keys_.data() + nodes_[w].key_off;
    while (pos > 0 && wk[pos - 1] >= y) {
      --pos;
    }
    return pos;
  }

  /// Explicit-path query: one binary search at path[0], one bridge hop per
  /// subsequent node.  Writes find results for all path nodes into
  /// out_aug/out_proper (each path.size() long; either may be null).  The
  /// path must be a valid parent-to-child chain starting at the root —
  /// callers serving untrusted paths go through validate_path() first.
  void search_path(std::span<const NodeId> path, Key y, std::uint32_t* out_aug,
                   std::uint32_t* out_proper) const {
    std::uint32_t v = static_cast<std::uint32_t>(path[0]);
    std::uint32_t i = find(v, y);
    if (out_aug != nullptr) {
      out_aug[0] = i;
    }
    if (out_proper != nullptr) {
      out_proper[0] = to_proper(v, i);
    }
    for (std::size_t step = 1; step < path.size(); ++step) {
      const std::uint32_t w = static_cast<std::uint32_t>(path[step]);
      // The next hop's dependent loads are w's FlatNode and bridge row;
      // warm the metadata line while this hop's walk-back retires.
      __builtin_prefetch(&nodes_[w]);
      i = follow_bridge(v, i, nodes_[w].slot, y);
      v = w;
      if (out_aug != nullptr) {
        out_aug[step] = i;
      }
      if (out_proper != nullptr) {
        out_proper[step] = to_proper(v, i);
      }
    }
  }

  /// Allocation-friendly result for tests / the CLI (the batch engine uses
  /// search_path into caller-owned buffers instead).
  struct PathResult {
    std::vector<std::uint32_t> aug_index;
    std::vector<std::uint32_t> proper_index;
  };
  [[nodiscard]] PathResult search(std::span<const NodeId> path, Key y) const {
    PathResult r;
    r.aug_index.resize(path.size());
    r.proper_index.resize(path.size());
    search_path(path, y, r.aug_index.data(), r.proper_index.data());
    return r;
  }

  /// Implicit root-to-leaf descent: `branch(v, proper_index)` picks the
  /// child slot at every internal node (same contract as fc::BranchFn).
  /// Returns the leaf reached; out_last_proper (optional) receives the
  /// leaf's proper index.  Used by the flat point locator.
  template <typename BranchFn>
  [[nodiscard]] std::uint32_t walk_implicit(
      Key y, BranchFn&& branch, std::uint32_t* out_last_proper = nullptr) const {
    std::uint32_t v = root();
    std::uint32_t i = find(v, y);
    for (;;) {
      const std::uint32_t prop = to_proper(v, i);
      if (is_leaf(v)) {
        if (out_last_proper != nullptr) {
          *out_last_proper = prop;
        }
        return v;
      }
      const std::uint32_t slot = branch(v, prop);
      const std::uint32_t w = child(v, slot);
      __builtin_prefetch(&nodes_[w]);
      i = follow_bridge(v, i, slot, y);
      v = w;
    }
  }

  /// Raw const pointers into the pools for the lockstep batch kernels in
  /// query_engine.cpp: the grouped kernel keeps its whole per-group state
  /// in registers/L1 and indexes these bases directly instead of paying a
  /// member-function round trip per phase per query.  Read-only; valid as
  /// long as the cascade lives (pools never reallocate).
  struct KernelView {
    const FlatNode* nodes = nullptr;
    const Key* keys = nullptr;
    const std::uint32_t* proper = nullptr;
    const std::uint32_t* bridge = nullptr;
    const std::uint32_t* child = nullptr;
    const Key* simd_keys = nullptr;
    const std::uint32_t* simd_pos = nullptr;
    const std::uint32_t* simd_off = nullptr;
    std::uint32_t fanout = 0;
  };
  [[nodiscard]] KernelView kernel_view() const {
    return KernelView{nodes_.data(),     keys_.data(),     proper_.data(),
                      bridge_.data(),    child_.data(),    simd_keys_.data(),
                      simd_pos_.data(),  simd_off_.data(), b_};
  }

  /// Untrusted-path validation: in-range node ids, starts at the root,
  /// consecutive nodes are parent/child.  OK paths are safe for
  /// search_path even with asserts compiled out.
  [[nodiscard]] coop::Status validate_path(std::span<const NodeId> path) const;

  /// Arena footprint in bytes (all pools; space accounting for benches).
  [[nodiscard]] std::size_t arena_bytes() const {
    return keys_.allocated_bytes() + proper_.allocated_bytes() +
           bridge_.allocated_bytes() + child_.allocated_bytes() +
           nodes_.allocated_bytes() + simd_keys_.allocated_bytes() +
           simd_pos_.allocated_bytes() + simd_off_.allocated_bytes();
  }
  [[nodiscard]] std::size_t total_entries() const { return keys_.size(); }

 private:
  /// The snapshot codec reads the pools verbatim for write() and installs
  /// view pools over a mmap for open() — the only code, besides compile,
  /// that touches the representation (robust::StructureAccess idiom).
  friend struct snapshot::ArenaAccess;

  Pool<FlatNode> nodes_;
  Pool<Key> keys_;            ///< all augmented keys, node-major
  Pool<std::uint32_t> proper_;///< aug index -> original-catalog index
  Pool<std::uint32_t> bridge_;///< bridge rows, node-major then slot-major
  Pool<std::uint32_t> child_; ///< flattened child lists
  // Blocked multiway search layout (simd_find.hpp): per node, key_count
  // padded to a multiple of 8 slots of (key, rank); simd_off_[v] is the
  // node's first slot.  Derived from keys_ at compile()/open() time and
  // carried in v2 snapshots so mmap loads stay zero-copy.
  Pool<Key> simd_keys_;
  Pool<std::uint32_t> simd_pos_;
  Pool<std::uint32_t> simd_off_;  ///< one entry per node
  std::uint32_t b_ = 0;       ///< fan-out bound (walk-back cap)
};

}  // namespace serve
