#pragma once

// Background integrity scrubber (DESIGN.md §9): the detection-and-repair
// half of the overload-safe frontend.  A snapshot that validated at
// open() can still rot while served — bad DRAM, a stray write through a
// debugging tool, or (in the chaos harness) a deliberate bit-flip into a
// writable serving copy.  The scrubber periodically
//
//   1. re-verifies every section CRC-32C of the current snapshot's
//      mapping (snapshot::verify), and
//   2. differentially samples random root-to-leaf queries against a
//      caller-supplied oracle (the source tree's own binary search),
//
// and on any mismatch *quarantines* the generation and atomically rolls
// the Registry back to the last-known-good one (rebuild-and-swap, never
// in-place repair — Afshani–Cheng's lower bound is the design hint that
// patching a cascaded structure in place is a losing game).  Clean passes
// mark the generation good, which is what makes it a rollback target.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "robust/status.hpp"
#include "snapshot/registry.hpp"

namespace serve {

/// Expected proper index for (node, y) — typically
/// `tree.catalog(node).find(y)` on the source tree.  Must be callable
/// from the scrubber thread.
using ScrubOracle =
    std::function<std::uint32_t(std::uint32_t node, cat::Key y)>;

struct ScrubberOptions {
  std::chrono::milliseconds interval{50};
  /// Differential sample queries per pass (0 disables sampling).
  std::size_t samples = 32;
  /// Sample keys are drawn uniformly from [0, sample_key_range).
  cat::Key sample_key_range = 1'000'000'000;
  bool verify_crc = true;
  std::uint64_t seed = 1;
};

struct ScrubberStats {
  std::uint64_t passes = 0;
  std::uint64_t clean_passes = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t differential_failures = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t rollback_failures = 0;  ///< no good target / lost race
  std::uint64_t last_bad_version = 0;
  std::uint64_t last_rollback_to = 0;
  std::string last_failure;  ///< human-readable detection message
};

class Scrubber {
 public:
  /// The registry must outlive the scrubber.  `oracle` may be empty
  /// (CRC-only scrubbing); sampling is only performed for kCascade
  /// snapshots.
  Scrubber(snapshot::Registry& registry, ScrubberOptions opts,
           ScrubOracle oracle = {});
  ~Scrubber();
  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Start / stop the background thread (idempotent).  run_pass() can
  /// also be called directly for deterministic single-pass tests.
  void start();
  void stop();

  /// One synchronous scrub pass over the current generation.  Returns
  /// OK when the pass was clean (or there was nothing to scrub); the
  /// detection Status otherwise — after quarantine + rollback have
  /// already been performed.
  coop::Status run_pass();

  [[nodiscard]] ScrubberStats stats() const;

 private:
  void loop();
  void on_bad(std::uint64_t version, const coop::Status& why);

  snapshot::Registry& registry_;
  const ScrubberOptions opts_;
  const ScrubOracle oracle_;

  mutable std::mutex mu_;  ///< stats_ + cv
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
  ScrubberStats stats_;
  std::uint64_t pass_counter_ = 0;  ///< sampling stream discriminator
};

}  // namespace serve
