#include "serve/soak.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/tree.hpp"
#include "fc/build.hpp"
#include "robust/chaos.hpp"
#include "snapshot/registry.hpp"
#include "snapshot/snapshot.hpp"

namespace serve {

using coop::Status;

namespace {

/// Client-side tallies, one struct per client thread (no sharing).
struct ClientTally {
  std::uint64_t batches = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t wrong_answers = 0;
  std::string first_failure;
};

}  // namespace

coop::Expected<SoakOutcome> run_chaos_soak(const SoakOptions& opts) {
  using Clock = std::chrono::steady_clock;

  // ---- Fixture: source tree -> checked build -> flat arena -> disk. ----
  std::mt19937_64 fixture_rng(opts.seed);
  const cat::Tree tree =
      cat::make_balanced_binary(opts.tree_height, opts.tree_entries,
                                cat::CatalogShape::kRandom, fixture_rng);
  const auto structure = fc::Structure::build_checked(tree);
  if (!structure.ok()) {
    return structure.status();
  }
  auto flat = FlatCascade::compile(*structure);
  if (!flat.ok()) {
    return flat.status();
  }
  if (Status st = snapshot::write(*flat, opts.snap_path); !st.ok()) {
    return st;
  }

  // Every publish is a fresh copy-on-write mapping of the pristine file:
  // bit-flips rot one served generation, never the snapshot on disk.
  snapshot::Registry registry;
  const auto publish_clean = [&]() -> Status {
    auto snap =
        snapshot::open(opts.snap_path, snapshot::OpenMode::kWritableCopy);
    if (!snap.ok()) {
      return snap.status();
    }
    registry.publish(snap.take());
    return coop::OkStatus();
  };
  if (Status st = publish_clean(); !st.ok()) {
    return st;
  }

  // Flip target, computed ONCE while the mapping is pristine
  // (section_extent re-runs the CRC ladder): the low byte of the last key
  // in the kKeys section.  That key is the final catalog's +inf terminal
  // (kInfinity = int64 max), so the flip cannot change any answer for the
  // generated key range — but it is fatal to the section CRC.  Detection
  // must come from the scrubber, not from a wrong answer.
  std::uint64_t flip_off = 0;
  {
    const snapshot::Registry::Pin pin = registry.pin();
    const auto ext =
        snapshot::section_extent(pin.snapshot(), snapshot::SectionId::kKeys);
    if (!ext.ok()) {
      return ext.status();
    }
    if (ext->second < sizeof(cat::Key)) {
      return Status::internal("kKeys section too small to host a bit flip");
    }
    flip_off = ext->first + ext->second - sizeof(cat::Key);
  }

  // ---- Serving stack under test. ----
  QueryEngine engine(opts.engine_threads);
  FrontendOptions fopts;
  fopts.max_inflight = 2;  // < clients: admission sheds are guaranteed
  fopts.max_retries = 1;
  fopts.backoff_base = std::chrono::microseconds(200);
  fopts.backoff_cap = std::chrono::milliseconds(2);
  fopts.jitter_seed = opts.seed;
  fopts.breaker_threshold = 4;  // < squeeze burst length: trips guaranteed
  fopts.breaker_open_for = std::chrono::milliseconds(50);
  fopts.open_policy = OpenPolicy::kSequential;
  Frontend frontend(registry, engine, fopts);

  ScrubberOptions sopts;
  sopts.interval = std::chrono::milliseconds(10);
  sopts.samples = 16;
  sopts.seed = opts.seed;
  Scrubber scrubber(registry, sopts,
                    [&tree](std::uint32_t node, cat::Key y) {
                      return tree.catalog(cat::NodeId(node)).find(y);
                    });
  // Generation 1 must scrub clean before any chaos: it is the root of the
  // last-known-good chain every rollback hangs off.
  if (Status st = scrubber.run_pass(); !st.ok()) {
    return st;
  }
  scrubber.start();

  const robust::ChaosPlan plan(opts.seed);
  std::atomic<std::uint64_t> chaos_seq{0};
  std::atomic<bool> stop{false};

  // ---- Clients: build random root-leaf batches, serve them through the
  // frontend with the plan's faults, and differentially check every
  // admitted answer against the source tree. ----
  const std::size_t n_clients = std::max<std::size_t>(1, opts.clients);
  std::vector<ClientTally> tallies(n_clients);
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t ci = 0; ci < n_clients; ++ci) {
    clients.emplace_back([&, ci] {
      ClientTally& tally = tallies[ci];
      std::mt19937_64 rng(opts.seed ^ (0xC11E57ull * (ci + 1)));
      std::vector<PathQuery> batch(opts.batch_queries);
      std::vector<PathAnswer> answers;
      while (!stop.load(std::memory_order_acquire)) {
        for (auto& q : batch) {
          std::vector<cat::NodeId> path{tree.root()};
          while (!tree.is_leaf(path.back())) {
            const auto kids = tree.children(path.back());
            path.push_back(kids[rng() % kids.size()]);
          }
          q.path = std::move(path);
          q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
        }
        const std::uint64_t seq =
            chaos_seq.fetch_add(1, std::memory_order_relaxed);
        const robust::BatchFault fault = plan.fault_for_batch(seq);

        BatchOptions bopts;
        const BatchOptions* override_opts = nullptr;
        if (fault.deadline_squeeze) {
          bopts.deadline = std::chrono::nanoseconds(1);
          bopts.shard_size = 1;
          override_opts = &bopts;
        }
        const std::size_t groups =
            (batch.size() + kPathGroup - 1) / kPathGroup;
        std::atomic<bool> thrown{false};
        ChaosHooks hooks;
        const ChaosHooks* chaos = nullptr;
        if (fault.worker_throw) {
          const std::size_t victim = fault.throw_item % groups;
          hooks.on_item = [victim, &thrown](std::uint64_t /*seq*/,
                                            std::size_t item) {
            if (item == victim && !thrown.exchange(true)) {
              throw std::runtime_error("chaos: injected worker fault");
            }
          };
          chaos = &hooks;
        }

        BatchReport report;
        const Status st = frontend.serve_paths(batch, answers, &report,
                                               nullptr, override_opts, chaos);
        ++tally.batches;
        if (st.ok()) {
          ++tally.admitted;
          if (report.degraded) {
            ++tally.degraded;
          }
          for (std::size_t qi = 0; qi < batch.size(); ++qi) {
            for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
              if (answers[qi].proper_index.size() !=
                      batch[qi].path.size() ||
                  answers[qi].proper_index[i] !=
                      tree.catalog(batch[qi].path[i]).find(batch[qi].y)) {
                ++tally.wrong_answers;
              }
            }
          }
        } else if (st.code() == coop::StatusCode::kResourceExhausted) {
          ++tally.shed;
        } else if (st.code() == coop::StatusCode::kUnavailable) {
          ++tally.shed_breaker;
        } else {
          ++tally.failed;
          if (tally.first_failure.empty()) {
            tally.first_failure = st.to_string();
          }
        }
      }
    });
  }

  // ---- Conductor: publish storms + payload rot, one cycle at a time.
  // Each cycle waits for the scrubber to bless the fresh current
  // generation before rotting it, so every flip has a rollback target and
  // every detection is attributable to that cycle's flip. ----
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> bitflips{0};
  std::thread conductor([&] {
    std::uint64_t cycle = 0;
    const auto wait_until = [&](const auto& pred) {
      const auto deadline = Clock::now() + std::chrono::seconds(1);
      while (!stop.load(std::memory_order_acquire) && Clock::now() < deadline) {
        if (pred()) {
          return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return pred();
    };
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint32_t burst = plan.publish_burst_size(cycle);
      for (std::uint32_t b = 0; b < burst; ++b) {
        if (publish_clean().ok()) {
          publishes.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (opts.verbose) {
        std::fprintf(stderr, "soak: cycle %llu published %u (registry at gen %llu)\n",
                    static_cast<unsigned long long>(cycle), burst,
                    static_cast<unsigned long long>(
                        registry.current_version()));
      }
      // Wait for a clean scrub of the new current generation.
      if (!wait_until([&] {
            return registry.last_known_good() == registry.current_version();
          })) {
        ++cycle;
        continue;
      }
      // Rot the served copy.  The pin keeps the mapping alive; the write
      // goes to the COW copy, so re-publishes stay clean.
      const std::uint64_t quarantines_before = scrubber.stats().quarantines;
      {
        const snapshot::Registry::Pin pin = registry.pin();
        if (!pin.has_snapshot() ||
            pin.snapshot().mapping.mutable_data() == nullptr) {
          ++cycle;
          continue;
        }
        pin.snapshot().mapping.mutable_data()[flip_off] ^= 0x01;
        bitflips.fetch_add(1, std::memory_order_relaxed);
        if (opts.verbose) {
          std::fprintf(stderr, "soak: cycle %llu flipped bit in gen %llu\n",
                      static_cast<unsigned long long>(cycle),
                      static_cast<unsigned long long>(pin.version()));
        }
      }
      // Wait for detection + rollback before the next storm.
      (void)wait_until([&] {
        return scrubber.stats().quarantines > quarantines_before;
      });
      if (opts.verbose) {
        const ScrubberStats ss = scrubber.stats();
        std::fprintf(stderr, "soak: cycle %llu scrubber quarantines=%llu "
                    "rollbacks=%llu (gen %llu -> %llu)\n",
                    static_cast<unsigned long long>(cycle),
                    static_cast<unsigned long long>(ss.quarantines),
                    static_cast<unsigned long long>(ss.rollbacks),
                    static_cast<unsigned long long>(ss.last_bad_version),
                    static_cast<unsigned long long>(ss.last_rollback_to));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++cycle;
    }
  });

  // ---- Run until the duration elapsed AND every goal was observed (the
  // goals are probabilistic in time, not in outcome; the hard cap bounds
  // a pathological scheduler). ----
  const auto started = Clock::now();
  const auto min_end = started + opts.duration;
  const auto hard_end =
      started + opts.duration * 6 + std::chrono::seconds(2);
  const auto goals_met_now = [&] {
    const FrontendStats fs = frontend.stats();
    const ScrubberStats ss = scrubber.stats();
    return fs.shed >= 1 && fs.breaker_trips >= 1 && ss.quarantines >= 1 &&
           ss.rollbacks >= 1 && bitflips.load(std::memory_order_relaxed) >= 1;
  };
  for (;;) {
    const auto now = Clock::now();
    if ((now >= min_end && goals_met_now()) || now >= hard_end) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true, std::memory_order_release);
  for (auto& c : clients) {
    c.join();
  }
  conductor.join();
  scrubber.stop();

  // ---- Assemble the outcome. ----
  SoakOutcome out;
  std::string first_failure;
  for (const ClientTally& t : tallies) {
    out.batches += t.batches;
    out.admitted += t.admitted;
    out.shed += t.shed;
    out.shed_breaker += t.shed_breaker;
    out.failed += t.failed;
    out.degraded += t.degraded;
    out.wrong_answers += t.wrong_answers;
    if (first_failure.empty() && !t.first_failure.empty()) {
      first_failure = t.first_failure;
    }
  }
  out.publishes = publishes.load(std::memory_order_relaxed);
  out.bitflips = bitflips.load(std::memory_order_relaxed);
  out.frontend = frontend.stats();
  out.scrubber = scrubber.stats();
  out.goals_met = out.frontend.shed >= 1 && out.frontend.breaker_trips >= 1 &&
                  out.scrubber.quarantines >= 1 &&
                  out.scrubber.rollbacks >= 1 && out.bitflips >= 1;

  if (out.wrong_answers > 0) {
    out.verdict = "FAIL: " + std::to_string(out.wrong_answers) +
                  " wrong answers among admitted batches";
  } else if (out.failed > 0) {
    out.verdict = "FAIL: " + std::to_string(out.failed) +
                  " batches failed with unexpected status (first: " +
                  first_failure + ")";
  } else if (!out.goals_met) {
    out.verdict =
        "FAIL: soak ended without observing every chaos goal "
        "(shed/trip/quarantine/rollback/flip)";
  } else {
    out.verdict = "OK: zero wrong answers, zero unexpected failures; "
                  "observed >=1 shed, breaker trip, quarantine, rollback";
  }

  std::remove(opts.snap_path.c_str());
  return out;
}

}  // namespace serve
