#pragma once

// Chaos soak driver (DESIGN.md §9): drive the full serving stack —
// Frontend (admission / retry / breaker) over a Registry scrubbed by a
// background Scrubber — under a seeded robust::ChaosPlan for a fixed
// duration, and report whether the layer protected itself:
//
//   zero crashes, zero wrong answers among admitted batches, at least
//   one admission shed (RESOURCE_EXHAUSTED), one breaker trip, and one
//   scrubber quarantine + registry rollback.
//
// The driver injects every fault class the plan schedules: worker
// throws and deadline squeezes per batch (client side), publish storms
// and payload bit-flips (conductor side).  Flips go into a *writable
// copy-on-write* snapshot mapping, so the on-disk file stays pristine
// and every re-publish starts clean.  The flipped byte is the low byte
// of the final +inf catalog terminal: provably answer-preserving for
// the query distribution (keys are compared, never dereferenced), yet
// CRC-fatal — exactly the silent-rot case the scrubber exists for.
//
// Shared by tests/integration/test_chaos_soak.cpp and the CLI's
// `serve --soak`, so the ≥10 s local soak and the short CI soak run the
// same code.

#include <chrono>
#include <cstdint>
#include <string>

#include "robust/status.hpp"
#include "serve/frontend.hpp"
#include "serve/scrubber.hpp"

namespace serve {

struct SoakOptions {
  std::uint64_t seed = 1;
  std::chrono::milliseconds duration{2000};
  std::size_t engine_threads = 4;
  std::size_t clients = 3;  ///< one more than the admission budget below
  std::uint32_t tree_height = 7;
  std::size_t tree_entries = 8000;
  std::size_t batch_queries = 256;
  /// Scratch snapshot file (overwritten, removed on success).
  std::string snap_path = "chaos_soak.snap";
  bool verbose = false;  ///< print conductor events + final counters
};

struct SoakOutcome {
  // Client-side view.
  std::uint64_t batches = 0;       ///< submitted
  std::uint64_t admitted = 0;      ///< served OK
  std::uint64_t shed = 0;          ///< kResourceExhausted
  std::uint64_t shed_breaker = 0;  ///< kUnavailable
  std::uint64_t failed = 0;        ///< any other error (must stay 0)
  std::uint64_t degraded = 0;      ///< admitted batches that degraded
  std::uint64_t wrong_answers = 0; ///< differential mismatches (must be 0)
  // Conductor-side view.
  std::uint64_t publishes = 0;
  std::uint64_t bitflips = 0;
  // Subsystem stats at shutdown.
  FrontendStats frontend;
  ScrubberStats scrubber;
  /// All soak goals observed: >=1 shed, >=1 breaker trip, >=1 scrubber
  /// quarantine, >=1 rollback, >=1 bit flip.
  bool goals_met = false;
  std::string verdict;  ///< one-line human summary
};

/// Run the soak.  Setup errors (tree build, snapshot write/open) are the
/// returned Status; a completed soak always returns an outcome — the
/// caller judges it via goals_met / failed / wrong_answers.  Runs for
/// `duration`, extending (up to ~6x) until the goals are observed.
[[nodiscard]] coop::Expected<SoakOutcome> run_chaos_soak(
    const SoakOptions& opts);

}  // namespace serve
