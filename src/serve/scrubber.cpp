#include "serve/scrubber.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace serve {

using coop::Status;

namespace {

/// Scrubber metrics (DESIGN.md §10).  A pass is seconds of work, so these
/// fire a handful of times per interval — overhead is irrelevant; the
/// value is the operator timeline (passes vs failures vs rollbacks).
struct ScrubMetrics {
  obs::Counter passes;
  obs::Counter clean;
  obs::Counter crc_failures;
  obs::Counter diff_failures;
  obs::Counter quarantines;
  obs::Counter rollbacks;
  obs::Counter rollback_failures;
};

ScrubMetrics& scrub_metrics() {
  auto& r = obs::Registry::global();
  static ScrubMetrics m{
      r.counter("serve_scrub_passes_total", "Scrub passes started"),
      r.counter("serve_scrub_clean_total", "Scrub passes that found nothing"),
      r.counter("serve_scrub_crc_failures_total",
                "Scrub passes failed by CRC verification"),
      r.counter("serve_scrub_diff_failures_total",
                "Scrub passes failed by differential sampling"),
      r.counter("serve_scrub_quarantines_total",
                "Generations quarantined by the scrubber"),
      r.counter("serve_scrub_rollbacks_total",
                "Successful scrubber-initiated rollbacks"),
      r.counter("serve_scrub_rollback_failures_total",
                "Rollbacks that found no target or lost a publish race"),
  };
  return m;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Tiny counter-based stream: deterministic per (seed, version, pass).
struct Stream {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
};

}  // namespace

Scrubber::Scrubber(snapshot::Registry& registry, ScrubberOptions opts,
                   ScrubOracle oracle)
    : registry_(registry), opts_(opts), oracle_(std::move(oracle)) {}

Scrubber::~Scrubber() { stop(); }

void Scrubber::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void Scrubber::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, opts_.interval, [this] { return stopping_; });
    if (stopping_) {
      break;
    }
    lock.unlock();
    (void)run_pass();
    lock.lock();
  }
}

ScrubberStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Scrubber::run_pass() {
  std::uint64_t pass = 0;
  scrub_metrics().passes.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passes;
    pass = ++pass_counter_;
  }
  // The pin keeps the generation mapped for the whole pass — including
  // through our own rollback, which retires it; the unmap waits for this
  // very pin to drop.
  const snapshot::Registry::Pin pin = registry_.pin();
  if (!pin.has_snapshot()) {
    return coop::OkStatus();
  }
  const std::uint64_t version = pin.version();
  Status bad;
  bool crc_bad = false;

  if (opts_.verify_crc) {
    if (Status s = snapshot::verify(pin.snapshot()); !s.ok()) {
      bad = Status::error(s.code(), "scrub of generation " +
                                        std::to_string(version) + ": " +
                                        s.message());
      crc_bad = true;
    }
  }

  if (bad.ok() && oracle_ && opts_.samples > 0 &&
      pin.snapshot().kind == snapshot::SnapshotKind::kCascade &&
      pin.snapshot().cascade.num_nodes() > 0) {
    const FlatCascade& f = pin.snapshot().cascade;
    Stream rng{splitmix64(opts_.seed ^ splitmix64(version) ^
                          splitmix64(pass))};
    for (std::size_t q = 0; q < opts_.samples && bad.ok(); ++q) {
      const cat::Key y = static_cast<cat::Key>(
          rng.next() % static_cast<std::uint64_t>(opts_.sample_key_range));
      std::uint32_t v = f.root();
      for (;;) {
        // find() descends the blocked multiway layout; find_binary() the
        // sorted key pool.  They are derived from the same data, so a
        // disagreement means one of the two arenas rotted — catch it even
        // when the oracle happens to agree with the corrupted answer.
        const std::uint32_t idx = f.find(v, y);
        const std::uint32_t bin = f.find_binary(v, y);
        if (idx != bin) {
          bad = Status::corrupted(
              "scrub of generation " + std::to_string(version) +
              ": differential mismatch between search layouts at node " +
              std::to_string(v) + " for y=" + std::to_string(y) +
              " (multiway " + std::to_string(idx) + ", binary " +
              std::to_string(bin) + ")");
          break;
        }
        const std::uint32_t got = f.to_proper(v, idx);
        const std::uint32_t want = oracle_(v, y);
        if (got != want) {
          bad = Status::corrupted(
              "scrub of generation " + std::to_string(version) +
              ": differential mismatch at node " + std::to_string(v) +
              " for y=" + std::to_string(y) + " (served " +
              std::to_string(got) + ", oracle " + std::to_string(want) +
              ")");
          break;
        }
        if (f.is_leaf(v)) {
          break;
        }
        v = f.child(v, static_cast<std::uint32_t>(
                           rng.next() % f.node(v).num_children));
      }
    }
  }

  if (bad.ok()) {
    registry_.mark_good(version);
    scrub_metrics().clean.inc();
    obs::TraceRing::global().emit(version, obs::SpanKind::kScrubPass,
                                  /*a=*/1);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.clean_passes;
    return coop::OkStatus();
  }
  if (crc_bad) {
    scrub_metrics().crc_failures.inc();
  } else {
    scrub_metrics().diff_failures.inc();
  }
  obs::TraceRing::global().emit(version, obs::SpanKind::kScrubPass, /*a=*/0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crc_bad) {
      ++stats_.crc_failures;
    } else {
      ++stats_.differential_failures;
    }
    stats_.last_failure = bad.to_string();
  }
  on_bad(version, bad);
  return bad;
}

void Scrubber::on_bad(std::uint64_t version, const Status& /*why*/) {
  scrub_metrics().quarantines.inc();
  obs::TraceRing::global().emit(version, obs::SpanKind::kQuarantine);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantines;
    stats_.last_bad_version = version;
  }
  const std::uint64_t target = registry_.last_known_good(version);
  if (target == 0) {
    // Nowhere to go: keep serving (answers may still be fine — the CRC
    // is a leading indicator) and let the operator see the stats.
    scrub_metrics().rollback_failures.inc();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rollback_failures;
    return;
  }
  const Status st = registry_.rollback(target, version);
  if (st.ok()) {
    scrub_metrics().rollbacks.inc();
  } else {
    scrub_metrics().rollback_failures.inc();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) {
    ++stats_.rollbacks;
    stats_.last_rollback_to = target;
  } else {
    // Lost a race with a publish: the suspect generation is no longer
    // current, so there is nothing left to roll back.
    ++stats_.rollback_failures;
  }
}

}  // namespace serve
