#include "serve/flat_pointloc.hpp"

#include <limits>
#include <string>

namespace serve {

coop::Expected<FlatPointLocator> FlatPointLocator::compile(
    const pointloc::SeparatorTree& st) {
  auto cascade = FlatCascade::compile(st.cascade());
  if (!cascade.ok()) {
    return cascade.status();
  }
  const cat::Tree& t = st.tree();
  const geom::MonotoneSubdivision& sub = st.subdivision();
  const std::size_t nn = t.num_nodes();

  std::size_t total_entries = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    total_entries += t.catalog(static_cast<NodeId>(vi)).size();
  }
  if (total_entries > std::numeric_limits<std::uint32_t>::max()) {
    return coop::Status::invalid_argument(
        "separator tree too large for uint32 arena offsets");
  }

  FlatPointLocator f;
  f.cascade_ = cascade.take();
  f.num_regions_ = sub.num_regions;
  f.entry_off_ = Pool<std::uint32_t>(nn);
  f.sep_ = Pool<std::int32_t>(nn);
  f.lo_x_ = Pool<geom::Coord>(total_entries);
  f.lo_y_ = Pool<geom::Coord>(total_entries);
  f.hi_x_ = Pool<geom::Coord>(total_entries);
  f.hi_y_ = Pool<geom::Coord>(total_entries);
  f.max_sep_ = Pool<std::int32_t>(total_entries);

  std::uint32_t off = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const cat::Catalog& c = t.catalog(v);
    f.entry_off_[vi] = off;
    f.sep_[vi] = st.separator_of(v);
    for (std::size_t j = 0; j < c.size(); ++j) {
      const std::uint64_t payload = c.payload(j);
      const std::size_t e = off + j;
      if (payload == cat::Catalog::kNoPayload) {
        // Gap above every proper edge: never active.  lo_y == +inf makes
        // the activity test fail for every query level.
        f.lo_y_[e] = std::numeric_limits<geom::Coord>::max();
        f.max_sep_[e] = -1;
        continue;
      }
      if (payload >= sub.edges.size()) {
        return coop::Status::corrupted(
            "catalog payload " + std::to_string(payload) +
            " is not an edge index at node " + std::to_string(vi));
      }
      const geom::SubEdge& edge = sub.edges[payload];
      f.lo_x_[e] = edge.lo.x;
      f.lo_y_[e] = edge.lo.y;
      f.hi_x_[e] = edge.hi.x;
      f.hi_y_[e] = edge.hi.y;
      f.max_sep_[e] = edge.max_sep;
    }
    off += static_cast<std::uint32_t>(c.size());
  }
  return f;
}

}  // namespace serve
