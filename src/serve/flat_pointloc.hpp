#pragma once

#include <cstdint>

#include "geom/subdivision.hpp"
#include "pointloc/separator_tree.hpp"
#include "serve/flat_cascade.hpp"

namespace serve {

/// The serving-layer compilation of a SeparatorTree: the cascading
/// structure goes through FlatCascade, and the per-entry edge geometry the
/// branch rule needs (endpoints for the side test, max_sep for the
/// running-max rule) is flattened into SoA pools indexed by
/// entry_off[node] + proper_index — no Catalog, payload table, or edge
/// array hop in the hot loop.  Immutable and thread-safe after compile().
///
/// locate() implements the same running-max branch rule as
/// SeparatorTree::locate (the recommended form; no per-gap storage) and is
/// tested to agree with it query for query.
class FlatPointLocator {
 public:
  /// Compile `st`.  The cascade is validated by FlatCascade::compile; the
  /// edge table is bounds-checked against the subdivision, so corrupted
  /// inputs are rejected with a Status.  `st` is not referenced after
  /// compile() returns.
  [[nodiscard]] static coop::Expected<FlatPointLocator> compile(
      const pointloc::SeparatorTree& st);

  [[nodiscard]] const FlatCascade& cascade() const { return cascade_; }
  [[nodiscard]] std::size_t num_regions() const { return num_regions_; }

  /// Region index containing q (same contract as SeparatorTree::locate).
  [[nodiscard]] std::size_t locate(const geom::Point& q) const {
    std::int32_t max_el = 0;
    const auto branch = [&](std::uint32_t v, std::uint32_t prop) {
      return branch_at(v, prop, q, max_el);
    };
    std::uint32_t last_prop = 0;
    const std::uint32_t leaf = cascade_.walk_implicit(q.y, branch, &last_prop);
    const std::uint32_t last_branch = branch_at(leaf, last_prop, q, max_el);
    const std::int32_t m = sep_[leaf];
    return static_cast<std::size_t>(last_branch == 1 ? m : m - 1);
  }

  [[nodiscard]] std::size_t arena_bytes() const {
    return cascade_.arena_bytes() + entry_off_.allocated_bytes() +
           sep_.allocated_bytes() + lo_x_.allocated_bytes() +
           lo_y_.allocated_bytes() + hi_x_.allocated_bytes() +
           hi_y_.allocated_bytes() + max_sep_.allocated_bytes();
  }

 private:
  friend struct snapshot::ArenaAccess;  // snapshot codec backdoor

  FlatPointLocator() = default;

  /// The running-max branch rule on flat data (see SeparatorTree::branch_at
  /// and coop_pointloc.cpp for the correctness argument).  An entry is
  /// active iff its edge's open span contains q.y; sentinel entries carry
  /// lo_y == +inf so they are inactive without a separate flag.
  [[nodiscard]] std::uint32_t branch_at(std::uint32_t v, std::uint32_t prop,
                                        const geom::Point& q,
                                        std::int32_t& max_el) const {
    const std::size_t e = entry_off_[v] + prop;
    if (lo_y_[e] < q.y) {  // active edge: discriminate geometrically
      const geom::Point lo{lo_x_[e], lo_y_[e]};
      const geom::Point hi{hi_x_[e], hi_y_[e]};
      if (geom::orientation(lo, hi, q) > 0) {
        return 0;
      }
      max_el = max_el > max_sep_[e] ? max_el : max_sep_[e];
      return 1;
    }
    return sep_[v] <= max_el ? 1u : 0u;
  }

  FlatCascade cascade_;
  Pool<std::uint32_t> entry_off_;  ///< per node, into the entry pools
  Pool<std::int32_t> sep_;         ///< separator index per node
  Pool<geom::Coord> lo_x_, lo_y_, hi_x_, hi_y_;
  Pool<std::int32_t> max_sep_;
  std::size_t num_regions_ = 0;
};

}  // namespace serve
