#include "serve/query_engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace serve {

namespace {

/// Engine-level metrics (DESIGN.md §10).  Handles resolve once; the batch
/// path then pays a handful of relaxed atomic adds per *batch*, and the
/// worker loop flushes its shard-claim count once per batch per worker.
struct EngineMetrics {
  obs::Counter batches;
  obs::Counter batches_inline;
  obs::Counter degraded_deadline;
  obs::Counter degraded_exception;
  obs::Counter shard_claims;
  obs::Gauge inflight;
  obs::Histogram batch_queries;
  obs::Histogram batch_latency_ns;
};

EngineMetrics& engine_metrics() {
  auto& r = obs::Registry::global();
  static EngineMetrics m{
      r.counter("serve_engine_batches_total", "Batches executed"),
      r.counter("serve_engine_batches_inline_total",
                "Batches run inline on the calling thread"),
      r.counter("serve_engine_degraded_deadline_total",
                "Batches degraded to sequential rerun by deadline expiry"),
      r.counter("serve_engine_degraded_exception_total",
                "Batches degraded to sequential rerun by a worker exception"),
      r.counter("serve_engine_shard_claims_total",
                "Shards claimed from the batch cursor by pool workers"),
      r.gauge("serve_engine_inflight_batches",
              "Batches submitted and not yet drained (queue depth)"),
      r.histogram("serve_engine_batch_queries", obs::exponential_bounds(),
                  "Batch size in work items"),
      r.histogram("serve_engine_batch_latency_ns", obs::latency_bounds_ns(),
                  "Wall time per batch, ns"),
  };
  return m;
}

/// Group-kernel occupancy: queries / (groups * kPathGroup) measures how
/// full the lockstep groups run.  Two relaxed adds per kernel call (one
/// call serves up to a whole shard), so the kernel's hot loops stay
/// untouched.
struct GroupKernelMetrics {
  obs::Counter groups;
  obs::Counter queries;
};

GroupKernelMetrics& group_kernel_metrics() {
  auto& r = obs::Registry::global();
  static GroupKernelMetrics m{
      r.counter("serve_group_kernel_groups_total",
                "Lockstep groups executed by search_paths_grouped"),
      r.counter("serve_group_kernel_queries_total",
                "Queries served by search_paths_grouped"),
  };
  return m;
}

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_shard_size(std::size_t n, std::size_t threads) {
  // Aim for several shards per thread so stragglers rebalance, but keep
  // shards big enough that the atomic cursor is cold compared to the
  // query work itself.  Claim boundaries round to 8 items so two workers
  // never write answer words on the same cache line (out[] slots are 8
  // bytes in the point path); tiny batches keep shard 1 — there, spreading
  // the few items across the pool beats alignment.
  std::size_t target = std::max<std::size_t>(1, n / (threads * 8));
  if (target > 1) {
    target = (target + 7) / 8 * 8;
  }
  return std::clamp<std::size_t>(target, 1, 1024);
}

/// One PAUSE/YIELD between polls of a spin loop.
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Bounded spin before parking in a condvar (workers awaiting a batch,
/// the submitter awaiting the drain).  ~4k PAUSEs is tens of
/// microseconds — enough to bridge back-to-back smoke batches (~100 us
/// apart), bounded so an idle pool still sleeps.  Spinning is only
/// enabled when the pool fits the machine (QueryEngine ctor): on an
/// oversubscribed host, burning a core while the peer you are waiting on
/// is descheduled makes scaling *worse*, which is exactly the negative
/// thread scaling the 1-vCPU smoke baselines showed.
inline constexpr int kSpinIters = 4096;

}  // namespace

const char* to_string(DegradeCause c) {
  switch (c) {
    case DegradeCause::kNone: return "none";
    case DegradeCause::kDeadline: return "deadline";
    case DegradeCause::kException: return "exception";
  }
  return "?";
}

QueryEngine::QueryEngine(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  spin_ = threads_ > 1 && threads_ <= default_threads();
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

QueryEngine::~QueryEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_.store(true, std::memory_order_relaxed);
    }
    work_cv_.notify_all();
    for (auto& t : workers_) {
      t.join();
    }
  }
}

BatchReport QueryEngine::for_each(std::size_t n,
                                  const std::function<void(std::size_t)>& fn,
                                  const BatchOptions& opts) {
  BatchReport report;
  if (n == 0) {
    report.threads_used = 1;
    return report;
  }
  EngineMetrics& em = engine_metrics();
  em.batches.inc();
  em.batch_queries.record(n);
  em.inflight.add(1);
  const auto batch_start = std::chrono::steady_clock::now();
  const auto finish = [&em, batch_start] {
    em.inflight.add(-1);
    em.batch_latency_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  };
  const std::size_t shard_size =
      opts.shard_size == 0 ? default_shard_size(n, threads_) : opts.shard_size;
  const bool armed = opts.deadline.count() > 0;
  const auto deadline_at = std::chrono::steady_clock::now() + opts.deadline;

  if (workers_.empty() || n <= shard_size) {
    // Inline fast path: a single-thread engine or a batch that fits one
    // shard.  The deadline is not polled here — an inline run IS the
    // sequential fallback.
    em.batches_inline.inc();
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    report.shards = 1;
    report.threads_used = 1;
    finish();
    return report;
  }

  std::string fail_reason;
  if (run_parallel(n, shard_size, fn, deadline_at, armed, fail_reason)) {
    report.shards = (n + shard_size - 1) / shard_size;
    report.threads_used = threads_;
    finish();
    return report;
  }

  // Degradation (run_resilient discipline): the parallel attempt is fully
  // drained above, so re-running every index sequentially cannot race
  // with a stale worker; per-index idempotence makes the rerun safe.
  const bool deadline_hit = fail_reason.rfind("deadline", 0) == 0;
  if (deadline_hit) {
    em.degraded_deadline.inc();
  } else {
    em.degraded_exception.inc();
  }
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
  report.degraded = true;
  report.reason = fail_reason;
  report.cause =
      deadline_hit ? DegradeCause::kDeadline : DegradeCause::kException;
  report.shards = 1;
  report.threads_used = 1;
  finish();
  return report;
}

bool QueryEngine::run_parallel(
    std::size_t n, std::size_t shard_size,
    const std::function<void(std::size_t)>& fn,
    std::chrono::steady_clock::time_point deadline_at, bool deadline_armed,
    std::string& fail_reason) {
  // One batch owns the pool at a time, submission through drain.
  std::lock_guard<std::mutex> batch_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    batch_n_ = n;
    shard_size_ = shard_size;
    num_shards_ = (n + shard_size - 1) / shard_size;
    next_shard_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    deadline_at_ = deadline_at;
    deadline_armed_ = deadline_armed;
    remaining_.store(workers_.size(), std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  // Drain: spin briefly (smoke-size batches finish in ~100 us, well under
  // a condvar round trip when a worker must be woken), then park.
  if (spin_) {
    for (int s = 0; s < kSpinIters; ++s) {
      if (remaining_.load(std::memory_order_acquire) == 0) {
        break;
      }
      cpu_relax();
    }
  }
  if (remaining_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_relaxed) == 0;
    });
  }
  // All workers have left the batch (the acquire load / condvar wait above
  // orders their writes before these reads).
  std::lock_guard<std::mutex> lock(mutex_);
  fn_ = nullptr;
  if (error_ != nullptr) {
    try {
      std::rethrow_exception(std::exchange(error_, nullptr));
    } catch (const std::exception& e) {
      fail_reason = std::string("worker exception: ") + e.what();
    } catch (...) {
      fail_reason = "worker exception: (non-standard)";
    }
    return false;
  }
  if (abort_.load(std::memory_order_relaxed)) {
    fail_reason = "deadline expired mid-batch";
    return false;
  }
  return true;
}

void QueryEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0, shard_size = 1, num_shards = 0;
    std::chrono::steady_clock::time_point deadline_at;
    bool deadline_armed = false;
    // Spin for the next batch before parking: back-to-back batches reuse
    // a running worker with no futex round trip.
    if (spin_) {
      for (int s = 0; s < kSpinIters; ++s) {
        if (shutdown_.load(std::memory_order_relaxed) ||
            generation_.load(std::memory_order_acquire) != seen_generation) {
          break;
        }
        cpu_relax();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) != seen_generation;
      });
      if (shutdown_.load(std::memory_order_relaxed)) {
        return;
      }
      seen_generation = generation_.load(std::memory_order_relaxed);
      fn = fn_;
      n = batch_n_;
      shard_size = shard_size_;
      num_shards = num_shards_;
      deadline_at = deadline_at_;
      deadline_armed = deadline_armed_;
    }
    std::uint64_t claims = 0;
    while (!abort_.load(std::memory_order_relaxed)) {
      if (deadline_armed && std::chrono::steady_clock::now() >= deadline_at) {
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t shard =
          next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) {
        break;
      }
      ++claims;
      const std::size_t begin = shard * shard_size;
      const std::size_t end = std::min(n, begin + shard_size);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          (*fn)(i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (error_ == nullptr) {
            error_ = std::current_exception();
          }
        }
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (claims > 0) {
      engine_metrics().shard_claims.add(claims);
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Empty critical section: pairs with the submitter's predicate check
      // so the notify cannot slip between its check and its sleep.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
}

namespace {

/// One lockstep group (g <= kPathGroup queries): the shared inner kernel
/// of search_paths_grouped / search_paths_grouped_into.  All per-query
/// loop state lives in local arrays (registers/L1) and every pool access
/// goes through the KernelView base pointers — no member-function or
/// vector-size reload per phase.  Round 0 runs all g multiway descents
/// through the software-pipelined simd::lower_bound_grouped; each bridge
/// hop then runs in phases with the next phase's lines prefetched across
/// the whole group, so per-hop cache misses overlap across queries
/// instead of serializing along one query's dependency chain.
void run_path_group(const FlatCascade::KernelView& kv,
                    const PathQuery* queries, std::size_t g,
                    std::uint32_t* const* out_aug,
                    std::uint32_t* const* out_prop) {
  const NodeId* path[kPathGroup];
  std::size_t len[kPathGroup];
  Key y[kPathGroup];
  const FlatNode* cur[kPathGroup];
  const FlatNode* nxt[kPathGroup];
  std::uint32_t idx[kPathGroup];
  std::uint32_t pos[kPathGroup];
  const std::uint32_t* cell[kPathGroup];
  simd::GroupedQuery gq[kPathGroup];
  std::uint32_t head[kPathGroup];

  std::size_t maxlen = 0;
  for (std::size_t q = 0; q < g; ++q) {
    path[q] = queries[q].path.data();
    len[q] = queries[q].path.size();
    y[q] = queries[q].y;
    maxlen = std::max(maxlen, len[q]);
  }
  // Round 0: lockstep multiway descents at the paths' heads (usually all
  // the root, whose top blocks stay hot across the group).
  for (std::size_t q = 0; q < g; ++q) {
    if (len[q] == 0) {
      gq[q] = simd::GroupedQuery{};  // n == 0: skipped by the kernel
      continue;
    }
    const auto v0 = static_cast<std::uint32_t>(path[q][0]);
    const FlatNode* nd = &kv.nodes[v0];
    const std::uint32_t off = kv.simd_off[v0];
    gq[q] = simd::GroupedQuery{kv.simd_keys + off, kv.simd_pos + off,
                               nd->key_count, y[q]};
    cur[q] = nd;
  }
  simd::lower_bound_grouped(gq, head, g);
  for (std::size_t q = 0; q < g; ++q) {
    if (len[q] > 0) {
      idx[q] = head[q];
      out_aug[q][0] = idx[q];
      out_prop[q][0] = kv.proper[cur[q]->key_off + idx[q]];
    }
  }
  // One bridge hop per round for every query still on its path.
  for (std::size_t step = 1; step < maxlen; ++step) {
    // Phase 0: next nodes' metadata.
    for (std::size_t q = 0; q < g; ++q) {
      if (step < len[q]) {
        __builtin_prefetch(&kv.nodes[path[q][step]]);
      }
    }
    // Phase 1: bridge cells.
    for (std::size_t q = 0; q < g; ++q) {
      if (step < len[q]) {
        nxt[q] = &kv.nodes[path[q][step]];
        cell[q] = kv.bridge + cur[q]->bridge_off +
                  std::size_t{nxt[q]->slot} * cur[q]->key_count + idx[q];
        __builtin_prefetch(cell[q]);
      }
    }
    // Phase 2: landing positions + the key/proper lines the walk-back
    // will touch (it moves at most kv.fanout entries left).
    for (std::size_t q = 0; q < g; ++q) {
      if (step < len[q]) {
        pos[q] = *cell[q];
        const std::uint32_t back = pos[q] > kv.fanout ? pos[q] - kv.fanout : 0;
        __builtin_prefetch(kv.keys + nxt[q]->key_off + back);
        __builtin_prefetch(kv.proper + nxt[q]->key_off + back);
      }
    }
    // Phase 3: walk-backs + answers.
    for (std::size_t q = 0; q < g; ++q) {
      if (step < len[q]) {
        const Key* wk = kv.keys + nxt[q]->key_off;
        std::uint32_t p = pos[q];
        while (p > 0 && wk[p - 1] >= y[q]) {
          --p;
        }
        idx[q] = p;
        cur[q] = nxt[q];
        out_aug[q][step] = p;
        out_prop[q][step] = kv.proper[nxt[q]->key_off + p];
      }
    }
  }
}

}  // namespace

void search_paths_grouped(const FlatCascade& f, const PathQuery* queries,
                          std::size_t count, PathAnswer* out) {
  if (count > 0) {
    GroupKernelMetrics& gm = group_kernel_metrics();
    gm.groups.add((count + kPathGroup - 1) / kPathGroup);
    gm.queries.add(count);
  }
  const FlatCascade::KernelView kv = f.kernel_view();
  while (count > 0) {
    const std::size_t g = std::min(count, kPathGroup);
    std::uint32_t* ap[kPathGroup];
    std::uint32_t* pp[kPathGroup];
    for (std::size_t q = 0; q < g; ++q) {
      const std::size_t len = queries[q].path.size();
      out[q].aug_index.resize(len);
      out[q].proper_index.resize(len);
      ap[q] = out[q].aug_index.data();
      pp[q] = out[q].proper_index.data();
    }
    run_path_group(kv, queries, g, ap, pp);
    queries += g;
    out += g;
    count -= g;
  }
}

void search_paths_grouped_into(const FlatCascade& f, const PathQuery* queries,
                               std::size_t count,
                               std::uint32_t* const* out_aug,
                               std::uint32_t* const* out_proper) {
  if (count > 0) {
    GroupKernelMetrics& gm = group_kernel_metrics();
    gm.groups.add((count + kPathGroup - 1) / kPathGroup);
    gm.queries.add(count);
  }
  const FlatCascade::KernelView kv = f.kernel_view();
  while (count > 0) {
    const std::size_t g = std::min(count, kPathGroup);
    run_path_group(kv, queries, g, out_aug, out_proper);
    queries += g;
    out_aug += g;
    out_proper += g;
    count -= g;
  }
}

BatchReport serve_path_queries(const FlatCascade& f, QueryEngine& engine,
                               std::span<const PathQuery> queries,
                               std::vector<PathAnswer>& out,
                               const BatchOptions& opts) {
  out.assign(queries.size(), PathAnswer{});
  const std::size_t groups = (queries.size() + kPathGroup - 1) / kPathGroup;
  return engine.for_each(
      groups,
      [&](std::size_t gi) {
        const std::size_t begin = gi * kPathGroup;
        const std::size_t cnt =
            std::min(kPathGroup, queries.size() - begin);
        search_paths_grouped(f, queries.data() + begin, cnt,
                             out.data() + begin);
      },
      opts);
}

BatchReport serve_path_queries_flat(const FlatCascade& f, QueryEngine& engine,
                                    std::span<const PathQuery> queries,
                                    PathAnswerSet& out,
                                    const BatchOptions& opts) {
  out.reset(queries);
  const std::size_t groups = (queries.size() + kPathGroup - 1) / kPathGroup;
  return engine.for_each(
      groups,
      [&](std::size_t gi) {
        const std::size_t begin = gi * kPathGroup;
        const std::size_t cnt = std::min(kPathGroup, queries.size() - begin);
        std::uint32_t* ap[kPathGroup];
        std::uint32_t* pp[kPathGroup];
        for (std::size_t q = 0; q < cnt; ++q) {
          ap[q] = out.aug_data(begin + q);
          pp[q] = out.proper_data(begin + q);
        }
        search_paths_grouped_into(f, queries.data() + begin, cnt, ap, pp);
      },
      opts);
}

BatchReport serve_point_queries(const FlatPointLocator& loc,
                                QueryEngine& engine,
                                std::span<const geom::Point> points,
                                std::vector<std::size_t>& out,
                                const BatchOptions& opts) {
  out.assign(points.size(), 0);
  return engine.for_each(
      points.size(), [&](std::size_t i) { out[i] = loc.locate(points[i]); },
      opts);
}

}  // namespace serve
