#include "serve/query_engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace serve {

namespace {

/// Engine-level metrics (DESIGN.md §10).  Handles resolve once; the batch
/// path then pays a handful of relaxed atomic adds per *batch*, and the
/// worker loop flushes its shard-claim count once per batch per worker.
struct EngineMetrics {
  obs::Counter batches;
  obs::Counter batches_inline;
  obs::Counter degraded_deadline;
  obs::Counter degraded_exception;
  obs::Counter shard_claims;
  obs::Gauge inflight;
  obs::Histogram batch_queries;
  obs::Histogram batch_latency_ns;
};

EngineMetrics& engine_metrics() {
  auto& r = obs::Registry::global();
  static EngineMetrics m{
      r.counter("serve_engine_batches_total", "Batches executed"),
      r.counter("serve_engine_batches_inline_total",
                "Batches run inline on the calling thread"),
      r.counter("serve_engine_degraded_deadline_total",
                "Batches degraded to sequential rerun by deadline expiry"),
      r.counter("serve_engine_degraded_exception_total",
                "Batches degraded to sequential rerun by a worker exception"),
      r.counter("serve_engine_shard_claims_total",
                "Shards claimed from the batch cursor by pool workers"),
      r.gauge("serve_engine_inflight_batches",
              "Batches submitted and not yet drained (queue depth)"),
      r.histogram("serve_engine_batch_queries", obs::exponential_bounds(),
                  "Batch size in work items"),
      r.histogram("serve_engine_batch_latency_ns", obs::latency_bounds_ns(),
                  "Wall time per batch, ns"),
  };
  return m;
}

/// Group-kernel occupancy: queries / (groups * kPathGroup) measures how
/// full the lockstep groups run.  Two relaxed adds per kernel call (one
/// call serves up to a whole shard), so the kernel's hot loops stay
/// untouched.
struct GroupKernelMetrics {
  obs::Counter groups;
  obs::Counter queries;
};

GroupKernelMetrics& group_kernel_metrics() {
  auto& r = obs::Registry::global();
  static GroupKernelMetrics m{
      r.counter("serve_group_kernel_groups_total",
                "Lockstep groups executed by search_paths_grouped"),
      r.counter("serve_group_kernel_queries_total",
                "Queries served by search_paths_grouped"),
  };
  return m;
}

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_shard_size(std::size_t n, std::size_t threads) {
  // Aim for several shards per thread so stragglers rebalance, but keep
  // shards big enough that the atomic cursor is cold compared to the
  // query work itself.
  const std::size_t target = std::max<std::size_t>(1, n / (threads * 8));
  return std::clamp<std::size_t>(target, 1, 1024);
}

}  // namespace

const char* to_string(DegradeCause c) {
  switch (c) {
    case DegradeCause::kNone: return "none";
    case DegradeCause::kDeadline: return "deadline";
    case DegradeCause::kException: return "exception";
  }
  return "?";
}

QueryEngine::QueryEngine(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

QueryEngine::~QueryEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) {
      t.join();
    }
  }
}

BatchReport QueryEngine::for_each(std::size_t n,
                                  const std::function<void(std::size_t)>& fn,
                                  const BatchOptions& opts) {
  BatchReport report;
  if (n == 0) {
    report.threads_used = 1;
    return report;
  }
  EngineMetrics& em = engine_metrics();
  em.batches.inc();
  em.batch_queries.record(n);
  em.inflight.add(1);
  const auto batch_start = std::chrono::steady_clock::now();
  const auto finish = [&em, batch_start] {
    em.inflight.add(-1);
    em.batch_latency_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  };
  const std::size_t shard_size =
      opts.shard_size == 0 ? default_shard_size(n, threads_) : opts.shard_size;
  const bool armed = opts.deadline.count() > 0;
  const auto deadline_at = std::chrono::steady_clock::now() + opts.deadline;

  if (workers_.empty() || n <= shard_size) {
    // Inline fast path: a single-thread engine or a batch that fits one
    // shard.  The deadline is not polled here — an inline run IS the
    // sequential fallback.
    em.batches_inline.inc();
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    report.shards = 1;
    report.threads_used = 1;
    finish();
    return report;
  }

  std::string fail_reason;
  if (run_parallel(n, shard_size, fn, deadline_at, armed, fail_reason)) {
    report.shards = (n + shard_size - 1) / shard_size;
    report.threads_used = threads_;
    finish();
    return report;
  }

  // Degradation (run_resilient discipline): the parallel attempt is fully
  // drained above, so re-running every index sequentially cannot race
  // with a stale worker; per-index idempotence makes the rerun safe.
  const bool deadline_hit = fail_reason.rfind("deadline", 0) == 0;
  if (deadline_hit) {
    em.degraded_deadline.inc();
  } else {
    em.degraded_exception.inc();
  }
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
  report.degraded = true;
  report.reason = fail_reason;
  report.cause =
      deadline_hit ? DegradeCause::kDeadline : DegradeCause::kException;
  report.shards = 1;
  report.threads_used = 1;
  finish();
  return report;
}

bool QueryEngine::run_parallel(
    std::size_t n, std::size_t shard_size,
    const std::function<void(std::size_t)>& fn,
    std::chrono::steady_clock::time_point deadline_at, bool deadline_armed,
    std::string& fail_reason) {
  // One batch owns the pool at a time, submission through drain.
  std::lock_guard<std::mutex> batch_lock(submit_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  batch_n_ = n;
  shard_size_ = shard_size;
  num_shards_ = (n + shard_size - 1) / shard_size;
  next_shard_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  deadline_at_ = deadline_at;
  deadline_armed_ = deadline_armed;
  remaining_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    try {
      std::rethrow_exception(std::exchange(error_, nullptr));
    } catch (const std::exception& e) {
      fail_reason = std::string("worker exception: ") + e.what();
    } catch (...) {
      fail_reason = "worker exception: (non-standard)";
    }
    return false;
  }
  if (abort_.load(std::memory_order_relaxed)) {
    fail_reason = "deadline expired mid-batch";
    return false;
  }
  return true;
}

void QueryEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0, shard_size = 1, num_shards = 0;
    std::chrono::steady_clock::time_point deadline_at;
    bool deadline_armed = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      fn = fn_;
      n = batch_n_;
      shard_size = shard_size_;
      num_shards = num_shards_;
      deadline_at = deadline_at_;
      deadline_armed = deadline_armed_;
    }
    std::uint64_t claims = 0;
    while (!abort_.load(std::memory_order_relaxed)) {
      if (deadline_armed && std::chrono::steady_clock::now() >= deadline_at) {
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t shard =
          next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) {
        break;
      }
      ++claims;
      const std::size_t begin = shard * shard_size;
      const std::size_t end = std::min(n, begin + shard_size);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          (*fn)(i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (error_ == nullptr) {
            error_ = std::current_exception();
          }
        }
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (claims > 0) {
      engine_metrics().shard_claims.add(claims);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void search_paths_grouped(const FlatCascade& f, const PathQuery* queries,
                          std::size_t count, PathAnswer* out) {
  if (count > 0) {
    GroupKernelMetrics& gm = group_kernel_metrics();
    gm.groups.add((count + kPathGroup - 1) / kPathGroup);
    gm.queries.add(count);
  }
  while (count > 0) {
    const std::size_t g = std::min(count, kPathGroup);
    std::uint32_t v[kPathGroup];
    std::uint32_t idx[kPathGroup];
    std::uint32_t pos[kPathGroup];
    const std::uint32_t* cell[kPathGroup];
    const std::uint32_t b = f.fanout_bound();

    std::size_t maxlen = 0;
    for (std::size_t q = 0; q < g; ++q) {
      const std::size_t len = queries[q].path.size();
      out[q].aug_index.resize(len);
      out[q].proper_index.resize(len);
      maxlen = std::max(maxlen, len);
    }
    // Round 0: binary searches at the paths' heads (usually all the root,
    // whose key block stays hot across the group).
    for (std::size_t q = 0; q < g; ++q) {
      if (queries[q].path.empty()) {
        continue;
      }
      v[q] = static_cast<std::uint32_t>(queries[q].path[0]);
      idx[q] = f.find(v[q], queries[q].y);
      out[q].aug_index[0] = idx[q];
      out[q].proper_index[0] = f.to_proper(v[q], idx[q]);
    }
    // One bridge hop per round for every query still on its path.
    for (std::size_t step = 1; step < maxlen; ++step) {
      // Phase 0: next nodes' metadata.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          __builtin_prefetch(&f.node(
              static_cast<std::uint32_t>(queries[q].path[step])));
        }
      }
      // Phase 1: bridge cells.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          cell[q] = f.bridge_cell(v[q], idx[q], f.node(w).slot);
          __builtin_prefetch(cell[q]);
        }
      }
      // Phase 2: landing positions + the key/proper lines the walk-back
      // will touch (it moves at most fanout_bound() entries left).
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          pos[q] = *cell[q];
          const std::uint32_t back = pos[q] > b ? pos[q] - b : 0;
          __builtin_prefetch(f.key_ptr(w, back));
          __builtin_prefetch(f.proper_ptr(w, back));
        }
      }
      // Phase 3: walk-backs + answers.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          idx[q] = f.walk_back(w, pos[q], queries[q].y);
          v[q] = w;
          out[q].aug_index[step] = idx[q];
          out[q].proper_index[step] = f.to_proper(w, idx[q]);
        }
      }
    }
    queries += g;
    out += g;
    count -= g;
  }
}

BatchReport serve_path_queries(const FlatCascade& f, QueryEngine& engine,
                               std::span<const PathQuery> queries,
                               std::vector<PathAnswer>& out,
                               const BatchOptions& opts) {
  out.assign(queries.size(), PathAnswer{});
  const std::size_t groups = (queries.size() + kPathGroup - 1) / kPathGroup;
  return engine.for_each(
      groups,
      [&](std::size_t gi) {
        const std::size_t begin = gi * kPathGroup;
        const std::size_t cnt =
            std::min(kPathGroup, queries.size() - begin);
        search_paths_grouped(f, queries.data() + begin, cnt,
                             out.data() + begin);
      },
      opts);
}

BatchReport serve_point_queries(const FlatPointLocator& loc,
                                QueryEngine& engine,
                                std::span<const geom::Point> points,
                                std::vector<std::size_t>& out,
                                const BatchOptions& opts) {
  out.assign(points.size(), 0);
  return engine.for_each(
      points.size(), [&](std::size_t i) { out[i] = loc.locate(points[i]); },
      opts);
}

}  // namespace serve
