#include "serve/query_engine.hpp"

#include <algorithm>

namespace serve {

namespace {

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_shard_size(std::size_t n, std::size_t threads) {
  // Aim for several shards per thread so stragglers rebalance, but keep
  // shards big enough that the atomic cursor is cold compared to the
  // query work itself.
  const std::size_t target = std::max<std::size_t>(1, n / (threads * 8));
  return std::clamp<std::size_t>(target, 1, 1024);
}

}  // namespace

QueryEngine::QueryEngine(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

QueryEngine::~QueryEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) {
      t.join();
    }
  }
}

BatchReport QueryEngine::for_each(std::size_t n,
                                  const std::function<void(std::size_t)>& fn,
                                  const BatchOptions& opts) {
  BatchReport report;
  if (n == 0) {
    report.threads_used = 1;
    return report;
  }
  const std::size_t shard_size =
      opts.shard_size == 0 ? default_shard_size(n, threads_) : opts.shard_size;
  const bool armed = opts.deadline.count() > 0;
  const auto deadline_at = std::chrono::steady_clock::now() + opts.deadline;

  if (workers_.empty() || n <= shard_size) {
    // Inline fast path: a single-thread engine or a batch that fits one
    // shard.  The deadline is not polled here — an inline run IS the
    // sequential fallback.
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    report.shards = 1;
    report.threads_used = 1;
    return report;
  }

  std::string fail_reason;
  if (run_parallel(n, shard_size, fn, deadline_at, armed, fail_reason)) {
    report.shards = (n + shard_size - 1) / shard_size;
    report.threads_used = threads_;
    return report;
  }

  // Degradation (run_resilient discipline): the parallel attempt is fully
  // drained above, so re-running every index sequentially cannot race
  // with a stale worker; per-index idempotence makes the rerun safe.
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
  report.degraded = true;
  report.reason = fail_reason;
  report.shards = 1;
  report.threads_used = 1;
  return report;
}

bool QueryEngine::run_parallel(
    std::size_t n, std::size_t shard_size,
    const std::function<void(std::size_t)>& fn,
    std::chrono::steady_clock::time_point deadline_at, bool deadline_armed,
    std::string& fail_reason) {
  // One batch owns the pool at a time, submission through drain.
  std::lock_guard<std::mutex> batch_lock(submit_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  batch_n_ = n;
  shard_size_ = shard_size;
  num_shards_ = (n + shard_size - 1) / shard_size;
  next_shard_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  deadline_at_ = deadline_at;
  deadline_armed_ = deadline_armed;
  remaining_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    try {
      std::rethrow_exception(std::exchange(error_, nullptr));
    } catch (const std::exception& e) {
      fail_reason = std::string("worker exception: ") + e.what();
    } catch (...) {
      fail_reason = "worker exception: (non-standard)";
    }
    return false;
  }
  if (abort_.load(std::memory_order_relaxed)) {
    fail_reason = "deadline expired mid-batch";
    return false;
  }
  return true;
}

void QueryEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0, shard_size = 1, num_shards = 0;
    std::chrono::steady_clock::time_point deadline_at;
    bool deadline_armed = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      fn = fn_;
      n = batch_n_;
      shard_size = shard_size_;
      num_shards = num_shards_;
      deadline_at = deadline_at_;
      deadline_armed = deadline_armed_;
    }
    while (!abort_.load(std::memory_order_relaxed)) {
      if (deadline_armed && std::chrono::steady_clock::now() >= deadline_at) {
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t shard =
          next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) {
        break;
      }
      const std::size_t begin = shard * shard_size;
      const std::size_t end = std::min(n, begin + shard_size);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          (*fn)(i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (error_ == nullptr) {
            error_ = std::current_exception();
          }
        }
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void search_paths_grouped(const FlatCascade& f, const PathQuery* queries,
                          std::size_t count, PathAnswer* out) {
  while (count > 0) {
    const std::size_t g = std::min(count, kPathGroup);
    std::uint32_t v[kPathGroup];
    std::uint32_t idx[kPathGroup];
    std::uint32_t pos[kPathGroup];
    const std::uint32_t* cell[kPathGroup];
    const std::uint32_t b = f.fanout_bound();

    std::size_t maxlen = 0;
    for (std::size_t q = 0; q < g; ++q) {
      const std::size_t len = queries[q].path.size();
      out[q].aug_index.resize(len);
      out[q].proper_index.resize(len);
      maxlen = std::max(maxlen, len);
    }
    // Round 0: binary searches at the paths' heads (usually all the root,
    // whose key block stays hot across the group).
    for (std::size_t q = 0; q < g; ++q) {
      if (queries[q].path.empty()) {
        continue;
      }
      v[q] = static_cast<std::uint32_t>(queries[q].path[0]);
      idx[q] = f.find(v[q], queries[q].y);
      out[q].aug_index[0] = idx[q];
      out[q].proper_index[0] = f.to_proper(v[q], idx[q]);
    }
    // One bridge hop per round for every query still on its path.
    for (std::size_t step = 1; step < maxlen; ++step) {
      // Phase 0: next nodes' metadata.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          __builtin_prefetch(&f.node(
              static_cast<std::uint32_t>(queries[q].path[step])));
        }
      }
      // Phase 1: bridge cells.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          cell[q] = f.bridge_cell(v[q], idx[q], f.node(w).slot);
          __builtin_prefetch(cell[q]);
        }
      }
      // Phase 2: landing positions + the key/proper lines the walk-back
      // will touch (it moves at most fanout_bound() entries left).
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          pos[q] = *cell[q];
          const std::uint32_t back = pos[q] > b ? pos[q] - b : 0;
          __builtin_prefetch(f.key_ptr(w, back));
          __builtin_prefetch(f.proper_ptr(w, back));
        }
      }
      // Phase 3: walk-backs + answers.
      for (std::size_t q = 0; q < g; ++q) {
        if (step < queries[q].path.size()) {
          const auto w = static_cast<std::uint32_t>(queries[q].path[step]);
          idx[q] = f.walk_back(w, pos[q], queries[q].y);
          v[q] = w;
          out[q].aug_index[step] = idx[q];
          out[q].proper_index[step] = f.to_proper(w, idx[q]);
        }
      }
    }
    queries += g;
    out += g;
    count -= g;
  }
}

BatchReport serve_path_queries(const FlatCascade& f, QueryEngine& engine,
                               std::span<const PathQuery> queries,
                               std::vector<PathAnswer>& out,
                               const BatchOptions& opts) {
  out.assign(queries.size(), PathAnswer{});
  const std::size_t groups = (queries.size() + kPathGroup - 1) / kPathGroup;
  return engine.for_each(
      groups,
      [&](std::size_t gi) {
        const std::size_t begin = gi * kPathGroup;
        const std::size_t cnt =
            std::min(kPathGroup, queries.size() - begin);
        search_paths_grouped(f, queries.data() + begin, cnt,
                             out.data() + begin);
      },
      opts);
}

BatchReport serve_point_queries(const FlatPointLocator& loc,
                                QueryEngine& engine,
                                std::span<const geom::Point> points,
                                std::vector<std::size_t>& out,
                                const BatchOptions& opts) {
  out.assign(points.size(), 0);
  return engine.for_each(
      points.size(), [&](std::size_t i) { out[i] = loc.locate(points[i]); },
      opts);
}

}  // namespace serve
