#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace serve {

/// Cache-line size the serving layer packs for.  64 bytes covers every
/// x86-64 and most AArch64 parts; the layout only relies on it being a
/// multiple of every pool element's alignment.
inline constexpr std::size_t kCacheLine = 64;

// The snapshot format (src/snapshot, DESIGN.md §8) memory-maps these
// pools byte-for-byte: a snapshot file IS a little-endian image of the
// arena, with every section aligned to kCacheLine.  Two platform
// assumptions are therefore load-bearing and checked here, at the root
// of the serving layer, rather than discovered as silent corruption at
// load time.  Porting to a big-endian machine requires byte-swapping
// readers/writers in src/snapshot (snapshot::open additionally rejects
// cross-endian *files* at runtime via FileHeader::endian_tag, so a
// mixed-endian fleet degrades to a Status, never to garbage answers).
static_assert(std::endian::native == std::endian::little,
              "serve arena pools and the snapshot format assume a "
              "little-endian host; add byte-swapping codecs to "
              "src/snapshot before porting to a big-endian platform");
static_assert(kCacheLine == 64,
              "snapshot section alignment (snapshot::kSectionAlign) is "
              "fixed at 64 bytes; keep the two constants in lockstep");

/// Allocations at or above this size are requested from mmap and marked
/// MADV_HUGEPAGE (DESIGN.md §12): a 2 MiB huge page covers what would be
/// 512 4-KiB TLB entries, which is what keeps the batch kernels' random
/// walks over multi-MiB pools from stalling on TLB refills.  Below the
/// threshold (or when mmap/madvise is unavailable) allocation falls back
/// to aligned_alloc — the fallback is silent and purely a performance
/// matter, never a correctness one.
inline constexpr std::size_t kHugePageBytes = 2u << 20;

/// One raw cache-line-aligned allocation, huge-page-backed when large
/// enough.  `map_bytes > 0` means the memory came from mmap (and must go
/// back via munmap); 0 means aligned_alloc/free.  Zero-initialized in
/// both paths (mmap anonymous memory is zero by contract).
struct RawAlloc {
  void* ptr = nullptr;
  std::size_t map_bytes = 0;
};

/// Allocate `bytes` (must be a multiple of kCacheLine, > 0) per the
/// huge-page policy above.  Throws std::bad_alloc on exhaustion.
[[nodiscard]] inline RawAlloc raw_alloc(std::size_t bytes) {
  RawAlloc a;
#if defined(__linux__)
  if (bytes >= kHugePageBytes) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
#if defined(MADV_HUGEPAGE)
      // Best-effort: a kernel without THP (or with it disabled) serves
      // the mapping with base pages and everything still works.
      (void)::madvise(p, bytes, MADV_HUGEPAGE);
#endif
      a.ptr = p;
      a.map_bytes = bytes;
      return a;
    }
    // mmap exhaustion falls through to the malloc path below, which has
    // its own failure report; no capability is lost, only huge pages.
  }
#endif
  a.ptr = std::aligned_alloc(kCacheLine, bytes);
  if (a.ptr == nullptr) {
    throw std::bad_alloc();
  }
  std::memset(a.ptr, 0, bytes);
  return a;
}

inline void raw_free(RawAlloc& a) {
  if (a.ptr == nullptr) {
    return;
  }
#if defined(__linux__)
  if (a.map_bytes > 0) {
    ::munmap(a.ptr, a.map_bytes);
    a.ptr = nullptr;
    return;
  }
#endif
  std::free(a.ptr);
  a.ptr = nullptr;
}

/// A fixed-size array in ONE cache-line-aligned allocation — the backing
/// store of the serving arena's SoA pools.  Unlike std::vector it never
/// reallocates, so a FlatCascade's raw pointers stay valid for its whole
/// lifetime, and the start of every pool sits on a cache-line boundary.
/// Pools past kHugePageBytes are huge-page-backed via raw_alloc.
///
/// T must be trivially copyable/destructible (the pools hold keys and
/// integer offsets only); elements are value-initialized.
///
/// A pool can alternatively be a non-owning *view* of externally managed
/// memory (Pool::view): the zero-copy path of snapshot::open points pools
/// straight into a read-only mmap.  A view is never freed and must never
/// be written through — the serving layer only writes pools during
/// compile(), which always uses owning pools.
template <typename T>
class Pool {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "arena pools hold plain scalar data only");
  static_assert(kCacheLine % alignof(T) == 0);

 public:
  Pool() = default;

  explicit Pool(std::size_t n) : size_(n) {
    if (n == 0) {
      return;
    }
    // raw_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
    alloc_ = raw_alloc(bytes);
    data_ = static_cast<T*>(alloc_.ptr);
  }

  /// A non-owning view of `n` elements at `data` (e.g. inside a mmapped
  /// snapshot).  The memory must outlive the pool and is treated as
  /// read-only: the const_cast below exists only so owning and borrowed
  /// pools share one representation — nothing in the serving hot path
  /// writes through data().
  [[nodiscard]] static Pool view(const T* data, std::size_t n) {
    Pool p;
    p.data_ = const_cast<T*>(data);
    p.size_ = n;
    p.owned_ = false;
    return p;
  }

  ~Pool() {
    if (owned_) {
      raw_free(alloc_);
    }
  }

  Pool(Pool&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        owned_(std::exchange(o.owned_, true)),
        alloc_(std::exchange(o.alloc_, RawAlloc{})) {}
  Pool& operator=(Pool&& o) noexcept {
    if (this != &o) {
      if (owned_) {
        raw_free(alloc_);
      }
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      owned_ = std::exchange(o.owned_, true);
      alloc_ = std::exchange(o.alloc_, RawAlloc{});
    }
    return *this;
  }
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// False for views (snapshot-backed arenas report zero owned bytes).
  [[nodiscard]] bool owns() const { return owned_; }

  /// True when the backing store came from mmap under the huge-page
  /// policy (diagnostics/tests; false for views and small pools).
  [[nodiscard]] bool huge_backed() const { return alloc_.map_bytes > 0; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

  /// Bytes actually reserved (for space accounting in benches/docs).
  /// Views report the bytes they span — for a snapshot-backed arena that
  /// is the mapped footprint, the fair comparison against owned pools.
  [[nodiscard]] std::size_t allocated_bytes() const {
    return size_ == 0
               ? 0
               : (size_ * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  bool owned_ = true;
  RawAlloc alloc_;
};

/// A chunked bump allocator for build-time and per-batch scratch: alloc()
/// carves cache-line-aligned slices off large reusable chunks, and
/// reset() rewinds every chunk without returning memory to the OS, so a
/// compile-to-arena pass (or a steady-state batch loop) stops paying
/// malloc/free per temporary.  Chunks themselves go through raw_alloc and
/// are therefore huge-page-backed when large.
///
/// Allocations are NOT initialized after the first reset() (fresh chunks
/// are zero only because raw_alloc zeroes).  Not thread-safe; intended
/// for one builder or one worker's scratch.
class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(
            (chunk_bytes + kCacheLine - 1) / kCacheLine * kCacheLine) {}

  ~BumpArena() {
    for (Chunk& c : chunks_) {
      raw_free(c.alloc);
    }
  }

  BumpArena(BumpArena&& o) noexcept
      : chunk_bytes_(o.chunk_bytes_),
        chunks_(std::move(o.chunks_)),
        at_(std::exchange(o.at_, 0)) {
    o.chunks_.clear();
  }
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;
  BumpArena& operator=(BumpArena&&) = delete;

  /// `n` elements of T, start aligned to kCacheLine.  Pointers stay valid
  /// until reset() or destruction (chunks never move).
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "bump arenas hold plain scalar scratch only");
    static_assert(kCacheLine % alignof(T) == 0);
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
    if (bytes == 0) {
      return reinterpret_cast<T*>(empty_);
    }
    if (at_ >= chunks_.size() || chunks_[at_].used + bytes >
                                     chunks_[at_].capacity) {
      next_chunk(bytes);
    }
    Chunk& c = chunks_[at_];
    T* p = reinterpret_cast<T*>(static_cast<unsigned char*>(c.alloc.ptr) +
                                c.used);
    c.used += bytes;
    return p;
  }

  /// Rewind every chunk; all outstanding pointers become invalid but no
  /// memory is released, so the next fill cycle allocates nothing.
  void reset() {
    for (Chunk& c : chunks_) {
      c.used = 0;
    }
    at_ = 0;
  }

  /// Total bytes reserved from the OS (space accounting).
  [[nodiscard]] std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) {
      total += c.capacity;
    }
    return total;
  }

 private:
  struct Chunk {
    RawAlloc alloc;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  /// Advance to the first existing chunk that fits `bytes`, else grow.
  void next_chunk(std::size_t bytes) {
    while (at_ < chunks_.size()) {
      if (chunks_[at_].used == 0 && chunks_[at_].capacity >= bytes) {
        return;
      }
      ++at_;
    }
    Chunk c;
    c.capacity = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    c.alloc = raw_alloc(c.capacity);
    chunks_.push_back(c);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t at_ = 0;  ///< index of the chunk currently bump-allocating
  alignas(kCacheLine) unsigned char empty_[1] = {};  ///< n == 0 sentinel
};

}  // namespace serve
