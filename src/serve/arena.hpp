#pragma once

#include <bit>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

namespace serve {

/// Cache-line size the serving layer packs for.  64 bytes covers every
/// x86-64 and most AArch64 parts; the layout only relies on it being a
/// multiple of every pool element's alignment.
inline constexpr std::size_t kCacheLine = 64;

// The snapshot format (src/snapshot, DESIGN.md §8) memory-maps these
// pools byte-for-byte: a snapshot file IS a little-endian image of the
// arena, with every section aligned to kCacheLine.  Two platform
// assumptions are therefore load-bearing and checked here, at the root
// of the serving layer, rather than discovered as silent corruption at
// load time.  Porting to a big-endian machine requires byte-swapping
// readers/writers in src/snapshot (snapshot::open additionally rejects
// cross-endian *files* at runtime via FileHeader::endian_tag, so a
// mixed-endian fleet degrades to a Status, never to garbage answers).
static_assert(std::endian::native == std::endian::little,
              "serve arena pools and the snapshot format assume a "
              "little-endian host; add byte-swapping codecs to "
              "src/snapshot before porting to a big-endian platform");
static_assert(kCacheLine == 64,
              "snapshot section alignment (snapshot::kSectionAlign) is "
              "fixed at 64 bytes; keep the two constants in lockstep");

/// A fixed-size array in ONE cache-line-aligned allocation — the backing
/// store of the serving arena's SoA pools.  Unlike std::vector it never
/// reallocates, so a FlatCascade's raw pointers stay valid for its whole
/// lifetime, and the start of every pool sits on a cache-line boundary.
///
/// T must be trivially copyable/destructible (the pools hold keys and
/// integer offsets only); elements are value-initialized.
///
/// A pool can alternatively be a non-owning *view* of externally managed
/// memory (Pool::view): the zero-copy path of snapshot::open points pools
/// straight into a read-only mmap.  A view is never freed and must never
/// be written through — the serving layer only writes pools during
/// compile(), which always uses owning pools.
template <typename T>
class Pool {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "arena pools hold plain scalar data only");
  static_assert(kCacheLine % alignof(T) == 0);

 public:
  Pool() = default;

  explicit Pool(std::size_t n) : size_(n) {
    if (n == 0) {
      return;
    }
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLine, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  /// A non-owning view of `n` elements at `data` (e.g. inside a mmapped
  /// snapshot).  The memory must outlive the pool and is treated as
  /// read-only: the const_cast below exists only so owning and borrowed
  /// pools share one representation — nothing in the serving hot path
  /// writes through data().
  [[nodiscard]] static Pool view(const T* data, std::size_t n) {
    Pool p;
    p.data_ = const_cast<T*>(data);
    p.size_ = n;
    p.owned_ = false;
    return p;
  }

  ~Pool() {
    if (owned_) {
      std::free(data_);
    }
  }

  Pool(Pool&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        owned_(std::exchange(o.owned_, true)) {}
  Pool& operator=(Pool&& o) noexcept {
    if (this != &o) {
      if (owned_) {
        std::free(data_);
      }
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      owned_ = std::exchange(o.owned_, true);
    }
    return *this;
  }
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// False for views (snapshot-backed arenas report zero owned bytes).
  [[nodiscard]] bool owns() const { return owned_; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

  /// Bytes actually reserved (for space accounting in benches/docs).
  /// Views report the bytes they span — for a snapshot-backed arena that
  /// is the mapped footprint, the fair comparison against owned pools.
  [[nodiscard]] std::size_t allocated_bytes() const {
    return size_ == 0
               ? 0
               : (size_ * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  bool owned_ = true;
};

}  // namespace serve
