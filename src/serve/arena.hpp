#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

namespace serve {

/// Cache-line size the serving layer packs for.  64 bytes covers every
/// x86-64 and most AArch64 parts; the layout only relies on it being a
/// multiple of every pool element's alignment.
inline constexpr std::size_t kCacheLine = 64;

/// A fixed-size array in ONE cache-line-aligned allocation — the backing
/// store of the serving arena's SoA pools.  Unlike std::vector it never
/// reallocates, so a FlatCascade's raw pointers stay valid for its whole
/// lifetime, and the start of every pool sits on a cache-line boundary.
///
/// T must be trivially copyable/destructible (the pools hold keys and
/// integer offsets only); elements are value-initialized.
template <typename T>
class Pool {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "arena pools hold plain scalar data only");
  static_assert(kCacheLine % alignof(T) == 0);

 public:
  Pool() = default;

  explicit Pool(std::size_t n) : size_(n) {
    if (n == 0) {
      return;
    }
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLine, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  ~Pool() { std::free(data_); }

  Pool(Pool&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}
  Pool& operator=(Pool&& o) noexcept {
    if (this != &o) {
      std::free(data_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

  /// Bytes actually reserved (for space accounting in benches/docs).
  [[nodiscard]] std::size_t allocated_bytes() const {
    return size_ == 0
               ? 0
               : (size_ * sizeof(T) + kCacheLine - 1) / kCacheLine * kCacheLine;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace serve
