#include "serve/flat_cascade.hpp"

#include <limits>
#include <string>

namespace serve {

namespace {

using coop::Status;

std::string at_node(std::size_t v) {
  return " at node " + std::to_string(v);
}

}  // namespace

coop::Expected<FlatCascade> FlatCascade::compile(const fc::Structure& s) {
  const cat::Tree& t = s.tree();
  const std::size_t nn = t.num_nodes();
  if (nn == 0) {
    return Status::invalid_argument("cannot compile an empty structure");
  }

  // Pass 1: size the pools and validate everything the arena layout (and
  // the assert-free hot loop) will rely on.  A structure that fails here —
  // e.g. one mutated by robust::corrupt — must never reach pass 2.
  std::size_t total_keys = 0, total_bridge = 0, total_child = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const fc::AugCatalog& a = s.aug(v);
    const cat::Catalog& own = t.catalog(v);
    if (a.keys.empty() || a.keys.back() != cat::kInfinity) {
      return Status::corrupted("augmented catalog missing +inf terminal" +
                               at_node(vi));
    }
    for (std::size_t i = 1; i < a.keys.size(); ++i) {
      if (a.keys[i - 1] >= a.keys[i]) {
        return Status::corrupted("augmented keys not strictly increasing" +
                                 at_node(vi));
      }
    }
    if (!own.valid()) {
      return Status::corrupted("original catalog invalid" + at_node(vi));
    }
    if (a.proper.size() != a.keys.size()) {
      return Status::corrupted("proper[] size mismatch" + at_node(vi));
    }
    // proper[i] must be the exact original-catalog successor position;
    // one merge walk checks all entries in O(|aug| + |catalog|).
    std::size_t j = 0;
    for (std::size_t i = 0; i < a.keys.size(); ++i) {
      while (own.key(j) < a.keys[i]) {
        ++j;  // terminates: both sequences end at +infinity
      }
      if (a.proper[i] < 0 ||
          static_cast<std::size_t>(a.proper[i]) != j) {
        return Status::corrupted("proper[] is not the original successor" +
                                 at_node(vi));
      }
    }
    const auto kids = t.children(v);
    if (a.num_children != kids.size() ||
        kids.size() > std::numeric_limits<std::uint16_t>::max()) {
      return Status::corrupted("child arity mismatch" + at_node(vi));
    }
    if (a.bridge.size() != a.keys.size() * kids.size()) {
      return Status::corrupted("bridge array size mismatch" + at_node(vi));
    }
    for (std::uint32_t e = 0; e < kids.size(); ++e) {
      const fc::AugCatalog& kid = s.aug(kids[e]);
      std::size_t pos = 0;
      for (std::size_t i = 0; i < a.keys.size(); ++i) {
        const std::int32_t br = a.bridge_at(e, i);
        if (br < 0 || static_cast<std::size_t>(br) >= kid.keys.size()) {
          return Status::corrupted("bridge out of range" + at_node(vi));
        }
        // Recompute the exact successor position; any deviation (crossing,
        // off-by-one, corrupted cell) breaks the walk-back bound the flat
        // query loop depends on.
        while (pos < kid.keys.size() && kid.keys[pos] < a.keys[i]) {
          ++pos;
        }
        if (static_cast<std::size_t>(br) != pos) {
          return Status::corrupted("bridge is not the exact successor" +
                                   at_node(vi));
        }
      }
    }
    total_keys += a.keys.size();
    total_bridge += a.bridge.size();
    total_child += kids.size();
  }
  constexpr std::size_t kMax = std::numeric_limits<std::uint32_t>::max();
  // The blocked multiway layout pads each node to a multiple of 8 slots,
  // at most 7 extra per node — bound it with the same uint32 budget.
  const std::size_t total_slots_max = total_keys + 7 * nn;
  if (total_keys > kMax || total_bridge > kMax || total_child > kMax ||
      nn > kMax || total_slots_max > kMax) {
    return Status::invalid_argument(
        "structure too large for uint32 arena offsets");
  }

  // Pass 2: pack.  Node order is node-id order (BFS-ish for the
  // generators), keys/proper/bridge node-major so one node's hot data is
  // contiguous.
  FlatCascade f;
  f.b_ = s.fanout_bound();
  f.nodes_ = Pool<FlatNode>(nn);
  f.keys_ = Pool<Key>(total_keys);
  f.proper_ = Pool<std::uint32_t>(total_keys);
  f.bridge_ = Pool<std::uint32_t>(total_bridge);
  f.child_ = Pool<std::uint32_t>(total_child);
  std::uint32_t key_off = 0, bridge_off = 0, child_off = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const fc::AugCatalog& a = s.aug(v);
    const auto kids = t.children(v);
    FlatNode& nd = f.nodes_[vi];
    nd.key_off = key_off;
    nd.key_count = static_cast<std::uint32_t>(a.keys.size());
    nd.bridge_off = bridge_off;
    nd.child_off = child_off;
    nd.parent = t.parent(v);
    nd.num_children = static_cast<std::uint16_t>(kids.size());
    nd.slot = v == t.root()
                  ? 0
                  : static_cast<std::uint16_t>(t.child_slot(v));
    for (std::size_t i = 0; i < a.keys.size(); ++i) {
      f.keys_[key_off + i] = a.keys[i];
      f.proper_[key_off + i] = static_cast<std::uint32_t>(a.proper[i]);
    }
    for (std::size_t i = 0; i < a.bridge.size(); ++i) {
      f.bridge_[bridge_off + i] = static_cast<std::uint32_t>(a.bridge[i]);
    }
    for (std::size_t e = 0; e < kids.size(); ++e) {
      f.child_[child_off + e] = static_cast<std::uint32_t>(kids[e]);
    }
    key_off += static_cast<std::uint32_t>(a.keys.size());
    bridge_off += static_cast<std::uint32_t>(a.bridge.size());
    child_off += static_cast<std::uint32_t>(kids.size());
  }

  // Pass 3: derive the blocked multiway search layout from the packed
  // keys (simd_find.hpp; this is what find() descends at serve time).
  std::size_t total_slots = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    total_slots += simd::num_slots(f.nodes_[vi].key_count);
  }
  f.simd_keys_ = Pool<Key>(total_slots);
  f.simd_pos_ = Pool<std::uint32_t>(total_slots);
  f.simd_off_ = Pool<std::uint32_t>(nn);
  std::uint32_t slot_off = 0;
  for (std::size_t vi = 0; vi < nn; ++vi) {
    const FlatNode& nd = f.nodes_[vi];
    f.simd_off_[vi] = slot_off;
    simd::build_layout(f.keys_.data() + nd.key_off, nd.key_count,
                       f.simd_keys_.data() + slot_off,
                       f.simd_pos_.data() + slot_off);
    slot_off += simd::num_slots(nd.key_count);
  }
  return f;
}

coop::Status FlatCascade::validate_path(std::span<const NodeId> path) const {
  if (path.empty()) {
    return Status::invalid_argument("empty query path");
  }
  if (path.front() != static_cast<NodeId>(root())) {
    return Status::invalid_argument("query path does not start at the root");
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] < 0 || static_cast<std::size_t>(path[i]) >= num_nodes()) {
      return Status::invalid_argument("query path node " + std::to_string(i) +
                                      " out of range");
    }
    if (i > 0 && nodes_[path[i]].parent != path[i - 1]) {
      return Status::invalid_argument(
          "query path breaks parent/child chain at position " +
          std::to_string(i));
    }
  }
  return coop::OkStatus();
}

}  // namespace serve
