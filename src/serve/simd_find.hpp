#pragma once

/// Branchless multiway catalog search (DESIGN.md §12).
///
/// Every flat catalog carries, next to its sorted key slice, a *blocked
/// multiway layout*: the keys of one node re-arranged into an implicit
/// (B+1)-ary search tree with B = 8 keys per block, so one block is
/// exactly one cache line of int64 keys and one AVX2 rank step (two
/// 256-bit compares + movemask + popcount) resolves a whole block.  The
/// descent is branchless — the block index is computed arithmetically
/// from the rank, the candidate answer is kept via conditional select —
/// and touches ceil(log9(nblocks)) + 1 cache lines instead of the
/// log2(n) dependent lines of a binary search.
///
/// Layout (per catalog of n keys, padded to S = ceil(n/8)*8 slots):
///   slot_keys[S] : block k owns slots [8k, 8k+8); within a block keys
///                  ascend; block k's children are blocks 9k+j+1 for
///                  j in [0, 9).  Slots are filled by an in-order walk of
///                  that implicit tree over the ascending key sequence;
///                  leftover slots are padded with +inf.
///   slot_pos[S]  : the rank (index into the original sorted slice) of
///                  the key in each slot; padding slots carry n, the
///                  "past the end" rank.
///
/// lower_bound() returns exactly std::lower_bound's rank for ANY query,
/// including queries past the maximum key (result n) — see the padding
/// argument in DESIGN.md §12.  In the serving layer every catalog ends
/// with a +inf terminal, so results are always < n there.
///
/// Dispatch mirrors the CRC-32C kernel in snapshot/format.hpp: each
/// AVX2 entry point is compiled with a function-level target attribute
/// and selected at runtime via __builtin_cpu_supports, so the binary
/// runs (and the full test suite passes) on any x86-64.  Building with
/// -DCOOPSEARCH_DISABLE_SIMD=ON removes the vector paths entirely and
/// serves everything through the portable scalar kernel.

#include <cstddef>
#include <cstdint>

#include "catalog/catalog.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(COOPSEARCH_DISABLE_SIMD)
#define COOPSEARCH_SIMD_X86 1
#include <immintrin.h>
#endif

namespace serve::simd {

using cat::Key;

/// Keys per block: 8 int64 = one 64-byte cache line = two ymm registers.
inline constexpr std::uint32_t kBlock = 8;
/// Branching factor of the implicit tree (B keys separate B+1 children).
inline constexpr std::uint32_t kFan = kBlock + 1;

/// Padded slot count for an n-key catalog (0 keys -> 0 slots).
[[nodiscard]] constexpr std::uint32_t num_slots(std::uint32_t n) {
  return (n + kBlock - 1) / kBlock * kBlock;
}

[[nodiscard]] constexpr std::uint32_t num_blocks(std::uint32_t n) {
  return (n + kBlock - 1) / kBlock;
}

namespace detail {

/// In-order walk of the implicit (B+1)-ary tree over blocks [0, nblocks),
/// visiting slot indices in ascending key order.  Depth is
/// O(log9(nblocks)) — 13 levels cover 2^32 slots.
template <typename Emit>
void in_order(std::uint32_t k, std::uint32_t nblocks, Emit& emit) {
  if (k >= nblocks) {
    return;
  }
  for (std::uint32_t j = 0; j < kBlock; ++j) {
    in_order(k * kFan + j + 1, nblocks, emit);
    emit(std::size_t{k} * kBlock + j);
  }
  in_order(k * kFan + kBlock + 1, nblocks, emit);
}

}  // namespace detail

/// Fill slot_keys/slot_pos (each num_slots(n) long) from the ascending
/// key slice keys[0..n).  Padding slots get (+inf, n).
inline void build_layout(const Key* keys, std::uint32_t n, Key* slot_keys,
                         std::uint32_t* slot_pos) {
  std::uint32_t t = 0;
  auto emit = [&](std::size_t slot) {
    if (t < n) {
      slot_keys[slot] = keys[t];
      slot_pos[slot] = t;
      ++t;
    } else {
      slot_keys[slot] = cat::kInfinity;
      slot_pos[slot] = n;
    }
  };
  detail::in_order(0, num_blocks(n), emit);
}

/// Verify that slot_keys/slot_pos are exactly what build_layout would
/// produce from keys[0..n) — the structural check snapshot::open runs
/// over mapped v2 layout sections before trusting them.
[[nodiscard]] inline bool check_layout(const Key* keys, std::uint32_t n,
                                       const Key* slot_keys,
                                       const std::uint32_t* slot_pos) {
  std::uint32_t t = 0;
  bool ok = true;
  auto emit = [&](std::size_t slot) {
    if (t < n) {
      ok = ok && slot_keys[slot] == keys[t] && slot_pos[slot] == t;
      ++t;
    } else {
      ok = ok && slot_keys[slot] == cat::kInfinity && slot_pos[slot] == n;
    }
  };
  detail::in_order(0, num_blocks(n), emit);
  return ok && t == n;
}

/// Test/bench hook: force the scalar kernel even when AVX2 is available,
/// so the two paths can be differentially compared (and separately
/// benchmarked) in one process.  Read on every dispatch; not intended to
/// be toggled while queries are in flight.
inline bool& force_scalar_flag() {
  static bool flag = false;
  return flag;
}
inline void set_force_scalar(bool v) { force_scalar_flag() = v; }

[[nodiscard]] inline bool dispatch_is_avx2() {
#if defined(COOPSEARCH_SIMD_X86)
  return !force_scalar_flag() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// "avx2" or "scalar" — recorded in bench JSON rows.
[[nodiscard]] inline const char* dispatch_name() {
  return dispatch_is_avx2() ? "avx2" : "scalar";
}

/// Rank of y within one block: how many of the 8 keys are < y.
[[nodiscard]] inline std::uint32_t rank_block_scalar(const Key* b, Key y) {
  std::uint32_t c = 0;
  for (std::uint32_t j = 0; j < kBlock; ++j) {
    c += b[j] < y ? 1u : 0u;
  }
  return c;
}

/// Portable kernel: identical descent to the AVX2 path, with the rank
/// computed by an unrolled compare-accumulate (no data-dependent
/// branches; the candidate select compiles to cmov).
[[nodiscard]] inline std::uint32_t lower_bound_scalar(
    const Key* slot_keys, const std::uint32_t* slot_pos, std::uint32_t n,
    Key y) {
  const std::uint32_t nblocks = num_blocks(n);
  std::uint32_t k = 0;
  std::uint32_t res = n;
  while (k < nblocks) {
    const std::size_t base = std::size_t{k} * kBlock;
    const std::uint32_t c = rank_block_scalar(slot_keys + base, y);
    // c == kBlock reads slot 7 harmlessly; the select keeps `res`.
    const std::uint32_t cand = slot_pos[base + (c & (kBlock - 1))];
    res = c < kBlock ? cand : res;
    k = k * kFan + c + 1;
  }
  return res;
}

#if defined(COOPSEARCH_SIMD_X86)

/// How many of the 8 keys at b are < y (y splat in yv).
__attribute__((target("avx2"))) [[nodiscard]] inline std::uint32_t
rank_block_avx2(const Key* b, __m256i yv) {
  const __m256i k0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i k1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4));
  const __m256i lt0 = _mm256_cmpgt_epi64(yv, k0);  // key < y  <=>  y > key
  const __m256i lt1 = _mm256_cmpgt_epi64(yv, k1);
  const int m = (_mm256_movemask_pd(_mm256_castsi256_pd(lt1)) << 4) |
                _mm256_movemask_pd(_mm256_castsi256_pd(lt0));
  return static_cast<std::uint32_t>(__builtin_popcount(m));
}

__attribute__((target("avx2"))) [[nodiscard]] inline std::uint32_t
lower_bound_avx2(const Key* slot_keys, const std::uint32_t* slot_pos,
                 std::uint32_t n, Key y) {
  const std::uint32_t nblocks = num_blocks(n);
  const __m256i yv = _mm256_set1_epi64x(y);
  std::uint32_t k = 0;
  std::uint32_t res = n;
  while (k < nblocks) {
    const std::size_t base = std::size_t{k} * kBlock;
    const std::uint32_t c = rank_block_avx2(slot_keys + base, yv);
    const std::uint32_t cand = slot_pos[base + (c & (kBlock - 1))];
    res = c < kBlock ? cand : res;
    k = k * kFan + c + 1;
  }
  return res;
}

#endif  // COOPSEARCH_SIMD_X86

/// Rank of the first key >= y in the sorted slice the layout was built
/// from; n when every key is < y.  Runtime-dispatched.
[[nodiscard]] inline std::uint32_t lower_bound(const Key* slot_keys,
                                               const std::uint32_t* slot_pos,
                                               std::uint32_t n, Key y) {
#if defined(COOPSEARCH_SIMD_X86)
  if (dispatch_is_avx2()) {
    return lower_bound_avx2(slot_keys, slot_pos, n, y);
  }
#endif
  return lower_bound_scalar(slot_keys, slot_pos, n, y);
}

/// One catalog descent of a lockstep group (see lower_bound_grouped).
struct GroupedQuery {
  const Key* slot_keys = nullptr;
  const std::uint32_t* slot_pos = nullptr;
  std::uint32_t n = 0;
  Key y = 0;
};

inline void prefetch_block(const Key* slot_keys,
                           const std::uint32_t* slot_pos, std::size_t base) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(slot_keys + base, 0, 3);
  __builtin_prefetch(slot_pos + base, 0, 3);
#else
  (void)slot_keys;
  (void)slot_pos;
  (void)base;
#endif
}

/// Software-pipelined lockstep descent: advance every query one level
/// per round, prefetching each query's *next* block as soon as its index
/// is known, so the g memory accesses of a level overlap instead of
/// serializing.  out[i] receives lower_bound(qs[i]); qs[i].n == 0 yields
/// out[i] == 0 without touching its (possibly null) pointers.
inline void lower_bound_grouped_scalar(const GroupedQuery* qs,
                                       std::uint32_t* out, std::size_t g) {
  std::uint32_t k[64];
  std::uint32_t nb[64];
  std::uint32_t res[64];
  for (std::size_t i = 0; i < g; ++i) {
    k[i] = 0;
    nb[i] = num_blocks(qs[i].n);
    res[i] = qs[i].n;
    if (nb[i] > 0) {
      prefetch_block(qs[i].slot_keys, qs[i].slot_pos, 0);
    }
  }
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < g; ++i) {
      if (k[i] >= nb[i]) {
        continue;
      }
      const std::size_t base = std::size_t{k[i]} * kBlock;
      const std::uint32_t c = rank_block_scalar(qs[i].slot_keys + base,
                                                qs[i].y);
      const std::uint32_t cand = qs[i].slot_pos[base + (c & (kBlock - 1))];
      res[i] = c < kBlock ? cand : res[i];
      k[i] = k[i] * kFan + c + 1;
      if (k[i] < nb[i]) {
        prefetch_block(qs[i].slot_keys, qs[i].slot_pos,
                       std::size_t{k[i]} * kBlock);
        any = true;
      }
    }
  }
  for (std::size_t i = 0; i < g; ++i) {
    out[i] = res[i];
  }
}

#if defined(COOPSEARCH_SIMD_X86)

__attribute__((target("avx2"))) inline void lower_bound_grouped_avx2(
    const GroupedQuery* qs, std::uint32_t* out, std::size_t g) {
  std::uint32_t k[64];
  std::uint32_t nb[64];
  std::uint32_t res[64];
  __m256i yv[64];
  for (std::size_t i = 0; i < g; ++i) {
    k[i] = 0;
    nb[i] = num_blocks(qs[i].n);
    res[i] = qs[i].n;
    yv[i] = _mm256_set1_epi64x(qs[i].y);
    if (nb[i] > 0) {
      prefetch_block(qs[i].slot_keys, qs[i].slot_pos, 0);
    }
  }
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < g; ++i) {
      if (k[i] >= nb[i]) {
        continue;
      }
      const std::size_t base = std::size_t{k[i]} * kBlock;
      const std::uint32_t c = rank_block_avx2(qs[i].slot_keys + base, yv[i]);
      const std::uint32_t cand = qs[i].slot_pos[base + (c & (kBlock - 1))];
      res[i] = c < kBlock ? cand : res[i];
      k[i] = k[i] * kFan + c + 1;
      if (k[i] < nb[i]) {
        prefetch_block(qs[i].slot_keys, qs[i].slot_pos,
                       std::size_t{k[i]} * kBlock);
        any = true;
      }
    }
  }
  for (std::size_t i = 0; i < g; ++i) {
    out[i] = res[i];
  }
}

#endif  // COOPSEARCH_SIMD_X86

/// Runtime-dispatched grouped descent; g must be <= 64 (callers group by
/// QueryEngine's kPathGroup = 16).
inline void lower_bound_grouped(const GroupedQuery* qs, std::uint32_t* out,
                                std::size_t g) {
#if defined(COOPSEARCH_SIMD_X86)
  if (dispatch_is_avx2()) {
    lower_bound_grouped_avx2(qs, out, g);
    return;
  }
#endif
  lower_bound_grouped_scalar(qs, out, g);
}

}  // namespace serve::simd
