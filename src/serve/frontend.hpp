#pragma once

// Overload-safe serving frontend (DESIGN.md §9): the layer that composes
// the QueryEngine's per-batch degradation and the Registry's hot-swap
// into a server that protects *itself* when traffic exceeds capacity or
// the machinery underneath misbehaves.
//
//   admission  a bounded in-flight budget; excess batches are shed
//              immediately with kResourceExhausted instead of queueing
//              unboundedly (queues hide overload until everything times
//              out at once).
//   retry      a batch that degraded (deadline / worker exception) is
//              retried against a *fresh* registry pin with capped
//              exponential backoff and deterministic seeded jitter; every
//              attempt is recorded in BatchReport::attempts.
//   breaker    K consecutive degraded batches trip CLOSED -> OPEN; while
//              OPEN the frontend serves sequentially-only (or sheds with
//              kUnavailable, per policy) until the window expires, then a
//              single HALF_OPEN probe rides the full engine and either
//              closes the breaker or reopens it.
//
// The frontend never owns correctness: answers come from the same grouped
// kernel as serve::serve_path_queries, the snapshot stays pinned for the
// whole attempt (parallel try AND sequential rerun), and a shed batch
// returns a Status without touching `out`.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "robust/status.hpp"
#include "serve/query_engine.hpp"
#include "snapshot/registry.hpp"

namespace serve {

/// Coarse operator-facing health, derived from the breaker.
enum class HealthState : int {
  kHealthy = 0,   ///< breaker CLOSED, no recent degradation
  kDegraded = 1,  ///< degraded batches accumulating or probe in flight
  kLameDuck = 2,  ///< breaker OPEN: serving sequentially-only or shedding
};
[[nodiscard]] const char* to_string(HealthState h);

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
[[nodiscard]] const char* to_string(BreakerState s);

/// What an OPEN breaker does with admitted batches.
enum class OpenPolicy : int {
  kSequential = 0,  ///< serve on the calling thread (slow but correct)
  kShed = 1,        ///< refuse with kUnavailable
};

struct FrontendOptions {
  /// Admitted batches allowed in flight at once; the (max_inflight+1)-th
  /// concurrent batch is shed with kResourceExhausted.
  std::size_t max_inflight = 4;
  /// Extra attempts after the first for a degraded batch (0 = no retry).
  std::size_t max_retries = 2;
  /// Backoff before attempt k (k >= 1): min(cap, base * 2^(k-1)) scaled
  /// by a deterministic jitter factor in [0.5, 1).
  std::chrono::nanoseconds backoff_base{std::chrono::milliseconds(1)};
  std::chrono::nanoseconds backoff_cap{std::chrono::milliseconds(50)};
  /// Jitter stream seed: the factor for (batch_seq, attempt) is a pure
  /// function of this, so a replayed run reproduces the exact schedule.
  std::uint64_t jitter_seed = 1;
  /// Consecutive finally-degraded batches that trip the breaker.
  std::size_t breaker_threshold = 3;
  /// How long the breaker stays OPEN before the HALF_OPEN probe.
  std::chrono::nanoseconds breaker_open_for{std::chrono::milliseconds(100)};
  OpenPolicy open_policy = OpenPolicy::kSequential;
  /// Default per-batch engine knobs (deadline, shard size); callers can
  /// override per batch.
  BatchOptions batch;
  /// Tests set false to record backoffs without actually sleeping.
  bool sleep_on_backoff = true;
};

struct FrontendStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;            ///< passed admission + breaker
  std::uint64_t shed = 0;                ///< kResourceExhausted (admission)
  std::uint64_t shed_breaker = 0;        ///< kUnavailable (breaker OPEN)
  std::uint64_t completed = 0;
  std::uint64_t degraded_batches = 0;    ///< final attempt degraded
  std::uint64_t degraded_deadline = 0;   ///< ... by deadline expiry (subset)
  std::uint64_t retries = 0;             ///< attempts beyond the first
  std::uint64_t breaker_trips = 0;       ///< CLOSED -> OPEN transitions
  std::uint64_t breaker_probes = 0;      ///< HALF_OPEN probes dispatched
  std::uint64_t sequential_batches = 0;  ///< served under OPEN/kSequential
  std::uint64_t consecutive_degraded = 0;
  BreakerState breaker = BreakerState::kClosed;
  HealthState health = HealthState::kHealthy;
};

/// Deterministic fault injection for the chaos harness: called once per
/// work item (query group for paths, query for points) before the real
/// work, on whatever thread executes the item.  May throw to simulate a
/// poisoned worker — at most once per batch, because the engine's
/// sequential rerun executes items outside its worker try/catch.
struct ChaosHooks {
  std::function<void(std::uint64_t batch_seq, std::size_t item)> on_item;
};

/// The backoff before attempt `attempt` (>= 1) of batch `batch_seq` —
/// exposed as a pure function so tests can assert the schedule.
[[nodiscard]] std::chrono::nanoseconds backoff_for(const FrontendOptions& o,
                                                   std::uint64_t batch_seq,
                                                   std::uint32_t attempt);

class Frontend {
 public:
  /// The registry and engine must outlive the frontend.  A one-thread
  /// sequential engine for OPEN-state serving is owned internally.
  Frontend(snapshot::Registry& registry, QueryEngine& engine,
           FrontendOptions opts = {});

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Serve one explicit-path batch through admission -> breaker ->
  /// retry loop.  On kOk, `out` holds every answer and `report` (if
  /// given) the final engine report plus the full attempt trail;
  /// `served_version` receives the registry version of the *final*
  /// attempt.  Shed batches return kResourceExhausted (admission) or
  /// kUnavailable (breaker) without touching `out`.
  [[nodiscard]] coop::Status serve_paths(
      std::span<const PathQuery> queries, std::vector<PathAnswer>& out,
      BatchReport* report = nullptr, std::uint64_t* served_version = nullptr,
      const BatchOptions* batch_override = nullptr,
      const ChaosHooks* chaos = nullptr);

  /// Point-location twin.
  [[nodiscard]] coop::Status serve_points(
      std::span<const geom::Point> points, std::vector<std::size_t>& out,
      BatchReport* report = nullptr, std::uint64_t* served_version = nullptr,
      const BatchOptions* batch_override = nullptr,
      const ChaosHooks* chaos = nullptr);

  [[nodiscard]] FrontendStats stats() const;
  [[nodiscard]] HealthState health() const;
  [[nodiscard]] BreakerState breaker_state() const;
  [[nodiscard]] const FrontendOptions& options() const { return opts_; }

 private:
  /// How the breaker told this batch to run.
  enum class Mode { kParallel, kSequentialOnly, kProbe, kShed };

  /// Runs one attempt against a pinned snapshot; must fill `out`
  /// completely (it handles its own inline-exception rerun).
  using AttemptFn = std::function<BatchReport(
      QueryEngine& engine, const snapshot::Snapshot& snap,
      const BatchOptions& opts, std::uint64_t batch_seq)>;

  [[nodiscard]] coop::Status run_admitted(snapshot::SnapshotKind need,
                                          const BatchOptions* batch_override,
                                          BatchReport* report,
                                          std::uint64_t* served_version,
                                          const AttemptFn& attempt);
  Mode breaker_admit(std::uint64_t seq);
  void breaker_on_result(Mode mode, bool degraded, std::uint64_t seq);
  /// Publish breaker/health gauges and the transition trace event after a
  /// state change.  Caller holds mu_.
  void note_breaker_locked(std::uint64_t seq);
  [[nodiscard]] HealthState health_locked() const;

  snapshot::Registry& registry_;
  QueryEngine& engine_;
  QueryEngine seq_engine_{1};  ///< inline engine for OPEN-state serving
  const FrontendOptions opts_;

  std::atomic<std::uint64_t> batch_seq_{0};
  std::atomic<std::size_t> inflight_{0};

  mutable std::mutex mu_;  ///< breaker state + stats
  BreakerState state_ = BreakerState::kClosed;
  std::chrono::steady_clock::time_point open_until_{};
  bool probe_inflight_ = false;
  FrontendStats stats_;
};

}  // namespace serve
