#pragma once

#include <memory>
#include <vector>

#include "core/structure.hpp"
#include "fc/build.hpp"
#include "fc/search.hpp"
#include "geom/subdivision.hpp"
#include "robust/status.hpp"

namespace pointloc {

/// The bridged separator tree of Lee–Preparata / Edelsbrunner–Guibas–
/// Stolfi, built over a monotone subdivision, with fractional cascading
/// bridges (paper Section 3.1).
///
/// Internal layout: regions are padded to a power of two f'; the tree is
/// the complete BST over separator indices 1..f'-1 (heap ids).  Each edge
/// is stored once, at the tree node that is the least common ancestor of
/// the separators containing it; the node's catalog is keyed by the edge's
/// upper-endpoint y.
class SeparatorTree {
 public:
  explicit SeparatorTree(const geom::MonotoneSubdivision& sub);

  /// Fallible construction for untrusted subdivisions: runs the full
  /// structural validation (coverage, separator order, coordinate bounds)
  /// and returns a Status instead of building a corrupt structure.  `sub`
  /// must outlive the returned tree.
  static coop::Expected<SeparatorTree> build_checked(
      const geom::MonotoneSubdivision& sub);

  SeparatorTree(const SeparatorTree&) = delete;
  SeparatorTree& operator=(const SeparatorTree&) = delete;
  SeparatorTree(SeparatorTree&&) = default;

  [[nodiscard]] const geom::MonotoneSubdivision& subdivision() const {
    return *sub_;
  }
  [[nodiscard]] const cat::Tree& tree() const { return *tree_; }
  [[nodiscard]] const fc::Structure& cascade() const { return *fc_; }
  [[nodiscard]] const coop::CoopStructure& coop_structure() const {
    return *coop_;
  }

  /// Separator index (1-based) represented by tree node v.
  [[nodiscard]] std::int32_t separator_of(cat::NodeId v) const {
    return sep_of_node_[v];
  }
  /// Tree node representing separator index m.
  [[nodiscard]] cat::NodeId node_of(std::int32_t m) const {
    return node_of_sep_[m];
  }

  /// Resolve the catalog entry find(q.y, v) to the edge it represents,
  /// or nullptr when the entry is a gap (inactive node).
  [[nodiscard]] const geom::SubEdge* active_edge(cat::NodeId v,
                                                 std::size_t proper_index,
                                                 geom::Coord qy) const;

  /// Sequential point location: O(log n) via the cascading bridges.
  /// Returns the region index containing q.
  [[nodiscard]] std::size_t locate(const geom::Point& q,
                                   fc::SearchStats* stats = nullptr) const;

  /// Baseline without bridges: O(log^2 n) with a binary search per node.
  [[nodiscard]] std::size_t locate_no_bridges(const geom::Point& q,
                                              fc::SearchStats* stats =
                                                  nullptr) const;

  /// Precompute the per-gap branch directions of the paper's *sequential*
  /// data structure (Section 3.1: "the branch function for an inactive
  /// node sigma_j can be stored in every gap of sigma_j").
  ///
  /// REPRODUCTION FINDING (see EXPERIMENTS.md): the paper's single
  /// per-gap direction is not well defined when one gap run of sigma_j
  /// contains covering edges proper at ancestors on *both sides* of j
  /// (e.g. ranges {j-1, j} and {j, j+1} meeting inside the gap); the
  /// correct direction then depends on the query level within the gap.
  /// We therefore store a small list of (level, direction) breakpoints
  /// per gap — one entry per covering edge, i.e. the uncompressed chain
  /// incidence size, which is exactly the storage that proper-edge
  /// compression avoids.  Our fuzzer found the miscompiled variant within
  /// ten seeds; the running-max rule used by locate() needs no per-gap
  /// storage at all and is the recommended form.
  void precompute_gap_branches();

  /// The paper's sequential query (corrected as described above): at an
  /// inactive node the branch is read from the stored gap breakpoints.
  /// Requires precompute_gap_branches(); agrees with locate() on every
  /// query (tested).
  [[nodiscard]] std::size_t locate_with_gaps(const geom::Point& q,
                                             fc::SearchStats* stats =
                                                 nullptr) const;

  [[nodiscard]] bool has_gap_branches() const { return !gap_branch_.empty(); }

  /// Space accounting (entries in catalogs + cascading + skeletons).
  [[nodiscard]] std::size_t total_entries() const {
    return coop_->total_entries();
  }

 private:
  friend struct ::robust::StructureAccess;

  /// Shared branch logic: given the catalog entry at node v, decide the
  /// branch (0 left / 1 right) and maintain the running max(e_L) state.
  [[nodiscard]] std::uint32_t branch_at(cat::NodeId v,
                                        std::size_t proper_index,
                                        const geom::Point& q,
                                        std::int32_t& max_el) const;

  const geom::MonotoneSubdivision* sub_;
  std::unique_ptr<cat::Tree> tree_;
  std::unique_ptr<fc::Structure> fc_;
  std::unique_ptr<coop::CoopStructure> coop_;
  std::vector<std::int32_t> sep_of_node_;
  std::vector<cat::NodeId> node_of_sep_;
  std::uint32_t tree_height_ = 0;  ///< levels: separators tree height

  /// gap_branch_[v][i]: (level, direction) breakpoints for queries whose
  /// find(q.y) at node v is catalog entry i but whose level falls in the
  /// gap *below* entry i's edge (or below +inf for the sentinel entry);
  /// the direction at level y is the one of the last breakpoint <= y.
  /// Empty until precompute_gap_branches().
  using GapBreakpoints = std::vector<std::pair<geom::Coord, std::uint8_t>>;
  std::vector<std::vector<GapBreakpoints>> gap_branch_;
};

}  // namespace pointloc
