#pragma once

#include "pointloc/separator_tree.hpp"
#include "pram/machine.hpp"

namespace pointloc {

/// Theorem 4: cooperative point location with the processors of `m` in
/// O((log n)/log p) CREW steps.
///
/// The search is the generalized implicit cooperative search of Section
/// 2.3 with the point-location hop of Section 3.1: per hop, every node of
/// the current block computes find(q.y, sigma); active nodes (whose entry
/// is a proper edge spanning q.y) discriminate q geometrically; the
/// running maximum of max(e) over right-active edges plays the role of
/// max(e_L(q)), and inactive nodes branch right iff their separator index
/// is <= that maximum.
///
/// Correctness of the inactive rule (the paper's steps 3-5, stated as an
/// invariant): an inactive sigma_m lies left of q iff m <= maxEL, where
/// maxEL accumulates max(e) over every right-active edge seen so far.
///   (<=) a < m <= max(e_a) for a right-active a implies m is in e_a's
///        separator range, so sigma_m passes through e_a and q is right
///        of it.
///   (=>) if q is right of sigma_m, the edge e' of sigma_m at level q.y
///        is proper at a BST ancestor of m; every such ancestor is in the
///        current or an earlier block, where e' was active and
///        right-branching, so max(e') >= m was accumulated.
///
/// Returns the region index containing q; `hops` (optional) receives the
/// number of block hops performed.
[[nodiscard]] std::size_t coop_locate(const SeparatorTree& st,
                                      pram::Machine& m, const geom::Point& q,
                                      std::uint64_t* hops = nullptr);

/// Batch point location: Q independent queries share the p processors of
/// `m` (groups of max(1, p/Q) processors each, charged per-round maxima —
/// the Theorem 2 grouping applied to point location).
[[nodiscard]] std::vector<std::size_t> coop_locate_batch(
    const SeparatorTree& st, pram::Machine& m,
    std::span<const geom::Point> queries, std::size_t procs_per_query = 0);

}  // namespace pointloc
