#include "pointloc/slab_index.hpp"

#include <algorithm>
#include <cassert>

namespace pointloc {

SlabIndex::SlabIndex(const geom::MonotoneSubdivision& sub) : sub_(&sub) {
  levels_.push_back(sub.ymin);
  levels_.push_back(sub.ymax);
  for (const auto& e : sub.edges) {
    levels_.push_back(e.lo.y);
    levels_.push_back(e.hi.y);
  }
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());

  slabs_.assign(levels_.size() - 1, {});
  for (std::uint32_t ei = 0; ei < sub.edges.size(); ++ei) {
    const auto& e = sub.edges[ei];
    // The edge crosses every slab between its endpoint levels.
    const std::size_t first = static_cast<std::size_t>(
        std::lower_bound(levels_.begin(), levels_.end(), e.lo.y) -
        levels_.begin());
    const std::size_t last = static_cast<std::size_t>(
        std::lower_bound(levels_.begin(), levels_.end(), e.hi.y) -
        levels_.begin());
    for (std::size_t s = first; s < last; ++s) {
      slabs_[s].push_back(ei);
      ++crossings_;
    }
  }
  // Sort each slab's edges left to right (separator order == geometric
  // order inside a slab, and it is cheap and robust to sort by min_sep).
  for (auto& slab : slabs_) {
    std::sort(slab.begin(), slab.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return sub.edges[a].min_sep < sub.edges[b].min_sep;
              });
  }
}

std::size_t SlabIndex::locate(const geom::Point& q) const {
  if (slabs_.empty()) {
    return 0;
  }
  // Slab containing q.y: levels_[s] <= q.y < levels_[s+1].
  const std::size_t s = static_cast<std::size_t>(
      std::upper_bound(levels_.begin(), levels_.end(), q.y) -
      levels_.begin());
  if (s == 0 || s >= levels_.size()) {
    return 0;  // outside the strip
  }
  const auto& slab = slabs_[s - 1];
  // Rightmost edge strictly left of q (binary search on the orientation
  // predicate; edges in one slab are totally ordered).
  std::size_t lo = 0, hi = slab.size();  // first edge not left of q
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (sub_->edges[slab[mid]].side(q) < 0) {  // q strictly right of edge
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return 0;
  }
  return static_cast<std::size_t>(sub_->edges[slab[lo - 1]].max_sep);
}

}  // namespace pointloc
