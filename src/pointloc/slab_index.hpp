#pragma once

#include <vector>

#include "geom/subdivision.hpp"

namespace pointloc {

/// The classical slab-decomposition point-location baseline (Dobkin–
/// Lipton style): cut the subdivision at every distinct vertex level,
/// store the edges crossing each slab sorted left-to-right, and answer a
/// query with two binary searches (slab by y, then edge by x).
///
/// Query O(log n); space O(sum of slab crossings) — O(n^2) in the worst
/// case, which is exactly why the separator tree (O(n) space, same query
/// time) wins.  Used as a comparison point in the E7 bench and as an
/// independent oracle in tests.
class SlabIndex {
 public:
  explicit SlabIndex(const geom::MonotoneSubdivision& sub);

  [[nodiscard]] std::size_t locate(const geom::Point& q) const;

  /// Total stored edge references (the space cost).
  [[nodiscard]] std::size_t total_crossings() const { return crossings_; }
  [[nodiscard]] std::size_t num_slabs() const {
    return levels_.empty() ? 0 : levels_.size() - 1;
  }

 private:
  const geom::MonotoneSubdivision* sub_;
  std::vector<geom::Coord> levels_;               ///< distinct y levels
  std::vector<std::vector<std::uint32_t>> slabs_; ///< edge ids, sorted l-to-r
  std::size_t crossings_ = 0;
};

}  // namespace pointloc
