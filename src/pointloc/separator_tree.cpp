#include "pointloc/separator_tree.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pointloc {

namespace {

/// LCA of the separator-index interval [lo, hi] in the complete BST: the
/// index in the interval divisible by the largest power of two.
std::int32_t interval_lca(std::int32_t lo, std::int32_t hi) {
  assert(lo <= hi && lo >= 1);
  for (std::int32_t bit = 30; bit >= 0; --bit) {
    const std::int32_t step = std::int32_t(1) << bit;
    const std::int32_t m = ((lo + step - 1) / step) * step;
    if (m <= hi) {
      return m;
    }
  }
  return lo;
}

}  // namespace

SeparatorTree::SeparatorTree(const geom::MonotoneSubdivision& sub)
    : sub_(&sub) {
  // Pad the region count to a power of two; separators 1..f'-1.
  const std::size_t f = std::max<std::size_t>(2, sub.num_regions);
  const std::size_t fp = std::bit_ceil(f);
  const std::size_t num_nodes = fp - 1;
  tree_height_ = static_cast<std::uint32_t>(std::bit_width(fp) - 1);

  tree_ = std::make_unique<cat::Tree>(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const std::size_t l = 2 * v + 1, r = 2 * v + 2;
    if (l < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(l));
    }
    if (r < num_nodes) {
      tree_->add_child(cat::NodeId(v), cat::NodeId(r));
    }
  }
  tree_->finalize();

  // Heap node (depth d, index-in-level i) <-> separator (2i+1) * 2^(H-1-d).
  sep_of_node_.assign(num_nodes, 0);
  node_of_sep_.assign(fp, cat::kNullNode);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    const std::uint32_t d = tree_->depth(cat::NodeId(v));
    const std::size_t first_of_level = (std::size_t(1) << d) - 1;
    const std::size_t idx = v - first_of_level;
    const std::int32_t sep = std::int32_t(
        (2 * idx + 1) * (std::size_t(1) << (tree_height_ - 1 - d)));
    sep_of_node_[v] = sep;
    node_of_sep_[sep] = cat::NodeId(v);
  }

  // Assign each edge to the LCA separator of its range and build catalogs
  // keyed by the upper endpoint's y, payload = edge index.
  std::vector<std::vector<std::size_t>> assigned(num_nodes);
  for (std::size_t ei = 0; ei < sub.edges.size(); ++ei) {
    const auto& e = sub.edges[ei];
    const std::int32_t m = interval_lca(e.min_sep, e.max_sep);
    assigned[node_of_sep_[m]].push_back(ei);
  }
  for (std::size_t v = 0; v < num_nodes; ++v) {
    auto& list = assigned[v];
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return sub.edges[a].hi.y < sub.edges[b].hi.y;
    });
    std::vector<cat::Key> keys;
    std::vector<std::uint64_t> payloads;
    keys.reserve(list.size());
    payloads.reserve(list.size());
    for (std::size_t ei : list) {
      keys.push_back(sub.edges[ei].hi.y);
      payloads.push_back(ei);
    }
    tree_->set_catalog(cat::NodeId(v), cat::Catalog::from_sorted(keys, payloads));
  }

  fc_ = std::make_unique<fc::Structure>(fc::Structure::build(*tree_));
  coop_ =
      std::make_unique<coop::CoopStructure>(coop::CoopStructure::build(*fc_));
}

coop::Expected<SeparatorTree> SeparatorTree::build_checked(
    const geom::MonotoneSubdivision& sub) {
  const std::string err = sub.validate();
  if (!err.empty()) {
    return coop::Status::invalid_argument("invalid subdivision: " + err);
  }
  return SeparatorTree(sub);
}

const geom::SubEdge* SeparatorTree::active_edge(cat::NodeId v,
                                                std::size_t proper_index,
                                                geom::Coord qy) const {
  const auto& c = tree_->catalog(v);
  const std::uint64_t payload = c.payload(proper_index);
  if (payload == cat::Catalog::kNoPayload) {
    return nullptr;  // the +inf sentinel: gap above all proper edges
  }
  const geom::SubEdge& e = sub_->edges[payload];
  // find(qy) guarantees qy <= e.hi.y; the node is active iff the edge's
  // span actually contains qy.
  return e.lo.y < qy ? &e : nullptr;
}

std::uint32_t SeparatorTree::branch_at(cat::NodeId v,
                                       std::size_t proper_index,
                                       const geom::Point& q,
                                       std::int32_t& max_el) const {
  const geom::SubEdge* e = active_edge(v, proper_index, q.y);
  if (e != nullptr) {
    if (e->side(q) > 0) {
      return 0;  // q strictly left of the separator chain
    }
    max_el = std::max(max_el, e->max_sep);
    return 1;
  }
  // Inactive: q is right of sigma_m iff m <= max(e_L) (paper step 5; see
  // coop_pointloc.cpp for the correctness argument).
  return separator_of(v) <= max_el ? 1u : 0u;
}

std::size_t SeparatorTree::locate(const geom::Point& q,
                                  fc::SearchStats* stats) const {
  std::int32_t max_el = 0;
  std::uint32_t last_branch = 0;
  const fc::BranchFn branch = [&](cat::NodeId v,
                                  std::size_t proper_index) -> std::uint32_t {
    last_branch = branch_at(v, proper_index, q, max_el);
    return last_branch;
  };
  const auto r = fc::search_implicit(*fc_, q.y, branch, stats);
  // The implicit search stops at a leaf without calling branch there.
  const cat::NodeId leaf = r.path.back();
  last_branch = branch_at(leaf, r.proper_index.back(), q, max_el);
  const std::int32_t m = separator_of(leaf);
  return static_cast<std::size_t>(last_branch == 1 ? m : m - 1);
}

void SeparatorTree::precompute_gap_branches() {
  const std::size_t num_nodes = tree_->num_nodes();
  gap_branch_.assign(num_nodes, {});
  for (std::size_t vi = 0; vi < num_nodes; ++vi) {
    const cat::NodeId v = cat::NodeId(vi);
    const auto& c = tree_->catalog(v);
    const std::int32_t m = sep_of_node_[vi];
    auto& out = gap_branch_[vi];
    out.assign(c.size(), {});
    if (m > std::int32_t(sub_->num_separators())) {
      // Padded separator (at x = +infinity): every query is left of it.
      for (auto& bps : out) {
        bps.emplace_back(sub_->ymin, std::uint8_t(0));
      }
      continue;
    }
    for (std::size_t i = 0; i < c.size(); ++i) {
      // The gap below entry i spans (hi.y of entry i-1, lo.y of entry i),
      // with the strip boundaries at the ends and the +inf sentinel
      // covering everything above the last proper edge.
      const geom::Coord gap_lo =
          (i == 0) ? sub_->ymin
                   : sub_->edges[c.payload(i - 1)].hi.y;
      const geom::Coord gap_hi =
          (c.payload(i) == cat::Catalog::kNoPayload)
              ? sub_->ymax
              : sub_->edges[c.payload(i)].lo.y;
      if (gap_lo >= gap_hi) {
        continue;  // chains touch: no queryable gap here
      }
      // Collect every covering edge of the full separator sigma_m inside
      // the gap's interval (each is proper at a strict ancestor); the
      // branch at level y is left iff m < owner(e'(y)).  See the finding
      // documented in the header: a single per-gap direction does not
      // exist in general.
      GapBreakpoints& bps = out[i];
      for (cat::NodeId a = tree_->parent(v); a != cat::kNullNode;
           a = tree_->parent(a)) {
        const auto& ca = tree_->catalog(a);
        const std::uint8_t dir = (m < sep_of_node_[a]) ? 0 : 1;
        for (std::size_t j = ca.find(gap_lo + 1); j < ca.real_size(); ++j) {
          const auto& e = sub_->edges[ca.payload(j)];
          if (e.lo.y >= gap_hi) {
            break;
          }
          if (e.min_sep <= m && m <= e.max_sep) {
            bps.emplace_back(std::max(e.lo.y, gap_lo), dir);
          }
        }
      }
      std::sort(bps.begin(), bps.end());
    }
  }
}

std::size_t SeparatorTree::locate_with_gaps(const geom::Point& q,
                                            fc::SearchStats* stats) const {
  assert(has_gap_branches() &&
         "call precompute_gap_branches() before locate_with_gaps()");
  std::uint32_t last_branch = 0;
  const fc::BranchFn branch = [&](cat::NodeId v,
                                  std::size_t proper_index) -> std::uint32_t {
    const geom::SubEdge* e = active_edge(v, proper_index, q.y);
    if (e != nullptr) {
      last_branch = (e->side(q) > 0) ? 0u : 1u;
    } else {
      const GapBreakpoints& bps =
          gap_branch_[static_cast<std::size_t>(v)][proper_index];
      // Direction of the last breakpoint at or below q.y.
      const auto it = std::upper_bound(
          bps.begin(), bps.end(), std::make_pair(q.y, std::uint8_t(255)));
      assert(it != bps.begin() && "query level below every gap breakpoint");
      last_branch = std::prev(it)->second;
    }
    return last_branch;
  };
  const auto r = fc::search_implicit(*fc_, q.y, branch, stats);
  const cat::NodeId leaf = r.path.back();
  last_branch = branch(leaf, r.proper_index.back());
  const std::int32_t m = separator_of(leaf);
  return static_cast<std::size_t>(last_branch == 1 ? m : m - 1);
}

std::size_t SeparatorTree::locate_no_bridges(const geom::Point& q,
                                             fc::SearchStats* stats) const {
  std::int32_t max_el = 0;
  cat::NodeId v = tree_->root();
  std::uint32_t b = 0;
  for (;;) {
    const auto& c = tree_->catalog(v);
    if (stats != nullptr) {
      std::size_t n = c.size();
      while (n > 0) {
        ++stats->comparisons;
        n /= 2;
      }
      ++stats->nodes_visited;
    }
    b = branch_at(v, c.find(q.y), q, max_el);
    if (tree_->is_leaf(v)) {
      break;
    }
    v = tree_->children(v)[b];
  }
  const std::int32_t m = separator_of(v);
  return static_cast<std::size_t>(b == 1 ? m : m - 1);
}

}  // namespace pointloc
