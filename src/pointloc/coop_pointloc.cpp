#include "pointloc/coop_pointloc.hpp"

#include <algorithm>

#include "core/implicit_search.hpp"
#include "pram/memory.hpp"
#include "pram/primitives.hpp"

namespace pointloc {

std::size_t coop_locate_impl(const SeparatorTree& st, pram::Machine& m,
                             const geom::Point& q, std::uint64_t* hops) {
  std::int32_t max_el = 0;

  const coop::HopResolver resolver = [&st, &q, &max_el](
                                         pram::Machine& mm,
                                         const coop::HopView& view,
                                         std::span<std::uint8_t> out) {
    const std::size_t nn = view.block->nodes.size();
    // Pass 1: geometric discrimination at active nodes; candidates for the
    // new max(e_L).
    pram::SharedArray<std::int32_t> right_max(nn, 0);
    pram::SharedArray<std::int8_t> state(nn, 0);  // 0 inactive, 1 L, 2 R
    mm.exec(nn, [&](std::size_t z) {
      const cat::NodeId v = view.block->nodes[z];
      const geom::SubEdge* e = st.active_edge(v, view.proper(z), q.y);
      if (e == nullptr) {
        return;
      }
      if (e->side(q) > 0) {
        state.write(z, 2);  // q left of the chain
      } else {
        state.write(z, 1);
        right_max.write(z, e->max_sep);
      }
    });
    // Max-reduction over the right-active edges (paper steps 3-4: this is
    // the new L / e_L pair), charged as a log-depth reduction.
    mm.charge(pram::ceil_log2(std::max<std::size_t>(2, nn)), nn);
    for (std::size_t z = 0; z < nn; ++z) {
      max_el = std::max(max_el, right_max[z]);
    }
    // Pass 2: branch values (paper step 5 for inactive nodes).
    mm.exec(nn, [&](std::size_t z) {
      if (state.read(z) == 1) {
        out[z] = 1;
      } else if (state.read(z) == 2) {
        out[z] = 0;
      } else {
        out[z] = st.separator_of(view.block->nodes[z]) <= max_el ? 1 : 0;
      }
    });
  };

  std::uint32_t last_branch = 0;
  const fc::BranchFn seq_branch = [&st, &q, &max_el, &last_branch](
                                      cat::NodeId v,
                                      std::size_t proper_index) {
    const geom::SubEdge* e = st.active_edge(v, proper_index, q.y);
    if (e != nullptr) {
      if (e->side(q) > 0) {
        last_branch = 0;
      } else {
        max_el = std::max(max_el, e->max_sep);
        last_branch = 1;
      }
    } else {
      last_branch = st.separator_of(v) <= max_el ? 1u : 0u;
    }
    return last_branch;
  };

  const auto r = coop::coop_search_implicit_custom(st.coop_structure(), m,
                                                   q.y, resolver, seq_branch);
  if (hops != nullptr) {
    *hops = r.hops;
  }
  // Decide at the leaf (the implicit search does not call branch there).
  const cat::NodeId leaf = r.path.back();
  const std::uint32_t b = seq_branch(leaf, r.proper_index.back());
  const std::int32_t sep = st.separator_of(leaf);
  return static_cast<std::size_t>(b == 1 ? sep : sep - 1);
}

std::size_t coop_locate(const SeparatorTree& st, pram::Machine& m,
                        const geom::Point& q, std::uint64_t* hops) {
  return coop_locate_impl(st, m, q, hops);
}

std::vector<std::size_t> coop_locate_batch(const SeparatorTree& st,
                                           pram::Machine& m,
                                           std::span<const geom::Point> queries,
                                           std::size_t procs_per_query) {
  std::vector<std::size_t> out(queries.size());
  if (queries.empty()) {
    return out;
  }
  const std::size_t p = m.processors();
  if (procs_per_query == 0) {
    procs_per_query = std::max<std::size_t>(1, p / queries.size());
  }
  const std::size_t group = std::max<std::size_t>(1, p / procs_per_query);
  for (std::size_t first = 0; first < queries.size(); first += group) {
    const std::size_t last = std::min(queries.size(), first + group);
    std::uint64_t max_steps = 0, total_work = 0;
    for (std::size_t qi = first; qi < last; ++qi) {
      pram::Machine sub(procs_per_query, m.model());
      out[qi] = coop_locate_impl(st, sub, queries[qi], nullptr);
      max_steps = std::max(max_steps, sub.stats().steps);
      total_work += sub.stats().work;
    }
    m.charge(max_steps, total_work);
  }
  return out;
}

}  // namespace pointloc
