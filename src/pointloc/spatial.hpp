#pragma once

#include <memory>
#include <vector>

#include "geom/generators.hpp"
#include "pointloc/coop_pointloc.hpp"
#include "pointloc/separator_tree.hpp"

namespace pointloc {

/// Theorem 5: spatial point location in an acyclic cell complex via a
/// balanced tree of separating surfaces, each internal node discriminating
/// the query against its surface by planar point location.
///
/// Built for the stacked-terrain complexes of geom::TerrainComplex (the
/// DESIGN.md stand-in for Voronoi complexes, Corollary 1): cell c_j sits
/// between surfaces j and j+1, the separating surface chi_j IS surface j,
/// and the topological order is the stacking order.  Because the terrains
/// share one xy-footprint, the per-node planar subdivisions S_j coincide
/// combinatorially; the planar point-location structure is therefore built
/// once and shared by all nodes — each node still runs its own planar
/// query plus a z-discrimination against its own surface, so the nested
/// search of Theorem 5 is fully exercised.
class SpatialTree {
 public:
  explicit SpatialTree(const geom::TerrainComplex& complex);

  SpatialTree(const SpatialTree&) = delete;
  SpatialTree& operator=(const SpatialTree&) = delete;
  SpatialTree(SpatialTree&&) = default;

  [[nodiscard]] const geom::TerrainComplex& complex() const { return *c_; }
  [[nodiscard]] const SeparatorTree& planar() const { return *planar_; }

  /// Sequential spatial location: O(log S * log n) = O(log^2 n).
  /// Returns the cell index containing q.
  [[nodiscard]] std::size_t locate(const geom::Point3& q) const;

  /// Cooperative spatial location, O((log^2 n)/log^2 p) CREW steps:
  /// outer hops over the surface tree, each node of a hop running a
  /// cooperative planar query with its share of the processors.
  [[nodiscard]] std::size_t coop_locate(pram::Machine& m,
                                        const geom::Point3& q,
                                        std::uint64_t* outer_hops = nullptr)
      const;

 private:
  /// q above surface s (1-based)?  Padded surfaces are at z = +infinity.
  [[nodiscard]] bool above(std::size_t s, std::size_t region,
                           geom::Coord qz) const;

  const geom::TerrainComplex* c_;
  std::unique_ptr<SeparatorTree> planar_;
  std::size_t padded_ = 0;  ///< surfaces padded to power of two
};

}  // namespace pointloc
