#pragma once

#include <random>
#include <vector>

#include "geom/subdivision.hpp"

namespace geom {

/// Generate a random monotone subdivision of a horizontal strip with
/// `regions` regions and `bands` horizontal bands.
///
/// The subdivision is built from `regions - 1` non-crossing y-monotone
/// separator chains spanning the strip.  At each band boundary the chains
/// cluster into coincident groups, so chains share edges — exactly the
/// situation that makes proper-edge storage (and the active/inactive node
/// distinction of Section 3) nontrivial.  All vertex coordinates are even;
/// query generators use odd coordinates, so queries never hit vertices or
/// band boundaries.
[[nodiscard]] MonotoneSubdivision make_random_monotone(std::size_t regions,
                                                       std::size_t bands,
                                                       std::mt19937_64& rng);

/// A regular-grid subdivision: `regions` vertical slab chains that never
/// merge (every node of the separator tree is active at every level).
/// Useful as the easy baseline case.
[[nodiscard]] MonotoneSubdivision make_slabs(std::size_t regions,
                                             std::size_t bands);

/// A "jagged" subdivision: every chain has its own independent vertex
/// levels (roughly `avg_vertices` each), so catalog keys are diverse and
/// no two chains share edges.  Complements make_random_monotone (shared
/// band levels, heavy edge sharing) in the fuzz mix.
[[nodiscard]] MonotoneSubdivision make_jagged(std::size_t regions,
                                              std::size_t avg_vertices,
                                              std::mt19937_64& rng);

/// Draw a query point strictly inside the strip, away from every vertex
/// level and off every edge.
[[nodiscard]] Point random_query_point(const MonotoneSubdivision& s,
                                       std::mt19937_64& rng);

/// A 3D cell complex made of `surfaces` stacked perturbed terrains over a
/// shared monotone triangulation-like xy-footprint (Theorem 5 workload;
/// see DESIGN.md substitution table — stands in for Voronoi complexes).
/// Cells are the slabs between consecutive surfaces; the vertical
/// dominance order is the stacking order, so the complex is acyclic and
/// topologically sorted by construction.
struct TerrainComplex {
  /// facets[s] — the monotone subdivision footprint of surface s (shared
  /// combinatorics, per-surface z heights at each footprint region).
  std::size_t num_surfaces = 0;
  std::size_t footprint_regions = 0;
  MonotoneSubdivision footprint;
  /// z[s][r]: height of surface s over footprint region r.  Heights are
  /// strictly increasing in s for every fixed r.
  std::vector<std::vector<Coord>> z;

  [[nodiscard]] std::size_t num_cells() const { return num_surfaces + 1; }
  /// Total facet count (the paper's n): one facet per surface per region.
  [[nodiscard]] std::size_t num_facets() const {
    return num_surfaces * footprint_regions;
  }

  /// Brute-force spatial location: the cell containing q (0 = below all
  /// surfaces, num_surfaces = above all).
  [[nodiscard]] std::size_t locate_brute(const Point3& q) const;
};

[[nodiscard]] TerrainComplex make_terrain_complex(std::size_t surfaces,
                                                  std::size_t regions,
                                                  std::size_t bands,
                                                  std::mt19937_64& rng);

/// Query point for a terrain complex (off all facets and edges).
[[nodiscard]] Point3 random_query_point3(const TerrainComplex& c,
                                         std::mt19937_64& rng);

}  // namespace geom
