#include "geom/generators.hpp"

#include <algorithm>
#include <cassert>

namespace geom {

namespace {
constexpr Coord kBandHeight = 1024;  // even; queries use odd offsets
constexpr Coord kXRange = 1 << 20;
}  // namespace

MonotoneSubdivision make_random_monotone(std::size_t regions,
                                         std::size_t bands,
                                         std::mt19937_64& rng) {
  assert(regions >= 1 && bands >= 1);
  MonotoneSubdivision s;
  s.num_regions = regions;
  s.ymin = 0;
  s.ymax = Coord(bands) * kBandHeight;
  const std::size_t chains = regions - 1;
  if (chains == 0) {
    return s;
  }

  // Per band boundary level t = 0..bands, each chain's x position.
  // Chains cluster: draw d_t distinct x values and a non-decreasing
  // assignment of chains to them.
  std::vector<std::vector<Coord>> x(bands + 1, std::vector<Coord>(chains));
  for (std::size_t t = 0; t <= bands; ++t) {
    const std::size_t d = 1 + rng() % chains;
    // Distinct even x values, sorted.
    std::vector<Coord> vals;
    vals.reserve(d);
    while (vals.size() < d) {
      const Coord v = 2 * Coord(rng() % kXRange);
      vals.push_back(v);
    }
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    // Non-decreasing cluster assignment.
    std::vector<std::size_t> cl(chains);
    for (auto& c : cl) {
      c = rng() % vals.size();
    }
    std::sort(cl.begin(), cl.end());
    for (std::size_t i = 0; i < chains; ++i) {
      x[t][i] = vals[cl[i]];
    }
  }

  // Emit one edge per maximal run of chains sharing both endpoints.
  for (std::size_t t = 0; t < bands; ++t) {
    const Coord ylo = Coord(t) * kBandHeight;
    const Coord yhi = Coord(t + 1) * kBandHeight;
    std::size_t i = 0;
    while (i < chains) {
      std::size_t j = i;
      while (j + 1 < chains && x[t][j + 1] == x[t][i] &&
             x[t + 1][j + 1] == x[t + 1][i]) {
        ++j;
      }
      SubEdge e;
      e.lo = Point{x[t][i], ylo};
      e.hi = Point{x[t + 1][i], yhi};
      e.min_sep = std::int32_t(i + 1);   // separators are 1-based
      e.max_sep = std::int32_t(j + 1);
      s.edges.push_back(e);
      i = j + 1;
    }
  }
  return s;
}

MonotoneSubdivision make_slabs(std::size_t regions, std::size_t bands) {
  MonotoneSubdivision s;
  s.num_regions = regions;
  s.ymin = 0;
  s.ymax = Coord(bands) * kBandHeight;
  for (std::size_t t = 0; t < bands; ++t) {
    const Coord ylo = Coord(t) * kBandHeight;
    const Coord yhi = Coord(t + 1) * kBandHeight;
    for (std::size_t i = 0; i + 1 < regions; ++i) {
      SubEdge e;
      e.lo = Point{Coord(2000 * (i + 1)), ylo};
      e.hi = Point{Coord(2000 * (i + 1)), yhi};
      e.min_sep = std::int32_t(i + 1);
      e.max_sep = std::int32_t(i + 1);
      s.edges.push_back(e);
    }
  }
  return s;
}

MonotoneSubdivision make_jagged(std::size_t regions,
                                std::size_t avg_vertices,
                                std::mt19937_64& rng) {
  assert(regions >= 1 && avg_vertices >= 1);
  MonotoneSubdivision s;
  s.num_regions = regions;
  s.ymin = 0;
  s.ymax = Coord(avg_vertices + 2) * kBandHeight;
  const std::size_t chains = regions - 1;
  // Chain i lives in its own x-corridor [i*G, i*G + G/2), so chains can
  // never touch regardless of their independent jitter.
  constexpr Coord kCorridor = 4096;
  for (std::size_t i = 0; i < chains; ++i) {
    // Random distinct even interior vertex levels for this chain.
    std::vector<Coord> levels{s.ymin};
    const std::size_t verts = 1 + rng() % (2 * avg_vertices);
    for (std::size_t t = 0; t < verts; ++t) {
      levels.push_back(2 * Coord(rng() % (std::size_t(s.ymax) / 2 - 1)) + 2);
    }
    levels.push_back(s.ymax);
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
    const Coord base = Coord(i) * kCorridor;
    std::vector<Coord> xs(levels.size());
    for (auto& x : xs) {
      x = base + 2 * Coord(rng() % (kCorridor / 4));
    }
    for (std::size_t t = 0; t + 1 < levels.size(); ++t) {
      SubEdge e;
      e.lo = Point{xs[t], levels[t]};
      e.hi = Point{xs[t + 1], levels[t + 1]};
      e.min_sep = std::int32_t(i + 1);
      e.max_sep = std::int32_t(i + 1);
      s.edges.push_back(e);
    }
  }
  return s;
}

Point random_query_point(const MonotoneSubdivision& s, std::mt19937_64& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Odd y (never a band boundary or vertex level), odd-ish x.
    const Coord qy =
        s.ymin + 1 + 2 * Coord(rng() % std::max<Coord>(1, (s.ymax - s.ymin) / 2));
    if (qy <= s.ymin || qy >= s.ymax) {
      continue;
    }
    const Coord qx = 2 * Coord(rng() % (2 * kXRange)) - kXRange + 1;
    const Point q{qx, qy};
    bool on_edge = false;
    for (const SubEdge& e : s.edges) {
      if (e.spans(qy) && e.side(q) == 0) {
        on_edge = true;
        break;
      }
    }
    if (!on_edge) {
      return q;
    }
  }
  return Point{1, s.ymin + 1};
}

std::size_t TerrainComplex::locate_brute(const Point3& q) const {
  const std::size_t r = footprint.locate_brute(Point{q.x, q.y});
  std::size_t cell = 0;
  for (std::size_t surf = 0; surf < num_surfaces; ++surf) {
    if (q.z > z[surf][r]) {
      cell = surf + 1;
    }
  }
  return cell;
}

TerrainComplex make_terrain_complex(std::size_t surfaces, std::size_t regions,
                                    std::size_t bands, std::mt19937_64& rng) {
  TerrainComplex c;
  c.num_surfaces = surfaces;
  c.footprint_regions = regions;
  c.footprint = make_random_monotone(regions, bands, rng);
  c.z.assign(surfaces, std::vector<Coord>(regions));
  // Strictly increasing heights per region: base stacking 1000 apart with
  // per-region perturbation < 500 (keeps the order strict).
  for (std::size_t surf = 0; surf < surfaces; ++surf) {
    for (std::size_t r = 0; r < regions; ++r) {
      c.z[surf][r] = Coord(surf + 1) * 1000 + Coord(rng() % 499) * 2;
    }
  }
  return c;
}

Point3 random_query_point3(const TerrainComplex& c, std::mt19937_64& rng) {
  const Point q2 = random_query_point(c.footprint, rng);
  // Odd z so it never equals a (even-perturbed) surface height.
  const Coord qz = 1 + 2 * Coord(rng() % (500 * (c.num_surfaces + 2)));
  return Point3{q2.x, q2.y, qz};
}

}  // namespace geom
