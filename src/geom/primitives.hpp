#pragma once

#include <cstdint>

namespace geom {

/// Integer coordinates so that all predicates are exact (evaluated in
/// 128-bit intermediates).  Generators keep coordinates well below 2^40,
/// far from overflow.
using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Sign of the cross product (b - a) x (c - a): > 0 if c lies to the left
/// of the directed line a->b, < 0 right, 0 collinear.
[[nodiscard]] inline int orientation(const Point& a, const Point& b,
                                     const Point& c) {
  const __int128 ux = b.x - a.x;
  const __int128 uy = b.y - a.y;
  const __int128 vx = c.x - a.x;
  const __int128 vy = c.y - a.y;
  const __int128 cross = ux * vy - uy * vx;
  return cross > 0 ? 1 : (cross < 0 ? -1 : 0);
}

struct Point3 {
  Coord x = 0;
  Coord y = 0;
  Coord z = 0;
};

}  // namespace geom
