#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/primitives.hpp"

namespace geom {

/// Coordinate magnitude bound for subdivisions: the exact predicates
/// (orientation, the crossing check in validate()) evaluate products of
/// three coordinate-sized factors in 128-bit intermediates, which is exact
/// only while |coord| <= 2^40.  Generators stay far below this; validate()
/// and the checked loaders reject anything outside.
inline constexpr std::int64_t kCoordLimit = std::int64_t{1} << 40;

/// One edge of a monotone subdivision, oriented upward (lo.y < hi.y).
///
/// An edge lies on the common boundary of the regions left and right of
/// it; following the paper's numbering, the regions are numbered 0..f-1
/// left-to-right and separator sigma_j (1 <= j <= f-1) is the boundary
/// between regions {0..j-1} and {j..f-1}.  Edge e belongs to separators
/// sigma_j for min_sep <= j <= max_sep, where min_sep = left_region + 1
/// and max_sep = right_region (the paper's min(e) / max(e)).
struct SubEdge {
  Point lo;
  Point hi;
  std::int32_t min_sep = 0;
  std::int32_t max_sep = 0;

  [[nodiscard]] std::int32_t left_region() const { return min_sep - 1; }
  [[nodiscard]] std::int32_t right_region() const { return max_sep; }

  /// True if the horizontal line y = qy crosses this edge's open vertical
  /// span (queries never hit endpoint levels by construction).
  [[nodiscard]] bool spans(Coord qy) const { return lo.y < qy && qy < hi.y; }

  /// +1 if q is strictly left of the edge, -1 strictly right.
  [[nodiscard]] int side(const Point& q) const {
    return orientation(lo, hi, q);
  }
};

/// A monotone planar subdivision of the horizontal strip
/// ymin <= y <= ymax, represented by its edges and region numbering.
/// Every separator sigma_j spans the full strip: at every interior level y
/// there is exactly one edge e with min_sep <= j <= max_sep covering y.
struct MonotoneSubdivision {
  std::size_t num_regions = 1;  ///< f
  std::vector<SubEdge> edges;
  Coord ymin = 0;
  Coord ymax = 0;

  [[nodiscard]] std::size_t num_separators() const { return num_regions - 1; }
  /// Total vertex budget: edges and regions are both O(n).
  [[nodiscard]] std::size_t size() const { return edges.size(); }

  /// Brute-force point location: the index of the region containing q
  /// (q must be strictly inside the strip and off all edges/vertex
  /// levels).  O(edges) — the test/bench oracle.
  [[nodiscard]] std::size_t locate_brute(const Point& q) const;

  /// Check the structural invariants: edge spans positive, separator
  /// ranges valid, every separator covered exactly once at every interior
  /// level, separators ordered left-to-right.  Returns "" on success.
  [[nodiscard]] std::string validate() const;
};

}  // namespace geom
