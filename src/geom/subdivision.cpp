#include "geom/subdivision.hpp"

#include <algorithm>

namespace geom {

std::size_t MonotoneSubdivision::locate_brute(const Point& q) const {
  // Region index == number of separators strictly left of q.  Each edge e
  // left of q contributes separators min_sep..max_sep.
  std::size_t region = 0;
  for (const SubEdge& e : edges) {
    if (e.spans(q.y) && e.side(q) < 0) {  // q strictly right of e
      region = std::max(region, static_cast<std::size_t>(e.max_sep));
    }
  }
  return region;
}

std::string MonotoneSubdivision::validate() const {
  if (num_regions == 0) {
    return "no regions";
  }
  if (ymin < -kCoordLimit || ymax > kCoordLimit) {
    return "strip bounds exceed the coordinate limit";
  }
  for (const SubEdge& e : edges) {
    for (const Coord c : {e.lo.x, e.lo.y, e.hi.x, e.hi.y}) {
      if (c < -kCoordLimit || c > kCoordLimit) {
        return "edge coordinate exceeds the coordinate limit (|c| <= 2^40)";
      }
    }
    if (e.lo.y >= e.hi.y) {
      return "edge not oriented upward";
    }
    if (e.lo.y < ymin || e.hi.y > ymax) {
      return "edge outside the strip";
    }
    if (e.min_sep < 1 || e.max_sep > std::int32_t(num_separators()) ||
        e.min_sep > e.max_sep) {
      return "invalid separator range";
    }
  }
  // Coverage: per separator, the y-spans of its edges must tile
  // [ymin, ymax] without overlap.  Instead of per-separator scans
  // (quadratic), check the equivalent prefix property: for every level
  // band, the multiset of covering edges, expanded by range length,
  // covers each separator exactly once.  We sample: collect all distinct
  // y breakpoints and check coverage in each band at its midpoint.
  std::vector<Coord> ys{ymin, ymax};
  for (const SubEdge& e : edges) {
    ys.push_back(e.lo.y);
    ys.push_back(e.hi.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  for (std::size_t t = 0; t + 1 < ys.size(); ++t) {
    const Coord mid = ys[t] + (ys[t + 1] - ys[t]) / 2;
    if (mid <= ys[t] || mid >= ys[t + 1]) {
      continue;  // adjacent levels, no interior midpoint at integer grid
    }
    std::vector<std::int32_t> covered(num_separators() + 1, 0);
    std::vector<const SubEdge*> active;
    for (const SubEdge& e : edges) {
      if (e.spans(mid)) {
        covered[e.min_sep - 1] += 1;
        covered[e.max_sep] -= 1;
        active.push_back(&e);
      }
    }
    std::int32_t run = 0;
    for (std::size_t j = 0; j < num_separators(); ++j) {
      run += covered[j];
      if (run != 1) {
        return "separator " + std::to_string(j + 1) + " covered " +
               std::to_string(run) + " times at y=" + std::to_string(mid);
      }
    }
    // Order: edges at this level, sorted by separator range, must also be
    // sorted geometrically (separators do not cross).  Edges are straight
    // within a band (every endpoint level is a breakpoint), so two edges
    // cross inside the band iff their x-order flips between the band's
    // two boundary levels; exact rational comparison of
    //   x_e(y) = (lo.x * (hi.y - y) + hi.x * (y - lo.y)) / (hi.y - lo.y)
    // at both boundaries catches every crossing.
    std::sort(active.begin(), active.end(),
              [](const SubEdge* a, const SubEdge* b) {
                return a->min_sep < b->min_sep;
              });
    for (const Coord level : {ys[t], ys[t + 1]}) {
      const auto x_at = [level](const SubEdge* e) -> __int128 {
        return static_cast<__int128>(e->lo.x) * (e->hi.y - level) +
               static_cast<__int128>(e->hi.x) * (level - e->lo.y);
      };
      for (std::size_t i = 1; i < active.size(); ++i) {
        const SubEdge* a = active[i - 1];
        const SubEdge* b = active[i];
        const __int128 lhs = x_at(a) * (b->hi.y - b->lo.y);
        const __int128 rhs = x_at(b) * (a->hi.y - a->lo.y);
        if (lhs > rhs) {
          return "separators cross near y=" + std::to_string(level);
        }
      }
    }
  }
  return {};
}

}  // namespace geom
