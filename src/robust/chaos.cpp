#include "robust/chaos.hpp"

namespace robust {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t chaos_mix(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t i) {
  return splitmix64(splitmix64(seed ^ splitmix64(stream)) ^ splitmix64(i));
}

BatchFault ChaosPlan::fault_for_batch(std::uint64_t seq) const {
  BatchFault f;
  if (cfg_.squeeze_burst_period > 0 && cfg_.squeeze_burst_len > 0 &&
      seq % cfg_.squeeze_burst_period < cfg_.squeeze_burst_len) {
    f.deadline_squeeze = true;
    return f;  // squeezes and throws stay disjoint: distinct failure modes
  }
  if (cfg_.throw_every > 0 &&
      chaos_mix(seed_, /*stream=*/1, seq) % cfg_.throw_every == 0) {
    f.worker_throw = true;
    f.throw_item =
        static_cast<std::size_t>(chaos_mix(seed_, /*stream=*/2, seq));
  }
  return f;
}

std::uint32_t ChaosPlan::publish_burst_size(std::uint64_t cycle) const {
  const std::uint32_t lo = cfg_.publish_burst_min;
  const std::uint32_t hi =
      cfg_.publish_burst_max >= lo ? cfg_.publish_burst_max : lo;
  return lo + static_cast<std::uint32_t>(
                  chaos_mix(seed_, /*stream=*/3, cycle) % (hi - lo + 1));
}

}  // namespace robust
