#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/tree.hpp"
#include "core/structure.hpp"
#include "fc/build.hpp"
#include "geom/primitives.hpp"
#include "pointloc/separator_tree.hpp"
#include "robust/status.hpp"

namespace robust {

/// Fault-injection harness: each kind deliberately breaks one invariant
/// class of one structure, so tests can assert the validators catch every
/// class (and, dually, that a structure passing validate() has none of
/// these defects).  `seed` picks *where* the fault lands, so repeated runs
/// cover different nodes/entries.
enum class CorruptionKind : int {
  // cat::Tree
  kUnsortedCatalog = 0,   ///< swap two adjacent keys in one catalog
  // fc::Structure
  kMissingTerminal = 1,   ///< demote an augmented +inf terminal
  kCrossingBridges = 2,   ///< make two adjacent bridges cross (property 3)
  kBridgeOutOfRange = 3,  ///< point a bridge past the child's catalog
  kWrongProper = 4,       ///< break the aug -> proper index map
  // coop::CoopStructure
  kSkeletonNonMonotone = 5,  ///< break the back-sample position order
  kSkeletonOutOfRange = 6,   ///< skeleton position past the aug catalog
  kBlockMapDangling = 7,     ///< block_of points at the wrong/no block
  // pointloc::SeparatorTree
  kGapBreakpointDisorder = 8,  ///< unsort one gap's (level, dir) list
  // snapshot files on disk (corrupt_file; snapshot::open must reject)
  kSnapshotTruncated = 9,       ///< cut the file short at a random byte
  kSnapshotHeaderBitFlip = 10,  ///< flip one bit inside the 64-byte header
  kSnapshotSectionCrc = 11,     ///< flip one bit inside a section payload
  kSnapshotSectionOffset = 12,  ///< point a section past end-of-file,
                                ///  with the table CRC re-forged so only
                                ///  the bounds check can catch it
  // net wire frames in memory (corrupt_frame; net::decode_frame must
  // reject each with a descriptive Status)
  kWireTruncated = 13,  ///< cut the encoded frame short at a random byte
  kWireLengthLie = 14,  ///< rewrite the length prefix to disagree with
                        ///  the header's payload_len
  kWireBitFlip = 15,    ///< flip one payload bit (CRC trailer catches it)
  // snapshot files again (kept after the wire kinds for enum stability)
  kSnapshotSimdLayout = 16,  ///< rewrite one cell of the v2 multiway
                             ///  search layout, with section/table/header
                             ///  CRCs all re-forged so only snapshot::
                             ///  open's recompute-and-compare structural
                             ///  validation can catch it; v1 files (no
                             ///  layout sections) -> kFailedPrecondition
};

inline constexpr CorruptionKind kAllCorruptionKinds[] = {
    CorruptionKind::kUnsortedCatalog,      CorruptionKind::kMissingTerminal,
    CorruptionKind::kCrossingBridges,      CorruptionKind::kBridgeOutOfRange,
    CorruptionKind::kWrongProper,          CorruptionKind::kSkeletonNonMonotone,
    CorruptionKind::kSkeletonOutOfRange,   CorruptionKind::kBlockMapDangling,
    CorruptionKind::kGapBreakpointDisorder,
};

/// The file-level kinds (targets of corrupt_file, not of the in-memory
/// corrupt overloads).
inline constexpr CorruptionKind kAllSnapshotFaultKinds[] = {
    CorruptionKind::kSnapshotTruncated,
    CorruptionKind::kSnapshotHeaderBitFlip,
    CorruptionKind::kSnapshotSectionCrc,
    CorruptionKind::kSnapshotSectionOffset,
    CorruptionKind::kSnapshotSimdLayout,
};

/// The wire-level kinds (targets of corrupt_frame).
inline constexpr CorruptionKind kAllWireFaultKinds[] = {
    CorruptionKind::kWireTruncated,
    CorruptionKind::kWireLengthLie,
    CorruptionKind::kWireBitFlip,
};

[[nodiscard]] const char* to_string(CorruptionKind k);

/// Apply the corruption in place.  Returns OK when the fault was injected;
/// kFailedPrecondition when this kind does not target this structure type
/// or the structure is too small/regular to host it (callers should skip,
/// not fail).  All mutations go through public rebuild APIs or the
/// StructureAccess backdoor below — no UB is involved in *injecting* the
/// fault; detecting it is the validators' job.
[[nodiscard]] coop::Status corrupt(cat::Tree& t, CorruptionKind kind,
                                   std::uint64_t seed);
[[nodiscard]] coop::Status corrupt(fc::Structure& s, CorruptionKind kind,
                                   std::uint64_t seed);
[[nodiscard]] coop::Status corrupt(coop::CoopStructure& cs,
                                   CorruptionKind kind, std::uint64_t seed);
[[nodiscard]] coop::Status corrupt(pointloc::SeparatorTree& st,
                                   CorruptionKind kind, std::uint64_t seed);

/// Apply a file-level fault (one of kAllSnapshotFaultKinds) to a
/// snapshot file on disk, in place.  The file must be a structurally
/// valid snapshot (it is parsed just enough to aim the fault — e.g. the
/// section-offset kind rewrites the table and re-forges its CRC so the
/// damage is only catchable by snapshot::open's bounds checks, not by a
/// checksum).  kFailedPrecondition when the file is too small or not a
/// snapshot; kInvalidArgument when it cannot be opened.
[[nodiscard]] coop::Status corrupt_file(const std::string& path,
                                        CorruptionKind kind,
                                        std::uint64_t seed);

/// Apply a wire-level fault (one of kAllWireFaultKinds) to an encoded
/// net frame in place.  `frame` must be a complete frame as produced by
/// net::encode_frame (length prefix + header + payload + CRC trailer) —
/// it is parsed just enough to aim the fault (e.g. the bit-flip lands in
/// the payload so only the CRC trailer can catch it, and the length lie
/// keeps the prefix plausible so the framing layer reads the frame and
/// the *decoder* has to spot the disagreement).  kFailedPrecondition
/// when the buffer is too small to be a frame or cannot host the kind.
[[nodiscard]] coop::Status corrupt_frame(std::vector<std::uint8_t>& frame,
                                         CorruptionKind kind,
                                         std::uint64_t seed);

/// The backdoor the corruption harness (and the deep validators) use to
/// reach otherwise-encapsulated state.  Befriended by CoopStructure and
/// SeparatorTree; kept to trivial accessors so the invariants live in
/// validate.cpp / corrupt.cpp, not here.
struct StructureAccess {
  static std::vector<coop::Substructure>& substructures(
      coop::CoopStructure& cs) {
    return cs.subs_;
  }
  static const std::vector<coop::Substructure>& substructures(
      const coop::CoopStructure& cs) {
    return cs.subs_;
  }

  using GapBreakpoints = std::vector<std::pair<geom::Coord, std::uint8_t>>;
  static std::vector<std::vector<GapBreakpoints>>& gap_branches(
      pointloc::SeparatorTree& st) {
    return st.gap_branch_;
  }
  static const std::vector<std::vector<GapBreakpoints>>& gap_branches(
      const pointloc::SeparatorTree& st) {
    return st.gap_branch_;
  }
  static coop::CoopStructure& coop_structure(pointloc::SeparatorTree& st) {
    return *st.coop_;
  }
  static fc::Structure& cascade(pointloc::SeparatorTree& st) {
    return *st.fc_;
  }
  static cat::Tree& tree(pointloc::SeparatorTree& st) { return *st.tree_; }
};

}  // namespace robust
