#pragma once

// Deterministic chaos schedule for the soak harness (DESIGN.md §9).
// A ChaosPlan is pure scheduling — *what* fault hits *which* batch /
// cycle, as a pure function of (seed, index) — with no dependency on the
// serving layer; the soak driver in src/serve applies it.  Same seed,
// same schedule, every run: a soak failure replays exactly.
//
// Fault vocabulary (matching the failure modes PRs 1-3 defend against):
//   worker throw      one query group's worker raises mid-batch
//   deadline squeeze  the batch runs with a 1 ns deadline (degrades the
//                     parallel attempt deterministically)
//   publish storm     several registry publishes back-to-back
//   payload bit-flip  a byte of a served (copy-on-write) snapshot rots

#include <cstddef>
#include <cstdint>

namespace robust {

struct ChaosConfig {
  /// One in `throw_every` non-squeezed batches gets a worker throw.
  std::uint32_t throw_every = 13;
  /// Deadline squeezes come in bursts of `squeeze_burst_len` consecutive
  /// batch seqs every `squeeze_burst_period` — consecutive degraded
  /// batches are what trips a breaker with threshold < burst length.
  std::uint32_t squeeze_burst_period = 48;
  std::uint32_t squeeze_burst_len = 10;
  /// Publishes per publish-storm cycle, in [min, max].
  std::uint32_t publish_burst_min = 1;
  std::uint32_t publish_burst_max = 2;
};

/// Faults for one served batch.
struct BatchFault {
  bool worker_throw = false;
  std::size_t throw_item = 0;  ///< modulo the batch's item count
  bool deadline_squeeze = false;
};

/// Counter-based mix (splitmix64 over (seed, stream, i)): the one source
/// of chaos randomness, shared by the plan and the driver so every
/// decision is replayable from the seed alone.
[[nodiscard]] std::uint64_t chaos_mix(std::uint64_t seed,
                                      std::uint64_t stream, std::uint64_t i);

class ChaosPlan {
 public:
  explicit ChaosPlan(std::uint64_t seed, ChaosConfig cfg = {})
      : seed_(seed), cfg_(cfg) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const ChaosConfig& config() const { return cfg_; }

  /// Faults for batch `seq` — pure, so concurrent clients can consult
  /// the plan without coordination.
  [[nodiscard]] BatchFault fault_for_batch(std::uint64_t seq) const;

  /// Publishes in storm cycle `cycle` — pure.
  [[nodiscard]] std::uint32_t publish_burst_size(std::uint64_t cycle) const;

 private:
  std::uint64_t seed_ = 0;
  ChaosConfig cfg_;
};

}  // namespace robust
