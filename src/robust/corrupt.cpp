#include "robust/corrupt.hpp"

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

// Header-only layout constants + CRC32 of the snapshot format and the
// net wire-frame format, included so the harness can craft targeted
// file/frame faults without linking the snapshot or net libraries
// (both depend on robust, not vice versa).
#include "net/frame_format.hpp"
#include "snapshot/format.hpp"

namespace robust {

using coop::Status;

const char* to_string(CorruptionKind k) {
  switch (k) {
    case CorruptionKind::kUnsortedCatalog: return "unsorted-catalog";
    case CorruptionKind::kMissingTerminal: return "missing-terminal";
    case CorruptionKind::kCrossingBridges: return "crossing-bridges";
    case CorruptionKind::kBridgeOutOfRange: return "bridge-out-of-range";
    case CorruptionKind::kWrongProper: return "wrong-proper";
    case CorruptionKind::kSkeletonNonMonotone: return "skeleton-non-monotone";
    case CorruptionKind::kSkeletonOutOfRange: return "skeleton-out-of-range";
    case CorruptionKind::kBlockMapDangling: return "block-map-dangling";
    case CorruptionKind::kGapBreakpointDisorder:
      return "gap-breakpoint-disorder";
    case CorruptionKind::kSnapshotTruncated: return "snapshot-truncated";
    case CorruptionKind::kSnapshotHeaderBitFlip:
      return "snapshot-header-bit-flip";
    case CorruptionKind::kSnapshotSectionCrc:
      return "snapshot-section-crc-mismatch";
    case CorruptionKind::kSnapshotSectionOffset:
      return "snapshot-section-offset-oob";
    case CorruptionKind::kSnapshotSimdLayout:
      return "snapshot-simd-layout-forged";
    case CorruptionKind::kWireTruncated: return "wire-truncated";
    case CorruptionKind::kWireLengthLie: return "wire-length-lie";
    case CorruptionKind::kWireBitFlip: return "wire-bit-flip";
  }
  return "?";
}

namespace {

Status not_applicable(CorruptionKind kind, const char* target) {
  return Status::failed_precondition(std::string(to_string(kind)) +
                                     " does not apply to " + target);
}

Status too_small(CorruptionKind kind) {
  return Status::failed_precondition(
      std::string("structure too small to host ") + to_string(kind));
}

/// Pick one of `count` candidates deterministically from the seed.
std::size_t pick(std::uint64_t seed, std::size_t count) {
  std::mt19937_64 rng(seed);
  return static_cast<std::size_t>(rng() % count);
}

}  // namespace

Status corrupt(cat::Tree& t, CorruptionKind kind, std::uint64_t seed) {
  if (kind != CorruptionKind::kUnsortedCatalog) {
    return not_applicable(kind, "cat::Tree");
  }
  std::vector<cat::NodeId> hosts;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    if (t.catalog(cat::NodeId(v)).real_size() >= 2) {
      hosts.push_back(cat::NodeId(v));
    }
  }
  if (hosts.empty()) {
    return too_small(kind);
  }
  const cat::NodeId v = hosts[pick(seed, hosts.size())];
  const cat::Catalog& c = t.catalog(v);
  // Real entries only; from_sorted() re-appends the sentinel (and does not
  // validate, which is exactly what lets us plant the fault).
  std::vector<cat::Key> keys(c.keys().begin(), c.keys().end() - 1);
  std::vector<std::uint64_t> payloads(c.payloads().begin(),
                                      c.payloads().end() - 1);
  const std::size_t i = pick(seed ^ 0x9e3779b97f4a7c15ULL, keys.size() - 1);
  std::swap(keys[i], keys[i + 1]);
  std::swap(payloads[i], payloads[i + 1]);
  t.set_catalog(v, cat::Catalog::from_sorted(keys, payloads));
  return coop::OkStatus();
}

Status corrupt(fc::Structure& s, CorruptionKind kind, std::uint64_t seed) {
  const cat::Tree& t = s.tree();
  std::vector<fc::AugCatalog> aug;
  aug.reserve(t.num_nodes());
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }

  switch (kind) {
    case CorruptionKind::kMissingTerminal: {
      const std::size_t v = pick(seed, aug.size());
      aug[v].keys.back() = cat::kInfinity - 1 - static_cast<cat::Key>(v);
      break;
    }
    case CorruptionKind::kCrossingBridges: {
      // Adjacent entries whose bridges differ: swapping them plants a
      // decreasing (crossing) pair while keeping every index in range.
      struct Site {
        std::size_t v, e, i;
      };
      std::vector<Site> sites;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        const std::size_t sz = aug[v].keys.size();
        for (std::size_t e = 0; e < aug[v].num_children; ++e) {
          for (std::size_t i = 1; i < sz; ++i) {
            if (aug[v].bridge[e * sz + i - 1] != aug[v].bridge[e * sz + i]) {
              sites.push_back(Site{v, e, i});
            }
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      auto& b = aug[site.v].bridge;
      const std::size_t sz = aug[site.v].keys.size();
      std::swap(b[site.e * sz + site.i - 1], b[site.e * sz + site.i]);
      break;
    }
    case CorruptionKind::kBridgeOutOfRange: {
      std::vector<std::size_t> hosts;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        if (aug[v].num_children > 0) {
          hosts.push_back(v);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      const std::size_t v = hosts[pick(seed, hosts.size())];
      const std::size_t slot = pick(seed ^ 0xbf58476d1ce4e5b9ULL,
                                    aug[v].bridge.size());
      const cat::NodeId kid =
          t.children(cat::NodeId(v))[slot / aug[v].keys.size()];
      aug[v].bridge[slot] = static_cast<std::int32_t>(aug[kid].keys.size());
      break;
    }
    case CorruptionKind::kWrongProper: {
      // Needs a catalog with >= 2 entries so the off-by-one lands on a
      // different (still in-range) index.
      std::vector<std::size_t> hosts;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        if (t.catalog(cat::NodeId(v)).size() >= 2) {
          hosts.push_back(v);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      const std::size_t v = hosts[pick(seed, hosts.size())];
      const std::size_t i = pick(seed ^ 0x94d049bb133111ebULL,
                                 aug[v].proper.size());
      const auto own = static_cast<std::int32_t>(t.catalog(cat::NodeId(v)).size());
      aug[v].proper[i] = (aug[v].proper[i] + 1) % own;
      break;
    }
    default:
      return not_applicable(kind, "fc::Structure");
  }
  s = fc::Structure::from_parts(t, s.sample_k(), std::move(aug));
  return coop::OkStatus();
}

Status corrupt(coop::CoopStructure& cs, CorruptionKind kind,
               std::uint64_t seed) {
  auto& subs = StructureAccess::substructures(cs);
  switch (kind) {
    case CorruptionKind::kSkeletonNonMonotone: {
      // A block with >= 2 skeletons: duplicate the root's sample 0 into
      // sample 1, breaking the strictly-increasing back-sample order.
      struct Site {
        std::size_t sub, block;
      };
      std::vector<Site> sites;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (std::size_t bi = 0; bi < subs[si].blocks.size(); ++bi) {
          if (subs[si].blocks[bi].m >= 2) {
            sites.push_back(Site{si, bi});
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      coop::HopBlock& b = subs[site.sub].blocks[site.block];
      b.skel[b.nodes.size()] = b.skel[0];
      return coop::OkStatus();
    }
    case CorruptionKind::kSkeletonOutOfRange: {
      struct Site {
        std::size_t sub, block;
      };
      std::vector<Site> sites;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (std::size_t bi = 0; bi < subs[si].blocks.size(); ++bi) {
          if (!subs[si].blocks[bi].skel.empty()) {
            sites.push_back(Site{si, bi});
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      coop::HopBlock& b = subs[site.sub].blocks[site.block];
      const std::size_t slot = pick(seed ^ 0x2545f4914f6cdd1dULL,
                                    b.skel.size());
      const cat::NodeId v = b.nodes[slot % b.nodes.size()];
      b.skel[slot] =
          static_cast<std::int32_t>(cs.cascade().aug(v).size()) + 5;
      return coop::OkStatus();
    }
    case CorruptionKind::kBlockMapDangling: {
      std::vector<std::size_t> hosts;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        if (!subs[si].blocks.empty()) {
          hosts.push_back(si);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      coop::Substructure& sub = subs[hosts[pick(seed, hosts.size())]];
      const std::size_t bi = pick(seed ^ 0xd6e8feb86659fd93ULL,
                                  sub.blocks.size());
      const auto root = static_cast<std::size_t>(sub.blocks[bi].root);
      sub.block_of[root] = static_cast<std::int32_t>(sub.blocks.size());
      return coop::OkStatus();
    }
    default:
      return not_applicable(kind, "coop::CoopStructure");
  }
}

Status corrupt(pointloc::SeparatorTree& st, CorruptionKind kind,
               std::uint64_t seed) {
  switch (kind) {
    case CorruptionKind::kUnsortedCatalog:
      return corrupt(StructureAccess::tree(st), kind, seed);
    case CorruptionKind::kMissingTerminal:
    case CorruptionKind::kCrossingBridges:
    case CorruptionKind::kBridgeOutOfRange:
    case CorruptionKind::kWrongProper:
      return corrupt(StructureAccess::cascade(st), kind, seed);
    case CorruptionKind::kSkeletonNonMonotone:
    case CorruptionKind::kSkeletonOutOfRange:
    case CorruptionKind::kBlockMapDangling:
      return corrupt(StructureAccess::coop_structure(st), kind, seed);
    case CorruptionKind::kSnapshotTruncated:
    case CorruptionKind::kSnapshotHeaderBitFlip:
    case CorruptionKind::kSnapshotSectionCrc:
    case CorruptionKind::kSnapshotSectionOffset:
    case CorruptionKind::kSnapshotSimdLayout:
    case CorruptionKind::kWireTruncated:
    case CorruptionKind::kWireLengthLie:
    case CorruptionKind::kWireBitFlip:
      return not_applicable(kind, "pointloc::SeparatorTree");
    case CorruptionKind::kGapBreakpointDisorder:
      break;
  }
  if (!st.has_gap_branches()) {
    return Status::failed_precondition(
        "gap-breakpoint-disorder needs precompute_gap_branches() first");
  }
  auto& gb = StructureAccess::gap_branches(st);
  struct Site {
    std::size_t v, i;
  };
  std::vector<Site> sites;
  for (std::size_t v = 0; v < gb.size(); ++v) {
    for (std::size_t i = 0; i < gb[v].size(); ++i) {
      if (!gb[v][i].empty()) {
        sites.push_back(Site{v, i});
      }
    }
  }
  if (sites.empty()) {
    return too_small(kind);
  }
  const Site site = sites[pick(seed, sites.size())];
  auto& bps = gb[site.v][site.i];
  // Append a breakpoint strictly below the current minimum: the list is
  // no longer sorted by level, which the branch lookup binary search
  // silently relies on.
  bps.emplace_back(bps.front().first - 1, bps.front().second);
  return coop::OkStatus();
}

namespace {

/// Read a whole file into memory (snapshot files in tests are small).
Status slurp(const std::string& path, std::vector<unsigned char>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::invalid_argument("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size < 0 ? 0 : static_cast<std::size_t>(size));
  const bool ok =
      out.empty() || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  if (!ok) {
    return Status::invalid_argument("cannot read " + path);
  }
  return coop::OkStatus();
}

Status spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::invalid_argument("cannot open " + path + " for writing");
  }
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (std::fclose(f) != 0 || !ok) {
    return Status::invalid_argument("cannot write " + path);
  }
  return coop::OkStatus();
}

}  // namespace

Status corrupt_file(const std::string& path, CorruptionKind kind,
                    std::uint64_t seed) {
  std::vector<unsigned char> bytes;
  if (Status s = slurp(path, bytes); !s.ok()) {
    return s;
  }
  if (bytes.size() < sizeof(snapshot::FileHeader)) {
    return Status::failed_precondition(path +
                                       " is too small to be a snapshot");
  }
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != snapshot::kMagic) {
    return Status::failed_precondition(path + " is not a snapshot file");
  }
  const std::size_t table_off = sizeof(snapshot::FileHeader);
  const std::size_t table_bytes =
      std::size_t{header.section_count} * sizeof(snapshot::SectionRecord);

  switch (kind) {
    case CorruptionKind::kSnapshotTruncated: {
      // Cut anywhere, from an empty file to one byte short: every length
      // must be rejected (by the size probe, the file_size cross-check,
      // or a section bounds/CRC failure — whichever trips first).
      bytes.resize(pick(seed, bytes.size()));
      break;
    }
    case CorruptionKind::kSnapshotHeaderBitFlip: {
      const std::size_t bit = pick(seed, sizeof(snapshot::FileHeader) * 8);
      bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      break;
    }
    case CorruptionKind::kSnapshotSectionCrc: {
      // Flip a bit strictly inside one section's payload (not in the
      // uncovered alignment padding), leaving header and table intact,
      // so only that section's CRC can catch it.
      if (header.section_count == 0 ||
          table_off + table_bytes > bytes.size()) {
        return Status::failed_precondition(path + " has no section table");
      }
      std::vector<snapshot::SectionRecord> table(header.section_count);
      std::memcpy(table.data(), bytes.data() + table_off, table_bytes);
      std::vector<std::size_t> hosts;
      for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].length > 0 &&
            table[i].offset + table[i].length <= bytes.size()) {
          hosts.push_back(i);
        }
      }
      if (hosts.empty()) {
        return Status::failed_precondition(path + " has no section payloads");
      }
      const auto& rec = table[hosts[pick(seed, hosts.size())]];
      const std::size_t bit = pick(seed ^ 0x5eed, rec.length * 8);
      bytes[rec.offset + bit / 8] ^=
          static_cast<unsigned char>(1u << (bit % 8));
      break;
    }
    case CorruptionKind::kSnapshotSectionOffset: {
      if (header.section_count == 0 ||
          table_off + table_bytes > bytes.size()) {
        return Status::failed_precondition(path + " has no section table");
      }
      // Point one section far past end-of-file, then re-forge the table
      // CRC: the fault is invisible to every checksum and must be caught
      // by snapshot::open's explicit bounds validation.
      const std::size_t victim = pick(seed, header.section_count);
      snapshot::SectionRecord rec;
      unsigned char* rec_at =
          bytes.data() + table_off + victim * sizeof(snapshot::SectionRecord);
      std::memcpy(&rec, rec_at, sizeof(rec));
      rec.offset = snapshot::align_up(
          header.file_size + (1 + seed % 7) * snapshot::kSectionAlign,
          snapshot::kSectionAlign);
      std::memcpy(rec_at, &rec, sizeof(rec));
      header.table_crc =
          snapshot::crc32(bytes.data() + table_off, table_bytes);
      header.header_crc = snapshot::header_crc(header);
      std::memcpy(bytes.data(), &header, sizeof(header));
      break;
    }
    case CorruptionKind::kSnapshotSimdLayout: {
      if (header.section_count == 0 ||
          table_off + table_bytes > bytes.size()) {
        return Status::failed_precondition(path + " has no section table");
      }
      // Rewrite one rank cell of the blocked multiway layout (kSimdPos),
      // then re-forge the section CRC, the table CRC and the header CRC:
      // the file is checksum-perfect and the fault is only catchable by
      // snapshot::open recomputing the layout from the validated keys
      // and comparing (load_simd_layout).  v1 files have no such section
      // and cannot host the kind.
      std::vector<snapshot::SectionRecord> table(header.section_count);
      std::memcpy(table.data(), bytes.data() + table_off, table_bytes);
      std::size_t victim = table.size();
      for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].id ==
                static_cast<std::uint32_t>(snapshot::SectionId::kSimdPos) &&
            table[i].length >= sizeof(std::uint32_t) &&
            table[i].offset + table[i].length <= bytes.size()) {
          victim = i;
        }
      }
      if (victim == table.size()) {
        return Status::failed_precondition(
            path + " has no multiway search layout section (v1 file?)");
      }
      snapshot::SectionRecord& rec = table[victim];
      const std::size_t cells = rec.length / sizeof(std::uint32_t);
      const std::size_t cell = pick(seed ^ 0x513d, cells);
      std::uint32_t value;
      unsigned char* cell_at =
          bytes.data() + rec.offset + cell * sizeof(std::uint32_t);
      std::memcpy(&value, cell_at, sizeof(value));
      value ^= 1u;  // any change fails the exact recompute-and-compare
      std::memcpy(cell_at, &value, sizeof(value));
      rec.crc32 = snapshot::crc32(bytes.data() + rec.offset, rec.length);
      std::memcpy(bytes.data() + table_off, table.data(), table_bytes);
      header.table_crc =
          snapshot::crc32(bytes.data() + table_off, table_bytes);
      header.header_crc = snapshot::header_crc(header);
      std::memcpy(bytes.data(), &header, sizeof(header));
      break;
    }
    default:
      return not_applicable(kind, "a snapshot file");
  }
  return spit(path, bytes);
}

Status corrupt_frame(std::vector<std::uint8_t>& frame, CorruptionKind kind,
                     std::uint64_t seed) {
  if (frame.size() < net::kFrameOverhead) {
    return Status::failed_precondition(
        "buffer is too small to be an encoded wire frame");
  }
  net::FrameHeader header;
  std::memcpy(&header, frame.data() + sizeof(std::uint32_t), sizeof(header));
  if (header.magic != net::kWireMagic) {
    return Status::failed_precondition("buffer is not an encoded wire frame");
  }
  const std::size_t payload_off =
      sizeof(std::uint32_t) + sizeof(net::FrameHeader);

  switch (kind) {
    case CorruptionKind::kWireTruncated: {
      // Cut anywhere, from nothing to one byte short: every length must
      // be rejected (by the minimum-size probe, the prefix cross-check,
      // or the CRC — whichever trips first).
      frame.resize(pick(seed, frame.size()));
      break;
    }
    case CorruptionKind::kWireLengthLie: {
      // Shrink (or, for an empty payload, grow) the frame and rewrite
      // the length prefix to match, so the framing layer happily reads a
      // self-consistent frame and only the decoder's payload_len
      // cross-check can spot the lie.  The header itself is untouched.
      std::size_t lied_total;
      if (header.payload_len == 0) {
        frame.insert(frame.end() - sizeof(std::uint32_t),
                     {0x5e, 0xed, 0xb0, 0x0b});
        lied_total = frame.size();
      } else {
        const std::size_t cut =
            1 + pick(seed, header.payload_len);  // 1 .. payload_len
        lied_total = frame.size() - cut;
        std::memmove(frame.data() + lied_total - sizeof(std::uint32_t),
                     frame.data() + frame.size() - sizeof(std::uint32_t),
                     sizeof(std::uint32_t));  // keep a trailer in place
        frame.resize(lied_total);
      }
      const auto prefix =
          static_cast<std::uint32_t>(lied_total - sizeof(std::uint32_t));
      std::memcpy(frame.data(), &prefix, sizeof(prefix));
      break;
    }
    case CorruptionKind::kWireBitFlip: {
      if (header.payload_len == 0) {
        return too_small(kind);
      }
      // Strictly inside the payload (not the header, which has its own
      // CRC): only the payload trailer can catch this one.
      const std::size_t bit =
          pick(seed, std::size_t{header.payload_len} * 8);
      frame[payload_off + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      break;
    }
    default:
      return not_applicable(kind, "a wire frame");
  }
  return coop::OkStatus();
}

}  // namespace robust
