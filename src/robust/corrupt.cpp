#include "robust/corrupt.hpp"

#include <random>
#include <string>
#include <vector>

namespace robust {

using coop::Status;

const char* to_string(CorruptionKind k) {
  switch (k) {
    case CorruptionKind::kUnsortedCatalog: return "unsorted-catalog";
    case CorruptionKind::kMissingTerminal: return "missing-terminal";
    case CorruptionKind::kCrossingBridges: return "crossing-bridges";
    case CorruptionKind::kBridgeOutOfRange: return "bridge-out-of-range";
    case CorruptionKind::kWrongProper: return "wrong-proper";
    case CorruptionKind::kSkeletonNonMonotone: return "skeleton-non-monotone";
    case CorruptionKind::kSkeletonOutOfRange: return "skeleton-out-of-range";
    case CorruptionKind::kBlockMapDangling: return "block-map-dangling";
    case CorruptionKind::kGapBreakpointDisorder:
      return "gap-breakpoint-disorder";
  }
  return "?";
}

namespace {

Status not_applicable(CorruptionKind kind, const char* target) {
  return Status::failed_precondition(std::string(to_string(kind)) +
                                     " does not apply to " + target);
}

Status too_small(CorruptionKind kind) {
  return Status::failed_precondition(
      std::string("structure too small to host ") + to_string(kind));
}

/// Pick one of `count` candidates deterministically from the seed.
std::size_t pick(std::uint64_t seed, std::size_t count) {
  std::mt19937_64 rng(seed);
  return static_cast<std::size_t>(rng() % count);
}

}  // namespace

Status corrupt(cat::Tree& t, CorruptionKind kind, std::uint64_t seed) {
  if (kind != CorruptionKind::kUnsortedCatalog) {
    return not_applicable(kind, "cat::Tree");
  }
  std::vector<cat::NodeId> hosts;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    if (t.catalog(cat::NodeId(v)).real_size() >= 2) {
      hosts.push_back(cat::NodeId(v));
    }
  }
  if (hosts.empty()) {
    return too_small(kind);
  }
  const cat::NodeId v = hosts[pick(seed, hosts.size())];
  const cat::Catalog& c = t.catalog(v);
  // Real entries only; from_sorted() re-appends the sentinel (and does not
  // validate, which is exactly what lets us plant the fault).
  std::vector<cat::Key> keys(c.keys().begin(), c.keys().end() - 1);
  std::vector<std::uint64_t> payloads(c.payloads().begin(),
                                      c.payloads().end() - 1);
  const std::size_t i = pick(seed ^ 0x9e3779b97f4a7c15ULL, keys.size() - 1);
  std::swap(keys[i], keys[i + 1]);
  std::swap(payloads[i], payloads[i + 1]);
  t.set_catalog(v, cat::Catalog::from_sorted(keys, payloads));
  return coop::OkStatus();
}

Status corrupt(fc::Structure& s, CorruptionKind kind, std::uint64_t seed) {
  const cat::Tree& t = s.tree();
  std::vector<fc::AugCatalog> aug;
  aug.reserve(t.num_nodes());
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    aug.push_back(s.aug(cat::NodeId(v)));
  }

  switch (kind) {
    case CorruptionKind::kMissingTerminal: {
      const std::size_t v = pick(seed, aug.size());
      aug[v].keys.back() = cat::kInfinity - 1 - static_cast<cat::Key>(v);
      break;
    }
    case CorruptionKind::kCrossingBridges: {
      // Adjacent entries whose bridges differ: swapping them plants a
      // decreasing (crossing) pair while keeping every index in range.
      struct Site {
        std::size_t v, e, i;
      };
      std::vector<Site> sites;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        const std::size_t sz = aug[v].keys.size();
        for (std::size_t e = 0; e < aug[v].num_children; ++e) {
          for (std::size_t i = 1; i < sz; ++i) {
            if (aug[v].bridge[e * sz + i - 1] != aug[v].bridge[e * sz + i]) {
              sites.push_back(Site{v, e, i});
            }
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      auto& b = aug[site.v].bridge;
      const std::size_t sz = aug[site.v].keys.size();
      std::swap(b[site.e * sz + site.i - 1], b[site.e * sz + site.i]);
      break;
    }
    case CorruptionKind::kBridgeOutOfRange: {
      std::vector<std::size_t> hosts;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        if (aug[v].num_children > 0) {
          hosts.push_back(v);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      const std::size_t v = hosts[pick(seed, hosts.size())];
      const std::size_t slot = pick(seed ^ 0xbf58476d1ce4e5b9ULL,
                                    aug[v].bridge.size());
      const cat::NodeId kid =
          t.children(cat::NodeId(v))[slot / aug[v].keys.size()];
      aug[v].bridge[slot] = static_cast<std::int32_t>(aug[kid].keys.size());
      break;
    }
    case CorruptionKind::kWrongProper: {
      // Needs a catalog with >= 2 entries so the off-by-one lands on a
      // different (still in-range) index.
      std::vector<std::size_t> hosts;
      for (std::size_t v = 0; v < aug.size(); ++v) {
        if (t.catalog(cat::NodeId(v)).size() >= 2) {
          hosts.push_back(v);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      const std::size_t v = hosts[pick(seed, hosts.size())];
      const std::size_t i = pick(seed ^ 0x94d049bb133111ebULL,
                                 aug[v].proper.size());
      const auto own = static_cast<std::int32_t>(t.catalog(cat::NodeId(v)).size());
      aug[v].proper[i] = (aug[v].proper[i] + 1) % own;
      break;
    }
    default:
      return not_applicable(kind, "fc::Structure");
  }
  s = fc::Structure::from_parts(t, s.sample_k(), std::move(aug));
  return coop::OkStatus();
}

Status corrupt(coop::CoopStructure& cs, CorruptionKind kind,
               std::uint64_t seed) {
  auto& subs = StructureAccess::substructures(cs);
  switch (kind) {
    case CorruptionKind::kSkeletonNonMonotone: {
      // A block with >= 2 skeletons: duplicate the root's sample 0 into
      // sample 1, breaking the strictly-increasing back-sample order.
      struct Site {
        std::size_t sub, block;
      };
      std::vector<Site> sites;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (std::size_t bi = 0; bi < subs[si].blocks.size(); ++bi) {
          if (subs[si].blocks[bi].m >= 2) {
            sites.push_back(Site{si, bi});
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      coop::HopBlock& b = subs[site.sub].blocks[site.block];
      b.skel[b.nodes.size()] = b.skel[0];
      return coop::OkStatus();
    }
    case CorruptionKind::kSkeletonOutOfRange: {
      struct Site {
        std::size_t sub, block;
      };
      std::vector<Site> sites;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (std::size_t bi = 0; bi < subs[si].blocks.size(); ++bi) {
          if (!subs[si].blocks[bi].skel.empty()) {
            sites.push_back(Site{si, bi});
          }
        }
      }
      if (sites.empty()) {
        return too_small(kind);
      }
      const Site site = sites[pick(seed, sites.size())];
      coop::HopBlock& b = subs[site.sub].blocks[site.block];
      const std::size_t slot = pick(seed ^ 0x2545f4914f6cdd1dULL,
                                    b.skel.size());
      const cat::NodeId v = b.nodes[slot % b.nodes.size()];
      b.skel[slot] =
          static_cast<std::int32_t>(cs.cascade().aug(v).size()) + 5;
      return coop::OkStatus();
    }
    case CorruptionKind::kBlockMapDangling: {
      std::vector<std::size_t> hosts;
      for (std::size_t si = 0; si < subs.size(); ++si) {
        if (!subs[si].blocks.empty()) {
          hosts.push_back(si);
        }
      }
      if (hosts.empty()) {
        return too_small(kind);
      }
      coop::Substructure& sub = subs[hosts[pick(seed, hosts.size())]];
      const std::size_t bi = pick(seed ^ 0xd6e8feb86659fd93ULL,
                                  sub.blocks.size());
      const auto root = static_cast<std::size_t>(sub.blocks[bi].root);
      sub.block_of[root] = static_cast<std::int32_t>(sub.blocks.size());
      return coop::OkStatus();
    }
    default:
      return not_applicable(kind, "coop::CoopStructure");
  }
}

Status corrupt(pointloc::SeparatorTree& st, CorruptionKind kind,
               std::uint64_t seed) {
  switch (kind) {
    case CorruptionKind::kUnsortedCatalog:
      return corrupt(StructureAccess::tree(st), kind, seed);
    case CorruptionKind::kMissingTerminal:
    case CorruptionKind::kCrossingBridges:
    case CorruptionKind::kBridgeOutOfRange:
    case CorruptionKind::kWrongProper:
      return corrupt(StructureAccess::cascade(st), kind, seed);
    case CorruptionKind::kSkeletonNonMonotone:
    case CorruptionKind::kSkeletonOutOfRange:
    case CorruptionKind::kBlockMapDangling:
      return corrupt(StructureAccess::coop_structure(st), kind, seed);
    case CorruptionKind::kGapBreakpointDisorder:
      break;
  }
  if (!st.has_gap_branches()) {
    return Status::failed_precondition(
        "gap-breakpoint-disorder needs precompute_gap_branches() first");
  }
  auto& gb = StructureAccess::gap_branches(st);
  struct Site {
    std::size_t v, i;
  };
  std::vector<Site> sites;
  for (std::size_t v = 0; v < gb.size(); ++v) {
    for (std::size_t i = 0; i < gb[v].size(); ++i) {
      if (!gb[v][i].empty()) {
        sites.push_back(Site{v, i});
      }
    }
  }
  if (sites.empty()) {
    return too_small(kind);
  }
  const Site site = sites[pick(seed, sites.size())];
  auto& bps = gb[site.v][site.i];
  // Append a breakpoint strictly below the current minimum: the list is
  // no longer sorted by level, which the branch lookup binary search
  // silently relies on.
  bps.emplace_back(bps.front().first - 1, bps.front().second);
  return coop::OkStatus();
}

}  // namespace robust
