#pragma once

#include <iosfwd>

#include "catalog/tree.hpp"
#include "geom/subdivision.hpp"
#include "robust/status.hpp"

namespace robust {

/// Checked text-format loaders for the two untrusted inputs the CLI takes.
/// Every syntactic and semantic defect (truncation, junk tokens, dangling
/// parents, unsorted keys, overlong sizes that would OOM, coordinates past
/// the exactness limit) comes back as a Status — never an assert or UB.

/// Tree file format: first line "N"; then one line per node
/// "<parent|-1> <k> <key_1> ... <key_k>" in id order (node 0 is the root,
/// parents must precede children; keys strictly increasing, < +infinity).
[[nodiscard]] coop::Expected<cat::Tree> load_tree(std::istream& in);

/// Subdivision file format: first line "f ymin ymax E"; then one line per
/// edge "lox loy hix hiy min_sep max_sep".  The result passes the full
/// structural validation (separator coverage and order).
[[nodiscard]] coop::Expected<geom::MonotoneSubdivision> load_subdivision(
    std::istream& in);

}  // namespace robust
