#include "robust/loaders.hpp"

#include <istream>
#include <string>
#include <vector>

namespace robust {

using coop::Status;

namespace {

/// Size ceilings: a text file must not be able to request allocations far
/// beyond what it could itself describe (each node/edge/key is at least
/// two bytes of input, so these caps are generous for any legitimate file
/// while stopping "1000000000000" header bombs cold).
constexpr std::size_t kMaxNodes = std::size_t{1} << 22;
constexpr std::size_t kMaxKeysPerNode = std::size_t{1} << 26;
constexpr std::size_t kMaxEdges = std::size_t{1} << 24;

}  // namespace

coop::Expected<cat::Tree> load_tree(std::istream& in) {
  std::size_t n = 0;
  if (!(in >> n)) {
    return Status::invalid_argument("tree file: cannot read the node count");
  }
  if (n == 0) {
    return Status::invalid_argument("tree file: empty tree");
  }
  if (n > kMaxNodes) {
    return Status::invalid_argument("tree file: node count " +
                                    std::to_string(n) + " exceeds the cap " +
                                    std::to_string(kMaxNodes));
  }
  cat::Tree tree(n);
  std::vector<std::vector<cat::Key>> keys(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::string at = "tree file: node " + std::to_string(v);
    long long parent = 0;
    std::size_t k = 0;
    if (!(in >> parent >> k)) {
      return Status::invalid_argument(at + ": truncated or non-numeric");
    }
    if (v == 0) {
      if (parent != -1) {
        return Status::invalid_argument(at + ": node 0 must be the root "
                                             "(parent -1)");
      }
    } else {
      if (parent < 0 || static_cast<std::size_t>(parent) >= v) {
        return Status::invalid_argument(at + ": parent " +
                                        std::to_string(parent) +
                                        " must precede the node");
      }
      tree.add_child(cat::NodeId(parent), cat::NodeId(v));
    }
    if (k > kMaxKeysPerNode) {
      return Status::invalid_argument(at + ": catalog size " +
                                      std::to_string(k) + " exceeds the cap");
    }
    keys[v].resize(k);
    for (auto& key : keys[v]) {
      if (!(in >> key)) {
        return Status::invalid_argument(at + ": truncated or non-numeric key");
      }
      if (key == cat::kInfinity) {
        return Status::invalid_argument(at + ": key equals the +infinity "
                                             "sentinel");
      }
    }
    for (std::size_t i = 1; i < k; ++i) {
      if (keys[v][i - 1] >= keys[v][i]) {
        return Status::invalid_argument(at + ": keys must be strictly "
                                             "increasing");
      }
    }
  }
  tree.finalize();
  for (std::size_t v = 0; v < n; ++v) {
    tree.set_catalog(cat::NodeId(v), cat::Catalog::from_sorted_keys(keys[v]));
  }
  if (!tree.validate()) {
    return Status::internal("tree file: loaded tree failed validation");
  }
  return tree;
}

coop::Expected<geom::MonotoneSubdivision> load_subdivision(std::istream& in) {
  std::size_t f = 0, e = 0;
  geom::Coord ymin = 0, ymax = 0;
  if (!(in >> f >> ymin >> ymax >> e)) {
    return Status::invalid_argument(
        "subdivision file: cannot read the header \"f ymin ymax E\"");
  }
  if (f == 0) {
    return Status::invalid_argument("subdivision file: zero regions");
  }
  if (e > kMaxEdges) {
    return Status::invalid_argument("subdivision file: edge count " +
                                    std::to_string(e) + " exceeds the cap");
  }
  if (ymin >= ymax) {
    return Status::invalid_argument("subdivision file: ymin must be < ymax");
  }
  geom::MonotoneSubdivision sub;
  sub.num_regions = f;
  sub.ymin = ymin;
  sub.ymax = ymax;
  sub.edges.reserve(e);
  for (std::size_t i = 0; i < e; ++i) {
    const std::string at = "subdivision file: edge " + std::to_string(i);
    geom::SubEdge edge;
    if (!(in >> edge.lo.x >> edge.lo.y >> edge.hi.x >> edge.hi.y >>
          edge.min_sep >> edge.max_sep)) {
      return Status::invalid_argument(at + ": truncated or non-numeric");
    }
    sub.edges.push_back(edge);
  }
  // Full structural validation (span signs, separator ranges, coverage,
  // order, coordinate limit) — everything locate() will later assume.
  if (const std::string err = sub.validate(); !err.empty()) {
    return Status::invalid_argument("subdivision file: " + err);
  }
  return sub;
}

}  // namespace robust
