#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace coop {

/// Outcome categories of the fallible APIs.  The numeric values are part
/// of the CLI contract (printed in diagnostics), so append only.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    ///< caller passed malformed input
  kFailedPrecondition = 2, ///< structure not in the required state
  kCorrupted = 3,          ///< a built structure violates its invariants
  kDeadlineExceeded = 4,   ///< a guarded run outlived its deadline
  kInternal = 5,           ///< unexpected failure (bug)
  kResourceExhausted = 6,  ///< admission control shed the request
  kUnavailable = 7,        ///< serving temporarily refused (circuit open)
  kPermissionDenied = 8,   ///< caller may not perform this operation
};

[[nodiscard]] inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCorrupted: return "CORRUPTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
  }
  return "?";
}

/// Error model of the `*_checked` entry points and validators: a code plus
/// a human-readable message naming the offending node/entry.  The assert-
/// based fast paths stay as they are; `Status` is for inputs that cross a
/// trust boundary (files, network, fault injection) and must not be able
/// to cause UB even with asserts compiled out.
class Status {
 public:
  Status() = default;  // OK

  [[nodiscard]] static Status error(StatusCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }
  [[nodiscard]] static Status invalid_argument(std::string message) {
    return error(StatusCode::kInvalidArgument, std::move(message));
  }
  [[nodiscard]] static Status failed_precondition(std::string message) {
    return error(StatusCode::kFailedPrecondition, std::move(message));
  }
  [[nodiscard]] static Status corrupted(std::string message) {
    return error(StatusCode::kCorrupted, std::move(message));
  }
  [[nodiscard]] static Status deadline_exceeded(std::string message) {
    return error(StatusCode::kDeadlineExceeded, std::move(message));
  }
  [[nodiscard]] static Status internal(std::string message) {
    return error(StatusCode::kInternal, std::move(message));
  }
  [[nodiscard]] static Status resource_exhausted(std::string message) {
    return error(StatusCode::kResourceExhausted, std::move(message));
  }
  [[nodiscard]] static Status unavailable(std::string message) {
    return error(StatusCode::kUnavailable, std::move(message));
  }
  [[nodiscard]] static Status permission_denied(std::string message) {
    return error(StatusCode::kPermissionDenied, std::move(message));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (ok()) {
      return "OK";
    }
    return std::string(coop::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The singular OK status (absl naming; `Status::ok()` is the accessor).
[[nodiscard]] inline Status OkStatus() { return Status(); }

/// Either a value or the Status explaining why there is none.  Moves the
/// value in and out; works with move-only payloads (the tree structures
/// are non-copyable).
template <typename T>
class Expected {
 public:
  Expected(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Expected(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "an OK Expected must carry a value");
    if (status_.ok()) {
      status_ = Status::internal("Expected constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Move the value out (the Expected is left empty-but-ok; use once).
  [[nodiscard]] T take() {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace coop
