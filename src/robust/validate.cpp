#include "robust/validate.hpp"

#include <string>
#include <vector>

#include "robust/corrupt.hpp"

namespace robust {

using coop::Status;

Status validate_catalog(const cat::Catalog& c) {
  if (c.size() == 0 || c.key(c.size() - 1) != cat::kInfinity) {
    return Status::corrupted("catalog missing the +infinity terminal");
  }
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (c.key(i - 1) >= c.key(i)) {
      return Status::corrupted("catalog keys not strictly increasing at entry " +
                               std::to_string(i));
    }
  }
  if (c.keys().size() != c.payloads().size()) {
    return Status::corrupted("catalog payload arity mismatch");
  }
  return coop::OkStatus();
}

Status validate_tree(const cat::Tree& t) {
  const std::size_t n = t.num_nodes();
  if (n == 0) {
    return Status::invalid_argument("tree has no nodes");
  }
  if (t.parent(t.root()) != cat::kNullNode) {
    return Status::corrupted("root has a parent");
  }
  // Parent/child mutual consistency + every node reachable from the root
  // (BFS), which also rules out cycles and secondary roots.
  std::vector<char> seen(n, 0);
  std::vector<cat::NodeId> queue{t.root()};
  seen[0] = 1;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const cat::NodeId v = queue.back();
    queue.pop_back();
    ++reached;
    const auto kids = t.children(v);
    for (std::size_t slot = 0; slot < kids.size(); ++slot) {
      const cat::NodeId c = kids[slot];
      if (c < 0 || static_cast<std::size_t>(c) >= n) {
        return Status::corrupted("child id out of range at node " +
                                 std::to_string(v));
      }
      if (t.parent(c) != v) {
        return Status::corrupted("parent/child mismatch at node " +
                                 std::to_string(c));
      }
      if (t.child_slot(c) != static_cast<std::int32_t>(slot)) {
        return Status::corrupted("child slot mismatch at node " +
                                 std::to_string(c));
      }
      if (seen[c]) {
        return Status::corrupted("node " + std::to_string(c) +
                                 " reached twice (cycle or shared child)");
      }
      seen[c] = 1;
      queue.push_back(c);
    }
  }
  if (reached != n) {
    return Status::corrupted(
        std::to_string(n - reached) + " node(s) unreachable from the root");
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (const Status s = validate_catalog(t.catalog(cat::NodeId(v)));
        !s.ok()) {
      return Status::corrupted("node " + std::to_string(v) + ": " +
                               s.message());
    }
  }
  return coop::OkStatus();
}

Status validate_fc(const fc::Structure& s) {
  const cat::Tree& t = s.tree();
  if (t.num_nodes() == 0) {
    return Status::invalid_argument("cascaded structure over an empty tree");
  }
  if (s.sample_k() <= t.max_degree()) {
    return Status::corrupted("sampling factor k=" +
                             std::to_string(s.sample_k()) +
                             " does not exceed max degree " +
                             std::to_string(t.max_degree()));
  }
  // Structural pass first: array sizes and index ranges, so the deep
  // property checks below cannot themselves read out of bounds on a
  // corrupted structure.
  for (std::size_t vi = 0; vi < t.num_nodes(); ++vi) {
    const auto v = static_cast<cat::NodeId>(vi);
    const fc::AugCatalog& a = s.aug(v);
    const std::string at = " at node " + std::to_string(vi);
    if (a.keys.empty() || a.keys.back() != cat::kInfinity) {
      return Status::corrupted("augmented catalog missing +inf terminal" + at);
    }
    if (a.num_children != t.degree(v)) {
      return Status::corrupted("augmented num_children mismatch" + at);
    }
    if (a.proper.size() != a.keys.size()) {
      return Status::corrupted("proper[] size mismatch" + at);
    }
    if (a.bridge.size() != a.keys.size() * t.degree(v)) {
      return Status::corrupted("bridge[] size mismatch" + at);
    }
    const auto own_size = static_cast<std::int32_t>(t.catalog(v).size());
    for (const std::int32_t p : a.proper) {
      if (p < 0 || p >= own_size) {
        return Status::corrupted("proper index out of range" + at);
      }
    }
    const auto kids = t.children(v);
    for (std::size_t e = 0; e < kids.size(); ++e) {
      const auto kid_size = static_cast<std::int32_t>(s.aug(kids[e]).size());
      for (std::size_t i = 0; i < a.keys.size(); ++i) {
        const std::int32_t br = a.bridge[e * a.keys.size() + i];
        if (br < 0 || br >= kid_size) {
          return Status::corrupted("bridge index out of range" + at);
        }
      }
    }
  }
  // Deep pass: the paper's properties 1-3, exact successor positions,
  // proper[] correctness, mutual density.
  if (const std::string err = s.verify_properties(); !err.empty()) {
    return Status::corrupted(err);
  }
  return coop::OkStatus();
}

namespace {

Status validate_substructure(const fc::Structure& s,
                             const coop::Substructure& sub) {
  const std::string ti = "T_" + std::to_string(sub.i);
  if (sub.h < 1) {
    return Status::corrupted(ti + ": hop height h < 1");
  }
  if (sub.s < 1) {
    return Status::corrupted(ti + ": sampling factor s < 1");
  }
  const std::size_t n = s.tree().num_nodes();
  if (sub.block_of.size() != n) {
    return Status::corrupted(ti + ": block_of size mismatch");
  }
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t b = sub.block_of[u];
    if (b == -1) {
      continue;
    }
    if (b < 0 || static_cast<std::size_t>(b) >= sub.blocks.size()) {
      return Status::corrupted(ti + ": block_of[" + std::to_string(u) +
                               "] dangles past the block list");
    }
    if (sub.blocks[static_cast<std::size_t>(b)].root !=
        static_cast<cat::NodeId>(u)) {
      return Status::corrupted(ti + ": block_of[" + std::to_string(u) +
                               "] points at a block rooted elsewhere");
    }
  }
  for (std::size_t bi = 0; bi < sub.blocks.size(); ++bi) {
    const coop::HopBlock& b = sub.blocks[bi];
    const std::string at = ti + " block " + std::to_string(bi);
    const std::size_t nn = b.nodes.size();
    if (nn == 0 || b.nodes[0] != b.root) {
      return Status::corrupted(at + ": BFS order does not start at the root");
    }
    // child_off is a prefix-sum array (one extra terminal slot).
    if (b.level_of.size() != nn || b.parent_local.size() != nn ||
        b.child_off.size() != nn + 1) {
      return Status::corrupted(at + ": per-node array size mismatch");
    }
    if (b.skel.size() != b.m * nn) {
      return Status::corrupted(at + ": skeleton size is not m * |nodes|");
    }
    for (std::size_t z = 0; z < nn; ++z) {
      const cat::NodeId v = b.nodes[z];
      if (v < 0 || static_cast<std::size_t>(v) >= n) {
        return Status::corrupted(at + ": node id out of range");
      }
      const auto aug_size = static_cast<std::int32_t>(s.aug(v).size());
      std::int32_t prev = -1;
      for (std::size_t j = 0; j < b.m; ++j) {
        const std::int32_t pos = b.skel[j * nn + z];
        if (pos < 0 || pos >= aug_size) {
          return Status::corrupted(at + ": skeleton position out of range" +
                                   " (node " + std::to_string(v) + ", U_" +
                                   std::to_string(j) + ")");
        }
        // Root samples are strictly increasing by construction; bridged
        // descendant positions are non-decreasing (bridges do not cross).
        const bool ordered = (z == 0) ? (pos > prev) : (pos >= prev);
        if (j > 0 && !ordered) {
          return Status::corrupted(at + ": skeleton positions not monotone" +
                                   " (node " + std::to_string(v) + ", U_" +
                                   std::to_string(j) + ")");
        }
        prev = pos;
      }
    }
  }
  return coop::OkStatus();
}

}  // namespace

Status validate(const coop::CoopStructure& cs) {
  if (const Status s = validate_fc(cs.cascade()); !s.ok()) {
    return s;
  }
  for (std::uint32_t i = 0; i < cs.substructure_count(); ++i) {
    if (const Status s = validate_substructure(cs.cascade(),
                                               cs.substructure(i));
        !s.ok()) {
      return s;
    }
  }
  return coop::OkStatus();
}

Status validate_subdivision(const geom::MonotoneSubdivision& sub) {
  if (const std::string err = sub.validate(); !err.empty()) {
    return Status::corrupted(err);
  }
  return coop::OkStatus();
}

Status validate(const pointloc::SeparatorTree& st) {
  if (const Status s = validate_subdivision(st.subdivision()); !s.ok()) {
    return s;
  }
  if (const Status s = validate_tree(st.tree()); !s.ok()) {
    return s;
  }
  if (const Status s = validate(st.coop_structure()); !s.ok()) {
    return s;
  }
  if (!st.has_gap_branches()) {
    return coop::OkStatus();
  }
  const auto& gb = StructureAccess::gap_branches(st);
  if (gb.size() != st.tree().num_nodes()) {
    return Status::corrupted("gap-branch table size mismatch");
  }
  for (std::size_t v = 0; v < gb.size(); ++v) {
    const std::string at = " at node " + std::to_string(v);
    if (gb[v].size() != st.tree().catalog(cat::NodeId(v)).size()) {
      return Status::corrupted("gap-branch entry count mismatch" + at);
    }
    for (std::size_t i = 0; i < gb[v].size(); ++i) {
      geom::Coord prev_level = 0;
      bool first = true;
      for (const auto& [level, dir] : gb[v][i]) {
        if (dir != 0 && dir != 1) {
          return Status::corrupted("gap-branch direction is not 0/1" + at);
        }
        if (!first && level < prev_level) {
          return Status::corrupted(
              "gap breakpoints out of order" + at + " entry " +
              std::to_string(i) +
              " (binary search over them would misroute)");
        }
        prev_level = level;
        first = false;
      }
    }
  }
  return coop::OkStatus();
}

}  // namespace robust
