#pragma once

#include "catalog/catalog.hpp"
#include "catalog/tree.hpp"
#include "core/structure.hpp"
#include "fc/build.hpp"
#include "geom/subdivision.hpp"
#include "pointloc/separator_tree.hpp"
#include "robust/status.hpp"

namespace robust {

/// Deep, machine-checkable invariant validators.  Each returns OK or a
/// Status naming the first violated invariant and where.  They are meant
/// for tests, the CLI, and post-corruption detection (see corrupt.hpp) —
/// not for hot paths; several are O(structure size) or slower.

/// Catalog: strictly increasing keys, +infinity terminal, payload arity.
[[nodiscard]] coop::Status validate_catalog(const cat::Catalog& c);

/// Catalog tree: single root, every node reachable at a consistent depth,
/// every catalog valid.
[[nodiscard]] coop::Status validate_tree(const cat::Tree& t);

/// Fractional cascading: array-size / index-range sanity first (so a
/// corrupted structure cannot make the deep checks themselves read out of
/// bounds), then the paper's properties 1-3 exhaustively — bridges are
/// exact successor positions, do not cross, adjacent bridges are <= 2b+1
/// apart (gap-size invariant), fan-out within b, mutual density.
[[nodiscard]] coop::Status validate_fc(const fc::Structure& s);

/// Cooperative-search substructures: for every T_i, every hop block must
/// have a consistent skeleton forest — m * |nodes| entries, every entry a
/// valid position in its node's augmented catalog, positions strictly
/// increasing across the skeleton index j (the monotone back-sample order
/// that Step 2's window argument needs), and block_of must map each block
/// root to its block.
[[nodiscard]] coop::Status validate(const coop::CoopStructure& cs);

/// Monotone subdivision: wraps MonotoneSubdivision::validate() (coverage,
/// separator order, coordinate bounds) into a Status.
[[nodiscard]] coop::Status validate_subdivision(
    const geom::MonotoneSubdivision& sub);

/// Separator tree: the underlying subdivision, cascading structure and
/// coop substructures, plus — when precompute_gap_branches() has run —
/// per-gap breakpoint lists sorted strictly by level (the branch lookup
/// binary-searches them, so disorder silently misroutes queries).
[[nodiscard]] coop::Status validate(const pointloc::SeparatorTree& st);

}  // namespace robust
