#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

namespace obs {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter Registry::counter(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) {
    if (c.name == name) {
      return Counter(&c);
    }
  }
  counters_.emplace_back(std::move(name), std::move(help));
  return Counter(&counters_.back());
}

Gauge Registry::gauge(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& g : gauges_) {
    if (g.name == name) {
      return Gauge(&g);
    }
  }
  gauges_.emplace_back(std::move(name), std::move(help));
  return Gauge(&gauges_.back());
}

Histogram Registry::histogram(std::string name,
                              std::vector<std::uint64_t> upper_bounds,
                              std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& h : histograms_) {
    if (h.name == name) {
      return Histogram(&h);
    }
  }
  histograms_.emplace_back(std::move(name), std::move(help),
                           std::move(upper_bounds));
  return Histogram(&histograms_.back());
}

MetricsSnapshot Registry::scrape() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    CounterValue v;
    v.name = c.name;
    v.help = c.help;
    for (const auto& s : c.shards) {
      v.value += s.v.load(std::memory_order_relaxed);
    }
    snap.counters.push_back(std::move(v));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    snap.gauges.push_back(
        GaugeValue{g.name, g.help, g.value.load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramValue v;
    v.name = h.name;
    v.help = h.help;
    v.bounds = h.bounds;
    v.buckets.assign(h.bounds.size() + 1, 0);
    for (std::size_t s = 0; s < kMetricShards; ++s) {
      const detail::ShardCell* base = h.cells.data() + s * h.stride;
      for (std::size_t b = 0; b <= h.bounds.size(); ++b) {
        v.buckets[b] += base[b].v.load(std::memory_order_relaxed);
      }
      v.sum += base[h.bounds.size() + 1].v.load(std::memory_order_relaxed);
      v.count += base[h.bounds.size() + 2].v.load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(v));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::uint64_t HistogramValue::quantile_bound(double q) const {
  if (count == 0) {
    return 0;
  }
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      return b < bounds.size() ? bounds[b]
                               : std::numeric_limits<std::uint64_t>::max();
    }
  }
  return std::numeric_limits<std::uint64_t>::max();
}

const CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const GaugeValue* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) {
      return &g;
    }
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const CounterValue* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

std::vector<std::uint64_t> latency_bounds_ns() {
  // 1us, 2.5us, 5us, 10us, ... 10s: three bounds per decade.
  std::vector<std::uint64_t> b;
  for (std::uint64_t decade = 1'000; decade <= 1'000'000'000ull;
       decade *= 10) {
    b.push_back(decade);
    b.push_back(decade * 5 / 2);
    b.push_back(decade * 5);
  }
  b.push_back(10'000'000'000ull);
  return b;
}

std::vector<std::uint64_t> exponential_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= (std::uint64_t{1} << 30); v <<= 1) {
    b.push_back(v);
  }
  return b;
}

}  // namespace obs
