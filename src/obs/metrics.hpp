#pragma once

// Low-overhead metrics registry (DESIGN.md §10): the process-wide window
// into the serving stack's runtime behaviour.  Three instrument kinds:
//
//   Counter    monotonic; the hot path pays exactly one relaxed atomic
//              add into a per-thread shard (no CAS, no locks, no false
//              sharing — shards are cache-line sized), aggregated only
//              when a scrape walks the shards.
//   Gauge      last-write-wins signed value (queue depth, breaker state,
//              pinned readers); set/add are single relaxed atomics.
//   Histogram  fixed upper-bucket bounds chosen at registration; one
//              record() is a bucket add + sum add + count add, all
//              relaxed, into the caller's shard.
//
// Registration is name-keyed and idempotent: instrumentation sites
// resolve their handles once (a mutex-guarded lookup) and cache them in
// a function-local static, so steady-state traffic never touches the
// registry lock.  Handles stay valid for the registry's lifetime (metric
// storage is a deque — no reallocation moves).
//
// The registry deliberately does not support labels or unregistration:
// every metric this system needs is known at compile time, and a fixed
// flat namespace keeps the scrape path allocation-light and the export
// formats (obs/export.hpp) trivial.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

/// Counter/histogram shards per metric.  More shards than cores wastes
/// cache; fewer serializes hot adds.  16 covers every deployment this
/// repo targets; threads above 16 hash onto shared shards and still only
/// pay a relaxed add.
inline constexpr std::size_t kMetricShards = 16;

/// Stable shard index of the calling thread in [0, kMetricShards):
/// assigned round-robin on first use, so the first kMetricShards threads
/// are contention-free.
[[nodiscard]] std::size_t shard_index();

namespace detail {

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};

struct CounterData {
  CounterData(std::string n, std::string h)
      : name(std::move(n)), help(std::move(h)) {}
  std::string name;
  std::string help;
  ShardCell shards[kMetricShards];
};

struct GaugeData {
  GaugeData(std::string n, std::string h)
      : name(std::move(n)), help(std::move(h)) {}
  std::string name;
  std::string help;
  std::atomic<std::int64_t> value{0};
};

struct HistogramData {
  HistogramData(std::string n, std::string h,
                std::vector<std::uint64_t> upper_bounds)
      : name(std::move(n)),
        help(std::move(h)),
        bounds(std::move(upper_bounds)),
        stride(bounds.size() + 3),
        cells(kMetricShards * stride) {}
  std::string name;
  std::string help;
  /// Ascending inclusive upper bounds; a final +inf bucket is implicit.
  std::vector<std::uint64_t> bounds;
  /// Per-shard layout: bounds.size()+1 bucket slots, then sum, then count.
  std::size_t stride;
  std::vector<ShardCell> cells;
};

}  // namespace detail

/// Monotonic counter handle.  Copyable, trivially destructible; add() on
/// a default-constructed handle is a no-op.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t v) const {
    if (d_ != nullptr) {
      d_->shards[shard_index()].v.fetch_add(v, std::memory_order_relaxed);
    }
  }
  void inc() const { add(1); }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* d) : d_(d) {}
  detail::CounterData* d_ = nullptr;
};

/// Signed gauge handle (set / add / monotonic-max).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const {
    if (d_ != nullptr) {
      d_->value.store(v, std::memory_order_relaxed);
    }
  }
  void add(std::int64_t delta) const {
    if (d_ != nullptr) {
      d_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  /// Raise the gauge to `v` if below (CAS loop; for high-water marks).
  void set_max(std::int64_t v) const {
    if (d_ == nullptr) {
      return;
    }
    std::int64_t cur = d_->value.load(std::memory_order_relaxed);
    while (cur < v && !d_->value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* d) : d_(d) {}
  detail::GaugeData* d_ = nullptr;
};

/// Fixed-bucket histogram handle.  record(v) lands v in the first bucket
/// whose upper bound is >= v (Prometheus `le` semantics), the implicit
/// +inf bucket otherwise.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) const {
    if (d_ == nullptr) {
      return;
    }
    std::size_t b = 0;
    const std::size_t nb = d_->bounds.size();
    while (b < nb && v > d_->bounds[b]) {
      ++b;
    }
    detail::ShardCell* base = d_->cells.data() + shard_index() * d_->stride;
    base[b].v.fetch_add(1, std::memory_order_relaxed);
    base[nb + 1].v.fetch_add(v, std::memory_order_relaxed);
    base[nb + 2].v.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* d) : d_(d) {}
  detail::HistogramData* d_ = nullptr;
};

/// One scraped counter/gauge/histogram (shards already merged).
struct CounterValue {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::string help;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::string help;
  std::vector<std::uint64_t> bounds;   ///< upper bounds, ascending
  std::vector<std::uint64_t> buckets;  ///< bounds.size()+1, NON-cumulative
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  /// Inclusive upper bound below which at least `q` (in [0,1]) of the
  /// recorded values fall, interpolation-free: the bound of the first
  /// bucket whose cumulative count reaches q*count.  0 when empty.
  [[nodiscard]] std::uint64_t quantile_bound(double q) const;
};

/// A consistent-enough view of every registered metric.  Scrapes are
/// wait-free for writers: values recorded mid-scrape may or may not be
/// included, but counters never go backwards between scrapes.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] const CounterValue* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeValue* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      std::string_view name) const;
  /// Counter value by name, 0 when absent (test convenience).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumentation site resolves
  /// against.  Tests that need isolation construct their own Registry.
  [[nodiscard]] static Registry& global();

  /// Idempotent by name: a second registration returns the existing
  /// metric (help/bounds of the first registration win).
  [[nodiscard]] Counter counter(std::string name, std::string help = "");
  [[nodiscard]] Gauge gauge(std::string name, std::string help = "");
  [[nodiscard]] Histogram histogram(std::string name,
                                    std::vector<std::uint64_t> upper_bounds,
                                    std::string help = "");

  /// Merge every metric's shards into one value set, sorted by name.
  [[nodiscard]] MetricsSnapshot scrape() const;

 private:
  mutable std::mutex mu_;  ///< registration + iteration start only
  std::deque<detail::CounterData> counters_;
  std::deque<detail::GaugeData> gauges_;
  std::deque<detail::HistogramData> histograms_;
};

/// Exponential nanosecond latency bounds, 1us .. 10s (for batch-grained
/// latency histograms; sub-microsecond events round into the first
/// bucket).
[[nodiscard]] std::vector<std::uint64_t> latency_bounds_ns();

/// Exponential count bounds, 1 .. 2^30 (for step/depth distributions).
[[nodiscard]] std::vector<std::uint64_t> exponential_bounds();

}  // namespace obs
