#include "obs/trace.hpp"

#include <chrono>

namespace obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t c = 8;
  while (c < v) {
    c <<= 1;
  }
  return c;
}

}  // namespace

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmit: return "ADMIT";
    case SpanKind::kShed: return "SHED";
    case SpanKind::kShedBreaker: return "SHED_BREAKER";
    case SpanKind::kAttempt: return "ATTEMPT";
    case SpanKind::kDegraded: return "DEGRADED";
    case SpanKind::kBreaker: return "BREAKER";
    case SpanKind::kComplete: return "COMPLETE";
    case SpanKind::kPublish: return "PUBLISH";
    case SpanKind::kRollback: return "ROLLBACK";
    case SpanKind::kScrubPass: return "SCRUB_PASS";
    case SpanKind::kQuarantine: return "QUARANTINE";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity)) {}

TraceRing& TraceRing::global() {
  static TraceRing r;
  return r;
}

void TraceRing::configure(std::uint64_t seed, std::uint64_t sample_period) {
  seed_.store(seed, std::memory_order_relaxed);
  period_.store(sample_period, std::memory_order_relaxed);
}

bool TraceRing::sampled(std::uint64_t seq) const {
  const std::uint64_t period = period_.load(std::memory_order_relaxed);
  if (period == 0) {
    return false;
  }
  if (period == 1) {
    return true;
  }
  return splitmix64(seed_.load(std::memory_order_relaxed) ^
                    splitmix64(seq)) %
             period ==
         0;
}

void TraceRing::emit(std::uint64_t seq, SpanKind kind, std::uint32_t a,
                     std::uint64_t b) {
  TraceEvent ev;
  ev.seq = seq;
  ev.t_ns = now_ns();
  ev.b = b;
  ev.a = a;
  ev.kind = kind;
  std::lock_guard<std::mutex> lock(mu_);
  slots_[head_ & (slots_.size() - 1)] = ev;
  ++head_;
}

void TraceRing::emit_sampled(std::uint64_t seq, SpanKind kind,
                             std::uint32_t a, std::uint64_t b) {
  if (sampled(seq)) {
    emit(seq, kind, a, b);
  }
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = head_ < slots_.size()
                            ? static_cast<std::size_t>(head_)
                            : slots_.size();
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(slots_[(head_ - n + i) & (slots_.size() - 1)]);
  }
  return out;
}

std::uint64_t TraceRing::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_ <= slots_.size() ? 0 : head_ - slots_.size();
}

std::uint64_t TraceRing::now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

}  // namespace obs
