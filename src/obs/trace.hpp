#pragma once

// Lightweight trace spans (DESIGN.md §10): the event-level companion to
// the metrics registry.  Metrics answer "how many / how fast overall";
// the trace ring answers "what happened to batch 4711" — its admission,
// the breaker state that routed it, every retry attempt with its
// backoff, and its completion — as a bounded ring of fixed-size events.
//
// Two knobs keep it off the hot path:
//
//   sampling  seeded-deterministic per batch sequence number: whether a
//             batch is traced is a pure function of (seed, seq), so two
//             runs with the same seed trace the same batches and a
//             replayed incident traces the batches it traced live.
//   bounding  the ring overwrites oldest events; `dropped()` counts the
//             overwritten so an exporter can say "showing the last N of
//             M".
//
// Emission takes a mutex — events are per *batch*, three to six per
// served batch, so the lock is microscopically cold next to the queries
// themselves (measured in EXPERIMENTS.md E16).  The sampled() test that
// gates every emission is two relaxed loads and a hash.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace obs {

enum class SpanKind : std::uint8_t {
  kAdmit = 0,      ///< batch admitted; a = breaker mode routed to
  kShed,           ///< shed at admission (kResourceExhausted)
  kShedBreaker,    ///< shed by the OPEN breaker (kUnavailable)
  kAttempt,        ///< one engine attempt; a = attempt idx, b = backoff ns
  kDegraded,       ///< an attempt degraded; a = attempt idx
  kBreaker,        ///< breaker transition; a = new state
  kComplete,       ///< batch done; a = final degraded flag, b = latency ns
  kPublish,        ///< registry publish; seq = version
  kRollback,       ///< registry rollback; seq = from, b = to version
  kScrubPass,      ///< scrub pass; seq = version, a = clean flag
  kQuarantine,     ///< scrubber quarantined; seq = version
};
[[nodiscard]] const char* to_string(SpanKind k);

struct TraceEvent {
  std::uint64_t seq = 0;   ///< batch sequence / snapshot version
  std::uint64_t t_ns = 0;  ///< monotonic ns since process start
  std::uint64_t b = 0;     ///< kind-specific payload
  std::uint32_t a = 0;     ///< kind-specific payload
  SpanKind kind = SpanKind::kAdmit;
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit TraceRing(std::size_t capacity = 1024);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// The process-wide ring the serving stack emits into.
  [[nodiscard]] static TraceRing& global();

  /// Sampling knob: trace seq iff hash(seed, seq) % period == 0.
  /// period 1 records every batch (the default), period 0 disables
  /// tracing entirely.  Reconfiguring does not clear recorded events.
  void configure(std::uint64_t seed, std::uint64_t sample_period);

  [[nodiscard]] bool sampled(std::uint64_t seq) const;

  /// Record unconditionally (callers gate on sampled()).
  void emit(std::uint64_t seq, SpanKind kind, std::uint32_t a = 0,
            std::uint64_t b = 0);

  /// Record iff `seq` is sampled under the current knob.
  void emit_sampled(std::uint64_t seq, SpanKind kind, std::uint32_t a = 0,
                    std::uint64_t b = 0);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::uint64_t emitted() const;
  /// Events overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Monotonic nanoseconds since the first call in this process.
  [[nodiscard]] static std::uint64_t now_ns();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> slots_;
  std::uint64_t head_ = 0;  ///< total events ever emitted
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> period_{1};
};

}  // namespace obs
