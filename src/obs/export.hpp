#pragma once

// Exporters (DESIGN.md §10): serialize a scraped MetricsSnapshot (and
// optionally the trace ring) for machines.  Two formats:
//
//   JSON        one self-describing document — what `coopsearch_cli
//               stats` prints and what `serve --metrics[=file]` dumps on
//               exit.  Stable key order (metrics are scraped sorted), so
//               diffs between dumps are meaningful.
//   Prometheus  text exposition format 0.0.4 (# HELP / # TYPE lines,
//               cumulative histogram buckets with an explicit +Inf le).
//
// Both are pure functions of the snapshot: no locks, no registry access,
// safe to call from a signal-adjacent exit path.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace obs {

/// The trace section of a JSON export.
struct TraceExport {
  std::vector<TraceEvent> events;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
};

[[nodiscard]] std::string to_json(const MetricsSnapshot& m);
[[nodiscard]] std::string to_json(const MetricsSnapshot& m,
                                  const TraceExport& trace);

[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& m);

/// Scrape the global registry (and optionally the global trace ring) and
/// return the JSON document — the one-call export used by the CLI.
[[nodiscard]] std::string export_global_json(bool with_trace);

}  // namespace obs
