#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out.append(buf, static_cast<std::size_t>(
                        n < static_cast<int>(sizeof(buf))
                            ? n
                            : static_cast<int>(sizeof(buf)) - 1));
  }
}

/// Metric names are [a-z0-9_:]; help strings are free text.  JSON-escape
/// the minimum that can actually appear.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_histogram(std::string& out, const HistogramValue& h) {
  append_fmt(out, "    \"%s\": {\"bounds\": [", json_escape(h.name).c_str());
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    append_fmt(out, "%s%" PRIu64, i ? ", " : "", h.bounds[i]);
  }
  out += "], \"buckets\": [";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    append_fmt(out, "%s%" PRIu64, i ? ", " : "", h.buckets[i]);
  }
  append_fmt(out, "], \"sum\": %" PRIu64 ", \"count\": %" PRIu64 "}",
             h.sum, h.count);
}

void json_metrics_body(std::string& out, const MetricsSnapshot& m) {
  out += "  \"counters\": {\n";
  for (std::size_t i = 0; i < m.counters.size(); ++i) {
    append_fmt(out, "    \"%s\": %" PRIu64 "%s\n",
               json_escape(m.counters[i].name).c_str(), m.counters[i].value,
               i + 1 < m.counters.size() ? "," : "");
  }
  out += "  },\n  \"gauges\": {\n";
  for (std::size_t i = 0; i < m.gauges.size(); ++i) {
    append_fmt(out, "    \"%s\": %" PRId64 "%s\n",
               json_escape(m.gauges[i].name).c_str(), m.gauges[i].value,
               i + 1 < m.gauges.size() ? "," : "");
  }
  out += "  },\n  \"histograms\": {\n";
  for (std::size_t i = 0; i < m.histograms.size(); ++i) {
    json_histogram(out, m.histograms[i]);
    out += i + 1 < m.histograms.size() ? ",\n" : "\n";
  }
  out += "  }";
}

}  // namespace

std::string to_json(const MetricsSnapshot& m) {
  std::string out = "{\n";
  json_metrics_body(out, m);
  out += "\n}\n";
  return out;
}

std::string to_json(const MetricsSnapshot& m, const TraceExport& trace) {
  std::string out = "{\n";
  json_metrics_body(out, m);
  append_fmt(out,
             ",\n  \"trace\": {\n    \"emitted\": %" PRIu64
             ",\n    \"dropped\": %" PRIu64 ",\n    \"events\": [\n",
             trace.emitted, trace.dropped);
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    append_fmt(out,
               "      {\"seq\": %" PRIu64 ", \"t_ns\": %" PRIu64
               ", \"kind\": \"%s\", \"a\": %u, \"b\": %" PRIu64 "}%s\n",
               e.seq, e.t_ns, to_string(e.kind), e.a, e.b,
               i + 1 < trace.events.size() ? "," : "");
  }
  out += "    ]\n  }\n}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& m) {
  std::string out;
  for (const auto& c : m.counters) {
    if (!c.help.empty()) {
      append_fmt(out, "# HELP %s %s\n", c.name.c_str(), c.help.c_str());
    }
    append_fmt(out, "# TYPE %s counter\n%s %" PRIu64 "\n", c.name.c_str(),
               c.name.c_str(), c.value);
  }
  for (const auto& g : m.gauges) {
    if (!g.help.empty()) {
      append_fmt(out, "# HELP %s %s\n", g.name.c_str(), g.help.c_str());
    }
    append_fmt(out, "# TYPE %s gauge\n%s %" PRId64 "\n", g.name.c_str(),
               g.name.c_str(), g.value);
  }
  for (const auto& h : m.histograms) {
    if (!h.help.empty()) {
      append_fmt(out, "# HELP %s %s\n", h.name.c_str(), h.help.c_str());
    }
    append_fmt(out, "# TYPE %s histogram\n", h.name.c_str());
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      if (b < h.bounds.size()) {
        append_fmt(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   h.name.c_str(), h.bounds[b], cumulative);
      } else {
        append_fmt(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                   h.name.c_str(), cumulative);
      }
    }
    append_fmt(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
               h.name.c_str(), h.sum, h.name.c_str(), h.count);
  }
  return out;
}

std::string export_global_json(bool with_trace) {
  const MetricsSnapshot m = Registry::global().scrape();
  if (!with_trace) {
    return to_json(m);
  }
  TraceExport t;
  t.events = TraceRing::global().snapshot();
  t.emitted = TraceRing::global().emitted();
  t.dropped = TraceRing::global().dropped();
  return to_json(m, t);
}

}  // namespace obs
