#include "pram/coop_search.hpp"

#include <cmath>

namespace pram {

std::uint64_t coop_search_rounds(std::size_t n, std::size_t p) {
  if (n <= 1) {
    return 1;
  }
  if (p <= 1) {
    return static_cast<std::uint64_t>(std::ceil(std::log2(double(n) + 1)));
  }
  return static_cast<std::uint64_t>(
      std::ceil(std::log2(double(n) + 1) / std::log2(double(p) + 1)));
}

}  // namespace pram
