#pragma once

#include <cstdint>
#include <string>

namespace pram {

/// Memory-access discipline of the simulated PRAM.
///
/// The simulator can *audit* algorithms against the declared model: an
/// algorithm that claims to be EREW must never have two virtual processors
/// touch the same shared cell in the same synchronous step.  The paper's
/// preprocessing is EREW, cooperative search is CREW, and only the
/// indirect-retrieval linking of Theorem 6 uses CRCW.
enum class Model : std::uint8_t {
  kErew,  ///< exclusive read, exclusive write
  kCrew,  ///< concurrent read, exclusive write
  kCrcw,  ///< concurrent read, concurrent write (arbitrary-winner)
};

[[nodiscard]] inline const char* to_string(Model m) {
  switch (m) {
    case Model::kErew: return "EREW";
    case Model::kCrew: return "CREW";
    case Model::kCrcw: return "CRCW";
  }
  return "?";
}

/// Work/depth accounting for a simulated PRAM computation.
///
/// `steps` is the parallel time (depth): one unit per synchronous parallel
/// instruction, with Brent's scheduling applied when a logical instruction
/// uses more virtual processors than the machine owns.  `work` is the total
/// number of processor-operations.  These are the quantities the paper's
/// theorems bound, so the benchmarks report them as the primary metric.
struct StepStats {
  std::uint64_t steps = 0;       ///< parallel time (Brent-adjusted)
  std::uint64_t work = 0;        ///< total processor-operations
  std::uint64_t instructions = 0;///< logical parallel instructions issued
  std::uint64_t max_active = 0;  ///< widest logical instruction seen
  std::uint64_t violations = 0;  ///< model-audit violations detected
  std::uint64_t degradations = 0;///< engine fall-backs that produced this run
                                 ///< (see Machine::note_degradation)
  std::uint64_t audit_checks = 0;///< audited SharedArray accesses examined

  void reset() { *this = StepStats{}; }

  StepStats& operator+=(const StepStats& o) {
    steps += o.steps;
    work += o.work;
    instructions += o.instructions;
    if (o.max_active > max_active) max_active = o.max_active;
    violations += o.violations;
    degradations += o.degradations;
    audit_checks += o.audit_checks;
    return *this;
  }
};

}  // namespace pram
