#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "pram/machine.hpp"
#include "pram/memory.hpp"
#include "pram/primitives.hpp"

namespace pram {

/// Number of rounds the cooperative (p+1)-ary search needs on an array of
/// size n with p processors: ceil(log(n+1) / log(p+1)).  This is Snir's
/// optimal CREW bound, Theta(log n / log p) for p >= 2.
[[nodiscard]] std::uint64_t coop_search_rounds(std::size_t n, std::size_t p);

/// Cooperative p-ary lower bound (Snir [16]): find the smallest index i in
/// sorted `a` with !(a[i] < y), i.e. a[i] >= y; returns a.size() if none.
///
/// CREW PRAM, O(log n / log p) rounds with `m.processors()` processors.
/// Each round probes p equally spaced pivots of the remaining range
/// (concurrent read of `y`, exclusive writes to private flag cells), then
/// the unique processor sitting at the boundary narrows the range.
template <typename T, typename Less = std::less<T>>
[[nodiscard]] std::size_t coop_lower_bound(Machine& m, std::span<const T> a,
                                           const T& y, Less less = Less{}) {
  const std::size_t n = a.size();
  const std::size_t p = m.processors();
  if (n == 0) {
    return 0;
  }
  if (p <= 1) {
    // Degenerate machine: plain binary search charged sequentially.
    std::size_t lo = 0, hi = n;
    std::uint64_t iters = 0;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (less(a[mid], y)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
      ++iters;
    }
    m.charge(iters == 0 ? 1 : iters, iters == 0 ? 1 : iters);
    return lo;
  }

  // Invariant: answer lies in [lo, hi] where hi may be n ("no such entry").
  SharedArray<std::uint8_t> below(p + 1);  // below[j]: pivot_j's key < y
  SharedArray<std::size_t> range(2);
  range[0] = 0;
  range[1] = n;
  while (range[1] - range[0] > 0) {
    const std::size_t lo = range[0];
    const std::size_t len = range[1] - range[0];
    if (len <= p) {
      // Final round: one processor per candidate cell.
      m.exec(len, [&](std::size_t pid) {
        const std::size_t i = lo + pid;
        const bool prev_below = (pid == 0) ? true : less(a[i - 1], y);
        const bool cur_below = less(a[i], y);
        if (prev_below && !cur_below) {
          range.write(0, i);
          range.write(1, i);
        }
      });
      // If every candidate is < y the answer is `hi` itself.
      m.exec(1, [&](std::size_t) {
        if (range.read(1) != range.read(0)) {
          range.write(0, range.read(1));
        }
      });
      break;
    }
    // Probe p interior pivots splitting [lo, lo+len) into p+1 chunks.
    m.exec(p, [&](std::size_t pid) {
      const std::size_t pos = lo + (pid + 1) * len / (p + 1);
      below.write(pid + 1, less(a[pos - 1], y) ? 1 : 0);
      if (pid == 0) {
        below.write(0, 1);  // sentinel: everything before lo is < y
      }
    });
    // The unique boundary j with below[j] && !below[j+1] narrows the range;
    // if all pivots are below, the last chunk remains.
    m.exec(p + 1, [&](std::size_t pid) {
      const bool cur = below.read(pid) != 0;
      const bool next = (pid == p) ? false : below.read(pid + 1) != 0;
      if (cur && !next) {
        const std::size_t new_lo = lo + pid * len / (p + 1);
        const std::size_t new_hi =
            (pid == p) ? lo + len : lo + (pid + 1) * len / (p + 1);
        range.write(0, new_lo);
        range.write(1, new_hi);
      }
    });
  }
  return range[0];
}

/// EREW cooperative lower bound.  The paper notes (after Theorem 1) that
/// on an EREW PRAM the search lower bound rises to Omega(log(n/p)); this
/// is the matching-up-to-additive-log-p upper bound:
///
///   1. broadcast y into p private cells (doubling copy, O(log p), EREW);
///   2. each processor binary-searches its own n/p block (disjoint cells,
///      O(log(n/p)));
///   3. a min-reduction finds the first block whose local successor is
///      real (O(log p)).
///
/// Total O(log p + log(n/p)) EREW steps, vs O(log n / log p) on CREW.
template <typename T, typename Less = std::less<T>>
[[nodiscard]] std::size_t erew_lower_bound(Machine& m, std::span<const T> a,
                                           const T& y, Less less = Less{}) {
  const std::size_t n = a.size();
  const std::size_t p = std::min(m.processors(), std::max<std::size_t>(1, n));
  if (n == 0) {
    return 0;
  }

  // Step 1: every processor gets a private copy of y.
  SharedArray<T> ys(p);
  broadcast(m, ys, y);

  // Step 2: private binary searches over disjoint blocks.
  const std::size_t block = (n + p - 1) / p;
  SharedArray<std::size_t> cand(p);
  m.exec_k(p, ceil_log2(block + 1) + 1, [&](std::size_t pid) {
    const std::size_t lo0 = pid * block;
    const std::size_t hi0 = std::min(n, lo0 + block);
    const T& yy = ys.read(pid);
    std::size_t lo = lo0, hi = hi0;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (less(a[mid], yy)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // `n` acts as "nothing >= y in my block".
    cand.write(pid, (lo0 < hi0 && lo < hi0) ? lo : n);
  });

  // Step 3: EREW min-reduction.
  for (std::size_t stride = 1; stride < p; stride *= 2) {
    const std::size_t pairs = (p - stride + 2 * stride - 1) / (2 * stride);
    m.exec(pairs, [&](std::size_t pid) {
      const std::size_t i = pid * 2 * stride;
      const std::size_t j = i + stride;
      if (j < p) {
        const std::size_t a0 = cand.read(i);
        const std::size_t b0 = cand.read(j);
        cand.write(i, std::min(a0, b0));
      }
    });
  }
  return cand[0];
}

}  // namespace pram
