#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pram/work_depth.hpp"

namespace pram {

/// How a `Machine` actually executes the virtual processors of one step.
enum class Engine : std::uint8_t {
  kSequential,  ///< deterministic in-order simulation (default; exact audit)
  kThreads,     ///< std::thread pool; real concurrency, audit disabled
};

/// A simulated PRAM with `p` virtual processors.
///
/// The unit of execution is `exec(active, fn)`: one *logical* synchronous
/// parallel instruction in which virtual processors `0 .. active-1` each run
/// `fn(pid)`.  Time is charged with Brent's principle: a logical instruction
/// over `active` virtual processors costs `ceil(active / p)` machine steps
/// and `active` work.  This is exactly the accounting used in the paper when
/// it says e.g. "assign s_i * (2b+1)^l processors": algorithms may request
/// any number of virtual processors, and the simulator reports the time a
/// p-processor PRAM would need.
///
/// Within one logical instruction, processors conceptually run in lockstep.
/// The sequential engine executes them in pid order; algorithms must not
/// rely on that order (that would be a read-after-write hazard on a real
/// PRAM).  The `SharedArray` auditor (memory.hpp) detects such hazards as
/// well as EREW/CREW discipline violations.
class Machine {
 public:
  explicit Machine(std::size_t p, Model model = Model::kCrew,
                   Engine engine = Engine::kSequential);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] std::size_t processors() const { return p_; }
  [[nodiscard]] Model model() const { return model_; }
  [[nodiscard]] Engine engine() const { return engine_; }

  /// One logical parallel instruction over `active` virtual processors.
  /// `fn` is invoked as `fn(pid)` for every pid in `[0, active)`.
  template <typename Fn>
  void exec(std::size_t active, Fn&& fn) {
    if (active == 0) {
      return;
    }
    begin_instruction(active);
    if (engine_ == Engine::kThreads && workers_.size() > 1 && active > 1) {
      run_threaded(active, std::function<void(std::size_t)>(
                               [&fn](std::size_t pid) { fn(pid); }));
    } else {
      for (std::size_t pid = 0; pid < active; ++pid) {
        fn(pid);
      }
    }
    end_instruction();
  }

  /// One logical parallel instruction in which each of the `active` virtual
  /// processors performs up to `k` elementary operations (e.g. a private
  /// binary search).  Charged as `k * ceil(active/p)` steps and `active * k`
  /// work — an upper bound consistent with Brent's principle.
  template <typename Fn>
  void exec_k(std::size_t active, std::uint64_t k, Fn&& fn) {
    if (active == 0 || k == 0) {
      return;
    }
    stats_.instructions += 1;
    stats_.steps += k * ((active + p_ - 1) / p_);
    stats_.work += static_cast<std::uint64_t>(active) * k;
    stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active);
    if (engine_ == Engine::kThreads && workers_.size() > 1 && active > 1) {
      run_threaded(active, std::function<void(std::size_t)>(
                               [&fn](std::size_t pid) { fn(pid); }));
    } else {
      for (std::size_t pid = 0; pid < active; ++pid) {
        fn(pid);
      }
    }
  }

  /// Sequential (single-processor) region executed by processor 0; charges
  /// `units` steps and `units` work.  Used for the paper's explicitly
  /// sequential phases (e.g. Step 5 of the explicit search).
  template <typename Fn>
  void sequential(std::uint64_t units, Fn&& fn) {
    stats_.steps += units;
    stats_.work += units;
    stats_.instructions += 1;
    if (stats_.max_active == 0) stats_.max_active = 1;
    fn();
  }

  /// Charge accounting without running user code (for analytically counted
  /// phases, e.g. a constant-time pointer dereference by one processor).
  void charge(std::uint64_t steps, std::uint64_t work) {
    stats_.steps += steps;
    stats_.work += work;
    stats_.instructions += 1;
  }

  [[nodiscard]] const StepStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Current step id; used by the memory auditor to detect same-step
  /// conflicts.  Increases once per logical instruction.
  [[nodiscard]] std::uint64_t instruction_id() const {
    return stats_.instructions;
  }

  /// Record a model-audit violation (called by SharedArray).
  void report_violation(const std::string& what);

  /// First violation message, empty if none.
  [[nodiscard]] const std::string& first_violation() const {
    return first_violation_;
  }

 private:
  void begin_instruction(std::size_t active);
  void end_instruction();
  void run_threaded(std::size_t active,
                    const std::function<void(std::size_t)>& fn);
  void worker_loop(std::size_t worker_id);

  std::size_t p_;
  Model model_;
  Engine engine_;
  StepStats stats_;
  std::string first_violation_;
  std::mutex violation_mutex_;

  // Thread-pool state (Engine::kThreads only).
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* pool_fn_ = nullptr;
  std::size_t pool_active_ = 0;
  std::uint64_t pool_generation_ = 0;
  std::size_t pool_remaining_ = 0;
  std::atomic<std::size_t> pool_next_{0};
  bool pool_shutdown_ = false;
};

}  // namespace pram
