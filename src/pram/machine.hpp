#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "pram/work_depth.hpp"

namespace pram {

/// How a `Machine` actually executes the virtual processors of one step.
enum class Engine : std::uint8_t {
  kSequential,  ///< deterministic in-order simulation (default; exact audit)
  kThreads,     ///< std::thread pool; real concurrency, audit disabled
};

/// Thrown by `exec` / `exec_k` when the machine's deadline (set via
/// `set_deadline`) has expired.  `run_resilient` catches it and re-executes
/// the algorithm on the sequential engine.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A simulated PRAM with `p` virtual processors.
///
/// The unit of execution is `exec(active, fn)`: one *logical* synchronous
/// parallel instruction in which virtual processors `0 .. active-1` each run
/// `fn(pid)`.  Time is charged with Brent's principle: a logical instruction
/// over `active` virtual processors costs `ceil(active / p)` machine steps
/// and `active` work.  This is exactly the accounting used in the paper when
/// it says e.g. "assign s_i * (2b+1)^l processors": algorithms may request
/// any number of virtual processors, and the simulator reports the time a
/// p-processor PRAM would need.
///
/// Within one logical instruction, processors conceptually run in lockstep.
/// The sequential engine executes them in pid order; algorithms must not
/// rely on that order (that would be a read-after-write hazard on a real
/// PRAM).  The `SharedArray` auditor (memory.hpp) detects such hazards as
/// well as EREW/CREW discipline violations.
///
/// Fault model: a machine can carry a *deadline* (watchdog) — when it
/// expires, the next logical instruction throws DeadlineExceeded (thread
/// workers also poll it between chunks mid-instruction).  Exceptions thrown
/// by virtual processors under the thread engine are captured and rethrown
/// on the calling thread once the instruction has drained, so a faulty
/// worker can never tear down the process.  `run_resilient` builds graceful
/// degradation on top of both.
class Machine {
 public:
  explicit Machine(std::size_t p, Model model = Model::kCrew,
                   Engine engine = Engine::kSequential);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] std::size_t processors() const { return p_; }
  [[nodiscard]] Model model() const { return model_; }
  [[nodiscard]] Engine engine() const { return engine_; }

  /// One logical parallel instruction over `active` virtual processors.
  /// `fn` is invoked as `fn(pid)` for every pid in `[0, active)`.
  template <typename Fn>
  void exec(std::size_t active, Fn&& fn) {
    if (active == 0) {
      return;
    }
    begin_instruction(active);
    dispatch(active, fn);
    end_instruction();
  }

  /// One logical parallel instruction in which each of the `active` virtual
  /// processors performs up to `k` elementary operations (e.g. a private
  /// binary search).  Charged as `k * ceil(active/p)` steps and `active * k`
  /// work — an upper bound consistent with Brent's principle.
  template <typename Fn>
  void exec_k(std::size_t active, std::uint64_t k, Fn&& fn) {
    if (active == 0 || k == 0) {
      return;
    }
    check_deadline();
    stats_.instructions += 1;
    stats_.steps += k * ((active + p_ - 1) / p_);
    stats_.work += static_cast<std::uint64_t>(active) * k;
    stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active);
    dispatch(active, fn);
  }

  /// Sequential (single-processor) region executed by processor 0; charges
  /// `units` steps and `units` work.  Used for the paper's explicitly
  /// sequential phases (e.g. Step 5 of the explicit search).
  template <typename Fn>
  void sequential(std::uint64_t units, Fn&& fn) {
    check_deadline();
    stats_.steps += units;
    stats_.work += units;
    stats_.instructions += 1;
    if (stats_.max_active == 0) stats_.max_active = 1;
    fn();
  }

  /// Charge accounting without running user code (for analytically counted
  /// phases, e.g. a constant-time pointer dereference by one processor).
  void charge(std::uint64_t steps, std::uint64_t work) {
    stats_.steps += steps;
    stats_.work += work;
    stats_.instructions += 1;
  }

  [[nodiscard]] const StepStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Current step id; used by the memory auditor to detect same-step
  /// conflicts.  Increases once per logical instruction.
  [[nodiscard]] std::uint64_t instruction_id() const {
    return stats_.instructions;
  }

  /// True if SharedArray auditing is sound on this machine.  The thread
  /// engine runs virtual processors concurrently, so the auditor's
  /// bookkeeping would itself be a data race; auditing is sequential-only.
  [[nodiscard]] bool audit_supported() const {
    return engine_ != Engine::kThreads;
  }

  /// Count one audited access (called by SharedArray's note_read /
  /// note_write).  Audit runs only on the sequential engine
  /// (audit_supported()), so a plain increment is race-free.
  void note_audit_check() { ++stats_.audit_checks; }

  /// Record a model-audit violation (called by SharedArray).  The total is
  /// counted in stats().violations; up to kMaxViolationLog *distinct*
  /// messages are retained and exposed via violations_seen().
  void report_violation(const std::string& what);

  /// First violation message, empty if none.
  [[nodiscard]] const std::string& first_violation() const {
    return first_violation_;
  }

  /// Bounded list of distinct violation messages (insertion order).
  [[nodiscard]] const std::vector<std::string>& violations_seen() const {
    return violation_log_;
  }

  /// Cap on violations_seen(); further distinct messages only count.
  static constexpr std::size_t kMaxViolationLog = 16;

  /// Record a non-fatal operational note (e.g. "audit refused under the
  /// thread engine", "fell back to the sequential engine").
  void note_diagnostic(std::string what);
  [[nodiscard]] const std::vector<std::string>& diagnostics() const {
    return diagnostics_;
  }

  /// Mark this machine as the fall-back executor of a degraded run:
  /// increments stats().degradations and records `reason`.
  void note_degradation(const std::string& reason);

  /// Arm the watchdog: instructions issued after `budget` has elapsed
  /// (from now) throw DeadlineExceeded; thread-pool workers also poll the
  /// deadline between chunks inside long instructions.
  void set_deadline(std::chrono::nanoseconds budget);
  void clear_deadline() { deadline_armed_ = false; }
  [[nodiscard]] bool deadline_expired() const {
    return deadline_armed_ &&
           std::chrono::steady_clock::now() >= deadline_at_;
  }

 private:
  template <typename Fn>
  void dispatch(std::size_t active, Fn& fn) {
    if (engine_ == Engine::kThreads && workers_.size() > 1 && active > 1) {
      run_threaded(active, std::function<void(std::size_t)>(
                               [&fn](std::size_t pid) { fn(pid); }));
    } else {
      for (std::size_t pid = 0; pid < active; ++pid) {
        fn(pid);
      }
    }
  }

  void begin_instruction(std::size_t active);
  void end_instruction();
  void check_deadline();
  void run_threaded(std::size_t active,
                    const std::function<void(std::size_t)>& fn);
  void worker_loop(std::size_t worker_id);

  std::size_t p_;
  Model model_;
  Engine engine_;
  StepStats stats_;
  std::string first_violation_;
  std::vector<std::string> violation_log_;
  std::vector<std::string> diagnostics_;
  std::mutex violation_mutex_;

  bool deadline_armed_ = false;
  std::chrono::steady_clock::time_point deadline_at_{};

  // Thread-pool state (Engine::kThreads only).
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* pool_fn_ = nullptr;
  std::size_t pool_active_ = 0;
  std::uint64_t pool_generation_ = 0;
  std::size_t pool_remaining_ = 0;
  std::atomic<std::size_t> pool_next_{0};
  std::atomic<bool> pool_abort_{false};  ///< deadline/exception mid-drain
  std::exception_ptr pool_error_;        ///< first worker exception
  bool pool_shutdown_ = false;
};

/// Outcome report of a `run_resilient` call.
struct RunReport {
  bool degraded = false;      ///< the fall-back machine produced the result
  std::string reason;         ///< why the primary run was abandoned
  StepStats stats;            ///< stats of the machine that produced the
                              ///< result (degradations > 0 iff degraded)
  StepStats abandoned_stats;  ///< partial stats of the failed attempt
};

/// Graceful degradation: run `algo(machine)` on a machine with the
/// requested engine, guarded by `deadline` (0 disables the watchdog).  If
/// the run throws (worker exception, deadline) or trips a model-audit
/// violation, the algorithm is transparently re-executed on a fresh
/// *sequential* machine with the same processor count and model; the
/// fall-back machine's stats carry `degradations == 1` so callers and
/// benches can see the degradation.  Returns whatever `algo` returns.
///
/// `algo` must be re-runnable from scratch (idempotent up to its result) —
/// true of all searches in this repo, which only write their own outputs.
template <typename Algo>
auto run_resilient(std::size_t p, Model model, Engine engine,
                   std::chrono::nanoseconds deadline, Algo&& algo,
                   RunReport* report = nullptr)
    -> std::invoke_result_t<Algo&, Machine&> {
  using R = std::invoke_result_t<Algo&, Machine&>;
  static_assert(!std::is_void_v<R>,
                "run_resilient needs a result to return; have the algorithm "
                "return its output (or a dummy value)");
  std::string reason;
  {
    Machine primary(p, model, engine);
    if (deadline.count() > 0) {
      primary.set_deadline(deadline);
    }
    try {
      R result = algo(primary);
      if (primary.stats().violations == 0) {
        if (report != nullptr) {
          report->degraded = false;
          report->reason.clear();
          report->stats = primary.stats();
          report->abandoned_stats = StepStats{};
        }
        return result;
      }
      reason = "audit violation: " + primary.first_violation();
    } catch (const DeadlineExceeded& e) {
      reason = std::string("deadline: ") + e.what();
    } catch (const std::exception& e) {
      reason = std::string("worker exception: ") + e.what();
    }
    if (report != nullptr) {
      report->abandoned_stats = primary.stats();
    }
  }
  Machine fallback(p, model, Engine::kSequential);
  fallback.note_degradation(reason);
  R result = algo(fallback);
  if (report != nullptr) {
    report->degraded = true;
    report->reason = reason;
    report->stats = fallback.stats();
  }
  return result;
}

}  // namespace pram
