#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pram/machine.hpp"
#include "pram/memory.hpp"

namespace pram {

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] inline std::size_t ceil_pow2(std::size_t x) {
  return std::bit_ceil(x == 0 ? std::size_t{1} : x);
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] inline std::uint32_t ceil_log2(std::size_t x) {
  return static_cast<std::uint32_t>(std::bit_width(ceil_pow2(x)) - 1);
}

/// EREW broadcast: replicate `value` into all cells of `out`.
/// Doubling copy, O(log n) instructions, O(n) work.
template <typename T>
void broadcast(Machine& m, SharedArray<T>& out, const T& value) {
  const std::size_t n = out.size();
  if (n == 0) {
    return;
  }
  m.exec(1, [&](std::size_t) { out.write(0, value); });
  for (std::size_t have = 1; have < n; have *= 2) {
    const std::size_t copy = std::min(have, n - have);
    m.exec(copy, [&](std::size_t pid) {
      out.write(have + pid, out.read(pid));
    });
  }
}

/// EREW tree reduction of `a` under associative `op`; returns the result on
/// the host.  O(log n) instructions, O(n) work.  `a` is left unmodified.
template <typename T, typename Op>
[[nodiscard]] T reduce(Machine& m, const SharedArray<T>& a, T identity,
                       Op op) {
  const std::size_t n = a.size();
  if (n == 0) {
    return identity;
  }
  SharedArray<T> buf(n);
  m.exec(n, [&](std::size_t pid) { buf.write(pid, a.read(pid)); });
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    const std::size_t pairs = (n - stride + 2 * stride - 1) / (2 * stride);
    m.exec(pairs, [&](std::size_t pid) {
      const std::size_t i = pid * 2 * stride;
      const std::size_t j = i + stride;
      if (j < n) {
        buf.write(i, op(buf.read(i), buf.read(j)));
      }
    });
  }
  return buf[0];
}

/// EREW work-efficient exclusive scan (Blelloch upsweep/downsweep) of `a`
/// under associative `op` with identity `identity`, written to `out`.
/// O(log n) instructions, O(n) work.
template <typename T, typename Op>
void exclusive_scan(Machine& m, const SharedArray<T>& a, SharedArray<T>& out,
                    T identity, Op op) {
  const std::size_t n = a.size();
  out.resize(n);
  if (n == 0) {
    return;
  }
  const std::size_t np = ceil_pow2(n);
  SharedArray<T> buf(np, identity);
  m.exec(n, [&](std::size_t pid) { buf.write(pid, a.read(pid)); });
  // Upsweep.
  for (std::size_t stride = 1; stride < np; stride *= 2) {
    const std::size_t pairs = np / (2 * stride);
    m.exec(pairs, [&](std::size_t pid) {
      const std::size_t right = (pid + 1) * 2 * stride - 1;
      const std::size_t left = right - stride;
      buf.write(right, op(buf.read(left), buf.read(right)));
    });
  }
  // Downsweep.
  m.exec(1, [&](std::size_t) { buf.write(np - 1, identity); });
  for (std::size_t stride = np / 2; stride >= 1; stride /= 2) {
    const std::size_t pairs = np / (2 * stride);
    m.exec(pairs, [&](std::size_t pid) {
      const std::size_t right = (pid + 1) * 2 * stride - 1;
      const std::size_t left = right - stride;
      const T tmp = buf.read(left);
      buf.write(left, buf.read(right));
      buf.write(right, op(tmp, buf.read(right)));
    });
    if (stride == 1) {
      break;
    }
  }
  m.exec(n, [&](std::size_t pid) { out.write(pid, buf.read(pid)); });
}

/// Inclusive scan derived from the exclusive scan: out[i] = op(excl[i], a[i]).
template <typename T, typename Op>
void inclusive_scan(Machine& m, const SharedArray<T>& a, SharedArray<T>& out,
                    T identity, Op op) {
  exclusive_scan(m, a, out, identity, op);
  m.exec(a.size(), [&](std::size_t pid) {
    out.write(pid, op(out.read(pid), a.read(pid)));
  });
}

/// EREW stream compaction: write the indices i with flags[i] != 0 into
/// `out_indices` (resized to the number of survivors), preserving order.
/// O(log n) instructions, O(n) work.
std::size_t pack_indices(Machine& m, const SharedArray<std::uint8_t>& flags,
                         SharedArray<std::size_t>& out_indices);

/// CREW parallel merge by cross-ranking: merges sorted `a` and `b` into
/// `out` (resized to |a|+|b|).  One instruction of width |a|+|b| in which
/// each virtual processor performs a private binary search:
/// O(log(|a|+|b|)) time with |a|+|b| processors, O(n log n) work.
/// Ties are broken towards `a` (stable for a-then-b concatenation).
template <typename T, typename Less = std::less<T>>
void merge_parallel(Machine& m, std::span<const T> a, std::span<const T> b,
                    std::vector<T>& out, Less less = Less{}) {
  const std::size_t na = a.size(), nb = b.size();
  out.resize(na + nb);
  if (na + nb == 0) {
    return;
  }
  const std::uint64_t k = ceil_log2(na + nb) + 1;
  m.exec_k(na + nb, k, [&](std::size_t pid) {
    if (pid < na) {
      // rank of a[pid] in b: number of b-elements strictly less than a[pid]
      // (ties go to a).
      std::size_t lo = 0, hi = nb;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (less(b[mid], a[pid])) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      out[pid + lo] = a[pid];
    } else {
      const std::size_t j = pid - na;
      // rank of b[j] in a: number of a-elements <= b[j] (ties go to a).
      std::size_t lo = 0, hi = na;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (!less(b[j], a[mid])) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      out[j + lo] = b[j];
    }
  });
}

}  // namespace pram
