#include "pram/primitives.hpp"

namespace pram {

std::size_t pack_indices(Machine& m, const SharedArray<std::uint8_t>& flags,
                         SharedArray<std::size_t>& out_indices) {
  const std::size_t n = flags.size();
  if (n == 0) {
    out_indices.resize(0);
    return 0;
  }
  SharedArray<std::size_t> ones(n);
  m.exec(n, [&](std::size_t pid) {
    ones.write(pid, flags.read(pid) != 0 ? std::size_t{1} : std::size_t{0});
  });
  SharedArray<std::size_t> offsets;
  exclusive_scan(m, ones, offsets, std::size_t{0},
                 [](std::size_t x, std::size_t y) { return x + y; });
  const std::size_t total =
      offsets[n - 1] + (flags[n - 1] != 0 ? std::size_t{1} : std::size_t{0});
  out_indices.resize(total);
  m.exec(n, [&](std::size_t pid) {
    if (flags.read(pid) != 0) {
      out_indices.write(offsets.read(pid), pid);
    }
  });
  return total;
}

}  // namespace pram
