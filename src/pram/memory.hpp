#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "pram/machine.hpp"
#include "pram/work_depth.hpp"

namespace pram {

/// Shared PRAM memory with optional model auditing.
///
/// When auditing is enabled (sequential engine only), every `read` / `write`
/// records which logical instruction touched each cell, and conflicts are
/// checked against the machine's declared model:
///
///   * EREW: at most one access (read or write) per cell per instruction.
///   * CREW: any number of reads, but at most one write, and never a read
///     and a write of the same cell in the same instruction (that would be
///     a race whose outcome depends on intra-step ordering).
///   * CRCW: concurrent writes allowed (arbitrary winner); read+write in
///     the same instruction is still flagged, because even CRCW PRAMs give
///     the reader the *old* value, which a sequential simulation cannot
///     reproduce if the writer happens to be a lower pid.
///
/// Unaudited access is available via `raw()` / `operator[]` for hot paths
/// and for host-side (non-PRAM) code such as test oracles.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  explicit SharedArray(std::size_t size, T init = T{})
      : data_(size, std::move(init)) {}

  void assign(std::size_t size, const T& value) {
    data_.assign(size, value);
    if (audit_) {
      reads_.assign(size, kNever);
      writes_.assign(size, kNever);
    }
  }

  void resize(std::size_t size) {
    data_.resize(size);
    if (audit_) {
      reads_.resize(size, kNever);
      writes_.resize(size, kNever);
    }
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Enable conflict auditing against `machine`'s model.  The machine must
  /// outlive this array (or auditing must be disabled first).
  ///
  /// Auditing is refused under the thread engine: the `reads_`/`writes_`
  /// bookkeeping is unsynchronized by design (it sits on the sequential
  /// hot path), so mutating it from concurrent workers would be a data
  /// race in the auditor itself.  The refusal is recorded as a machine
  /// diagnostic and `false` is returned; the array stays unaudited.
  bool enable_audit(Machine* machine, std::string name) {
    if (machine != nullptr && !machine->audit_supported()) {
      machine->note_diagnostic(
          "audit disabled for SharedArray \"" + name +
          "\": the thread engine runs virtual processors concurrently and "
          "the audit bookkeeping is unsynchronized; use Engine::kSequential "
          "for audited runs");
      audit_ = nullptr;
      return false;
    }
    audit_ = machine;
    name_ = std::move(name);
    reads_.assign(data_.size(), kNever);
    writes_.assign(data_.size(), kNever);
    return true;
  }

  [[nodiscard]] bool audit_enabled() const { return audit_ != nullptr; }

  void disable_audit() {
    audit_ = nullptr;
    reads_.clear();
    writes_.clear();
    reads_.shrink_to_fit();
    writes_.shrink_to_fit();
  }

  /// Audited read by a virtual processor during the current instruction.
  [[nodiscard]] const T& read(std::size_t i) const {
    if (audit_) {
      note_read(i);
    }
    return data_[i];
  }

  /// Audited write by a virtual processor during the current instruction.
  void write(std::size_t i, T value) {
    if (audit_) {
      note_write(i);
    }
    data_[i] = std::move(value);
  }

  /// Unaudited access (host-side code, oracles, setup).
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::vector<T>& raw() { return data_; }
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

 private:
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  void note_read(std::size_t i) const {
    audit_->note_audit_check();
    const std::uint64_t now = audit_->instruction_id();
    const Model model = audit_->model();
    if (model == Model::kErew && reads_[i] == now) {
      audit_->report_violation("EREW concurrent read of " + name_ + "[" +
                               std::to_string(i) + "]");
    }
    if (model != Model::kCrcw && writes_[i] == now) {
      audit_->report_violation(std::string(to_string(model)) +
                               " read-after-write hazard on " + name_ + "[" +
                               std::to_string(i) + "]");
    }
    reads_[i] = now;
  }

  void note_write(std::size_t i) {
    audit_->note_audit_check();
    const std::uint64_t now = audit_->instruction_id();
    const Model model = audit_->model();
    if (model != Model::kCrcw && writes_[i] == now) {
      audit_->report_violation(std::string(to_string(model)) +
                               " concurrent write to " + name_ + "[" +
                               std::to_string(i) + "]");
    }
    if (model == Model::kErew && reads_[i] == now) {
      audit_->report_violation("EREW write-after-read hazard on " + name_ +
                               "[" + std::to_string(i) + "]");
    }
    writes_[i] = now;
  }

  std::vector<T> data_;
  Machine* audit_ = nullptr;
  std::string name_;
  mutable std::vector<std::uint64_t> reads_;
  std::vector<std::uint64_t> writes_;
};

}  // namespace pram
