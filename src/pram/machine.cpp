#include "pram/machine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace pram {

namespace {

/// Simulator metrics (DESIGN.md §10): lifetime StepStats totals, flushed
/// once per Machine at destruction.  The simulation hot loops (exec /
/// exec_k) stay untouched — a machine runs thousands to millions of
/// instructions, so ~8 relaxed adds at teardown are free.
struct MachineMetrics {
  obs::Counter machines;
  obs::Counter steps;
  obs::Counter work;
  obs::Counter instructions;
  obs::Counter violations;
  obs::Counter degradations;
  obs::Counter audit_checks;
  obs::Gauge max_active;
};

MachineMetrics& machine_metrics() {
  auto& r = obs::Registry::global();
  static MachineMetrics m{
      r.counter("pram_machines_total", "Machines that executed instructions"),
      r.counter("pram_steps_total", "Parallel steps (Brent-adjusted)"),
      r.counter("pram_work_total", "Processor-operations"),
      r.counter("pram_instructions_total", "Logical parallel instructions"),
      r.counter("pram_violations_total", "Model-audit violations"),
      r.counter("pram_degradations_total", "Engine fall-backs"),
      r.counter("pram_audit_checks_total",
                "Audited SharedArray accesses examined"),
      r.gauge("pram_max_active", "Widest logical instruction ever seen"),
  };
  return m;
}

std::size_t worker_count_for(Engine engine) {
  if (engine != Engine::kThreads) {
    return 0;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace

Machine::Machine(std::size_t p, Model model, Engine engine)
    : p_(std::max<std::size_t>(1, p)), model_(model), engine_(engine) {
  const std::size_t workers = worker_count_for(engine);
  if (workers > 1) {
    workers_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

Machine::~Machine() {
  if (stats_.instructions > 0) {
    MachineMetrics& m = machine_metrics();
    m.machines.inc();
    m.steps.add(stats_.steps);
    m.work.add(stats_.work);
    m.instructions.add(stats_.instructions);
    m.violations.add(stats_.violations);
    m.degradations.add(stats_.degradations);
    m.audit_checks.add(stats_.audit_checks);
    m.max_active.set_max(static_cast<std::int64_t>(stats_.max_active));
  }
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_shutdown_ = true;
    }
    pool_cv_.notify_all();
    for (auto& t : workers_) {
      t.join();
    }
  }
}

void Machine::check_deadline() {
  if (deadline_expired()) {
    throw DeadlineExceeded("machine deadline expired before instruction " +
                           std::to_string(stats_.instructions + 1));
  }
}

void Machine::begin_instruction(std::size_t active) {
  check_deadline();
  stats_.instructions += 1;
  stats_.steps += (active + p_ - 1) / p_;  // Brent's scheduling principle
  stats_.work += active;
  stats_.max_active = std::max<std::uint64_t>(stats_.max_active, active);
}

void Machine::end_instruction() {}

void Machine::set_deadline(std::chrono::nanoseconds budget) {
  deadline_armed_ = true;
  deadline_at_ = std::chrono::steady_clock::now() + budget;
}

void Machine::report_violation(const std::string& what) {
  std::lock_guard<std::mutex> lock(violation_mutex_);
  stats_.violations += 1;
  if (first_violation_.empty()) {
    first_violation_ = what;
  }
  if (violation_log_.size() < kMaxViolationLog &&
      std::find(violation_log_.begin(), violation_log_.end(), what) ==
          violation_log_.end()) {
    violation_log_.push_back(what);
  }
}

void Machine::note_diagnostic(std::string what) {
  std::lock_guard<std::mutex> lock(violation_mutex_);
  diagnostics_.push_back(std::move(what));
}

void Machine::note_degradation(const std::string& reason) {
  // Reached from the caller/watchdog side while workers may still be
  // draining, so the counter needs the same lock as the other
  // concurrently-updated bookkeeping (violations, diagnostics).
  std::lock_guard<std::mutex> lock(violation_mutex_);
  stats_.degradations += 1;
  diagnostics_.push_back("degraded to sequential engine: " + reason);
}

void Machine::run_threaded(std::size_t active,
                           const std::function<void(std::size_t)>& fn) {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  pool_fn_ = &fn;
  pool_active_ = active;
  pool_next_.store(0, std::memory_order_relaxed);
  pool_abort_.store(false, std::memory_order_relaxed);
  pool_error_ = nullptr;
  pool_remaining_ = workers_.size();
  ++pool_generation_;
  pool_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pool_remaining_ == 0; });
  pool_fn_ = nullptr;
  // Surface mid-instruction faults on the calling thread, worker
  // exceptions first (a deadline abort may be a side effect of one).
  if (pool_error_ != nullptr) {
    std::exception_ptr err = pool_error_;
    pool_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
  if (pool_abort_.load(std::memory_order_relaxed)) {
    lock.unlock();
    throw DeadlineExceeded("machine deadline expired inside instruction " +
                           std::to_string(stats_.instructions));
  }
}

void Machine::worker_loop(std::size_t /*worker_id*/) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t active = 0;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_cv_.wait(lock, [&] {
        return pool_shutdown_ || pool_generation_ != seen_generation;
      });
      if (pool_shutdown_) {
        return;
      }
      seen_generation = pool_generation_;
      fn = pool_fn_;
      active = pool_active_;
    }
    // Grab chunks of virtual processors until the instruction is drained,
    // a worker faults, or the watchdog fires.
    constexpr std::size_t kChunk = 256;
    while (!pool_abort_.load(std::memory_order_relaxed)) {
      if (deadline_expired()) {
        pool_abort_.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t begin =
          pool_next_.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= active) {
        break;
      }
      const std::size_t end = std::min(active, begin + kChunk);
      try {
        for (std::size_t pid = begin; pid < end; ++pid) {
          (*fn)(pid);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(pool_mutex_);
          if (pool_error_ == nullptr) {
            pool_error_ = std::current_exception();
          }
        }
        pool_abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (--pool_remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace pram
