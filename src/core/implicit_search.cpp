#include "core/implicit_search.hpp"

#include <algorithm>
#include <cassert>

#include "pram/coop_search.hpp"
#include "pram/memory.hpp"

namespace coop {

namespace {

/// Step 3 for the implicit case: compute find(y, v) for EVERY node of the
/// block in one logical instruction (paper Section 2.3: processors are
/// assigned to all nodes of U, increasing the processor count to
/// 2^{h_i} s_i^2 = O(p)).
void hop_all_nodes(const CoopStructure& cs, pram::Machine& m,
                   const Substructure& sub, const HopBlock& block,
                   std::size_t j, std::size_t root_pos, Key y,
                   std::vector<std::size_t>& found) {
  const fc::Structure& s = cs.cascade();
  const std::size_t nn = block.nodes.size();
  found.assign(nn, std::size_t(-1));
  found[0] = root_pos;

  struct NodePlan {
    const fc::AugCatalog* aug;
    detail::Range range;
    std::size_t offset;
  };
  std::vector<NodePlan> plan(nn);
  std::size_t total = 0;
  for (std::size_t z = 1; z < nn; ++z) {
    const NodeId v = block.nodes[z];
    const fc::AugCatalog& a = s.aug(v);
    const auto k = static_cast<std::size_t>(block.skel_at(j, z));
    plan[z] = NodePlan{&a,
                       detail::hop_range(cs.params(), sub.i,
                                         block.level_of[z], k, a.size()),
                       total};
    total += plan[z].range.width();
  }

  pram::SharedArray<std::size_t> out(nn, std::size_t(-1));
  m.exec(total, [&](std::size_t pid) {
    std::size_t z = 1;
    while (z + 1 < nn && plan[z + 1].offset <= pid) {
      ++z;
    }
    const NodePlan& np = plan[z];
    const std::size_t g = np.range.lo + (pid - np.offset);
    const auto& keys = np.aug->keys;
    const bool below_prev = (g == 0) || keys[g - 1] < y;
    if (below_prev && keys[g] >= y) {
      out.write(z, g);
    }
  });
  for (std::size_t z = 1; z < nn; ++z) {
    found[z] = out[z];
    assert(found[z] != std::size_t(-1) &&
           "Lemma 3 violated: find outside the processor range");
  }
}

/// Detect the unique right->left boundary in the inorder sequence of
/// branch values (with virtual sentinels: right before the first node,
/// left after the last), and return the bottom-level block node adjacent
/// to the boundary — the next hop root.
std::size_t boundary_bottom_node(pram::Machine& m, const HopBlock& block,
                                 const std::vector<std::uint8_t>& branch) {
  const std::size_t n = block.inorder.size();
  pram::SharedArray<std::size_t> hit(1, std::size_t(-1));
  m.exec(n + 1, [&](std::size_t g) {
    const bool left_is_right =
        (g == 0) ||
        branch[static_cast<std::size_t>(block.inorder[g - 1])] == 1;
    const bool right_is_left =
        (g == n) || branch[static_cast<std::size_t>(block.inorder[g])] == 0;
    if (left_is_right && right_is_left) {
      hit.write(0, g);
    }
  });
  const std::size_t g = hit[0];
  assert(g != std::size_t(-1) &&
         "branch values violate the consistency assumption");
  // Exactly one of the two boundary neighbours lies on the bottom level.
  if (g > 0) {
    const auto z = static_cast<std::size_t>(block.inorder[g - 1]);
    if (block.level_of[z] == block.height) {
      return z;
    }
  }
  assert(g < n);
  const auto z = static_cast<std::size_t>(block.inorder[g]);
  assert(block.level_of[z] == block.height);
  return z;
}

CoopSearchResult implicit_impl(const CoopStructure& cs, pram::Machine& m,
                               Key y, const HopResolver& resolver,
                               const fc::BranchFn& seq_branch) {
  const fc::Structure& s = cs.cascade();
  const cat::Tree& tree = s.tree();
  assert(tree.max_degree() <= 2 && "implicit search requires a binary tree");

  CoopSearchResult r;
  const Substructure& sub = cs.for_processors(m.processors());
  r.substructure_used = sub.i;

  NodeId v = tree.root();
  const auto& root_keys = s.aug(v).keys;
  std::size_t pos =
      pram::coop_lower_bound<Key>(m, std::span<const Key>(root_keys), y);
  r.path.push_back(v);
  r.aug_index.push_back(pos);
  r.proper_index.push_back(s.to_proper(v, pos));

  std::vector<std::size_t> found;
  std::vector<std::uint8_t> branch;
  while (!tree.is_leaf(v) && tree.depth(v) < sub.trunc_level &&
         sub.block_of[v] >= 0) {
    const HopBlock& block =
        sub.blocks[static_cast<std::size_t>(sub.block_of[v])];
    const std::size_t t = s.aug(block.root).size();

    const auto choice = detail::choose_sample(m, block, t, sub.s, pos);
    hop_all_nodes(cs, m, sub, block, choice.j, pos, y, found);

    branch.assign(block.nodes.size(), 0);
    HopView view{&cs, &block, found};
    resolver(m, view, branch);

    const std::size_t bottom = boundary_bottom_node(m, block, branch);

    // Reconstruct the path inside the block (root -> bottom) and record
    // the finds along it.
    m.charge(1, block.height);
    std::vector<std::size_t> chain;
    for (std::size_t z = bottom; z != 0;
         z = static_cast<std::size_t>(block.parent_local[z])) {
      chain.push_back(z);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const NodeId w = block.nodes[*it];
      r.path.push_back(w);
      r.aug_index.push_back(found[*it]);
      r.proper_index.push_back(s.to_proper(w, found[*it]));
    }

    v = block.nodes[bottom];
    pos = found[bottom];
    r.hops += 1;
  }

  // Step 5: sequential implicit tail.
  while (!tree.is_leaf(v)) {
    const std::size_t prop = s.to_proper(v, pos);
    std::uint32_t slot = 0;
    m.sequential(1, [&] { slot = seq_branch(v, prop); });
    assert(slot < tree.degree(v));
    fc::SearchStats stats;
    std::size_t next = 0;
    m.sequential(1, [&] { next = s.follow_bridge(v, pos, slot, y, &stats); });
    m.charge(stats.bridge_walks, stats.bridge_walks);
    v = tree.children(v)[slot];
    pos = next;
    r.path.push_back(v);
    r.aug_index.push_back(pos);
    r.proper_index.push_back(s.to_proper(v, pos));
    r.sequential_tail += 1;
  }
  return r;
}

}  // namespace

CoopSearchResult coop_search_implicit(const CoopStructure& cs,
                                      pram::Machine& m, Key y,
                                      const fc::BranchFn& branch) {
  const HopResolver resolver = [&branch](pram::Machine& mm,
                                         const HopView& view,
                                         std::span<std::uint8_t> out) {
    mm.exec(view.block->nodes.size(), [&](std::size_t z) {
      out[z] = static_cast<std::uint8_t>(
          branch(view.block->nodes[z], view.proper(z)));
    });
  };
  return coop_search_implicit_custom(cs, m, y, resolver, branch);
}

CoopSearchResult coop_search_implicit_custom(const CoopStructure& cs,
                                             pram::Machine& m, Key y,
                                             const HopResolver& resolver,
                                             const fc::BranchFn& seq_branch) {
  return implicit_impl(cs, m, y, resolver, seq_branch);
}

}  // namespace coop
