#include "core/batch.hpp"

#include <algorithm>

namespace coop {

BatchResult coop_search_batch(const CoopStructure& cs, pram::Machine& m,
                              std::span<const BatchQuery> queries,
                              std::size_t procs_per_query) {
  BatchResult out;
  if (queries.empty()) {
    return out;
  }
  const std::size_t p = m.processors();
  if (procs_per_query == 0) {
    procs_per_query = std::max<std::size_t>(1, p / queries.size());
  }
  out.procs_per_query = procs_per_query;
  const std::size_t group = std::max<std::size_t>(1, p / procs_per_query);
  out.results.resize(queries.size());

  // One sub-machine for the whole batch, reset between queries: when
  // Q > p the default share degenerates to one processor per query, and
  // constructing a fresh Machine per query (worker pool, bookkeeping)
  // dominated the round's actual search work.  Rounds are still charged
  // to `m` as whole groups — the slowest member's steps, everyone's work —
  // exactly like Theorem 2's subpath groups.
  pram::Machine sub(procs_per_query, m.model());
  for (std::size_t first = 0; first < queries.size(); first += group) {
    const std::size_t last = std::min(queries.size(), first + group);
    std::uint64_t max_steps = 0, total_work = 0;
    for (std::size_t qi = first; qi < last; ++qi) {
      sub.reset_stats();
      out.results[qi] =
          coop_search_segment(cs, sub, queries[qi].path, queries[qi].y);
      max_steps = std::max(max_steps, sub.stats().steps);
      total_work += sub.stats().work;
    }
    m.charge(max_steps, total_work);
    out.rounds += 1;
  }
  return out;
}

}  // namespace coop
