#include "core/explicit_search.hpp"

#include <algorithm>
#include <cassert>

#include "fc/search.hpp"
#include "pram/coop_search.hpp"
#include "pram/memory.hpp"

namespace coop {

namespace detail {

SampleChoice choose_sample(pram::Machine& m, const HopBlock& block,
                           std::size_t catalog_size, std::size_t s,
                           std::size_t pos) {
  // Back-samples sit at positions q with (t-1 - q) % s == 0; every window
  // of s consecutive positions starting at pos <= t-1 contains exactly
  // one.  The paper assigns s_i processors to pos and its successors and
  // lets the unique sampled one identify itself; since the position is a
  // single mod computation, one processor suffices (same O(1) CREW time,
  // and no ceil(s_i/p) Brent penalty when p < s_i).
  const std::size_t t = catalog_size;
  assert(pos < t);
  SampleChoice c;
  c.position = (t - 1) - ((t - 1 - pos) / s) * s;
  c.j = (block.m - 1) - (t - 1 - c.position) / s;
  m.charge(1, 1);
  return c;
}

Range hop_range(const Params& params, std::uint32_t i, std::uint32_t l,
                std::size_t k, std::size_t t) {
  const std::size_t q = params.q(l);
  const std::size_t r = params.r(i, l);
  Range range;
  range.lo = (k > q + r) ? k - q - r : 0;
  range.hi = std::min(t - 1, k + q);
  return range;
}

}  // namespace detail

namespace {

/// Step 3 for the explicit case: one logical instruction assigning
/// processor ranges around the skeleton keys of the path nodes at block
/// levels 1..span, writing find(y, v) per level into `found`.
void hop_levels(const CoopStructure& cs, pram::Machine& m,
                const Substructure& sub, const HopBlock& block, std::size_t j,
                std::span<const std::size_t> path_local,  // locals, level 1..
                Key y, std::vector<std::size_t>& found) {
  const fc::Structure& s = cs.cascade();
  const std::size_t span = path_local.size();
  found.assign(span, std::size_t(-1));

  struct LevelPlan {
    const fc::AugCatalog* aug;
    detail::Range range;
    std::size_t offset;  // into the flattened pid space
  };
  std::vector<LevelPlan> plan(span);
  std::size_t total = 0;
  for (std::size_t l = 1; l <= span; ++l) {
    const std::size_t z = path_local[l - 1];
    const NodeId v = block.nodes[z];
    const fc::AugCatalog& a = s.aug(v);
    const auto k = static_cast<std::size_t>(block.skel_at(j, z));
    plan[l - 1] = LevelPlan{
        &a,
        detail::hop_range(cs.params(), sub.i, static_cast<std::uint32_t>(l),
                          k, a.size()),
        total};
    total += plan[l - 1].range.width();
  }

  pram::SharedArray<std::size_t> out(span, std::size_t(-1));
  m.exec(total, [&](std::size_t pid) {
    // Decode pid -> (level, position).  Each virtual processor does a
    // small private search over <= h_i offsets; charged O(1) as in the
    // paper (the assignment is computable from the block geometry).
    std::size_t l = 0;
    while (l + 1 < span && plan[l + 1].offset <= pid) {
      ++l;
    }
    const LevelPlan& lp = plan[l];
    const std::size_t g = lp.range.lo + (pid - lp.offset);
    const auto& keys = lp.aug->keys;
    const bool below_prev = (g == 0) || keys[g - 1] < y;
    if (below_prev && keys[g] >= y) {
      out.write(l, g);
    }
  });
  for (std::size_t l = 0; l < span; ++l) {
    found[l] = out[l];
    assert(found[l] != std::size_t(-1) &&
           "Lemma 3 violated: find outside the processor range");
  }
}

}  // namespace

CoopSearchResult coop_search_segment(const CoopStructure& cs,
                                     pram::Machine& m,
                                     std::span<const NodeId> path, Key y) {
  const fc::Structure& s = cs.cascade();
  const cat::Tree& tree = s.tree();
  assert(!path.empty());
#ifndef NDEBUG
  for (std::size_t i = 1; i < path.size(); ++i) {
    assert(tree.parent(path[i]) == path[i - 1] && "path must be a chain");
  }
#endif

  CoopSearchResult r;
  r.path.assign(path.begin(), path.end());
  r.proper_index.assign(path.size(), 0);
  r.aug_index.assign(path.size(), 0);

  const Substructure& sub = cs.for_processors(m.processors());
  r.substructure_used = sub.i;

  // Step 1: cooperative binary search in the head node's augmented catalog.
  const auto& head_keys = s.aug(path.front()).keys;
  std::size_t pos = pram::coop_lower_bound<Key>(
      m, std::span<const Key>(head_keys), y);
  r.aug_index[0] = pos;
  r.proper_index[0] = s.to_proper(path.front(), pos);

  std::size_t at = 0;
  std::vector<std::size_t> path_local;
  std::vector<std::size_t> found;
  while (at + 1 < path.size()) {
    const bool hoppable = tree.depth(path[at]) < sub.trunc_level &&
                          sub.block_of[path[at]] >= 0;
    if (!hoppable) {
      // Step 5 (and block-root alignment for mid-tree segments):
      // one sequential bridge step in S.
      const NodeId v = path[at];
      const NodeId w = path[at + 1];
      const auto slot = static_cast<std::uint32_t>(tree.child_slot(w));
      fc::SearchStats stats;
      std::size_t next = 0;
      m.sequential(1,
                   [&] { next = s.follow_bridge(v, pos, slot, y, &stats); });
      m.charge(stats.bridge_walks, stats.bridge_walks);
      pos = next;
      ++at;
      r.aug_index[at] = pos;
      r.proper_index[at] = s.to_proper(w, pos);
      r.sequential_tail += 1;
      continue;
    }

    const HopBlock& block =
        sub.blocks[static_cast<std::size_t>(sub.block_of[path[at]])];
    const std::size_t t = s.aug(block.root).size();

    // Step 2: move to the next sampled catalog entry.
    const auto choice = detail::choose_sample(m, block, t, sub.s, pos);

    // Locate the path's local indices inside the block (levels 1..span).
    const std::size_t span =
        std::min<std::size_t>(block.height, path.size() - 1 - at);
    path_local.clear();
    {
      std::size_t z = 0;
      for (std::size_t l = 1; l <= span; ++l) {
        const NodeId w = path[at + l];
        const auto slot = static_cast<std::uint32_t>(tree.child_slot(w));
        z = block.local_child(z, slot);
        path_local.push_back(z);
      }
      m.charge(1, span);  // constant-time per-processor path decoding
    }

    // Step 3: jump `span` levels in one instruction.
    hop_levels(cs, m, sub, block, choice.j, path_local, y, found);
    for (std::size_t l = 1; l <= span; ++l) {
      r.aug_index[at + l] = found[l - 1];
      r.proper_index[at + l] = s.to_proper(path[at + l], found[l - 1]);
    }

    // Step 4: the block leaf becomes the next root.
    pos = found[span - 1];
    at += span;
    r.hops += 1;
  }
  return r;
}

CoopSearchResult coop_search_explicit(const CoopStructure& cs,
                                      pram::Machine& m,
                                      std::span<const NodeId> path, Key y) {
  assert(fc::valid_root_path(cs.tree(), path));
  return coop_search_segment(cs, m, path, y);
}

}  // namespace coop
