#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/explicit_search.hpp"
#include "fc/search.hpp"

namespace coop {

/// What a hop resolver sees: the current block, and find(y, v) for every
/// node of the block (as augmented-catalog positions; local BFS indexing).
struct HopView {
  const CoopStructure* cs = nullptr;
  const HopBlock* block = nullptr;
  std::span<const std::size_t> find_aug;

  [[nodiscard]] std::size_t proper(std::size_t z) const {
    return cs->cascade().to_proper(block->nodes[z], find_aug[z]);
  }
};

/// Computes the branch direction (0 = left, 1 = right) for every node of
/// the block.  The output must satisfy the consistency assumption of
/// Section 2: off-path nodes point towards the path, and the sequence of
/// branch values in inorder is right* left*.  The default resolver wraps a
/// per-node BranchFn; point location (Section 3) installs the paper's
/// 6-step hop computation instead.
using HopResolver = std::function<void(pram::Machine&, const HopView&,
                                       std::span<std::uint8_t>)>;

/// Theorem 1, implicit case, with a consistency-respecting branch oracle.
/// The tree must be binary.  O((log n)/log p) CREW steps.
[[nodiscard]] CoopSearchResult coop_search_implicit(const CoopStructure& cs,
                                                    pram::Machine& m, Key y,
                                                    const fc::BranchFn& branch);

/// The generalized form used by point location: `resolver` computes branch
/// values per hop (it may keep state across hops, e.g. the L/R separator
/// indices), and `seq_branch` drives the sequential Step 5 tail.
[[nodiscard]] CoopSearchResult coop_search_implicit_custom(
    const CoopStructure& cs, pram::Machine& m, Key y,
    const HopResolver& resolver, const fc::BranchFn& seq_branch);

}  // namespace coop
