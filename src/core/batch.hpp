#pragma once

#include <span>
#include <vector>

#include "core/explicit_search.hpp"

namespace coop {

/// One query of a batch: locate `y` in every catalog along `path`.
struct BatchQuery {
  std::vector<NodeId> path;
  Key y = 0;
};

struct BatchResult {
  std::vector<CoopSearchResult> results;  ///< one per query, input order
  std::uint64_t rounds = 0;               ///< concurrent groups executed
  std::size_t procs_per_query = 0;        ///< processor share used
};

/// Throughput-oriented batch search: Q explicit searches with the p
/// processors of `m`.
///
/// Queries are independent, so the machine is split into groups of
/// `procs_per_query` processors (default: max(1, p / Q), i.e. everything
/// runs in one round when Q <= p); groups run concurrently and each round
/// is charged its slowest member, exactly like the subpath groups of
/// Theorem 2.  Total time O(ceil(Q * procs/p) * (log n)/log procs).
[[nodiscard]] BatchResult coop_search_batch(
    const CoopStructure& cs, pram::Machine& m,
    std::span<const BatchQuery> queries, std::size_t procs_per_query = 0);

}  // namespace coop
