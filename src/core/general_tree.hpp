#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/explicit_search.hpp"

namespace coop {

/// Result of a Theorem 2 long-path search.
struct LongPathResult {
  std::vector<NodeId> path;
  std::vector<std::size_t> proper_index;
  std::uint64_t groups = 0;          ///< subpath groups processed
  std::uint64_t subpaths = 0;        ///< total subpaths
  std::uint64_t charged_steps = 0;   ///< PRAM time charged to `m`
};

/// Theorem 2: explicit cooperative search along a (possibly long) path of
/// length k in a bounded-degree tree in
/// O((log n)/log p + k/(p^{1-eps} log p)) CREW time.
///
/// The path is split into subpaths of length ~log n; groups of p^{1-eps}
/// subpaths run concurrently, each with p^eps processors.  The simulator
/// executes subpaths of a group one after another but charges the group's
/// *maximum* step count (that is what concurrent execution would cost);
/// work is charged in full.
[[nodiscard]] LongPathResult coop_search_long_path(
    const CoopStructure& cs, pram::Machine& m, std::span<const NodeId> path,
    Key y, double epsilon = 0.5);

/// Theorem 3 support: a degree-d tree T is searched through its binarized
/// version (cat::binarize).  This helper lifts a path of T to the
/// corresponding path of the binarized tree (inserting the auxiliary
/// caterpillar nodes).
[[nodiscard]] std::vector<NodeId> lift_path_to_binarized(
    const cat::Tree& original, const cat::Tree& binarized,
    std::span<const NodeId> orig_of_new, std::span<const NodeId> path);

/// Filter a search result on a binarized tree back to the original nodes.
[[nodiscard]] CoopSearchResult project_from_binarized(
    const CoopSearchResult& r, std::span<const NodeId> orig_of_new);

}  // namespace coop
