#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "fc/build.hpp"
#include "pram/machine.hpp"
#include "robust/status.hpp"

namespace robust {
struct StructureAccess;  // fault-injection backdoor (src/robust/corrupt.hpp)
}

namespace coop {

using cat::Key;
using cat::NodeId;

/// One height-h_i subtree U of the truncated tree S', together with its
/// skeleton forest U_1 ... U_m (paper Figure 3).
///
/// Local node indices enumerate U in BFS order (local 0 is the root).  The
/// skeleton forest is stored compacted: skel[j * nodes.size() + z] is the
/// position, in the augmented catalog of nodes[z], of key[z, U_j].  Root
/// keys are the back-samples of the root's augmented catalog at spacing
/// s_i; descendant keys are induced by the bridges.
struct HopBlock {
  NodeId root = cat::kNullNode;
  std::uint32_t height = 0;  ///< levels below the root covered (>= 1)

  std::vector<NodeId> nodes;             ///< BFS order, nodes[0] == root
  std::vector<std::uint8_t> level_of;    ///< local level of each node
  std::vector<std::int32_t> parent_local;///< local parent (-1 for root)
  std::vector<std::int32_t> child_off;   ///< per node, offset into child_local
  std::vector<std::int32_t> child_local; ///< local child index or -1 if the
                                         ///< child lies below the block
  std::vector<std::int32_t> inorder;     ///< local indices in inorder
                                         ///< (binary blocks only, else empty)

  std::size_t m = 0;               ///< number of skeleton trees
  std::vector<std::int32_t> skel;  ///< m * nodes.size() key positions

  [[nodiscard]] std::size_t skeleton_entries() const { return skel.size(); }
  [[nodiscard]] std::int32_t skel_at(std::size_t j, std::size_t z) const {
    return skel[j * nodes.size() + z];
  }
  [[nodiscard]] std::size_t local_child(std::size_t z,
                                        std::uint32_t slot) const {
    return static_cast<std::size_t>(
        child_local[static_cast<std::size_t>(child_off[z]) + slot]);
  }
};

/// The substructure T_i: all hop blocks over levels 0 .. trunc_level of S.
struct Substructure {
  std::uint32_t i = 0;
  std::uint32_t h = 0;           ///< levels per hop
  std::size_t s = 0;             ///< sampling factor s_i
  std::uint32_t trunc_level = 0; ///< S' keeps levels 0 .. trunc_level
  std::vector<HopBlock> blocks;
  std::vector<std::int32_t> block_of;  ///< node -> index of block rooted
                                       ///< there, or -1
  std::size_t skeleton_entries = 0;    ///< space accounting (Lemma 2)
};

/// The preprocessed cooperative-search structure T' of Theorem 1: the
/// fractional cascaded structure S plus the substructures T_i.
class CoopStructure {
 public:
  /// Build every substructure T_i, i = 0 .. ceil(log log n) - 1.
  /// `s` must outlive the returned structure.  `alpha_scale` (default: the
  /// paper's 1.0) is forwarded to Params — see params.hpp.
  static CoopStructure build(const fc::Structure& s, double alpha_scale = 1.0);

  /// Fallible variant of build() for untrusted cascaded structures and
  /// tuning knobs: rejects non-finite / out-of-range alpha_scale and
  /// structurally broken fc::Structure instances (array-size mismatches,
  /// unsorted or unterminated augmented catalogs, k <= max_degree) with a
  /// Status instead of UB.  `s` must outlive the returned structure.
  static Expected<CoopStructure> build_checked(const fc::Structure& s,
                                               double alpha_scale = 1.0);

  /// Build only the given substructure indices (space benches).
  static CoopStructure build_subset(const fc::Structure& s,
                                    std::span<const std::uint32_t> indices,
                                    double alpha_scale = 1.0);

  /// PRAM-accounted Step 2 of the preprocessing (paper Section 2.1): the
  /// skeleton keys of each substructure are filled level-synchronously —
  /// root samples in one instruction, then one instruction per block
  /// level (each key is one bridge lookup from its parent's key).  Depth
  /// O(sum_i h_i * (levels_i / h_i)) = O(log n) per substructure, O(n)
  /// total work (each skeleton entry is written once).  Output is
  /// identical to build() (tests assert this).
  static CoopStructure build_parallel(const fc::Structure& s,
                                      pram::Machine& m,
                                      double alpha_scale = 1.0);

  [[nodiscard]] const fc::Structure& cascade() const { return *fc_; }
  [[nodiscard]] const cat::Tree& tree() const { return fc_->tree(); }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] std::uint32_t substructure_count() const {
    return static_cast<std::uint32_t>(subs_.size());
  }
  [[nodiscard]] const Substructure& substructure(std::uint32_t i) const {
    return subs_[i];
  }
  /// The T_i serving p processors.
  [[nodiscard]] const Substructure& for_processors(std::size_t p) const {
    return subs_[Params::substructure_for(
        p, static_cast<std::uint32_t>(subs_.size()))];
  }

  /// Total skeleton entries over all substructures (Lemma 2: O(n)).
  [[nodiscard]] std::size_t total_skeleton_entries() const;
  /// Total space in entries including the cascading structure itself.
  [[nodiscard]] std::size_t total_entries() const {
    return total_skeleton_entries() + fc_->total_aug_entries();
  }

 private:
  friend struct ::robust::StructureAccess;

  CoopStructure() : params_(4) {}

  static Substructure build_substructure(const fc::Structure& s,
                                         const Params& params,
                                         std::uint32_t i,
                                         pram::Machine* m = nullptr);

  const fc::Structure* fc_ = nullptr;
  Params params_;
  std::vector<Substructure> subs_;
};

}  // namespace coop
