#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/structure.hpp"
#include "pram/machine.hpp"

namespace coop {

/// Result of a cooperative search: find(y, v) for every node v on the
/// search path (root first), as indices into the nodes' original catalogs.
struct CoopSearchResult {
  std::vector<NodeId> path;
  std::vector<std::size_t> proper_index;
  std::vector<std::size_t> aug_index;
  std::uint32_t substructure_used = 0;
  std::uint64_t hops = 0;             ///< Step 2-4 iterations
  std::uint64_t sequential_tail = 0;  ///< nodes handled by Step 5
};

/// Theorem 1, explicit case: cooperative search along the given
/// root-to-leaf (or root-to-anywhere) path with the processors of `m`,
/// in O((log n)/log p) PRAM steps on a CREW machine.
///
/// Steps (paper Section 2.2):
///   1. cooperative binary search in the root catalog;
///   2. per hop, move to the next sampled catalog entry;
///   3. jump h_i levels by assigning processor ranges around the skeleton
///      keys of U_j on the search path;
///   4. repeat from the block leaf;
///   5. finish the truncated tail sequentially in S.
[[nodiscard]] CoopSearchResult coop_search_explicit(
    const CoopStructure& cs, pram::Machine& m, std::span<const NodeId> path,
    Key y);

/// Like coop_search_explicit, but the chain may start at any node (used by
/// Theorem 2's subpath groups).  A mid-tree head is first aligned to the
/// next block-root level by sequential bridge steps (at most h_i - 1 of
/// them).
[[nodiscard]] CoopSearchResult coop_search_segment(
    const CoopStructure& cs, pram::Machine& m, std::span<const NodeId> path,
    Key y);

/// Internal helpers shared with the implicit search; exposed for tests.
namespace detail {

/// Step 2: position (in the root's augmented catalog) of the smallest
/// back-sample >= pos, and the skeleton index j it belongs to.
struct SampleChoice {
  std::size_t position = 0;
  std::size_t j = 0;
};
[[nodiscard]] SampleChoice choose_sample(pram::Machine& m,
                                         const HopBlock& block,
                                         std::size_t catalog_size,
                                         std::size_t s, std::size_t pos);

/// Step 3 range around skeleton key position k at block level l, clamped
/// to the catalog of size t: [k - q_l - r_l, k + q_l].
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;  // inclusive
  [[nodiscard]] std::size_t width() const { return hi - lo + 1; }
};
[[nodiscard]] Range hop_range(const Params& params, std::uint32_t i,
                              std::uint32_t l, std::size_t k, std::size_t t);

}  // namespace detail

}  // namespace coop
