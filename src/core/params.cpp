#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace coop {

namespace {
constexpr std::size_t kSaturate = std::numeric_limits<std::size_t>::max() / 4;

/// base^e with saturation at kSaturate.
std::size_t sat_pow(std::size_t base, std::uint32_t e) {
  std::size_t out = 1;
  for (std::uint32_t t = 0; t < e; ++t) {
    if (out > kSaturate / base) {
      return kSaturate;
    }
    out *= base;
  }
  return out;
}
}  // namespace

Params::Params(std::uint32_t fanout_bound, double alpha_scale)
    : b(fanout_bound) {
  // (2(2b+1)^2)^alpha = 2  =>  alpha = 1 / log2(2 (2b+1)^2).
  alpha = alpha_scale /
          std::log2(2.0 * double(2 * b + 1) * double(2 * b + 1));
}

std::uint32_t Params::h(std::uint32_t i) const {
  const double raw = std::floor(alpha * std::pow(2.0, double(i)));
  const auto clamped =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(raw));
  // Guard absurd substructure indices: h beyond ~60 would overflow every
  // realistic catalog anyway.
  return std::min<std::uint32_t>(clamped, 60);
}

std::size_t Params::pow2b1(std::uint32_t l) const {
  return sat_pow(2 * std::size_t{b} + 1, l);
}

std::size_t Params::s(std::uint32_t i) const {
  const std::size_t base = pow2b1(h(i));
  const std::size_t factor = 2 * std::size_t{b} + 2;
  if (base > kSaturate / factor) {
    return kSaturate;
  }
  return factor * base;
}

std::size_t Params::q(std::uint32_t l) const { return (pow2b1(l) - 1) / 2; }

std::size_t Params::r(std::uint32_t i, std::uint32_t l) const {
  const std::size_t si = s(i);
  const std::size_t p = pow2b1(l);
  if (si - 1 > 0 && p > kSaturate / (si - 1)) {
    return kSaturate;
  }
  return (si - 1) * p;
}

std::uint32_t Params::substructure_count(std::size_t n) {
  const double lg = std::log2(std::max<double>(4.0, double(n)));
  const double lglg = std::log2(lg);
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(lglg)));
}

std::uint32_t Params::substructure_for(std::size_t p, std::uint32_t count) {
  if (count == 0) {
    return 0;
  }
  if (p <= 4) {
    return 0;
  }
  const double lgp = std::log2(double(p));
  const auto i = static_cast<std::uint32_t>(
      std::ceil(std::log2(lgp)) - 1.0 + 1e-9);
  return std::min(i, count - 1);
}

std::uint32_t Params::truncation_level(std::uint32_t i, std::uint32_t height) {
  const double frac = 1.0 - std::pow(2.0, -double(i));
  auto lvl = static_cast<std::uint32_t>(std::ceil(frac * double(height)));
  // T_0 would truncate everything (frac == 0); give every substructure at
  // least one hoppable level so the i = 0 structure exists (its sequential
  // tail still dominates, matching the O(log n) bound for constant p).
  lvl = std::max<std::uint32_t>(lvl, std::min<std::uint32_t>(height, 1));
  return std::min(lvl, height);
}

}  // namespace coop
