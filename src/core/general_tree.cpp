#include "core/general_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coop {

LongPathResult coop_search_long_path(const CoopStructure& cs,
                                     pram::Machine& m,
                                     std::span<const NodeId> path, Key y,
                                     double epsilon) {
  assert(epsilon > 0.0 && epsilon <= 1.0);
  const std::size_t n =
      std::max<std::size_t>(2, cs.tree().total_catalog_size());
  const auto subpath_len = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::log2(double(n)))));
  const std::size_t p = m.processors();
  const auto p_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::pow(double(p), epsilon)));
  const std::size_t group_size = std::max<std::size_t>(1, p / p_sub);

  LongPathResult out;
  out.path.assign(path.begin(), path.end());
  out.proper_index.assign(path.size(), 0);

  const std::size_t num_subpaths =
      (path.size() + subpath_len - 1) / subpath_len;
  out.subpaths = num_subpaths;

  for (std::size_t g = 0; g * group_size < num_subpaths; ++g) {
    const std::size_t first = g * group_size;
    const std::size_t last = std::min(num_subpaths, first + group_size);
    std::uint64_t group_max_steps = 0;
    std::uint64_t group_work = 0;
    for (std::size_t sp = first; sp < last; ++sp) {
      const std::size_t begin = sp * subpath_len;
      const std::size_t end = std::min(path.size(), begin + subpath_len);
      pram::Machine sub_m(p_sub, m.model());
      const auto r = coop_search_segment(
          cs, sub_m, path.subspan(begin, end - begin), y);
      for (std::size_t i = 0; i < r.proper_index.size(); ++i) {
        out.proper_index[begin + i] = r.proper_index[i];
      }
      group_max_steps = std::max(group_max_steps, sub_m.stats().steps);
      group_work += sub_m.stats().work;
    }
    // Concurrent execution of the group costs its slowest member.
    m.charge(group_max_steps, group_work);
    out.charged_steps += group_max_steps;
    out.groups += 1;
  }
  return out;
}

std::vector<NodeId> lift_path_to_binarized(const cat::Tree& original,
                                           const cat::Tree& binarized,
                                           std::span<const NodeId> orig_of_new,
                                           std::span<const NodeId> path) {
  (void)original;
  (void)orig_of_new;  // used by the assert below in debug builds
  std::vector<NodeId> lifted;
  if (path.empty()) {
    return lifted;
  }
  lifted.push_back(path.front());
  for (std::size_t i = 1; i < path.size(); ++i) {
    const NodeId target = path[i];
    NodeId cur = lifted.back();
    // Descend through the caterpillar until the target child appears.
    for (;;) {
      const auto kids = binarized.children(cur);
      assert(!kids.empty());
      bool advanced = false;
      for (NodeId w : kids) {
        if (w == target) {
          lifted.push_back(w);
          advanced = true;
          break;
        }
      }
      if (advanced) {
        break;
      }
      // Continue along the auxiliary spine (the last child).
      const NodeId spine = kids.back();
      assert(orig_of_new[spine] == cat::kNullNode &&
             "target is not reachable through this caterpillar");
      lifted.push_back(spine);
      cur = spine;
    }
  }
  return lifted;
}

CoopSearchResult project_from_binarized(const CoopSearchResult& r,
                                        std::span<const NodeId> orig_of_new) {
  CoopSearchResult out;
  out.substructure_used = r.substructure_used;
  out.hops = r.hops;
  out.sequential_tail = r.sequential_tail;
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    const NodeId orig = orig_of_new[r.path[i]];
    if (orig != cat::kNullNode) {
      out.path.push_back(orig);
      out.proper_index.push_back(r.proper_index[i]);
      out.aug_index.push_back(r.aug_index[i]);
    }
  }
  return out;
}

}  // namespace coop
