#include "core/structure.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace coop {

namespace {

/// Cheap structural scan of a (possibly untrusted) cascaded structure —
/// O(total augmented entries), no key-level semantics.  The deep semantic
/// checks live in fc::Structure::verify_properties / robust::validate_fc.
Status check_fc_structural(const fc::Structure& s) {
  const cat::Tree& t = s.tree();
  if (t.num_nodes() == 0) {
    return Status::invalid_argument("cascaded structure over an empty tree");
  }
  if (s.sample_k() <= t.max_degree()) {
    return Status::invalid_argument(
        "cascaded structure has sampling factor k=" +
        std::to_string(s.sample_k()) + " <= max degree " +
        std::to_string(t.max_degree()));
  }
  for (std::size_t vi = 0; vi < t.num_nodes(); ++vi) {
    const auto v = static_cast<NodeId>(vi);
    const fc::AugCatalog& a = s.aug(v);
    const std::string at = " at node " + std::to_string(vi);
    if (a.keys.empty() || a.keys.back() != cat::kInfinity) {
      return Status::corrupted("augmented catalog missing +inf terminal" + at);
    }
    for (std::size_t i = 1; i < a.keys.size(); ++i) {
      if (a.keys[i - 1] >= a.keys[i]) {
        return Status::corrupted("augmented keys not strictly increasing" +
                                 at);
      }
    }
    if (a.num_children != t.degree(v)) {
      return Status::corrupted("augmented catalog child count mismatch" + at);
    }
    if (a.proper.size() != a.keys.size()) {
      return Status::corrupted("proper[] size mismatch" + at);
    }
    if (a.bridge.size() != a.keys.size() * t.degree(v)) {
      return Status::corrupted("bridge[] size mismatch" + at);
    }
    const auto own_size = static_cast<std::int32_t>(t.catalog(v).size());
    for (const std::int32_t p : a.proper) {
      if (p < 0 || p >= own_size) {
        return Status::corrupted("proper[] index out of range" + at);
      }
    }
    const auto kids = t.children(v);
    for (std::uint32_t e = 0; e < kids.size(); ++e) {
      const auto kid_size =
          static_cast<std::int32_t>(s.aug(kids[e]).keys.size());
      for (std::size_t i = 0; i < a.keys.size(); ++i) {
        const std::int32_t br = a.bridge_at(e, i);
        if (br < 0 || br >= kid_size) {
          return Status::corrupted("bridge index out of range" + at);
        }
      }
    }
  }
  return coop::OkStatus();
}

}  // namespace

namespace {

/// Fill the skeleton forest of a block: root keys are back-samples of the
/// root's augmented catalog at spacing s; each descendant key follows the
/// bridge from its parent's key (paper Figure 3).
void build_skeletons(const fc::Structure& s, HopBlock& b, std::size_t si) {
  const std::size_t t = s.aug(b.root).size();
  b.m = (t + si - 1) / si;  // ceil(t / s_i); the +inf terminal is sample m-1
  const std::size_t nn = b.nodes.size();
  b.skel.assign(b.m * nn, -1);
  for (std::size_t j = 0; j < b.m; ++j) {
    b.skel[j * nn + 0] =
        static_cast<std::int32_t>((t - 1) - (b.m - 1 - j) * si);
  }
  const cat::Tree& tree = s.tree();
  for (std::size_t z = 1; z < nn; ++z) {
    const std::size_t zp = static_cast<std::size_t>(b.parent_local[z]);
    const NodeId vp = b.nodes[zp];
    const auto slot = static_cast<std::uint32_t>(tree.child_slot(b.nodes[z]));
    const fc::AugCatalog& ap = s.aug(vp);
    for (std::size_t j = 0; j < b.m; ++j) {
      b.skel[j * nn + z] = ap.bridge_at(
          slot, static_cast<std::size_t>(b.skel[j * nn + zp]));
    }
  }
}

/// Inorder enumeration of the block's local nodes (binary blocks).
void build_inorder(HopBlock& b) {
  b.inorder.clear();
  b.inorder.reserve(b.nodes.size());
  // Iterative inorder over local structure.
  std::vector<std::pair<std::int32_t, std::uint32_t>> stack;  // (node, state)
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto& [z, state] = stack.back();
    const std::size_t deg =
        static_cast<std::size_t>(b.child_off[z + 1] - b.child_off[z]);
    const auto local_kid = [&](std::uint32_t slot) {
      return b.child_local[static_cast<std::size_t>(b.child_off[z]) + slot];
    };
    if (state == 0) {
      state = 1;
      if (deg >= 1 && local_kid(0) >= 0) {
        stack.emplace_back(local_kid(0), 0);
        continue;
      }
    }
    if (state == 1) {
      b.inorder.push_back(z);
      state = 2;
      if (deg >= 2 && local_kid(1) >= 0) {
        stack.emplace_back(local_kid(1), 0);
        continue;
      }
    }
    stack.pop_back();
  }
}

/// Level-synchronous skeleton fill for a whole substructure (Step 2 on
/// the PRAM): one instruction for all root samples, then one per block
/// level for the bridge-induced keys.
void build_skeletons_parallel(const fc::Structure& s, pram::Machine& m,
                              Substructure& sub) {
  const cat::Tree& tree = s.tree();
  // Allocate skeleton storage and root samples.
  struct RootDesc {
    HopBlock* b;
    std::uint32_t j;
  };
  std::vector<RootDesc> roots;
  for (auto& b : sub.blocks) {
    const std::size_t t = s.aug(b.root).size();
    b.m = (t + sub.s - 1) / sub.s;
    b.skel.assign(b.m * b.nodes.size(), -1);
    for (std::uint32_t j = 0; j < b.m; ++j) {
      roots.push_back(RootDesc{&b, j});
    }
  }
  m.exec(roots.size(), [&](std::size_t pid) {
    HopBlock& b = *roots[pid].b;
    const std::uint32_t j = roots[pid].j;
    const std::size_t t = s.aug(b.root).size();
    b.skel[std::size_t(j) * b.nodes.size()] =
        static_cast<std::int32_t>((t - 1) - (b.m - 1 - j) * sub.s);
  });
  // Per level: every (block, skeleton, node-at-level) key is one bridge
  // lookup from the parent's key, written exactly once (EREW-compatible).
  for (std::uint32_t l = 1; l <= sub.h; ++l) {
    struct KeyDesc {
      HopBlock* b;
      std::uint32_t j;
      std::uint32_t z;
    };
    std::vector<KeyDesc> keys;
    for (auto& b : sub.blocks) {
      if (l > b.height) {
        continue;
      }
      for (std::uint32_t z = 0; z < b.nodes.size(); ++z) {
        if (b.level_of[z] != l) {
          continue;
        }
        for (std::uint32_t j = 0; j < b.m; ++j) {
          keys.push_back(KeyDesc{&b, j, z});
        }
      }
    }
    m.exec(keys.size(), [&](std::size_t pid) {
      HopBlock& b = *keys[pid].b;
      const std::uint32_t j = keys[pid].j;
      const std::uint32_t z = keys[pid].z;
      const auto zp = static_cast<std::size_t>(b.parent_local[z]);
      const auto slot = static_cast<std::uint32_t>(
          tree.child_slot(b.nodes[z]));
      b.skel[std::size_t(j) * b.nodes.size() + z] =
          s.aug(b.nodes[zp]).bridge_at(
              slot, static_cast<std::size_t>(
                        b.skel[std::size_t(j) * b.nodes.size() + zp]));
    });
  }
  sub.skeleton_entries = 0;
  for (const auto& b : sub.blocks) {
    sub.skeleton_entries += b.skeleton_entries();
  }
}

HopBlock build_block(const fc::Structure& s, NodeId root, std::uint32_t height,
                     std::size_t si, bool binary,
                     bool fill_skeletons = true) {
  const cat::Tree& tree = s.tree();
  HopBlock b;
  b.root = root;
  b.height = height;
  const std::uint32_t root_depth = tree.depth(root);

  // BFS collect nodes within `height` levels below root.
  b.nodes.push_back(root);
  b.level_of.push_back(0);
  b.parent_local.push_back(-1);
  for (std::size_t head = 0; head < b.nodes.size(); ++head) {
    const NodeId v = b.nodes[head];
    const std::uint32_t lev = tree.depth(v) - root_depth;
    if (lev == height) {
      continue;
    }
    for (NodeId w : tree.children(v)) {
      b.nodes.push_back(w);
      b.level_of.push_back(static_cast<std::uint8_t>(lev + 1));
      b.parent_local.push_back(static_cast<std::int32_t>(head));
    }
  }
  // child_off / child_local.
  b.child_off.assign(b.nodes.size() + 1, 0);
  for (std::size_t z = 0; z < b.nodes.size(); ++z) {
    b.child_off[z + 1] =
        b.child_off[z] +
        static_cast<std::int32_t>(tree.degree(b.nodes[z]));
  }
  b.child_local.assign(static_cast<std::size_t>(b.child_off.back()), -1);
  // BFS order means children of nodes appear in order; rebuild by a second
  // pass mapping each child to its local index.
  {
    std::size_t next = 1;
    for (std::size_t z = 0; z < b.nodes.size(); ++z) {
      if (b.level_of[z] == height) {
        continue;  // children lie below the block
      }
      const auto kids = tree.children(b.nodes[z]);
      for (std::uint32_t c = 0; c < kids.size(); ++c) {
        b.child_local[static_cast<std::size_t>(b.child_off[z]) + c] =
            static_cast<std::int32_t>(next++);
      }
    }
  }
  if (binary) {
    build_inorder(b);
  }
  if (fill_skeletons) {
    build_skeletons(s, b, si);
  }
  return b;
}

}  // namespace

Substructure CoopStructure::build_substructure(const fc::Structure& s,
                                               const Params& params,
                                               std::uint32_t i,
                                               pram::Machine* m) {
  const cat::Tree& tree = s.tree();
  Substructure sub;
  sub.i = i;
  sub.h = params.h(i);
  sub.s = params.s(i);
  sub.trunc_level = Params::truncation_level(i, tree.height());
  sub.block_of.assign(tree.num_nodes(), -1);
  const bool binary = tree.max_degree() <= 2;

  for (std::uint32_t rho = 0; rho < sub.trunc_level; rho += sub.h) {
    const std::uint32_t height = std::min(sub.h, sub.trunc_level - rho);
    for (NodeId u : tree.level(rho)) {
      sub.block_of[u] = static_cast<std::int32_t>(sub.blocks.size());
      sub.blocks.push_back(
          build_block(s, u, height, sub.s, binary, m == nullptr));
      sub.skeleton_entries += sub.blocks.back().skeleton_entries();
    }
  }
  if (m != nullptr) {
    build_skeletons_parallel(s, *m, sub);
  }
  return sub;
}

CoopStructure CoopStructure::build(const fc::Structure& s,
                                   double alpha_scale) {
  CoopStructure cs;
  cs.fc_ = &s;
  cs.params_ = Params(s.fanout_bound(), alpha_scale);
  const std::uint32_t count =
      Params::substructure_count(s.tree().total_catalog_size());
  cs.subs_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cs.subs_.push_back(build_substructure(s, cs.params_, i));
  }
  return cs;
}

Expected<CoopStructure> CoopStructure::build_checked(const fc::Structure& s,
                                                     double alpha_scale) {
  if (!std::isfinite(alpha_scale) || alpha_scale < 1.0 ||
      alpha_scale > 64.0) {
    return Status::invalid_argument(
        "alpha_scale must be a finite value in [1, 64], got " +
        std::to_string(alpha_scale));
  }
  Status st = check_fc_structural(s);
  if (!st.ok()) {
    return st;
  }
  return build(s, alpha_scale);
}

CoopStructure CoopStructure::build_subset(
    const fc::Structure& s, std::span<const std::uint32_t> indices,
    double alpha_scale) {
  CoopStructure cs;
  cs.fc_ = &s;
  cs.params_ = Params(s.fanout_bound(), alpha_scale);
  const std::uint32_t count =
      Params::substructure_count(s.tree().total_catalog_size());
  for (std::uint32_t i : indices) {
    cs.subs_.push_back(
        build_substructure(s, cs.params_, std::min(i, count - 1)));
  }
  return cs;
}

CoopStructure CoopStructure::build_parallel(const fc::Structure& s,
                                            pram::Machine& m,
                                            double alpha_scale) {
  CoopStructure cs;
  cs.fc_ = &s;
  cs.params_ = Params(s.fanout_bound(), alpha_scale);
  const std::uint32_t count =
      Params::substructure_count(s.tree().total_catalog_size());
  cs.subs_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cs.subs_.push_back(build_substructure(s, cs.params_, i, &m));
  }
  return cs;
}

std::size_t CoopStructure::total_skeleton_entries() const {
  std::size_t total = 0;
  for (const auto& sub : subs_) {
    total += sub.skeleton_entries;
  }
  return total;
}

}  // namespace coop
