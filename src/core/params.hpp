#pragma once

#include <cstddef>
#include <cstdint>

namespace coop {

/// The constants of Section 2 of the paper, derived from the fractional
/// cascading fan-out bound b:
///
///   * alpha solves (2(2b+1)^2)^alpha = 2, so 0 < alpha < 0.25;
///   * h_i = floor(alpha * 2^i), clamped to >= 1 (levels jumped per hop by
///     substructure T_i);
///   * s_i = (2b+2) * (2b+1)^{h_i} (the sampling factor of T_i);
///   * T_i serves processor counts p with 2^{2^i} < p <= 2^{2^{i+1}}.
///
/// Deviation noted in DESIGN.md: skeleton-root samples are taken from the
/// *back* of the catalog (positions t-1, t-1-s_i, ...) so consecutive
/// samples are exactly s_i apart and the +infinity terminal is always
/// sampled; this tightens the paper's Step 2 window argument.
struct Params {
  std::uint32_t b = 4;   ///< fan-out bound of the underlying cascading
  double alpha = 0.0;    ///< solves (2(2b+1)^2)^alpha = 2

  /// `alpha_scale` > 1 trades the strict O(p) per-hop processor bound for
  /// taller hops (h_i grows, hop count shrinks, but Step 3 may request up
  /// to ~p^{alpha_scale} virtual processors, Brent-charged).  1.0 is the
  /// paper's setting; the ablation bench sweeps it.
  explicit Params(std::uint32_t fanout_bound, double alpha_scale = 1.0);

  /// Levels jumped per hop by substructure T_i (>= 1).
  [[nodiscard]] std::uint32_t h(std::uint32_t i) const;

  /// Sampling factor of T_i, saturating (never overflows).
  [[nodiscard]] std::size_t s(std::uint32_t i) const;

  /// Half-width q of the Step 3 processor range at block level l:
  /// q = ((2b+1)^l - 1) / 2.
  [[nodiscard]] std::size_t q(std::uint32_t l) const;

  /// Left bias r of the Step 3 processor range at block level l in T_i:
  /// r = (s_i - 1) * (2b+1)^l.
  [[nodiscard]] std::size_t r(std::uint32_t i, std::uint32_t l) const;

  /// Number of substructures for catalogs of total size n:
  /// ceil(log log n), at least 1 (the paper's ceil(log log n) - 1 + the
  /// i = 0 structure, indexed 0 .. count-1).
  [[nodiscard]] static std::uint32_t substructure_count(std::size_t n);

  /// Which T_i serves p processors: the i with 2^{2^i} < p <= 2^{2^{i+1}},
  /// clamped to [0, count-1].
  [[nodiscard]] static std::uint32_t substructure_for(std::size_t p,
                                                      std::uint32_t count);

  /// Highest level of S kept in S' for T_i: ceil((1 - 2^-i) * height).
  [[nodiscard]] static std::uint32_t truncation_level(std::uint32_t i,
                                                      std::uint32_t height);

  /// (2b+1)^l, saturating.
  [[nodiscard]] std::size_t pow2b1(std::uint32_t l) const;
};

}  // namespace coop
