#include "snapshot/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

namespace snapshot {

static_assert(kSectionAlign == serve::kCacheLine,
              "snapshot payload alignment must preserve the arena's "
              "cache-line alignment through a page-aligned mmap");

/// The codec's backdoor into the serving arenas (robust::StructureAccess
/// idiom): trivial accessors for write(), and assembly of view-backed
/// structures for open().  All invariant checking stays in this file.
struct ArenaAccess {
  using FC = serve::FlatCascade;
  using FPL = serve::FlatPointLocator;

  static const serve::Pool<serve::FlatNode>& nodes(const FC& f) {
    return f.nodes_;
  }
  static const serve::Pool<cat::Key>& keys(const FC& f) { return f.keys_; }
  static const serve::Pool<std::uint32_t>& proper(const FC& f) {
    return f.proper_;
  }
  static const serve::Pool<std::uint32_t>& bridge(const FC& f) {
    return f.bridge_;
  }
  static const serve::Pool<std::uint32_t>& child(const FC& f) {
    return f.child_;
  }
  static const serve::Pool<cat::Key>& simd_keys(const FC& f) {
    return f.simd_keys_;
  }
  static const serve::Pool<std::uint32_t>& simd_pos(const FC& f) {
    return f.simd_pos_;
  }
  static const serve::Pool<std::uint32_t>& simd_off(const FC& f) {
    return f.simd_off_;
  }

  static FC assemble_cascade(serve::Pool<serve::FlatNode> nodes,
                             serve::Pool<cat::Key> keys,
                             serve::Pool<std::uint32_t> proper,
                             serve::Pool<std::uint32_t> bridge,
                             serve::Pool<std::uint32_t> child,
                             serve::Pool<cat::Key> simd_keys,
                             serve::Pool<std::uint32_t> simd_pos,
                             serve::Pool<std::uint32_t> simd_off,
                             std::uint32_t fanout_bound) {
    FC f;
    f.nodes_ = std::move(nodes);
    f.keys_ = std::move(keys);
    f.proper_ = std::move(proper);
    f.bridge_ = std::move(bridge);
    f.child_ = std::move(child);
    f.simd_keys_ = std::move(simd_keys);
    f.simd_pos_ = std::move(simd_pos);
    f.simd_off_ = std::move(simd_off);
    f.b_ = fanout_bound;
    return f;
  }

  static const FC& cascade(const FPL& f) { return f.cascade_; }
  static const serve::Pool<std::uint32_t>& entry_off(const FPL& f) {
    return f.entry_off_;
  }
  static const serve::Pool<std::int32_t>& sep(const FPL& f) { return f.sep_; }
  static const serve::Pool<geom::Coord>& lo_x(const FPL& f) { return f.lo_x_; }
  static const serve::Pool<geom::Coord>& lo_y(const FPL& f) { return f.lo_y_; }
  static const serve::Pool<geom::Coord>& hi_x(const FPL& f) { return f.hi_x_; }
  static const serve::Pool<geom::Coord>& hi_y(const FPL& f) { return f.hi_y_; }
  static const serve::Pool<std::int32_t>& max_sep(const FPL& f) {
    return f.max_sep_;
  }

  static FPL assemble_pointloc(FC cascade,
                               serve::Pool<std::uint32_t> entry_off,
                               serve::Pool<std::int32_t> sep,
                               serve::Pool<geom::Coord> lo_x,
                               serve::Pool<geom::Coord> lo_y,
                               serve::Pool<geom::Coord> hi_x,
                               serve::Pool<geom::Coord> hi_y,
                               serve::Pool<std::int32_t> max_sep,
                               std::size_t num_regions) {
    FPL f;
    f.cascade_ = std::move(cascade);
    f.entry_off_ = std::move(entry_off);
    f.sep_ = std::move(sep);
    f.lo_x_ = std::move(lo_x);
    f.lo_y_ = std::move(lo_y);
    f.hi_x_ = std::move(hi_x);
    f.hi_y_ = std::move(hi_y);
    f.max_sep_ = std::move(max_sep);
    f.num_regions_ = num_regions;
    return f;
  }
};

namespace {

using coop::Status;

// ---------------------------------------------------------------------------
// Writing

struct SectionDesc {
  SectionId id;
  std::uint32_t elem_size;
  const void* data;
  std::uint64_t bytes;
};

Status write_file(SnapshotKind kind, const std::vector<SectionDesc>& sections,
                  const std::string& path) {
  // Lay out: header | table | aligned payloads.
  std::vector<SectionRecord> table(sections.size());
  std::uint64_t off = align_up(
      sizeof(FileHeader) + sections.size() * sizeof(SectionRecord),
      kSectionAlign);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionDesc& s = sections[i];
    table[i].id = static_cast<std::uint32_t>(s.id);
    table[i].elem_size = s.elem_size;
    table[i].offset = off;
    table[i].length = s.bytes;
    table[i].crc32 = crc32(s.data, s.bytes);
    off = align_up(off + s.bytes, kSectionAlign);
  }

  FileHeader h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.section_count = static_cast<std::uint32_t>(sections.size());
  h.file_size = sections.empty() ? sizeof(FileHeader)
                                 : table.back().offset + table.back().length;
  h.table_crc = crc32(table.data(), table.size() * sizeof(SectionRecord));
  h.header_crc = header_crc(h);

  // Write to path.tmp and rename so a crash mid-write never leaves a
  // half-snapshot under the published name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::invalid_argument("cannot open " + tmp + " for writing");
  }
  const auto put = [&](const void* data, std::size_t n) {
    return n == 0 || std::fwrite(data, 1, n, f) == n;
  };
  static const char zeros[kSectionAlign] = {};
  bool ok = put(&h, sizeof(h)) &&
            put(table.data(), table.size() * sizeof(SectionRecord));
  std::uint64_t pos = sizeof(FileHeader) +
                      table.size() * sizeof(SectionRecord);
  for (std::size_t i = 0; ok && i < sections.size(); ++i) {
    ok = put(zeros, table[i].offset - pos) &&
         put(sections[i].data, sections[i].bytes);
    pos = table[i].offset + sections[i].bytes;
  }
  ok = ok && std::fflush(f) == 0;
  if (std::fclose(f) != 0) {
    ok = false;
  }
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::internal("cannot rename " + tmp + " to " + path);
  }
  return coop::OkStatus();
}

void append_cascade_sections(const serve::FlatCascade& f,
                             std::vector<SectionDesc>& out) {
  using A = ArenaAccess;
  out.push_back({SectionId::kNodes, sizeof(serve::FlatNode),
                 A::nodes(f).data(),
                 A::nodes(f).size() * sizeof(serve::FlatNode)});
  out.push_back({SectionId::kKeys, sizeof(cat::Key), A::keys(f).data(),
                 A::keys(f).size() * sizeof(cat::Key)});
  out.push_back({SectionId::kProper, 4, A::proper(f).data(),
                 A::proper(f).size() * 4});
  out.push_back({SectionId::kBridge, 4, A::bridge(f).data(),
                 A::bridge(f).size() * 4});
  out.push_back({SectionId::kChild, 4, A::child(f).data(),
                 A::child(f).size() * 4});
  out.push_back({SectionId::kSimdKeys, sizeof(cat::Key),
                 A::simd_keys(f).data(),
                 A::simd_keys(f).size() * sizeof(cat::Key)});
  out.push_back({SectionId::kSimdPos, 4, A::simd_pos(f).data(),
                 A::simd_pos(f).size() * 4});
  out.push_back({SectionId::kSimdOff, 4, A::simd_off(f).data(),
                 A::simd_off(f).size() * 4});
}

ArenaMeta cascade_meta(const serve::FlatCascade& f) {
  using A = ArenaAccess;
  ArenaMeta m;
  m.num_nodes = A::nodes(f).size();
  m.num_keys = A::keys(f).size();
  m.num_bridge = A::bridge(f).size();
  m.num_child = A::child(f).size();
  m.fanout_bound = f.fanout_bound();
  m.num_simd_slots = A::simd_keys(f).size();
  return m;
}

// ---------------------------------------------------------------------------
// Reading

/// Parsed + CRC-verified file: the section table and the mapping it
/// points into.  Produced by parse_and_verify, consumed by the loaders.
struct Parsed {
  FileHeader header;
  std::vector<SectionRecord> table;
  const unsigned char* base = nullptr;
};

Status parse_and_verify(const MappedFile& map, Parsed& out) {
  if (map.size() < sizeof(FileHeader)) {
    return Status::corrupted("snapshot file too small for a header (" +
                             std::to_string(map.size()) + " bytes)");
  }
  FileHeader h;
  std::memcpy(&h, map.data(), sizeof(h));
  if (h.magic != kMagic) {
    return Status::corrupted("bad magic — not a snapshot file");
  }
  if (h.endian_tag != kEndianTag) {
    return Status::failed_precondition(
        "snapshot was written on a different-endian platform");
  }
  if (h.version < kMinFormatVersion || h.version > kFormatVersion) {
    return Status::failed_precondition(
        "unsupported snapshot format version " + std::to_string(h.version) +
        " (this build reads versions " + std::to_string(kMinFormatVersion) +
        " through " + std::to_string(kFormatVersion) + ")");
  }
  if (header_crc(h) != h.header_crc) {
    return Status::corrupted("header CRC mismatch — snapshot damaged");
  }
  if (h.kind != static_cast<std::uint32_t>(SnapshotKind::kCascade) &&
      h.kind != static_cast<std::uint32_t>(SnapshotKind::kPointLocator)) {
    return Status::corrupted("unknown snapshot kind " +
                             std::to_string(h.kind));
  }
  if (h.section_count == 0 || h.section_count > kMaxSections) {
    return Status::corrupted("implausible section count " +
                             std::to_string(h.section_count));
  }
  if (h.file_size != map.size()) {
    return Status::corrupted(
        "file size mismatch: header says " + std::to_string(h.file_size) +
        " bytes, file has " + std::to_string(map.size()) + " (truncated?)");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{h.section_count} * sizeof(SectionRecord);
  if (sizeof(FileHeader) + table_bytes > map.size()) {
    return Status::corrupted("section table extends past end of file");
  }
  std::vector<SectionRecord> table(h.section_count);
  std::memcpy(table.data(), map.data() + sizeof(FileHeader), table_bytes);
  if (crc32(table.data(), table_bytes) != h.table_crc) {
    return Status::corrupted("section table CRC mismatch — snapshot damaged");
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    const SectionRecord& r = table[i];
    const std::string which =
        "section " + std::to_string(i) + " (id " + std::to_string(r.id) + ")";
    if (r.offset % kSectionAlign != 0) {
      return Status::corrupted(which + " offset not 64-byte aligned");
    }
    if (r.offset > map.size() || r.length > map.size() - r.offset) {
      return Status::corrupted(which + " extends past end of file (offset " +
                               std::to_string(r.offset) + ", length " +
                               std::to_string(r.length) + ")");
    }
    if (r.elem_size == 0 || r.length % r.elem_size != 0) {
      return Status::corrupted(which + " length is not a whole number of " +
                               std::to_string(r.elem_size) + "-byte elements");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (table[j].id == r.id) {
        return Status::corrupted("duplicate section id " +
                                 std::to_string(r.id));
      }
    }
    if (crc32(map.data() + r.offset, r.length) != r.crc32) {
      return Status::corrupted(which + " payload CRC mismatch — snapshot "
                               "damaged");
    }
  }
  out.header = h;
  out.table = std::move(table);
  out.base = map.data();
  return coop::OkStatus();
}

/// Locate section `id` and check it holds exactly `count` elements of
/// `elem_size` bytes.  Returns the payload pointer via `out`.
Status get_section(const Parsed& p, SectionId id, std::uint32_t elem_size,
                   std::uint64_t count, const void*& out) {
  for (const SectionRecord& r : p.table) {
    if (r.id != static_cast<std::uint32_t>(id)) {
      continue;
    }
    if (r.elem_size != elem_size) {
      return Status::corrupted("section id " + std::to_string(r.id) +
                               " has element size " +
                               std::to_string(r.elem_size) + ", expected " +
                               std::to_string(elem_size));
    }
    if (r.length != count * elem_size) {
      return Status::corrupted(
          "section id " + std::to_string(r.id) + " holds " +
          std::to_string(r.length / elem_size) + " elements, meta expects " +
          std::to_string(count));
    }
    out = p.base + r.offset;
    return coop::OkStatus();
  }
  return Status::corrupted("missing section id " +
                           std::to_string(static_cast<std::uint32_t>(id)));
}

/// Structural pass over the mapped cascade pools: every offset, count,
/// child id and bridge target the assert-free hot loop will dereference
/// is proved in-bounds here, so even a file with forged-valid CRCs
/// cannot cause an out-of-pool read.  Layout is required to be exactly
/// the sequential node-major packing compile() emits.
Status validate_mapped_cascade(const serve::FlatNode* nodes,
                               const ArenaMeta& m, const cat::Key* keys,
                               const std::uint32_t* proper,
                               const std::uint32_t* bridge,
                               const std::uint32_t* child,
                               const std::uint32_t* entry_off) {
  const auto at_node = [](std::uint64_t v) {
    return " at node " + std::to_string(v);
  };
  std::uint64_t key_off = 0, bridge_off = 0, child_off = 0;
  for (std::uint64_t vi = 0; vi < m.num_nodes; ++vi) {
    const serve::FlatNode& nd = nodes[vi];
    if (nd.key_off != key_off || nd.bridge_off != bridge_off ||
        nd.child_off != child_off) {
      return Status::corrupted("node offsets break sequential packing" +
                               at_node(vi));
    }
    if (nd.key_count == 0) {
      return Status::corrupted("empty augmented catalog" + at_node(vi));
    }
    if (nd.key_count > m.num_keys - key_off) {
      return Status::corrupted("key slice exceeds pool" + at_node(vi));
    }
    const std::uint64_t row_cells =
        std::uint64_t{nd.key_count} * nd.num_children;
    if (row_cells > m.num_bridge - bridge_off) {
      return Status::corrupted("bridge rows exceed pool" + at_node(vi));
    }
    if (nd.num_children > m.num_child - child_off) {
      return Status::corrupted("child slice exceeds pool" + at_node(vi));
    }
    if (vi == 0) {
      if (nd.parent != -1) {
        return Status::corrupted("node 0 is not a root (parent " +
                                 std::to_string(nd.parent) + ")");
      }
    } else {
      // Parents precede children in id order — that is what makes one
      // forward pass sufficient and rules out topology cycles.
      if (nd.parent < 0 || static_cast<std::uint64_t>(nd.parent) >= vi) {
        return Status::corrupted("parent id out of order" + at_node(vi));
      }
      const serve::FlatNode& pn = nodes[nd.parent];
      if (nd.slot >= pn.num_children ||
          child[pn.child_off + nd.slot] != vi) {
        return Status::corrupted("child slot does not match parent's list" +
                                 at_node(vi));
      }
    }
    for (std::uint32_t e = 0; e < nd.num_children; ++e) {
      const std::uint32_t w = child[child_off + e];
      if (w >= m.num_nodes || w <= vi) {
        return Status::corrupted("child id out of range" + at_node(vi));
      }
    }
    const cat::Key* k = keys + key_off;
    for (std::uint32_t i = 1; i < nd.key_count; ++i) {
      if (k[i - 1] >= k[i]) {
        return Status::corrupted("augmented keys not strictly increasing" +
                                 at_node(vi));
      }
    }
    if (k[nd.key_count - 1] != cat::kInfinity) {
      return Status::corrupted("augmented catalog missing +inf terminal" +
                               at_node(vi));
    }
    // proper[] indexes the node's own original catalog.  Without the
    // catalog the exact-successor property is the writer's (CRC-covered)
    // word; the bound below is what in-process consumers rely on: the
    // pointloc entry pools are indexed entry_off[v] + proper, so cap by
    // the node's entry span when one exists, else by the (larger)
    // augmented count.
    const std::uint64_t prop_bound =
        entry_off != nullptr
            ? (vi + 1 < m.num_nodes ? entry_off[vi + 1] : m.num_entries) -
                  entry_off[vi]
            : nd.key_count;
    for (std::uint32_t i = 0; i < nd.key_count; ++i) {
      if (proper[key_off + i] >= prop_bound) {
        return Status::corrupted("proper index out of range" + at_node(vi));
      }
    }
    for (std::uint32_t e = 0; e < nd.num_children; ++e) {
      const std::uint32_t w = child[child_off + e];
      const std::uint32_t wc = nodes[w].key_count;
      const std::uint32_t* row =
          bridge + bridge_off + std::uint64_t{e} * nd.key_count;
      for (std::uint32_t i = 0; i < nd.key_count; ++i) {
        if (row[i] >= wc) {
          return Status::corrupted("bridge target past child catalog" +
                                   at_node(vi));
        }
      }
    }
    key_off += nd.key_count;
    bridge_off += row_cells;
    child_off += nd.num_children;
  }
  if (key_off != m.num_keys || bridge_off != m.num_bridge ||
      child_off != m.num_child) {
    return Status::corrupted("pool sizes do not match the node table");
  }
  return coop::OkStatus();
}

template <typename T>
serve::Pool<T> view_of(const void* data, std::uint64_t count) {
  return serve::Pool<T>::view(static_cast<const T*>(data), count);
}

/// The cascade's blocked multiway search layout, either as views into a
/// verified v2 mapping or rebuilt into owning pools from a v1 file.
struct SimdPools {
  serve::Pool<cat::Key> keys;
  serve::Pool<std::uint32_t> pos;
  serve::Pool<std::uint32_t> off;
};

/// Locate + structurally verify the v2 layout sections, or (v1 files)
/// transparently re-derive the layout from the already-validated key
/// sections.  Runs after validate_mapped_cascade, so node offsets/counts
/// and key ordering are proven; here we prove the layout slots are
/// *exactly* what serve::simd::build_layout emits for those keys — a
/// forged-CRC file can therefore never steer find() to an out-of-slice
/// rank or a wrong answer.
Status load_simd_layout(const Parsed& p, const ArenaMeta& meta,
                        const serve::FlatNode* nodes, const cat::Key* keys,
                        SimdPools& out) {
  std::uint64_t want_slots = 0;
  for (std::uint64_t vi = 0; vi < meta.num_nodes; ++vi) {
    want_slots += serve::simd::num_slots(nodes[vi].key_count);
  }
  if (want_slots > std::numeric_limits<std::uint32_t>::max()) {
    return Status::corrupted("simd layout slot total overflows uint32");
  }

  if (p.header.version < 2) {
    // v1 file: no layout sections on disk.  Rebuild the layout into
    // owning pools from the mapped keys (the rest of the arena stays
    // zero-copy); the result is byte-identical to what a v2 writer would
    // have stored.
    out.keys = serve::Pool<cat::Key>(want_slots);
    out.pos = serve::Pool<std::uint32_t>(want_slots);
    out.off = serve::Pool<std::uint32_t>(meta.num_nodes);
    std::uint32_t slot_off = 0;
    for (std::uint64_t vi = 0; vi < meta.num_nodes; ++vi) {
      const serve::FlatNode& nd = nodes[vi];
      out.off[vi] = slot_off;
      serve::simd::build_layout(keys + nd.key_off, nd.key_count,
                                out.keys.data() + slot_off,
                                out.pos.data() + slot_off);
      slot_off += serve::simd::num_slots(nd.key_count);
    }
    return coop::OkStatus();
  }

  if (meta.num_simd_slots != want_slots) {
    return Status::corrupted(
        "meta claims " + std::to_string(meta.num_simd_slots) +
        " simd layout slots, node table needs " + std::to_string(want_slots));
  }
  const void *sk_raw = nullptr, *sp_raw = nullptr, *so_raw = nullptr;
  if (Status s = get_section(p, SectionId::kSimdKeys, sizeof(cat::Key),
                             meta.num_simd_slots, sk_raw);
      !s.ok()) {
    return s;
  }
  if (Status s = get_section(p, SectionId::kSimdPos, 4, meta.num_simd_slots,
                             sp_raw);
      !s.ok()) {
    return s;
  }
  if (Status s = get_section(p, SectionId::kSimdOff, 4, meta.num_nodes,
                             so_raw);
      !s.ok()) {
    return s;
  }
  const auto* simd_keys = static_cast<const cat::Key*>(sk_raw);
  const auto* simd_pos = static_cast<const std::uint32_t*>(sp_raw);
  const auto* simd_off = static_cast<const std::uint32_t*>(so_raw);
  std::uint64_t slot_off = 0;
  for (std::uint64_t vi = 0; vi < meta.num_nodes; ++vi) {
    const serve::FlatNode& nd = nodes[vi];
    if (simd_off[vi] != slot_off) {
      return Status::corrupted(
          "simd layout offsets break sequential packing at node " +
          std::to_string(vi));
    }
    if (!serve::simd::check_layout(keys + nd.key_off, nd.key_count,
                                   simd_keys + slot_off,
                                   simd_pos + slot_off)) {
      return Status::corrupted("simd layout does not match keys at node " +
                               std::to_string(vi));
    }
    slot_off += serve::simd::num_slots(nd.key_count);
  }
  out.keys = view_of<cat::Key>(sk_raw, meta.num_simd_slots);
  out.pos = view_of<std::uint32_t>(sp_raw, meta.num_simd_slots);
  out.off = view_of<std::uint32_t>(so_raw, meta.num_nodes);
  return coop::OkStatus();
}

}  // namespace

// ---------------------------------------------------------------------------
// MappedFile

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
}

MappedFile::MappedFile(MappedFile&& o) noexcept
    : data_(std::exchange(o.data_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      writable_(std::exchange(o.writable_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    if (data_ != nullptr) {
      ::munmap(data_, size_);
    }
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
    writable_ = std::exchange(o.writable_, false);
  }
  return *this;
}

coop::Expected<MappedFile> MappedFile::map(const std::string& path,
                                           bool writable) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::invalid_argument("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::invalid_argument("cannot stat " + path);
  }
  MappedFile m;
  m.size_ = static_cast<std::size_t>(st.st_size);
  m.writable_ = writable;
  if (m.size_ > 0) {
    // MAP_POPULATE prefaults the whole mapping in one kernel pass — the
    // CRC verification walks every byte immediately anyway, and batching
    // the faults is measurably cheaper than taking them one by one.
    // A writable mapping stays MAP_PRIVATE: stores copy-on-write into
    // anonymous pages and never dirty the file.
    const int prot = writable ? PROT_READ | PROT_WRITE : PROT_READ;
    void* p = ::mmap(nullptr, m.size_, prot, MAP_PRIVATE | MAP_POPULATE,
                     fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      m.size_ = 0;
      return Status::invalid_argument("cannot mmap " + path);
    }
    m.data_ = static_cast<unsigned char*>(p);
  }
  ::close(fd);
  return m;
}

// ---------------------------------------------------------------------------
// Snapshot

Snapshot Snapshot::in_memory(serve::FlatCascade f) {
  Snapshot s;
  s.kind = SnapshotKind::kCascade;
  s.cascade = std::move(f);
  return s;
}

Snapshot Snapshot::in_memory(serve::FlatPointLocator f) {
  Snapshot s;
  s.kind = SnapshotKind::kPointLocator;
  s.pointloc.emplace(std::move(f));
  return s;
}

coop::Status write(const serve::FlatCascade& f, const std::string& path) {
  if (f.num_nodes() == 0) {
    return Status::failed_precondition(
        "cannot snapshot an empty (uncompiled) cascade");
  }
  const ArenaMeta meta = cascade_meta(f);
  std::vector<SectionDesc> sections;
  sections.push_back({SectionId::kMeta, sizeof(ArenaMeta), &meta,
                      sizeof(ArenaMeta)});
  append_cascade_sections(f, sections);
  return write_file(SnapshotKind::kCascade, sections, path);
}

coop::Status write(const serve::FlatPointLocator& f, const std::string& path) {
  using A = ArenaAccess;
  const serve::FlatCascade& c = A::cascade(f);
  if (c.num_nodes() == 0) {
    return Status::failed_precondition(
        "cannot snapshot an empty (uncompiled) point locator");
  }
  ArenaMeta meta = cascade_meta(c);
  meta.num_entries = A::lo_x(f).size();
  meta.num_regions = f.num_regions();
  std::vector<SectionDesc> sections;
  sections.push_back({SectionId::kMeta, sizeof(ArenaMeta), &meta,
                      sizeof(ArenaMeta)});
  append_cascade_sections(c, sections);
  sections.push_back({SectionId::kEntryOff, 4, A::entry_off(f).data(),
                      A::entry_off(f).size() * 4});
  sections.push_back({SectionId::kSep, 4, A::sep(f).data(),
                      A::sep(f).size() * 4});
  sections.push_back({SectionId::kLoX, sizeof(geom::Coord),
                      A::lo_x(f).data(),
                      A::lo_x(f).size() * sizeof(geom::Coord)});
  sections.push_back({SectionId::kLoY, sizeof(geom::Coord),
                      A::lo_y(f).data(),
                      A::lo_y(f).size() * sizeof(geom::Coord)});
  sections.push_back({SectionId::kHiX, sizeof(geom::Coord),
                      A::hi_x(f).data(),
                      A::hi_x(f).size() * sizeof(geom::Coord)});
  sections.push_back({SectionId::kHiY, sizeof(geom::Coord),
                      A::hi_y(f).data(),
                      A::hi_y(f).size() * sizeof(geom::Coord)});
  sections.push_back({SectionId::kMaxSep, 4, A::max_sep(f).data(),
                      A::max_sep(f).size() * 4});
  return write_file(SnapshotKind::kPointLocator, sections, path);
}

coop::Expected<Snapshot> open(const std::string& path, OpenMode mode) {
  auto mapped = MappedFile::map(path, mode == OpenMode::kWritableCopy);
  if (!mapped.ok()) {
    return mapped.status();
  }
  MappedFile map = mapped.take();

  Parsed p;
  if (Status s = parse_and_verify(map, p); !s.ok()) {
    return Status::error(s.code(), path + ": " + s.message());
  }

  const auto fail = [&](const Status& s) {
    return Status::error(s.code(), path + ": " + s.message());
  };

  // v1 files carry the 56-byte meta prefix; the appended v2 fields stay
  // zero-initialized and are derived below (transparent re-layout).
  const std::uint32_t meta_size =
      p.header.version < 2 ? kArenaMetaSizeV1 : sizeof(ArenaMeta);
  const void* meta_raw = nullptr;
  if (Status s = get_section(p, SectionId::kMeta, meta_size, 1, meta_raw);
      !s.ok()) {
    return fail(s);
  }
  ArenaMeta meta{};
  std::memcpy(&meta, meta_raw, meta_size);
  if (meta.num_nodes == 0 ||
      meta.num_nodes > std::numeric_limits<std::uint32_t>::max() ||
      meta.num_keys > std::numeric_limits<std::uint32_t>::max() ||
      meta.num_bridge > std::numeric_limits<std::uint32_t>::max() ||
      meta.num_child > std::numeric_limits<std::uint32_t>::max() ||
      meta.num_entries > std::numeric_limits<std::uint32_t>::max()) {
    return fail(Status::corrupted("implausible pool sizes in meta section"));
  }

  const void *nodes_raw = nullptr, *keys_raw = nullptr, *proper_raw = nullptr,
             *bridge_raw = nullptr, *child_raw = nullptr;
  if (Status s = get_section(p, SectionId::kNodes, sizeof(serve::FlatNode),
                             meta.num_nodes, nodes_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kKeys, sizeof(cat::Key),
                             meta.num_keys, keys_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kProper, 4, meta.num_keys,
                             proper_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kBridge, 4, meta.num_bridge,
                             bridge_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kChild, 4, meta.num_child,
                             child_raw);
      !s.ok()) {
    return fail(s);
  }

  const auto* nodes = static_cast<const serve::FlatNode*>(nodes_raw);
  const auto* keys = static_cast<const cat::Key*>(keys_raw);
  const auto* proper = static_cast<const std::uint32_t*>(proper_raw);
  const auto* bridge = static_cast<const std::uint32_t*>(bridge_raw);
  const auto* child = static_cast<const std::uint32_t*>(child_raw);

  Snapshot snap;
  snap.kind = static_cast<SnapshotKind>(p.header.kind);

  if (snap.kind == SnapshotKind::kCascade) {
    if (Status s = validate_mapped_cascade(nodes, meta, keys, proper, bridge,
                                           child, nullptr);
        !s.ok()) {
      return fail(s);
    }
    SimdPools simd;
    if (Status s = load_simd_layout(p, meta, nodes, keys, simd); !s.ok()) {
      return fail(s);
    }
    snap.cascade = ArenaAccess::assemble_cascade(
        view_of<serve::FlatNode>(nodes_raw, meta.num_nodes),
        view_of<cat::Key>(keys_raw, meta.num_keys),
        view_of<std::uint32_t>(proper_raw, meta.num_keys),
        view_of<std::uint32_t>(bridge_raw, meta.num_bridge),
        view_of<std::uint32_t>(child_raw, meta.num_child),
        std::move(simd.keys), std::move(simd.pos), std::move(simd.off),
        meta.fanout_bound);
    snap.mapping = std::move(map);
    return snap;
  }

  // Point-locator extension sections.
  const void *eo_raw = nullptr, *sep_raw = nullptr, *lox_raw = nullptr,
             *loy_raw = nullptr, *hix_raw = nullptr, *hiy_raw = nullptr,
             *ms_raw = nullptr;
  if (Status s = get_section(p, SectionId::kEntryOff, 4, meta.num_nodes,
                             eo_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kSep, 4, meta.num_nodes, sep_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kLoX, sizeof(geom::Coord),
                             meta.num_entries, lox_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kLoY, sizeof(geom::Coord),
                             meta.num_entries, loy_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kHiX, sizeof(geom::Coord),
                             meta.num_entries, hix_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kHiY, sizeof(geom::Coord),
                             meta.num_entries, hiy_raw);
      !s.ok()) {
    return fail(s);
  }
  if (Status s = get_section(p, SectionId::kMaxSep, 4, meta.num_entries,
                             ms_raw);
      !s.ok()) {
    return fail(s);
  }
  const auto* entry_off = static_cast<const std::uint32_t*>(eo_raw);
  const auto* sep = static_cast<const std::int32_t*>(sep_raw);

  // Entry spans: monotone offsets within the entry pools; the cascade
  // validation below then caps every proper index by its node's span, so
  // branch_at's entry_off[v] + prop reads stay inside the pools.
  if (entry_off[0] != 0) {
    return fail(Status::corrupted("entry offsets do not start at 0"));
  }
  for (std::uint64_t vi = 0; vi < meta.num_nodes; ++vi) {
    const std::uint32_t lo = entry_off[vi];
    const std::uint64_t hi =
        vi + 1 < meta.num_nodes ? entry_off[vi + 1] : meta.num_entries;
    if (hi < lo || hi > meta.num_entries) {
      return fail(Status::corrupted("entry offsets not monotone at node " +
                                    std::to_string(vi)));
    }
    // Separator indices live in the padded power-of-two heap, so they can
    // exceed num_regions (padded separators sit at x = +inf) but never the
    // node count (sep < 2^H, num_nodes = 2^H - 1).  locate() only compares
    // sep values and returns one at a leaf — no pool is indexed by them —
    // so this bound is a sanity check, not a memory-safety requirement.
    if (sep[vi] < 0 ||
        static_cast<std::uint64_t>(sep[vi]) > meta.num_nodes) {
      return fail(Status::corrupted("separator index out of range at node " +
                                    std::to_string(vi)));
    }
  }
  if (Status s = validate_mapped_cascade(nodes, meta, keys, proper, bridge,
                                         child, entry_off);
      !s.ok()) {
    return fail(s);
  }
  SimdPools simd;
  if (Status s = load_simd_layout(p, meta, nodes, keys, simd); !s.ok()) {
    return fail(s);
  }

  snap.pointloc.emplace(ArenaAccess::assemble_pointloc(
      ArenaAccess::assemble_cascade(
          view_of<serve::FlatNode>(nodes_raw, meta.num_nodes),
          view_of<cat::Key>(keys_raw, meta.num_keys),
          view_of<std::uint32_t>(proper_raw, meta.num_keys),
          view_of<std::uint32_t>(bridge_raw, meta.num_bridge),
          view_of<std::uint32_t>(child_raw, meta.num_child),
          std::move(simd.keys), std::move(simd.pos), std::move(simd.off),
          meta.fanout_bound),
      view_of<std::uint32_t>(eo_raw, meta.num_nodes),
      view_of<std::int32_t>(sep_raw, meta.num_nodes),
      view_of<geom::Coord>(lox_raw, meta.num_entries),
      view_of<geom::Coord>(loy_raw, meta.num_entries),
      view_of<geom::Coord>(hix_raw, meta.num_entries),
      view_of<geom::Coord>(hiy_raw, meta.num_entries),
      view_of<std::int32_t>(ms_raw, meta.num_entries),
      static_cast<std::size_t>(meta.num_regions)));
  snap.mapping = std::move(map);
  return snap;
}

coop::Status verify(const Snapshot& snap) {
  if (!snap.mapping.mapped()) {
    return coop::OkStatus();  // in-memory: owning pools, no file bytes to rot
  }
  Parsed p;
  return parse_and_verify(snap.mapping, p);
}

coop::Expected<std::pair<std::uint64_t, std::uint64_t>> section_extent(
    const Snapshot& snap, SectionId id) {
  if (!snap.mapping.mapped()) {
    return Status::failed_precondition(
        "in-memory snapshot has no file sections");
  }
  // The mapping was fully verified at open(); re-parse just the header
  // and table (cheap) rather than caching parse results in Snapshot.
  Parsed p;
  if (Status s = parse_and_verify(snap.mapping, p); !s.ok()) {
    return s;
  }
  for (const SectionRecord& r : p.table) {
    if (r.id == static_cast<std::uint32_t>(id)) {
      return std::make_pair(r.offset, r.length);
    }
  }
  return Status::corrupted("missing section id " +
                           std::to_string(static_cast<std::uint32_t>(id)));
}

}  // namespace snapshot
