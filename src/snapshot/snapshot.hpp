#pragma once

// Binary arena persistence (DESIGN.md §8): serialize a compiled serving
// structure once, then bring it up in any process with a zero-copy mmap
// instead of re-paying fc::build + serve::compile.
//
//   snapshot::write(flat, "r42.snap");            // offline / build box
//   auto s = snapshot::open("r42.snap");          // serving box, ~O(CRC)
//   if (!s.ok()) ...                              // torn file -> Status
//   registry.publish(s.take());                   // hot-swap (registry.hpp)
//
// open() maps the file PROT_READ and points serve::Pool views straight
// into it — the pools are never copied; the page cache is the arena.
// Before anything can be served, open() verifies the full robust
// discipline: magic/version/endian header with its own CRC, a CRC'd
// section table, per-section CRC32 over every payload byte, and a
// structural bounds pass (offsets, counts, bridge targets, topology) so
// even a file that forges valid checksums cannot make the assert-free
// hot loop read outside its pools.  Any violation is a descriptive
// coop::Status — a truncated or bit-flipped snapshot can never be
// published.

#include <cstdint>
#include <optional>
#include <string>

#include "robust/status.hpp"
#include "serve/flat_cascade.hpp"
#include "serve/flat_pointloc.hpp"
#include "snapshot/format.hpp"

namespace snapshot {

/// RAII read-only mapping of a whole file.  Move-only; unmaps on
/// destruction — lifetime is managed by the Snapshot that owns it (and,
/// under traffic, by the Registry's epoch reclamation).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only.  Fails with kInvalidArgument if the file
  /// cannot be opened/mapped; an empty file maps to {nullptr, 0}.
  [[nodiscard]] static coop::Expected<MappedFile> map(const std::string& path);

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool mapped() const { return data_ != nullptr; }

 private:
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A loaded serving structure plus the mapping backing its arena views.
/// Queries go through cascade() / pointloc(); the mapping must stay alive
/// (and stays alive, via Registry epochs) while any query is in flight.
struct Snapshot {
  SnapshotKind kind = SnapshotKind::kCascade;
  serve::FlatCascade cascade;  ///< kCascade payload (views into mapping)
  std::optional<serve::FlatPointLocator> pointloc;  ///< kPointLocator payload
  MappedFile mapping;  ///< unmapped state for in-memory snapshots

  /// Wrap an in-memory compile result (owning pools, no file) so freshly
  /// built and mmap-loaded structures publish through the same Registry.
  [[nodiscard]] static Snapshot in_memory(serve::FlatCascade f);
  [[nodiscard]] static Snapshot in_memory(serve::FlatPointLocator f);
};

/// Serialize to `path` (atomically: written to path + ".tmp", then
/// renamed, so a crashed writer never leaves a half-snapshot under the
/// published name).  The structure must be non-empty (compiled).
[[nodiscard]] coop::Status write(const serve::FlatCascade& f,
                                 const std::string& path);
[[nodiscard]] coop::Status write(const serve::FlatPointLocator& f,
                                 const std::string& path);

/// Map `path` and reconstruct the arena zero-copy.  Every header,
/// checksum, and bounds violation is a Status (kCorrupted for a damaged
/// file, kInvalidArgument for an unopenable one, kFailedPrecondition for
/// a cross-endian file) — see the file comment for the validation
/// ladder.
[[nodiscard]] coop::Expected<Snapshot> open(const std::string& path);

}  // namespace snapshot
