#pragma once

// Binary arena persistence (DESIGN.md §8): serialize a compiled serving
// structure once, then bring it up in any process with a zero-copy mmap
// instead of re-paying fc::build + serve::compile.
//
//   snapshot::write(flat, "r42.snap");            // offline / build box
//   auto s = snapshot::open("r42.snap");          // serving box, ~O(CRC)
//   if (!s.ok()) ...                              // torn file -> Status
//   registry.publish(s.take());                   // hot-swap (registry.hpp)
//
// open() maps the file PROT_READ and points serve::Pool views straight
// into it — the pools are never copied; the page cache is the arena.
// Before anything can be served, open() verifies the full robust
// discipline: magic/version/endian header with its own CRC, a CRC'd
// section table, per-section CRC32 over every payload byte, and a
// structural bounds pass (offsets, counts, bridge targets, topology) so
// even a file that forges valid checksums cannot make the assert-free
// hot loop read outside its pools.  Any violation is a descriptive
// coop::Status — a truncated or bit-flipped snapshot can never be
// published.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "robust/status.hpp"
#include "serve/flat_cascade.hpp"
#include "serve/flat_pointloc.hpp"
#include "snapshot/format.hpp"

namespace snapshot {

/// RAII read-only mapping of a whole file.  Move-only; unmaps on
/// destruction — lifetime is managed by the Snapshot that owns it (and,
/// under traffic, by the Registry's epoch reclamation).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only, or — with `writable` — as a PROT_WRITE
  /// MAP_PRIVATE copy-on-write mapping whose stores never reach the file
  /// (the chaos harness uses this to rot a *served copy* in place while
  /// the on-disk snapshot stays pristine).  Fails with kInvalidArgument
  /// if the file cannot be opened/mapped; an empty file maps to
  /// {nullptr, 0}.
  [[nodiscard]] static coop::Expected<MappedFile> map(const std::string& path,
                                                      bool writable = false);

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool mapped() const { return data_ != nullptr; }

  /// Non-null only for writable (copy-on-write) mappings.
  [[nodiscard]] unsigned char* mutable_data() const {
    return writable_ ? data_ : nullptr;
  }
  [[nodiscard]] bool writable() const { return writable_; }

 private:
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool writable_ = false;
};

/// A loaded serving structure plus the mapping backing its arena views.
/// Queries go through cascade() / pointloc(); the mapping must stay alive
/// (and stays alive, via Registry epochs) while any query is in flight.
struct Snapshot {
  SnapshotKind kind = SnapshotKind::kCascade;
  serve::FlatCascade cascade;  ///< kCascade payload (views into mapping)
  std::optional<serve::FlatPointLocator> pointloc;  ///< kPointLocator payload
  MappedFile mapping;  ///< unmapped state for in-memory snapshots

  /// Wrap an in-memory compile result (owning pools, no file) so freshly
  /// built and mmap-loaded structures publish through the same Registry.
  [[nodiscard]] static Snapshot in_memory(serve::FlatCascade f);
  [[nodiscard]] static Snapshot in_memory(serve::FlatPointLocator f);
};

/// Serialize to `path` (atomically: written to path + ".tmp", then
/// renamed, so a crashed writer never leaves a half-snapshot under the
/// published name).  The structure must be non-empty (compiled).
[[nodiscard]] coop::Status write(const serve::FlatCascade& f,
                                 const std::string& path);
[[nodiscard]] coop::Status write(const serve::FlatPointLocator& f,
                                 const std::string& path);

/// How open() maps the file.
enum class OpenMode {
  kReadOnly = 0,
  /// PROT_WRITE MAP_PRIVATE: a copy-on-write serving copy.  Stores into
  /// the mapping (fault injection) are private to this Snapshot and never
  /// reach the file.  Validation is identical to kReadOnly.
  kWritableCopy = 1,
};

/// Map `path` and reconstruct the arena zero-copy.  Every header,
/// checksum, and bounds violation is a Status (kCorrupted for a damaged
/// file, kInvalidArgument for an unopenable one, kFailedPrecondition for
/// a cross-endian file) — see the file comment for the validation
/// ladder.
[[nodiscard]] coop::Expected<Snapshot> open(
    const std::string& path, OpenMode mode = OpenMode::kReadOnly);

/// Re-run the checksum half of the validation ladder over a *live*
/// mapping (header, table, and per-section payload CRCs — the scrubber's
/// detection primitive for in-memory rot).  The structural pass is not
/// repeated: it proved bounds at open() time and those bytes are covered
/// by the CRCs re-checked here.  In-memory snapshots (no mapping) verify
/// trivially OK.
[[nodiscard]] coop::Status verify(const Snapshot& snap);

/// Byte extent (offset, length) of section `id` inside the snapshot's
/// mapping — lets the chaos harness and targeted tests flip payload bytes
/// of a specific section without re-parsing the format.  Fails with
/// kFailedPrecondition for in-memory snapshots and kCorrupted when the
/// section is absent.
[[nodiscard]] coop::Expected<std::pair<std::uint64_t, std::uint64_t>>
section_extent(const Snapshot& snap, SectionId id);

}  // namespace snapshot
