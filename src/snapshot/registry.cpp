#include "snapshot/registry.hpp"

#include <algorithm>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snapshot {

using coop::Status;

namespace {

/// Registry metrics (DESIGN.md §10).  The pin/release pair is the only
/// per-batch path here: one relaxed gauge add each way.  Everything else
/// fires on publish / rollback / drain, i.e. per *generation*.
struct RegistryMetrics {
  obs::Counter publishes;
  obs::Counter rollbacks;
  obs::Counter drained;
  obs::Gauge pinned;
  obs::Gauge retained;
  obs::Gauge retired;
};

RegistryMetrics& registry_metrics() {
  auto& r = obs::Registry::global();
  static RegistryMetrics m{
      r.counter("snapshot_publishes_total", "Generations published"),
      r.counter("snapshot_rollbacks_total", "Successful rollbacks"),
      r.counter("snapshot_retired_drained_total",
                "Retired generations reclaimed (unmapped) after readers "
                "drained"),
      r.gauge("snapshot_pinned_readers", "Currently pinned readers"),
      r.gauge("snapshot_retained_generations",
              "Generations in the keep window (incl. current)"),
      r.gauge("snapshot_retired_generations",
              "Retired generations awaiting reader drain"),
  };
  return m;
}

}  // namespace

Registry::~Registry() {
  // No pins may outlive the registry (they hold a raw pointer into it);
  // by then every generation is reclaimable.  current_owner_ / kept_ /
  // retired_ own every Versioned, so members clean up.
  current_.store(nullptr, std::memory_order_release);
}

const Snapshot& Registry::Pin::snapshot() const {
  return static_cast<const Registry::Versioned*>(versioned_)->snap;
}

std::uint64_t Registry::Pin::version() const {
  return versioned_ == nullptr
             ? 0
             : static_cast<const Registry::Versioned*>(versioned_)->version;
}

void Registry::Pin::release() {
  if (registry_ == nullptr) {
    return;
  }
  const Registry* r = std::exchange(registry_, nullptr);
  r->slots_[slot_].epoch.store(kFree, std::memory_order_release);
  versioned_ = nullptr;
  registry_metrics().pinned.add(-1);
  // The publisher reclaims on publish; releasing the (possibly last) pin
  // reclaims too, so retired arenas drain without waiting for traffic.
  r->reclaim();
}

Registry::Pin Registry::pin() const {
  // Acquire a free announcement slot.  Pins are per batch, so more than
  // kMaxPins concurrent batches means the caller is oversubscribed
  // anyway; back off until a slot frees rather than failing the batch.
  std::size_t slot = 0;
  for (;;) {
    bool claimed = false;
    for (std::size_t i = 0; i < kMaxPins; ++i) {
      std::uint64_t expected = kFree;
      if (slots_[i].epoch.compare_exchange_strong(
              expected, kClaiming, std::memory_order_acq_rel)) {
        slot = i;
        claimed = true;
        break;
      }
    }
    if (claimed) {
      break;
    }
    std::this_thread::yield();
  }
  // Announce the current epoch, then re-check it: once the double-read
  // agrees, either we announced before any concurrent retire (epoch <= r
  // keeps the old version alive for us) or after the bump (the read
  // below is guaranteed to see the new `current_`).
  for (;;) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    slots_[slot].epoch.store(e, std::memory_order_seq_cst);
    if (global_epoch_.load(std::memory_order_seq_cst) == e) {
      break;
    }
  }
  Pin p;
  p.registry_ = this;
  p.slot_ = slot;
  p.versioned_ = current_.load(std::memory_order_seq_cst);
  if (p.versioned_ == nullptr) {
    // Nothing published yet: hand back an empty pin (slot released now).
    slots_[slot].epoch.store(kFree, std::memory_order_release);
    p.registry_ = nullptr;
  } else {
    registry_metrics().pinned.add(1);
  }
  return p;
}

std::uint64_t Registry::publish(Snapshot snap) {
  auto v = std::make_unique<Versioned>();
  v->snap = std::move(snap);
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    version = next_version_++;
    v->version = version;
    current_.store(v.get(), std::memory_order_seq_cst);
    std::unique_ptr<Versioned> old = std::exchange(current_owner_,
                                                   std::move(v));
    if (old != nullptr) {
      // The displaced generation stays mapped in the keep window as a
      // rollback target; only keep-window overflow is retired.  Readers
      // pinned to it are protected either way: kept_ owns it, and the
      // retire path below stamps an epoch before any unmap.
      retain_locked(std::move(old));
    }
    registry_metrics().retained.set(static_cast<std::int64_t>(
        kept_.size() + 1));
  }
  registry_metrics().publishes.inc();
  obs::TraceRing::global().emit(version, obs::SpanKind::kPublish);
  reclaim();
  return version;
}

void Registry::retire_locked(std::unique_ptr<Versioned> v) {
  // Epoch at retire time: readers announced at <= this value may still
  // hold `v`; readers announcing later cannot obtain it.
  const std::uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.emplace_back(retire_epoch, std::move(v));
}

void Registry::retain_locked(std::unique_ptr<Versioned> v) {
  kept_.push_back(std::move(v));
  while (kept_.size() > kKeepGenerations) {
    // Spill the oldest keepable generation — but never the newest good
    // one, or a long publish storm would starve the scrubber of its
    // rollback target.
    std::uint64_t newest_good = 0;
    for (const auto& k : kept_) {
      if (k->good) {
        newest_good = std::max(newest_good, k->version);
      }
    }
    std::size_t spill = kept_.size();
    for (std::size_t i = 0; i < kept_.size(); ++i) {
      if (kept_[i]->version != newest_good) {
        spill = i;
        break;
      }
    }
    if (spill == kept_.size()) {
      break;  // only the protected generation left
    }
    std::unique_ptr<Versioned> out = std::move(kept_[spill]);
    kept_.erase(kept_.begin() + static_cast<std::ptrdiff_t>(spill));
    retire_locked(std::move(out));
  }
}

void Registry::mark_good(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  if (current_owner_ != nullptr && current_owner_->version == version) {
    current_owner_->good = true;
    return;
  }
  for (auto& k : kept_) {
    if (k->version == version) {
      k->good = true;
      return;
    }
  }
}

std::uint64_t Registry::last_known_good(std::uint64_t excluding) const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  std::uint64_t best = 0;
  if (current_owner_ != nullptr && current_owner_->good &&
      current_owner_->version != excluding) {
    best = current_owner_->version;
  }
  for (const auto& k : kept_) {
    if (k->good && k->version != excluding) {
      best = std::max(best, k->version);
    }
  }
  return best;
}

Status Registry::rollback(std::uint64_t to_version, std::uint64_t if_current) {
  {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    if (current_owner_ == nullptr) {
      return Status::failed_precondition("rollback on an empty registry");
    }
    if (if_current != 0 && current_owner_->version != if_current) {
      return Status::failed_precondition(
          "rollback lost the race: current is version " +
          std::to_string(current_owner_->version) + ", not " +
          std::to_string(if_current));
    }
    if (current_owner_->version == to_version) {
      return coop::OkStatus();  // already serving the target
    }
    std::size_t idx = kept_.size();
    for (std::size_t i = 0; i < kept_.size(); ++i) {
      if (kept_[i]->version == to_version) {
        idx = i;
        break;
      }
    }
    if (idx == kept_.size()) {
      return Status::failed_precondition(
          "generation " + std::to_string(to_version) +
          " is not retained (keep window holds the last " +
          std::to_string(kKeepGenerations) + ")");
    }
    std::unique_ptr<Versioned> target = std::move(kept_[idx]);
    kept_.erase(kept_.begin() + static_cast<std::ptrdiff_t>(idx));
    current_.store(target.get(), std::memory_order_seq_cst);
    std::unique_ptr<Versioned> bad =
        std::exchange(current_owner_, std::move(target));
    // Quarantine: the displaced generation must never be a rollback
    // target again, and its mapping goes away as soon as pinned readers
    // of it drain.
    bad->good = false;
    retire_locked(std::move(bad));
    registry_metrics().retained.set(static_cast<std::int64_t>(
        kept_.size() + 1));
  }
  registry_metrics().rollbacks.inc();
  obs::TraceRing::global().emit(if_current, obs::SpanKind::kRollback, 0,
                                to_version);
  reclaim();
  return coop::OkStatus();
}

std::size_t Registry::retained_count() const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  return kept_.size() + (current_owner_ != nullptr ? 1 : 0);
}

void Registry::reclaim() const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  if (retired_.empty()) {
    return;
  }
  std::uint64_t min_epoch = ~std::uint64_t{0};
  for (const ReaderSlot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != kFree && e != kClaiming) {
      min_epoch = std::min(min_epoch, e);
    }
    // kClaiming counts as quiescent: the claimer has not read `current_`
    // yet, and its announce/re-check loop forces it onto the newest
    // epoch before it does.
  }
  const std::size_t before = retired_.size();
  std::erase_if(retired_, [min_epoch](const auto& r) {
    return r.first < min_epoch;  // destroys the Versioned -> unmaps
  });
  RegistryMetrics& rm = registry_metrics();
  if (const std::size_t gone = before - retired_.size(); gone > 0) {
    rm.drained.add(gone);
  }
  rm.retired.set(static_cast<std::int64_t>(retired_.size()));
}

std::size_t Registry::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  return retired_.size();
}

Status serve_path_queries(const Registry& registry,
                          serve::QueryEngine& engine,
                          std::span<const serve::PathQuery> queries,
                          std::vector<serve::PathAnswer>& out,
                          serve::BatchReport* report,
                          std::uint64_t* served_version,
                          const serve::BatchOptions& opts) {
  const Registry::Pin pin = registry.pin();
  if (!pin.has_snapshot()) {
    return Status::failed_precondition(
        "no snapshot published in the registry");
  }
  if (pin.snapshot().kind != SnapshotKind::kCascade) {
    return Status::failed_precondition(
        "current snapshot is not a cascade (path queries need kCascade)");
  }
  const serve::BatchReport r =
      serve::serve_path_queries(pin.snapshot().cascade, engine, queries, out,
                                opts);
  if (report != nullptr) {
    *report = r;
  }
  if (served_version != nullptr) {
    *served_version = pin.version();
  }
  return coop::OkStatus();
}

Status serve_point_queries(const Registry& registry,
                           serve::QueryEngine& engine,
                           std::span<const geom::Point> points,
                           std::vector<std::size_t>& out,
                           serve::BatchReport* report,
                           std::uint64_t* served_version,
                           const serve::BatchOptions& opts) {
  const Registry::Pin pin = registry.pin();
  if (!pin.has_snapshot()) {
    return Status::failed_precondition(
        "no snapshot published in the registry");
  }
  if (pin.snapshot().kind != SnapshotKind::kPointLocator ||
      !pin.snapshot().pointloc.has_value()) {
    return Status::failed_precondition(
        "current snapshot is not a point locator (point queries need "
        "kPointLocator)");
  }
  const serve::BatchReport r = serve::serve_point_queries(
      *pin.snapshot().pointloc, engine, points, out, opts);
  if (report != nullptr) {
    *report = r;
  }
  if (served_version != nullptr) {
    *served_version = pin.version();
  }
  return coop::OkStatus();
}

}  // namespace snapshot
