#pragma once

// On-disk layout of serving-arena snapshots (DESIGN.md §8).
//
//   [FileHeader 64 B][SectionRecord x section_count][pad][section payloads]
//
// Everything is explicit little-endian (enforced at compile time in
// serve/arena.hpp: the pools these bytes are reinterpreted as are native
// LE), every payload starts on a 64-byte boundary so a PROT_READ mmap of
// the file yields cache-line-aligned arena views with zero copying, and
// every region is covered by a CRC32 (header -> header_crc, section table
// -> table_crc, each payload -> SectionRecord::crc32) so a truncated or
// bit-flipped file is rejected by snapshot::open before it can be served.
//
// This header is deliberately self-contained (constants, PODs, CRC32 —
// no snapshot library types) so robust/corrupt.cpp can craft targeted
// file-level faults against the format without linking the snapshot
// library.

#include <array>
#include <cstddef>
#include <cstdint>

namespace snapshot {

/// "COOPSNAP" — first 8 bytes of every snapshot file.
inline constexpr std::array<char, 8> kMagic = {'C', 'O', 'O', 'P',
                                               'S', 'N', 'A', 'P'};

/// Bump on any incompatible layout change; snapshot::open rejects files
/// outside [kMinFormatVersion, kFormatVersion] (no best-effort parsing of
/// unknown *newer* layouts).
///
/// v2 (PR 7) adds the blocked multiway search layout: sections
/// kSimdKeys/kSimdPos/kSimdOff and ArenaMeta::num_simd_slots (meta grows
/// 56 -> 64 bytes, strictly appended).  v1 files stay loadable: open()
/// reads the 56-byte meta prefix and *rebuilds* the layout pools from the
/// validated key sections (transparent re-layout, never UB) — see
/// DESIGN.md §12.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

/// Written natively by an LE writer; reads as 0x04030201 on a big-endian
/// reader, turning a cross-endian file into a descriptive Status instead
/// of silently byte-swapped garbage.
inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// Payload alignment within the file (== serve::kCacheLine, asserted in
/// snapshot.cpp): mmapped sections land cache-line-aligned.
inline constexpr std::uint64_t kSectionAlign = 64;

/// Hard cap on section_count; a header claiming more is corrupt.
inline constexpr std::uint32_t kMaxSections = 32;

/// What structure the file carries (FileHeader::kind).
enum class SnapshotKind : std::uint32_t {
  kCascade = 1,       ///< serve::FlatCascade
  kPointLocator = 2,  ///< serve::FlatPointLocator (cascade + geometry)
};

/// Section ids.  A reader locates sections by id, so optional sections
/// can be added without a version bump; unknown ids are ignored.
enum class SectionId : std::uint32_t {
  kMeta = 1,      ///< one ArenaMeta
  kNodes = 2,     ///< serve::FlatNode[num_nodes]
  kKeys = 3,      ///< int64 keys, node-major
  kProper = 4,    ///< uint32 aug -> proper map
  kBridge = 5,    ///< uint32 bridge rows
  kChild = 6,     ///< uint32 flattened child lists
  // FlatPointLocator extension sections:
  kEntryOff = 7,  ///< uint32 per-node offset into the entry pools
  kSep = 8,       ///< int32 separator index per node
  kLoX = 9,       ///< int64 edge endpoint pools...
  kLoY = 10,
  kHiX = 11,
  kHiY = 12,
  kMaxSep = 13,   ///< int32 running-max pool
  // Blocked multiway search layout (v2+; serve/simd_find.hpp):
  kSimdKeys = 14,  ///< int64 layout slots, node-major, 8-slot blocks
  kSimdPos = 15,   ///< uint32 rank per slot (n for padding slots)
  kSimdOff = 16,   ///< uint32 per-node first-slot offset
};

/// 64-byte file header.  header_crc covers these 64 bytes with the
/// header_crc field itself zeroed; table_crc covers the section table
/// that immediately follows.
struct FileHeader {
  std::array<char, 8> magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t endian_tag = kEndianTag;
  std::uint32_t kind = 0;           ///< SnapshotKind
  std::uint32_t section_count = 0;
  std::uint64_t file_size = 0;      ///< total bytes; truncation guard
  std::uint32_t header_crc = 0;
  std::uint32_t table_crc = 0;
  std::uint8_t reserved[24] = {};
};
static_assert(sizeof(FileHeader) == 64);

/// One section-table entry (table starts at byte 64).
struct SectionRecord {
  std::uint32_t id = 0;         ///< SectionId
  std::uint32_t elem_size = 0;  ///< bytes per element (sanity check)
  std::uint64_t offset = 0;     ///< from file start; kSectionAlign-aligned
  std::uint64_t length = 0;     ///< payload bytes (multiple of elem_size)
  std::uint32_t crc32 = 0;      ///< CRC of the payload bytes
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SectionRecord) == 32);

/// Payload of SectionId::kMeta: pool sizes (element counts, not bytes) the
/// reader cross-checks against every section's length, plus the scalar
/// arena state.  Pointloc fields are zero for kCascade files.
struct ArenaMeta {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_keys = 0;    ///< keys_/proper_ elements
  std::uint64_t num_bridge = 0;
  std::uint64_t num_child = 0;
  std::uint32_t fanout_bound = 0;
  std::uint32_t pad = 0;
  std::uint64_t num_entries = 0;  ///< pointloc edge-geometry pool elements
  std::uint64_t num_regions = 0;  ///< pointloc region count
  // v2 fields are strictly appended: a v1 reader record is this struct's
  // 56-byte prefix (kArenaMetaSizeV1), zero-filled by open() for v1 files.
  std::uint64_t num_simd_slots = 0;  ///< simd_keys_/simd_pos_ elements
};
static_assert(sizeof(ArenaMeta) == 64);

/// Size of the kMeta payload in v1 files (the v2 prefix).
inline constexpr std::uint32_t kArenaMetaSizeV1 = 56;

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(COOPSEARCH_DISABLE_SIMD)
/// Hardware CRC-32C kernel (SSE4.2 crc32 instruction, 8 bytes per issue).
/// Compiled with a per-function target so the translation unit needs no
/// global -msse4.2; callers must runtime-check cpu support first.
__attribute__((target("sse4.2"))) inline std::uint32_t crc32c_hw(
    std::uint32_t crc, const unsigned char* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(c);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}
#endif

/// CRC-32C (Castagnoli, reflected poly 0x82F63B38) — chosen over IEEE
/// CRC-32 because x86 has a dedicated instruction for it, which is what
/// keeps snapshot::open's whole-file verification out of the startup
/// budget (DESIGN.md §8).  Table-driven fallback elsewhere.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(COOPSEARCH_DISABLE_SIMD)
  if (__builtin_cpu_supports("sse4.2")) {
    return ~crc32c_hw(crc, p, n);
  }
#endif
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B38u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// CRC of a FileHeader with its header_crc field zeroed.
[[nodiscard]] inline std::uint32_t header_crc(FileHeader h) {
  h.header_crc = 0;
  return crc32(&h, sizeof(h));
}

[[nodiscard]] inline std::uint64_t align_up(std::uint64_t v,
                                            std::uint64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace snapshot
