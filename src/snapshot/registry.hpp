#pragma once

// Versioned snapshot registry with epoch-based reclamation (DESIGN.md
// §8): the serving half of the snapshot subsystem.  A long-running
// QueryEngine serves every batch against the snapshot that was current
// when the batch *started*; Registry::publish atomically installs a new
// version under live traffic, and a retired version's arena (and its
// mmap) is released only after every batch that could still be reading
// it has drained — zero dropped queries, zero torn reads, zero
// use-after-unmap.
//
// Protocol (classic epoch-based reclamation, sized for per-batch — not
// per-query — pinning, so the epoch traffic is cold):
//
//   reader:  slot.epoch <- E (announce); re-check E unchanged; read
//            `current`; serve the whole batch (including any degraded
//            sequential rerun); slot.epoch <- quiescent.
//   writer:  swap `current`; retire the old version at epoch
//            r = E++; free retired versions once every announced
//            epoch is > r (a reader announced at e <= r may still hold
//            the old pointer; one announced later provably cannot).
//
// The seq_cst total order makes the re-check sound: a reader whose
// announce survives the re-check either pinned before the swap (then its
// epoch <= r protects the old version) or announced after the epoch
// bump (then its `current` read sees the new version).

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "robust/status.hpp"
#include "serve/query_engine.hpp"
#include "snapshot/snapshot.hpp"

namespace snapshot {

class Registry {
 public:
  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// A pinned view of one published version: the snapshot is guaranteed
  /// mapped and immutable until the Pin is destroyed.  Movable; hold one
  /// per batch, not per query.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { release(); }
    Pin(Pin&& o) noexcept
        : registry_(std::exchange(o.registry_, nullptr)),
          slot_(std::exchange(o.slot_, 0)),
          versioned_(std::exchange(o.versioned_, nullptr)) {}
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        release();
        registry_ = std::exchange(o.registry_, nullptr);
        slot_ = std::exchange(o.slot_, 0);
        versioned_ = std::exchange(o.versioned_, nullptr);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    /// False when pinned before any publish (nothing to serve).
    [[nodiscard]] bool has_snapshot() const { return versioned_ != nullptr; }
    [[nodiscard]] const Snapshot& snapshot() const;
    [[nodiscard]] std::uint64_t version() const;

    /// Drop the pin early (idempotent); also triggers reclamation of
    /// any versions this pin was the last reader of.
    void release();

   private:
    friend class Registry;
    const Registry* registry_ = nullptr;
    std::size_t slot_ = 0;
    const void* versioned_ = nullptr;  // internal Versioned*
  };

  /// Atomically install `snap` as the current version; returns its
  /// version number (monotonic from 1).  The displaced version is
  /// *retained* (still mapped, eligible as a rollback target) until the
  /// keep window overflows, then retired and reclaimed once no pin can
  /// still reference it.  Thread-safe against readers; concurrent
  /// publishers serialize internally.
  std::uint64_t publish(Snapshot snap);

  /// Recently displaced generations kept mapped as rollback targets.
  /// The newest generation marked good is never spilled from the window,
  /// so a scrubber always has somewhere to roll back to.
  static constexpr std::size_t kKeepGenerations = 3;

  /// Record that `version` passed an integrity scrub.  No-op when the
  /// generation is no longer retained.
  void mark_good(std::uint64_t version);

  /// Newest retained generation that was mark_good()'d, skipping
  /// `excluding` (pass the quarantine suspect); 0 when there is none.
  [[nodiscard]] std::uint64_t last_known_good(std::uint64_t excluding = 0)
      const;

  /// Atomically reinstate retained generation `to_version` as current.
  /// The displaced current is quarantined: its good mark is cleared and
  /// it is retired immediately (unmapped only after every pinned reader
  /// of it drains — the epoch protocol above is unchanged).  With
  /// `if_current` != 0 the swap only happens while that exact version is
  /// still current (kFailedPrecondition otherwise) so a scrubber cannot
  /// race a concurrent publish and quarantine a fresh snapshot.  Fails
  /// with kFailedPrecondition when `to_version` is not retained.
  [[nodiscard]] coop::Status rollback(std::uint64_t to_version,
                                      std::uint64_t if_current = 0);

  /// Pin the current version for the duration of a batch.
  [[nodiscard]] Pin pin() const;

  /// Version of the current snapshot (0 before the first publish).
  [[nodiscard]] std::uint64_t current_version() const {
    const Versioned* v = current_.load(std::memory_order_acquire);
    return v == nullptr ? 0 : v->version;
  }

  /// Retired-but-not-yet-reclaimed versions (observability / tests: must
  /// drain to 0 once all pins are released).
  [[nodiscard]] std::size_t retired_count() const;

  /// Retained (not yet retired) generations, current included
  /// (observability / tests).
  [[nodiscard]] std::size_t retained_count() const;

 private:
  struct Versioned {
    Snapshot snap;
    std::uint64_t version = 0;
    bool good = false;  ///< passed a scrub; guarded by retire_mutex_
  };

  /// Reader announcement slots, one cache line each.  Epoch 0 = free,
  /// kClaiming = being acquired (treated as quiescent by reclaim — safe,
  /// because a claimer re-validates against global_epoch_ before it
  /// reads `current_`).
  static constexpr std::size_t kMaxPins = 64;
  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kClaiming = ~std::uint64_t{0};
  struct alignas(serve::kCacheLine) ReaderSlot {
    std::atomic<std::uint64_t> epoch{kFree};
  };

  void reclaim() const;
  /// Move `v` into the keep window, spilling overflow to retired_
  /// (never the newest good generation).  Caller holds retire_mutex_.
  void retain_locked(std::unique_ptr<Versioned> v);
  void retire_locked(std::unique_ptr<Versioned> v);

  mutable ReaderSlot slots_[kMaxPins];
  mutable std::atomic<std::uint64_t> global_epoch_{1};
  /// Readers' view of the current version.  Ownership lives in
  /// current_owner_; the raw atomic is what pin() loads lock-free.
  std::atomic<Versioned*> current_{nullptr};
  mutable std::mutex retire_mutex_;
  std::unique_ptr<Versioned> current_owner_;  ///< guarded by retire_mutex_
  std::deque<std::unique_ptr<Versioned>>
      kept_;  ///< displaced, still-mapped rollback targets (oldest first)
  mutable std::vector<std::pair<std::uint64_t, std::unique_ptr<Versioned>>>
      retired_;  ///< (retire epoch, version); guarded by retire_mutex_
  std::uint64_t next_version_ = 1;  ///< guarded by retire_mutex_
};

/// Serve a batch of explicit-path queries against the registry's current
/// snapshot (kind must be kCascade).  The snapshot is pinned once for
/// the whole batch — parallel attempt AND any degraded sequential rerun
/// — so a concurrent publish can never unmap the arena mid-query.
/// `report`/`served_version` (optional) receive the engine report and
/// the version that answered.  Fails with kFailedPrecondition when
/// nothing is published or the kind does not match.
[[nodiscard]] coop::Status serve_path_queries(
    const Registry& registry, serve::QueryEngine& engine,
    std::span<const serve::PathQuery> queries,
    std::vector<serve::PathAnswer>& out, serve::BatchReport* report = nullptr,
    std::uint64_t* served_version = nullptr,
    const serve::BatchOptions& opts = {});

/// Point-location twin (kind must be kPointLocator).
[[nodiscard]] coop::Status serve_point_queries(
    const Registry& registry, serve::QueryEngine& engine,
    std::span<const geom::Point> points, std::vector<std::size_t>& out,
    serve::BatchReport* report = nullptr,
    std::uint64_t* served_version = nullptr,
    const serve::BatchOptions& opts = {});

}  // namespace snapshot
