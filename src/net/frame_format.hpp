#pragma once

// On-the-wire layout of one framed-TCP message (DESIGN.md §11).
//
//   [u32 frame_len][FrameHeader 40 B][payload][u32 payload_crc]
//
// frame_len counts every byte after the length prefix (header + payload
// + trailer), so a stream reader knows exactly how much to buffer before
// decoding.  Everything is explicit little-endian (the serving arena
// already asserts an LE platform in serve/arena.hpp); the header carries
// its own CRC-32C (header_crc field zeroed) and the trailer is a CRC-32C
// over the payload bytes, so a truncated, bit-flipped, or length-lying
// frame is rejected by net::decode_frame with a descriptive Status
// before any payload field is trusted.
//
// This header is deliberately self-contained (constants + PODs, CRC via
// snapshot/format.hpp which is itself header-only) so robust/corrupt.cpp
// can craft targeted wire-level faults without linking the net library.

#include <cstddef>
#include <cstdint>

#include "snapshot/format.hpp"

namespace net {

/// "CWF1" — first 4 bytes after the length prefix of every frame.
inline constexpr std::uint32_t kWireMagic = 0x31465743;  // 'C','W','F','1'

/// Bump on any incompatible layout change; decode_frame rejects frames
/// with a different version (no silent best-effort parsing).
inline constexpr std::uint16_t kWireVersion = 1;

/// Hard upper bound on frame_len accepted anywhere; servers typically
/// configure a smaller per-connection cap (ServerOptions::max_frame_bytes).
inline constexpr std::uint32_t kAbsoluteMaxFrame = 64u << 20;

/// What a frame carries.  A response reuses its request's type with
/// kResponseBit set; kError is the one typed error response shape (a
/// StatusCode + message) every request can receive instead.
enum class MsgType : std::uint16_t {
  kPathBatch = 1,   ///< explicit-path search batch against a collection
  kPointBatch = 2,  ///< planar point-location batch
  kHealth = 3,      ///< server + per-collection health probe
  kMetrics = 4,     ///< Prometheus text exposition of the obs registry
  kLoad = 5,        ///< admin: create collection from a snapshot file
  kSwap = 6,        ///< admin: publish a new generation into a collection
  kUnload = 7,      ///< admin: remove a collection
  kDrain = 8,       ///< admin: begin graceful drain (the SIGTERM path)
  kError = 0x00FF,  ///< typed error response (always has kResponseBit)
};

inline constexpr std::uint16_t kResponseBit = 0x0100;

[[nodiscard]] inline const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPathBatch: return "PATH_BATCH";
    case MsgType::kPointBatch: return "POINT_BATCH";
    case MsgType::kHealth: return "HEALTH";
    case MsgType::kMetrics: return "METRICS";
    case MsgType::kLoad: return "LOAD";
    case MsgType::kSwap: return "SWAP";
    case MsgType::kUnload: return "UNLOAD";
    case MsgType::kDrain: return "DRAIN";
    case MsgType::kError: return "ERROR";
  }
  return "?";
}

/// 40-byte frame header.  header_crc is the CRC-32C of these 40 bytes
/// with the header_crc field itself zeroed.
struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;          ///< MsgType (| kResponseBit on responses)
  std::uint64_t request_id = 0;    ///< echoed verbatim in the response
  std::uint64_t tenant = 0;        ///< tenant id for quota accounting
  std::uint64_t deadline_ns = 0;   ///< relative deadline budget; 0 = none
  std::uint32_t payload_len = 0;   ///< payload bytes between header and CRC
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(FrameHeader) == 40);

/// Bytes of a frame that are not payload: length prefix + header + CRC
/// trailer.
inline constexpr std::size_t kFrameOverhead =
    sizeof(std::uint32_t) + sizeof(FrameHeader) + sizeof(std::uint32_t);

/// CRC of a FrameHeader with its header_crc field zeroed (CRC-32C, the
/// same runtime-dispatched kernel the snapshot format uses).
[[nodiscard]] inline std::uint32_t frame_header_crc(FrameHeader h) {
  h.header_crc = 0;
  return snapshot::crc32(&h, sizeof(h));
}

}  // namespace net
