#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace net {

using coop::Status;

namespace {

int to_ms(std::chrono::nanoseconds d) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  return ms <= 0 ? 1 : static_cast<int>(ms);
}

/// Wait for readability/writability with a timeout; OK means ready.
Status wait_fd(int fd, short events, std::chrono::nanoseconds timeout,
               const char* what) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int n = ::poll(&p, 1, to_ms(timeout));
  if (n < 0) {
    return Status::unavailable(std::string("poll(): ") +
                               std::strerror(errno));
  }
  if (n == 0) {
    return Status::deadline_exceeded(std::string(what) + " timed out");
  }
  if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
      (p.revents & (POLLIN | POLLOUT)) == 0) {
    return Status::unavailable(std::string(what) +
                               ": connection closed by peer");
  }
  return coop::OkStatus();
}

}  // namespace

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      opts_(o.opts_),
      next_request_id_(o.next_request_id_) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    opts_ = o.opts_;
    next_request_id_ = o.next_request_id_;
  }
  return *this;
}

coop::Expected<Client> Client::connect(const std::string& host,
                                       std::uint16_t port,
                                       ClientOptions opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::invalid_argument("bad host address '" + host + "'");
  }
  // Nonblocking connect + poll, so a black-holed server respects
  // connect_timeout instead of the kernel's.
  const int flags = fcntl(fd, F_GETFL, 0);
  (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Status s = Status::unavailable(std::string("connect(): ") +
                                         std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (Status s = wait_fd(fd, POLLOUT, opts.connect_timeout, "connect");
      !s.ok()) {
    ::close(fd);
    return s;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    return Status::unavailable(std::string("connect(): ") +
                               std::strerror(err != 0 ? err : errno));
  }
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client c;
  c.fd_ = fd;
  c.opts_ = opts;
  return c;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::close_abruptly() {
  if (fd_ < 0) {
    return;
  }
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  (void)setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

Status Client::send_all(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) {
    return Status::unavailable("client is not connected");
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Status s = wait_fd(fd_, POLLOUT, opts_.io_timeout, "send");
            !s.ok()) {
          return s;
        }
        continue;
      }
      return Status::unavailable(std::string("send(): ") +
                                 std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return coop::OkStatus();
}

Status Client::recv_exact(std::uint8_t* out, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd_, out + off, n - off, 0);
    if (got > 0) {
      off += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      return Status::unavailable("connection closed by server mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = wait_fd(fd_, POLLIN, opts_.io_timeout, "recv");
          !s.ok()) {
        return s;
      }
      continue;
    }
    return Status::unavailable(std::string("recv(): ") +
                               std::strerror(errno));
  }
  return coop::OkStatus();
}

Status Client::send_raw(std::span<const std::uint8_t> bytes) {
  return send_all(bytes);
}

coop::Expected<Frame> Client::read_frame() {
  std::uint8_t prefix_bytes[sizeof(std::uint32_t)];
  if (Status s = recv_exact(prefix_bytes, sizeof(prefix_bytes)); !s.ok()) {
    return s;
  }
  std::uint32_t prefix = 0;
  std::memcpy(&prefix, prefix_bytes, sizeof(prefix));
  if (std::size_t{prefix} < sizeof(FrameHeader) + sizeof(std::uint32_t) ||
      sizeof(prefix) + std::size_t{prefix} > opts_.limits.max_frame_bytes) {
    return Status::corrupted("server sent a frame with length prefix " +
                             std::to_string(prefix) +
                             " outside the accepted range");
  }
  std::vector<std::uint8_t> whole(sizeof(prefix) + prefix);
  std::memcpy(whole.data(), prefix_bytes, sizeof(prefix));
  if (Status s = recv_exact(whole.data() + sizeof(prefix), prefix);
      !s.ok()) {
    return s;
  }
  return decode_frame(whole, opts_.limits);
}

coop::Expected<Frame> Client::round_trip(
    MsgType type, std::span<const std::uint8_t> payload) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.request_id = next_request_id_++;
  h.tenant = opts_.tenant;
  h.deadline_ns = opts_.deadline_ns;
  if (Status s = send_all(encode_frame(h, payload)); !s.ok()) {
    return s;
  }
  auto frame = read_frame();
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->header.request_id != h.request_id) {
    return Status::internal(
        "response request_id " + std::to_string(frame->header.request_id) +
        " does not match request " + std::to_string(h.request_id));
  }
  const auto rtype = static_cast<MsgType>(frame->header.type &
                                          ~kResponseBit);
  if (rtype == MsgType::kError) {
    auto err = decode_error(frame->payload, opts_.limits);
    if (!err.ok()) {
      return err.status();
    }
    return from_wire_error(err.value());
  }
  if (rtype != type || (frame->header.type & kResponseBit) == 0) {
    return Status::internal("unexpected response type " +
                            std::to_string(frame->header.type));
  }
  return frame;
}

coop::Expected<PathBatchResponse> Client::path_batch(
    const std::string& collection,
    std::span<const serve::PathQuery> queries) {
  PathBatchRequest req;
  req.collection = collection;
  req.queries.assign(queries.begin(), queries.end());
  auto frame = round_trip(MsgType::kPathBatch, encode(req));
  if (!frame.ok()) {
    return frame.status();
  }
  return decode_path_response(frame->payload, opts_.limits);
}

coop::Expected<PointBatchResponse> Client::point_batch(
    const std::string& collection, std::span<const geom::Point> points) {
  PointBatchRequest req;
  req.collection = collection;
  req.points.assign(points.begin(), points.end());
  auto frame = round_trip(MsgType::kPointBatch, encode(req));
  if (!frame.ok()) {
    return frame.status();
  }
  return decode_point_response(frame->payload, opts_.limits);
}

coop::Expected<HealthResponse> Client::health() {
  auto frame = round_trip(MsgType::kHealth, {});
  if (!frame.ok()) {
    return frame.status();
  }
  return decode_health(frame->payload, opts_.limits);
}

coop::Expected<std::string> Client::metrics() {
  auto frame = round_trip(MsgType::kMetrics, {});
  if (!frame.ok()) {
    return frame.status();
  }
  return std::string(reinterpret_cast<const char*>(frame->payload.data()),
                     frame->payload.size());
}

coop::Expected<std::uint64_t> Client::load(
    const std::string& collection, const std::string& snapshot_path) {
  AdminRequest req{collection, snapshot_path};
  auto frame = round_trip(MsgType::kLoad, encode(req));
  if (!frame.ok()) {
    return frame.status();
  }
  auto resp = decode_admin_response(frame->payload, opts_.limits);
  if (!resp.ok()) {
    return resp.status();
  }
  return resp->version;
}

coop::Expected<std::uint64_t> Client::swap(
    const std::string& collection, const std::string& snapshot_path) {
  AdminRequest req{collection, snapshot_path};
  auto frame = round_trip(MsgType::kSwap, encode(req));
  if (!frame.ok()) {
    return frame.status();
  }
  auto resp = decode_admin_response(frame->payload, opts_.limits);
  if (!resp.ok()) {
    return resp.status();
  }
  return resp->version;
}

coop::Status Client::unload(const std::string& collection) {
  AdminRequest req{collection, ""};
  auto frame = round_trip(MsgType::kUnload, encode(req));
  return frame.ok() ? coop::OkStatus() : frame.status();
}

coop::Status Client::drain() {
  AdminRequest req{"", ""};
  auto frame = round_trip(MsgType::kDrain, encode(req));
  return frame.ok() ? coop::OkStatus() : frame.status();
}

}  // namespace net
