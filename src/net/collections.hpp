#pragma once

// Named dataset registry for the server (DESIGN.md §11): each collection
// owns a snapshot::Registry (versioned generations, epoch reclamation)
// fronted by its own serve::Frontend (admission, breaker, retries), all
// sharing one QueryEngine worker pool.  LOAD creates, SWAP publishes a
// new generation into an existing collection under live traffic, UNLOAD
// removes the name — in-flight batches keep the collection alive through
// the shared_ptr they resolved at dispatch, so an unload can never yank
// an arena out from under a query.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "robust/status.hpp"
#include "serve/frontend.hpp"
#include "serve/query_engine.hpp"
#include "snapshot/registry.hpp"

namespace net {

struct Collection {
  Collection(std::string n, serve::QueryEngine& engine,
             serve::FrontendOptions opts)
      : name(std::move(n)), frontend(registry, engine, opts) {}

  const std::string name;
  snapshot::Registry registry;  // must outlive frontend (declared first)
  serve::Frontend frontend;
};

class CollectionMap {
 public:
  CollectionMap(serve::QueryEngine& engine, serve::FrontendOptions opts)
      : engine_(engine), fopts_(opts) {}

  /// Create `name` and publish `snap` as its version 1.
  /// kFailedPrecondition when the name already exists (use swap).
  [[nodiscard]] coop::Status load(const std::string& name,
                                  snapshot::Snapshot snap,
                                  std::uint64_t* version = nullptr);

  /// Publish `snap` as the next generation of existing collection
  /// `name`; traffic in flight keeps serving the pinned old generation.
  [[nodiscard]] coop::Status swap(const std::string& name,
                                  snapshot::Snapshot snap,
                                  std::uint64_t* version = nullptr);

  /// Remove `name`.  In-flight batches finish against their shared_ptr.
  [[nodiscard]] coop::Status unload(const std::string& name);

  /// nullptr when the name is unknown.
  [[nodiscard]] std::shared_ptr<Collection> find(
      const std::string& name) const;

  /// Every collection, sorted by name (stable health output).
  [[nodiscard]] std::vector<std::shared_ptr<Collection>> all() const;

 private:
  serve::QueryEngine& engine_;
  const serve::FrontendOptions fopts_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Collection>> map_;
};

}  // namespace net
