#pragma once

// Blocking client for the framed-TCP protocol: one connection, one
// request in flight, poll()-guarded reads and writes so a dead or
// stalled server surfaces as a typed Status instead of a hang.  This is
// what coopload, the CI smoke job, and the wire soak's client fleet
// speak; it also exposes the raw-byte and abrupt-close primitives the
// chaos harness needs to inject corrupted frames and mid-batch resets.

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "robust/status.hpp"

namespace net {

struct ClientOptions {
  std::chrono::nanoseconds connect_timeout{std::chrono::seconds(5)};
  std::chrono::nanoseconds io_timeout{std::chrono::seconds(10)};
  DecodeLimits limits;
  std::uint64_t tenant = 0;
  /// Relative deadline stamped on every request; 0 = none.
  std::uint64_t deadline_ns = 0;
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] static coop::Expected<Client> connect(
      const std::string& host, std::uint16_t port, ClientOptions opts = {});

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] ClientOptions& options() { return opts_; }

  /// Round-trip helpers.  A server-side typed ERROR response comes back
  /// as its mapped Status (kDeadlineExceeded, kResourceExhausted,
  /// kUnavailable, ...); transport failures come back as kUnavailable
  /// ("connection ...") or kDeadlineExceeded (io timeout).
  [[nodiscard]] coop::Expected<PathBatchResponse> path_batch(
      const std::string& collection,
      std::span<const serve::PathQuery> queries);
  [[nodiscard]] coop::Expected<PointBatchResponse> point_batch(
      const std::string& collection, std::span<const geom::Point> points);
  [[nodiscard]] coop::Expected<HealthResponse> health();
  [[nodiscard]] coop::Expected<std::string> metrics();
  [[nodiscard]] coop::Expected<std::uint64_t> load(
      const std::string& collection, const std::string& snapshot_path);
  [[nodiscard]] coop::Expected<std::uint64_t> swap(
      const std::string& collection, const std::string& snapshot_path);
  [[nodiscard]] coop::Status unload(const std::string& collection);
  [[nodiscard]] coop::Status drain();

  /// Chaos primitives ------------------------------------------------

  /// Write arbitrary bytes (e.g. a robust::corrupt_frame-mangled frame)
  /// without framing or response handling.
  [[nodiscard]] coop::Status send_raw(std::span<const std::uint8_t> bytes);

  /// Read one complete frame (for driving send_raw conversations).
  [[nodiscard]] coop::Expected<Frame> read_frame();

  /// SO_LINGER(0) close: the kernel sends RST, simulating a client that
  /// died mid-batch rather than one that said goodbye.
  void close_abruptly();

  /// Orderly close (idempotent).
  void close();

 private:
  [[nodiscard]] coop::Status send_all(std::span<const std::uint8_t> bytes);
  [[nodiscard]] coop::Status recv_exact(std::uint8_t* out, std::size_t n);
  /// Send a request frame and read its response; checks the echoed
  /// request id and unwraps ERROR frames into their Status.
  [[nodiscard]] coop::Expected<Frame> round_trip(
      MsgType type, std::span<const std::uint8_t> payload);

  int fd_ = -1;
  ClientOptions opts_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace net
