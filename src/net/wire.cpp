#include "net/wire.hpp"

#include <cstring>

namespace net {

using coop::Status;

namespace {

/// Append-only little-endian byte builder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over hostile payload bytes.
/// Every getter reports the failing field by name, so a rejected frame's
/// Status tells the operator *what* was malformed, not just "bad".
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, const DecodeLimits& limits)
      : bytes_(bytes), limits_(limits) {}

  [[nodiscard]] Status u8(std::uint8_t& out, const char* what) {
    return raw(&out, sizeof(out), what);
  }
  [[nodiscard]] Status u32(std::uint32_t& out, const char* what) {
    return raw(&out, sizeof(out), what);
  }
  [[nodiscard]] Status u64(std::uint64_t& out, const char* what) {
    return raw(&out, sizeof(out), what);
  }
  [[nodiscard]] Status i64(std::int64_t& out, const char* what) {
    return raw(&out, sizeof(out), what);
  }
  [[nodiscard]] Status str(std::string& out, const char* what) {
    std::uint32_t len = 0;
    if (Status s = u32(len, what); !s.ok()) {
      return s;
    }
    if (len > limits_.max_name_len) {
      return overlong(what, len, limits_.max_name_len);
    }
    if (len > remaining()) {
      return truncated(what);
    }
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return coop::OkStatus();
  }
  /// A count field that bounds a following repetition.
  [[nodiscard]] Status count(std::uint32_t& out, const char* what,
                             std::size_t max) {
    if (Status s = u32(out, what); !s.ok()) {
      return s;
    }
    if (out > max) {
      return overlong(what, out, max);
    }
    return coop::OkStatus();
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Decoders call this last: accepting trailing garbage would let a
  /// peer smuggle bytes past the payload CRC unexamined.
  [[nodiscard]] Status done(const char* type) const {
    if (pos_ != bytes_.size()) {
      return Status::corrupted(std::string(type) + " payload has " +
                               std::to_string(remaining()) +
                               " trailing bytes");
    }
    return coop::OkStatus();
  }

 private:
  [[nodiscard]] Status raw(void* out, std::size_t n, const char* what) {
    if (n > remaining()) {
      return truncated(what);
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return coop::OkStatus();
  }
  [[nodiscard]] static Status truncated(const char* what) {
    return Status::corrupted(std::string("payload truncated reading ") +
                             what);
  }
  [[nodiscard]] static Status overlong(const char* what, std::uint64_t got,
                                       std::uint64_t max) {
    return Status::corrupted(std::string(what) + " " + std::to_string(got) +
                             " exceeds limit " + std::to_string(max));
  }

  std::span<const std::uint8_t> bytes_;
  const DecodeLimits& limits_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameHeader h,
                                       std::span<const std::uint8_t> payload) {
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.header_crc = frame_header_crc(h);
  const auto total = static_cast<std::uint32_t>(sizeof(FrameHeader) +
                                                payload.size() +
                                                sizeof(std::uint32_t));
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(total) + total);
  Writer w;
  w.u32(total);
  out = w.take();
  const auto* hb = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), hb, hb + sizeof(h));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = snapshot::crc32(payload.data(), payload.size());
  const auto* cb = reinterpret_cast<const std::uint8_t*>(&crc);
  out.insert(out.end(), cb, cb + sizeof(crc));
  return out;
}

coop::Expected<Frame> decode_frame(std::span<const std::uint8_t> bytes,
                                   const DecodeLimits& limits) {
  if (bytes.size() < kFrameOverhead) {
    return Status::corrupted("frame truncated: " +
                             std::to_string(bytes.size()) +
                             " bytes is below the " +
                             std::to_string(kFrameOverhead) +
                             "-byte minimum frame");
  }
  if (bytes.size() > limits.max_frame_bytes ||
      bytes.size() > kAbsoluteMaxFrame) {
    return Status::corrupted("frame of " + std::to_string(bytes.size()) +
                             " bytes exceeds the frame cap of " +
                             std::to_string(limits.max_frame_bytes));
  }
  std::uint32_t prefix = 0;
  std::memcpy(&prefix, bytes.data(), sizeof(prefix));
  if (std::size_t{prefix} + sizeof(prefix) != bytes.size()) {
    return Status::corrupted(
        "frame truncated: length prefix promises " + std::to_string(prefix) +
        " bytes but " + std::to_string(bytes.size() - sizeof(prefix)) +
        " follow");
  }
  FrameHeader h;
  std::memcpy(&h, bytes.data() + sizeof(prefix), sizeof(h));
  if (h.magic != kWireMagic) {
    return Status::corrupted("bad frame magic (not a coopserve frame)");
  }
  if (h.version != kWireVersion) {
    return Status::corrupted("unsupported frame version " +
                             std::to_string(h.version) + " (expected " +
                             std::to_string(kWireVersion) + ")");
  }
  if (h.header_crc != frame_header_crc(h)) {
    return Status::corrupted("frame header CRC mismatch");
  }
  // The header survived its CRC, so a disagreement here means the length
  // prefix lies about the payload (or bytes were dropped after the
  // header): reject before trusting either length.
  const std::size_t expect =
      sizeof(h) + std::size_t{h.payload_len} + sizeof(std::uint32_t);
  if (std::size_t{prefix} != expect) {
    return Status::corrupted(
        "frame length lie: prefix promises " + std::to_string(prefix) +
        " bytes but the header's payload_len implies " +
        std::to_string(expect));
  }
  const std::uint8_t* payload = bytes.data() + sizeof(prefix) + sizeof(h);
  std::uint32_t trailer = 0;
  std::memcpy(&trailer, payload + h.payload_len, sizeof(trailer));
  if (trailer != snapshot::crc32(payload, h.payload_len)) {
    return Status::corrupted("frame payload CRC mismatch (corrupted in "
                             "flight)");
  }
  Frame f;
  f.header = h;
  f.payload.assign(payload, payload + h.payload_len);
  return f;
}

// --------------------------------------------------------------------
// Payload codecs.

std::vector<std::uint8_t> encode(const PathBatchRequest& m) {
  Writer w;
  w.str(m.collection);
  w.u32(static_cast<std::uint32_t>(m.queries.size()));
  for (const serve::PathQuery& q : m.queries) {
    w.i64(q.y);
    w.u32(static_cast<std::uint32_t>(q.path.size()));
    for (const serve::NodeId v : q.path) {
      w.u32(static_cast<std::uint32_t>(v));
    }
  }
  return w.take();
}

coop::Expected<PathBatchRequest> decode_path_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  PathBatchRequest m;
  if (Status s = r.str(m.collection, "collection name"); !s.ok()) {
    return s;
  }
  std::uint32_t n = 0;
  if (Status s = r.count(n, "path batch size", limits.max_queries); !s.ok()) {
    return s;
  }
  m.queries.resize(n);
  for (serve::PathQuery& q : m.queries) {
    if (Status s = r.i64(q.y, "query key"); !s.ok()) {
      return s;
    }
    std::uint32_t len = 0;
    if (Status s = r.count(len, "path length", limits.max_path_len);
        !s.ok()) {
      return s;
    }
    q.path.resize(len);
    for (serve::NodeId& v : q.path) {
      std::uint32_t node = 0;
      if (Status s = r.u32(node, "path node"); !s.ok()) {
        return s;
      }
      v = static_cast<serve::NodeId>(node);
    }
  }
  if (Status s = r.done("path request"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const PathBatchResponse& m) {
  Writer w;
  w.u64(m.served_version);
  w.u8(m.degraded ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.answers.size()));
  for (const serve::PathAnswer& a : m.answers) {
    w.u32(static_cast<std::uint32_t>(a.aug_index.size()));
    for (const std::uint32_t v : a.aug_index) {
      w.u32(v);
    }
    for (const std::uint32_t v : a.proper_index) {
      w.u32(v);
    }
  }
  return w.take();
}

coop::Expected<PathBatchResponse> decode_path_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  PathBatchResponse m;
  std::uint8_t degraded = 0;
  if (Status s = r.u64(m.served_version, "served version"); !s.ok()) {
    return s;
  }
  if (Status s = r.u8(degraded, "degraded flag"); !s.ok()) {
    return s;
  }
  m.degraded = degraded != 0;
  std::uint32_t n = 0;
  if (Status s = r.count(n, "answer count", limits.max_queries); !s.ok()) {
    return s;
  }
  m.answers.resize(n);
  for (serve::PathAnswer& a : m.answers) {
    std::uint32_t len = 0;
    if (Status s = r.count(len, "answer path length", limits.max_path_len);
        !s.ok()) {
      return s;
    }
    a.aug_index.resize(len);
    a.proper_index.resize(len);
    for (std::uint32_t& v : a.aug_index) {
      if (Status s = r.u32(v, "aug index"); !s.ok()) {
        return s;
      }
    }
    for (std::uint32_t& v : a.proper_index) {
      if (Status s = r.u32(v, "proper index"); !s.ok()) {
        return s;
      }
    }
  }
  if (Status s = r.done("path response"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const PointBatchRequest& m) {
  Writer w;
  w.str(m.collection);
  w.u32(static_cast<std::uint32_t>(m.points.size()));
  for (const geom::Point& p : m.points) {
    w.i64(p.x);
    w.i64(p.y);
  }
  return w.take();
}

coop::Expected<PointBatchRequest> decode_point_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  PointBatchRequest m;
  if (Status s = r.str(m.collection, "collection name"); !s.ok()) {
    return s;
  }
  std::uint32_t n = 0;
  if (Status s = r.count(n, "point batch size", limits.max_queries);
      !s.ok()) {
    return s;
  }
  m.points.resize(n);
  for (geom::Point& p : m.points) {
    std::int64_t x = 0;
    std::int64_t y = 0;
    if (Status s = r.i64(x, "point x"); !s.ok()) {
      return s;
    }
    if (Status s = r.i64(y, "point y"); !s.ok()) {
      return s;
    }
    p.x = x;
    p.y = y;
  }
  if (Status s = r.done("point request"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const PointBatchResponse& m) {
  Writer w;
  w.u64(m.served_version);
  w.u8(m.degraded ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.regions.size()));
  for (const std::uint64_t v : m.regions) {
    w.u64(v);
  }
  return w.take();
}

coop::Expected<PointBatchResponse> decode_point_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  PointBatchResponse m;
  std::uint8_t degraded = 0;
  if (Status s = r.u64(m.served_version, "served version"); !s.ok()) {
    return s;
  }
  if (Status s = r.u8(degraded, "degraded flag"); !s.ok()) {
    return s;
  }
  m.degraded = degraded != 0;
  std::uint32_t n = 0;
  if (Status s = r.count(n, "region count", limits.max_queries); !s.ok()) {
    return s;
  }
  m.regions.resize(n);
  for (std::uint64_t& v : m.regions) {
    if (Status s = r.u64(v, "region index"); !s.ok()) {
      return s;
    }
  }
  if (Status s = r.done("point response"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const ErrorResponse& m) {
  Writer w;
  w.u32(m.code);
  w.str(m.message);
  return w.take();
}

coop::Expected<ErrorResponse> decode_error(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  // Error messages reuse the name limit scaled up: they carry full Status
  // text, which can legitimately exceed a collection name.
  DecodeLimits wide = limits;
  wide.max_name_len = limits.max_name_len * 4;
  Reader r(payload, wide);
  ErrorResponse m;
  if (Status s = r.u32(m.code, "error code"); !s.ok()) {
    return s;
  }
  if (Status s = r.str(m.message, "error message"); !s.ok()) {
    return s;
  }
  if (Status s = r.done("error response"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const HealthResponse& m) {
  Writer w;
  w.u8(m.draining);
  w.u32(static_cast<std::uint32_t>(m.collections.size()));
  for (const CollectionHealth& c : m.collections) {
    w.str(c.name);
    w.u64(c.version);
    w.u8(c.health);
  }
  return w.take();
}

coop::Expected<HealthResponse> decode_health(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  HealthResponse m;
  if (Status s = r.u8(m.draining, "draining flag"); !s.ok()) {
    return s;
  }
  std::uint32_t n = 0;
  if (Status s = r.count(n, "collection count", limits.max_queries);
      !s.ok()) {
    return s;
  }
  m.collections.resize(n);
  for (CollectionHealth& c : m.collections) {
    if (Status s = r.str(c.name, "collection name"); !s.ok()) {
      return s;
    }
    if (Status s = r.u64(c.version, "collection version"); !s.ok()) {
      return s;
    }
    if (Status s = r.u8(c.health, "collection health"); !s.ok()) {
      return s;
    }
  }
  if (Status s = r.done("health response"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const AdminRequest& m) {
  Writer w;
  w.str(m.collection);
  w.str(m.snapshot_path);
  return w.take();
}

coop::Expected<AdminRequest> decode_admin_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  AdminRequest m;
  if (Status s = r.str(m.collection, "collection name"); !s.ok()) {
    return s;
  }
  if (Status s = r.str(m.snapshot_path, "snapshot path"); !s.ok()) {
    return s;
  }
  if (Status s = r.done("admin request"); !s.ok()) {
    return s;
  }
  return m;
}

std::vector<std::uint8_t> encode(const AdminResponse& m) {
  Writer w;
  w.u64(m.version);
  return w.take();
}

coop::Expected<AdminResponse> decode_admin_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits) {
  Reader r(payload, limits);
  AdminResponse m;
  if (Status s = r.u64(m.version, "published version"); !s.ok()) {
    return s;
  }
  if (Status s = r.done("admin response"); !s.ok()) {
    return s;
  }
  return m;
}

ErrorResponse to_wire_error(const coop::Status& s) {
  ErrorResponse e;
  e.code = static_cast<std::uint32_t>(s.code());
  e.message = s.message();
  return e;
}

coop::Status from_wire_error(const ErrorResponse& e) {
  switch (static_cast<coop::StatusCode>(e.code)) {
    case coop::StatusCode::kOk:
      // An ERROR frame claiming OK is itself malformed.
      return Status::internal("peer sent an error frame with code OK: " +
                              e.message);
    case coop::StatusCode::kInvalidArgument:
    case coop::StatusCode::kFailedPrecondition:
    case coop::StatusCode::kCorrupted:
    case coop::StatusCode::kDeadlineExceeded:
    case coop::StatusCode::kInternal:
    case coop::StatusCode::kResourceExhausted:
    case coop::StatusCode::kUnavailable:
    case coop::StatusCode::kPermissionDenied:
      return Status::error(static_cast<coop::StatusCode>(e.code), e.message);
  }
  return Status::internal("peer sent unknown status code " +
                          std::to_string(e.code) + ": " + e.message);
}

}  // namespace net
