#include "net/wire_soak.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/tree.hpp"
#include "fc/build.hpp"
#include "geom/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "pointloc/separator_tree.hpp"
#include "robust/chaos.hpp"
#include "robust/corrupt.hpp"
#include "snapshot/snapshot.hpp"

namespace net {

using coop::Status;
using coop::StatusCode;

namespace {

using Clock = std::chrono::steady_clock;

/// Shared fleet tallies: atomics, because the main thread polls them for
/// the goal check while clients are still running.
struct Tallies {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> wrong_answers{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> deadline_errors{0};
  std::atomic<std::uint64_t> quota_sheds{0};
  std::atomic<std::uint64_t> drain_refusals{0};
  std::atomic<std::uint64_t> malformed_injected{0};
  std::atomic<std::uint64_t> malformed_rejected{0};
  std::atomic<std::uint64_t> resets_injected{0};
  std::atomic<std::uint64_t> slow_reads{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> swaps{0};
  std::atomic<std::uint64_t> load_unload_cycles{0};

  std::mutex failure_mu;
  std::string first_failure;
  void fail(const std::string& what) {
    failed.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(failure_mu);
    if (first_failure.empty()) {
      first_failure = what;
    }
  }
};

/// The tenant the quota-storm mode hammers; normal clients use ci+1.
constexpr std::uint64_t kHotTenant = 1000;

}  // namespace

coop::Expected<WireSoakOutcome> run_wire_soak(const WireSoakOptions& opts) {
  // ---- Fixtures: a cascade tree and a point-location subdivision, both
  // snapshotted to disk so LOAD/SWAP storms exercise the real admin
  // path. ----
  std::mt19937_64 fixture_rng(opts.seed);
  const cat::Tree tree =
      cat::make_balanced_binary(opts.tree_height, opts.tree_entries,
                                cat::CatalogShape::kRandom, fixture_rng);
  const auto structure = fc::Structure::build_checked(tree);
  if (!structure.ok()) {
    return structure.status();
  }
  auto flat = serve::FlatCascade::compile(*structure);
  if (!flat.ok()) {
    return flat.status();
  }
  if (Status st = snapshot::write(*flat, opts.snap_path); !st.ok()) {
    return st;
  }
  const auto sub = geom::make_random_monotone(opts.pointloc_regions,
                                              opts.pointloc_regions * 2,
                                              fixture_rng);
  const pointloc::SeparatorTree septree(sub);
  auto ploc = serve::FlatPointLocator::compile(septree);
  if (!ploc.ok()) {
    return ploc.status();
  }
  if (Status st = snapshot::write(*ploc, opts.point_snap_path); !st.ok()) {
    return st;
  }

  // ---- Server under test, on an ephemeral loopback port. ----
  ServerOptions sopts;
  sopts.port = 0;
  sopts.workers = opts.server_workers;
  sopts.engine_threads = opts.engine_threads;
  sopts.idle_timeout = std::chrono::seconds(30);
  sopts.write_stall_timeout = std::chrono::seconds(2);
  sopts.quota.tokens_per_sec = 2000;
  sopts.quota.burst = 400;
  sopts.frontend.max_inflight = 16;
  sopts.frontend.max_retries = 1;
  sopts.frontend.breaker_threshold = 1u << 30;  // breaker noise off: the
  // wire soak studies transport faults; breaker behaviour has its own
  // soak (serve::run_chaos_soak).
  auto started = Server::start(sopts);
  if (!started.ok()) {
    return started.status();
  }
  std::unique_ptr<Server> server = started.take();
  const std::uint16_t port = server->port();

  const auto open_snap = [](const std::string& path)
      -> coop::Expected<snapshot::Snapshot> { return snapshot::open(path); };
  {
    auto s1 = open_snap(opts.snap_path);
    if (!s1.ok()) {
      return s1.status();
    }
    if (Status st = server->collections().load("main", s1.take());
        !st.ok()) {
      return st;
    }
    auto s2 = open_snap(opts.snap_path);
    auto s3 = open_snap(opts.point_snap_path);
    if (!s2.ok()) {
      return s2.status();
    }
    if (!s3.ok()) {
      return s3.status();
    }
    if (Status st = server->collections().load("alt", s2.take()); !st.ok()) {
      return st;
    }
    if (Status st = server->collections().load("points", s3.take());
        !st.ok()) {
      return st;
    }
  }

  Tallies tally;
  std::atomic<bool> stop{false};
  std::atomic<bool> drain_started{false};

  // ---- Client fleet. ----
  const std::size_t n_clients = std::max<std::size_t>(1, opts.clients);
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t ci = 0; ci < n_clients; ++ci) {
    clients.emplace_back([&, ci] {
      std::mt19937_64 rng(opts.seed ^ (0x00D1A1ull * (ci + 1)));
      ClientOptions copts;
      copts.tenant = ci + 1;
      copts.io_timeout = std::chrono::seconds(2);
      Client client;

      const auto reconnect = [&]() -> bool {
        auto c = Client::connect("127.0.0.1", port, copts);
        if (!c.ok()) {
          return false;
        }
        client = c.take();
        tally.reconnects.fetch_add(1, std::memory_order_relaxed);
        return true;
      };

      /// Random root-to-leaf path batch against the shared tree.
      const auto make_batch = [&](std::size_t n) {
        std::vector<serve::PathQuery> batch(n);
        for (serve::PathQuery& q : batch) {
          std::vector<cat::NodeId> path{tree.root()};
          while (!tree.is_leaf(path.back())) {
            const auto kids = tree.children(path.back());
            path.push_back(kids[rng() % kids.size()]);
          }
          q.path = std::move(path);
          q.y = static_cast<cat::Key>(rng() % 1'000'000'000);
        }
        return batch;
      };

      const auto check_paths = [&](const std::vector<serve::PathQuery>& b,
                                   const PathBatchResponse& resp) {
        if (resp.answers.size() != b.size()) {
          tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (std::size_t qi = 0; qi < b.size(); ++qi) {
          const auto& ans = resp.answers[qi];
          if (ans.proper_index.size() != b[qi].path.size()) {
            tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          for (std::size_t i = 0; i < b[qi].path.size(); ++i) {
            if (ans.proper_index[i] !=
                tree.catalog(b[qi].path[i]).find(b[qi].y)) {
              tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      };

      /// Shared triage for batch statuses.  Returns true when the client
      /// should exit (server is draining).
      const auto triage = [&](const Status& s, bool deadline_ok) -> bool {
        if (s.code() == StatusCode::kResourceExhausted) {
          tally.quota_sheds.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        if (s.code() == StatusCode::kUnavailable) {
          if (drain_started.load(std::memory_order_acquire)) {
            tally.drain_refusals.fetch_add(1, std::memory_order_relaxed);
            return true;  // lame duck: this client is done
          }
          tally.fail("unexpected UNAVAILABLE before drain: " +
                     s.to_string());
          return false;
        }
        if (s.code() == StatusCode::kDeadlineExceeded) {
          if (deadline_ok) {
            tally.deadline_errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            tally.fail("unexpected deadline error: " + s.to_string());
          }
          return false;
        }
        tally.fail("unexpected status: " + s.to_string());
        return false;
      };

      /// A hand-framed single-query path request (for the raw-byte fault
      /// modes that bypass the round-trip helper).
      std::uint64_t raw_id = 1;
      const auto raw_request = [&]() {
        PathBatchRequest req;
        req.collection = "main";
        req.queries = make_batch(1);
        FrameHeader h;
        h.type = static_cast<std::uint16_t>(MsgType::kPathBatch);
        h.request_id = 0x5000'0000 + (ci << 20) + raw_id++;
        h.tenant = copts.tenant;
        return std::make_pair(encode_frame(h, encode(req)), req);
      };

      for (std::uint64_t iter = 0;
           !stop.load(std::memory_order_acquire); ++iter) {
        if (!client.connected() && !reconnect()) {
          if (drain_started.load(std::memory_order_acquire)) {
            return;  // listener is gone: drain in progress
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        const std::uint64_t mode =
            robust::chaos_mix(opts.seed, 100 + ci, iter) % 16;
        switch (mode) {
          default: {  // modes 0..8: a normal path batch
            const std::string col = (iter & 1) != 0 ? "alt" : "main";
            const auto batch = make_batch(opts.batch_queries);
            copts.deadline_ns = 0;
            client.options() = copts;
            auto resp = client.path_batch(col, batch);
            tally.batches.fetch_add(1, std::memory_order_relaxed);
            if (resp.ok()) {
              tally.answered.fetch_add(1, std::memory_order_relaxed);
              check_paths(batch, resp.value());
            } else if (triage(resp.status(), /*deadline_ok=*/false)) {
              return;
            }
            break;
          }
          case 9: {  // a normal point batch with its own oracle
            std::vector<geom::Point> pts(opts.batch_queries / 2);
            std::vector<std::size_t> expect(pts.size());
            for (std::size_t i = 0; i < pts.size(); ++i) {
              pts[i] = geom::random_query_point(sub, rng);
              expect[i] = sub.locate_brute(pts[i]);
            }
            copts.deadline_ns = 0;
            client.options() = copts;
            auto resp = client.point_batch("points", pts);
            tally.batches.fetch_add(1, std::memory_order_relaxed);
            if (resp.ok()) {
              tally.answered.fetch_add(1, std::memory_order_relaxed);
              bool bad = resp->regions.size() != expect.size();
              for (std::size_t i = 0; !bad && i < expect.size(); ++i) {
                bad = resp->regions[i] != expect[i];
              }
              if (bad) {
                tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
              }
            } else if (triage(resp.status(), /*deadline_ok=*/false)) {
              return;
            }
            break;
          }
          case 10: {  // deadline squeeze: a 1 ns budget must come back
                      // as a typed DEADLINE_EXCEEDED, never a late answer
            const auto batch = make_batch(opts.batch_queries);
            copts.deadline_ns = 1;
            client.options() = copts;
            auto resp = client.path_batch("main", batch);
            copts.deadline_ns = 0;
            tally.batches.fetch_add(1, std::memory_order_relaxed);
            if (resp.ok()) {
              // Permitted only if the server truly beat the clock —
              // answers must still be right.
              tally.answered.fetch_add(1, std::memory_order_relaxed);
              check_paths(batch, resp.value());
            } else if (triage(resp.status(), /*deadline_ok=*/true)) {
              return;
            }
            break;
          }
          case 11: {  // corrupted frame injection
            auto [frame, req] = raw_request();
            const robust::CorruptionKind kind =
                robust::kAllWireFaultKinds[iter % 3];
            if (!robust::corrupt_frame(
                     frame, kind, robust::chaos_mix(opts.seed, 7, iter))
                     .ok()) {
              break;
            }
            tally.malformed_injected.fetch_add(1,
                                               std::memory_order_relaxed);
            if (!client.send_raw(frame).ok()) {
              client.close();
              break;
            }
            if (kind == robust::CorruptionKind::kWireTruncated) {
              // The server is (correctly) waiting for bytes that will
              // never come; hang up and let its reassembly discard them.
              client.close();
              break;
            }
            auto resp = client.read_frame();
            if (resp.ok() &&
                static_cast<MsgType>(resp->header.type & ~kResponseBit) ==
                    MsgType::kError) {
              auto err = decode_error(resp->payload);
              if (err.ok() &&
                  static_cast<StatusCode>(err->code) ==
                      StatusCode::kCorrupted) {
                tally.malformed_rejected.fetch_add(
                    1, std::memory_order_relaxed);
              }
            }
            client.close();  // server closes its side too; resync
            break;
          }
          case 12: {  // connection reset mid-batch
            auto [frame, req] = raw_request();
            if (client.send_raw(frame).ok()) {
              tally.resets_injected.fetch_add(1,
                                              std::memory_order_relaxed);
            }
            client.close_abruptly();  // RST while the batch may be in
                                      // flight; response must be dropped,
                                      // never crash the server
            break;
          }
          case 13: {  // slow reader: answer sits in the socket a while
            auto [frame, req] = raw_request();
            if (!client.send_raw(frame).ok()) {
              client.close();
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
            auto resp = client.read_frame();
            if (resp.ok()) {
              tally.slow_reads.fetch_add(1, std::memory_order_relaxed);
            } else {
              client.close();
            }
            break;
          }
          case 14: {  // quota storm: one hot tenant pipelines a burst
                      // past its bucket in a single write, so the bucket
                      // cannot refill between admissions no matter how
                      // slow a round trip is on this machine; the
                      // overflow must be shed, never served late
            if (ci != 0) {
              break;  // one storm source keeps volume bounded
            }
            constexpr int kStormFrames = 600;  // bucket burst is 400
            std::vector<std::uint8_t> blast;
            blast.reserve(kStormFrames * 160);
            for (int k = 0; k < kStormFrames; ++k) {
              PathBatchRequest req;
              req.collection = "main";
              req.queries = make_batch(1);
              FrameHeader h;
              h.type = static_cast<std::uint16_t>(MsgType::kPathBatch);
              h.request_id = 0x6000'0000 + (iter << 12) +
                             static_cast<std::uint64_t>(k);
              h.tenant = kHotTenant;
              const auto bytes = encode_frame(h, encode(req));
              blast.insert(blast.end(), bytes.begin(), bytes.end());
            }
            if (!client.send_raw(blast).ok()) {
              client.close();
              break;
            }
            bool draining_out = false;
            for (int k = 0; k < kStormFrames; ++k) {
              auto resp = client.read_frame();
              if (!resp.ok()) {
                client.close();
                break;
              }
              if (static_cast<MsgType>(resp->header.type & ~kResponseBit) !=
                  MsgType::kError) {
                continue;  // served inside the budget: fine
              }
              auto err = decode_error(resp->payload);
              if (!err.ok()) {
                continue;
              }
              const Status s = from_wire_error(err.value());
              if (s.code() == StatusCode::kResourceExhausted) {
                tally.quota_sheds.fetch_add(1, std::memory_order_relaxed);
              } else if (triage(s, /*deadline_ok=*/false)) {
                draining_out = true;  // keep reading what's in flight
              }
            }
            if (draining_out) {
              return;
            }
            break;
          }
          case 15: {  // health + metrics probes stay answerable
            auto h = client.health();
            if (!h.ok() &&
                triage(h.status(), /*deadline_ok=*/false)) {
              return;
            }
            break;
          }
        }
      }
    });
  }

  // ---- Conductor: SWAP storms + LOAD/UNLOAD cycles under traffic. ----
  std::thread conductor([&] {
    ClientOptions copts;
    copts.io_timeout = std::chrono::seconds(2);
    auto c = Client::connect("127.0.0.1", port, copts);
    if (!c.ok()) {
      return;
    }
    Client admin = c.take();
    for (std::uint64_t cycle = 0;
         !stop.load(std::memory_order_acquire) &&
         !drain_started.load(std::memory_order_acquire);
         ++cycle) {
      const std::uint32_t burst =
          1 + static_cast<std::uint32_t>(
                  robust::chaos_mix(opts.seed, 55, cycle) % 3);
      for (std::uint32_t b = 0; b < burst; ++b) {
        const std::string col = (cycle + b) % 2 == 0 ? "main" : "alt";
        auto v = admin.swap(col, opts.snap_path);
        if (v.ok()) {
          tally.swaps.fetch_add(1, std::memory_order_relaxed);
        } else if (v.status().code() == StatusCode::kUnavailable) {
          return;
        }
      }
      if (cycle % 3 == 0) {
        auto v = admin.load("ephemeral", opts.point_snap_path);
        if (v.ok() && admin.unload("ephemeral").ok()) {
          tally.load_unload_cycles.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (opts.verbose && cycle % 50 == 0) {
        std::fprintf(stderr, "wire-soak: cycle %llu swaps=%llu\n",
                     static_cast<unsigned long long>(cycle),
                     static_cast<unsigned long long>(
                         tally.swaps.load(std::memory_order_relaxed)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // ---- Run until every goal is observed (bounded), then drain
  // mid-traffic. ----
  const auto begun = Clock::now();
  const auto min_end = begun + opts.duration;
  const auto hard_end = begun + opts.duration * 6 + std::chrono::seconds(2);
  const auto goals_now = [&] {
    return tally.deadline_errors.load(std::memory_order_relaxed) >= 1 &&
           tally.quota_sheds.load(std::memory_order_relaxed) >= 1 &&
           tally.malformed_rejected.load(std::memory_order_relaxed) >= 1 &&
           tally.resets_injected.load(std::memory_order_relaxed) >= 1 &&
           tally.slow_reads.load(std::memory_order_relaxed) >= 1 &&
           tally.swaps.load(std::memory_order_relaxed) >= 1 &&
           tally.load_unload_cycles.load(std::memory_order_relaxed) >= 1 &&
           tally.answered.load(std::memory_order_relaxed) >= 1;
  };
  for (;;) {
    const auto now = Clock::now();
    if ((now >= min_end && goals_now()) || now >= hard_end) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Drain while clients are still firing: in-flight batches must finish,
  // new ones must get typed refusals, and the server must report fully
  // drained inside the grace window.
  drain_started.store(true, std::memory_order_release);
  server->begin_drain();
  const bool drained = server->wait_drained(opts.drain_grace);

  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) {
    t.join();
  }
  conductor.join();
  const ServerStats sstats = server->stats();
  server->stop();

  // ---- Assemble the outcome. ----
  WireSoakOutcome out;
  out.batches = tally.batches.load(std::memory_order_relaxed);
  out.answered = tally.answered.load(std::memory_order_relaxed);
  out.wrong_answers = tally.wrong_answers.load(std::memory_order_relaxed);
  out.failed = tally.failed.load(std::memory_order_relaxed);
  out.deadline_errors =
      tally.deadline_errors.load(std::memory_order_relaxed);
  out.quota_sheds = tally.quota_sheds.load(std::memory_order_relaxed);
  out.drain_refusals =
      tally.drain_refusals.load(std::memory_order_relaxed);
  out.malformed_injected =
      tally.malformed_injected.load(std::memory_order_relaxed);
  out.malformed_rejected =
      tally.malformed_rejected.load(std::memory_order_relaxed);
  out.resets_injected =
      tally.resets_injected.load(std::memory_order_relaxed);
  out.slow_reads = tally.slow_reads.load(std::memory_order_relaxed);
  out.reconnects = tally.reconnects.load(std::memory_order_relaxed);
  out.swaps = tally.swaps.load(std::memory_order_relaxed);
  out.load_unload_cycles =
      tally.load_unload_cycles.load(std::memory_order_relaxed);
  out.drained_in_grace = drained;
  {
    std::lock_guard<std::mutex> lock(tally.failure_mu);
    out.first_failure = tally.first_failure;
  }
  out.goals_met = goals_now() && drained;

  if (out.wrong_answers > 0) {
    out.verdict = "FAIL: " + std::to_string(out.wrong_answers) +
                  " answers disagreed with the oracle";
  } else if (out.failed > 0) {
    out.verdict = "FAIL: " + std::to_string(out.failed) +
                  " requests got an unexpected status (first: " +
                  out.first_failure + ")";
  } else if (!out.drained_in_grace) {
    out.verdict = "FAIL: drain did not complete within the grace window";
  } else if (!out.goals_met) {
    out.verdict =
        "FAIL: soak ended without observing every wire-fault goal "
        "(deadline/quota/malformed/reset/slow/swap/load-unload)";
  } else {
    out.verdict =
        "OK: zero wrong answers, zero unexpected statuses; server "
        "survived resets, corrupt frames, deadline squeezes, quota "
        "storms, swap storms, and drained cleanly (" +
        std::to_string(sstats.malformed) + " malformed frames rejected)";
  }

  std::remove(opts.snap_path.c_str());
  std::remove(opts.point_snap_path.c_str());
  return out;
}

}  // namespace net
