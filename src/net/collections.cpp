#include "net/collections.hpp"

namespace net {

using coop::Status;

Status CollectionMap::load(const std::string& name, snapshot::Snapshot snap,
                           std::uint64_t* version) {
  std::shared_ptr<Collection> c;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.count(name) != 0) {
      return Status::failed_precondition("collection '" + name +
                                         "' already loaded (use SWAP)");
    }
    c = std::make_shared<Collection>(name, engine_, fopts_);
    map_.emplace(name, c);
  }
  const std::uint64_t v = c->registry.publish(std::move(snap));
  if (version != nullptr) {
    *version = v;
  }
  return coop::OkStatus();
}

Status CollectionMap::swap(const std::string& name, snapshot::Snapshot snap,
                           std::uint64_t* version) {
  std::shared_ptr<Collection> c = find(name);
  if (c == nullptr) {
    return Status::failed_precondition("collection '" + name +
                                       "' not loaded (use LOAD)");
  }
  const std::uint64_t v = c->registry.publish(std::move(snap));
  if (version != nullptr) {
    *version = v;
  }
  return coop::OkStatus();
}

Status CollectionMap::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.erase(name) == 0) {
    return Status::failed_precondition("collection '" + name +
                                       "' not loaded");
  }
  return coop::OkStatus();
}

std::shared_ptr<Collection> CollectionMap::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(name);
  return it == map_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Collection>> CollectionMap::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Collection>> out;
  out.reserve(map_.size());
  for (const auto& [name, c] : map_) {
    out.push_back(c);
  }
  return out;
}

}  // namespace net
