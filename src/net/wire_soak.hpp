#pragma once

// Over-the-wire chaos soak (DESIGN.md §11): stand up a real Server on
// loopback, aim a seeded client fleet at it, and inject every
// transport-level fault the serving plane claims to survive:
//
//   connection resets mid-batch      (SO_LINGER(0) aborts)
//   truncated / length-lying / bit-flipped frames (robust::corrupt_frame)
//   slow readers                     (response left unread for a while)
//   deadline squeezes                (1 ns request deadlines)
//   per-tenant quota storms          (a hot tenant bursting past its bucket)
//   SWAP publish storms + LOAD/UNLOAD cycles under traffic
//   a graceful drain begun mid-traffic
//
// and assert the contract: the server never crashes, every admitted
// path/point answer matches the source-structure oracle bit for bit,
// every shed / expired / refused request got a *typed* error (never a
// hang, never a silent close of a well-formed stream), and the drain
// finishes every in-flight batch inside its grace window.
//
// Shared by tests/net/test_wire_soak.cpp (short) and coopserve --soak
// (the >=10 s CI soak), mirroring serve::run_chaos_soak.

#include <chrono>
#include <cstdint>
#include <string>

#include "robust/status.hpp"

namespace net {

struct WireSoakOptions {
  std::uint64_t seed = 1;
  std::chrono::milliseconds duration{2000};
  std::size_t clients = 4;
  std::size_t server_workers = 3;
  std::size_t engine_threads = 4;
  std::uint32_t tree_height = 6;
  std::size_t tree_entries = 4000;
  std::size_t pointloc_regions = 24;
  std::size_t batch_queries = 64;
  /// Scratch snapshot files (overwritten, removed on success).
  std::string snap_path = "wire_soak.snap";
  std::string point_snap_path = "wire_soak_points.snap";
  std::chrono::nanoseconds drain_grace{std::chrono::seconds(5)};
  bool verbose = false;
};

struct WireSoakOutcome {
  // Client-side view.
  std::uint64_t batches = 0;          ///< path/point batches submitted
  std::uint64_t answered = 0;         ///< served OK
  std::uint64_t wrong_answers = 0;    ///< oracle mismatches (must be 0)
  std::uint64_t failed = 0;           ///< unexpected status (must be 0)
  std::uint64_t deadline_errors = 0;  ///< typed DEADLINE_EXCEEDED received
  std::uint64_t quota_sheds = 0;      ///< typed RESOURCE_EXHAUSTED received
  std::uint64_t drain_refusals = 0;   ///< typed UNAVAILABLE during drain
  std::uint64_t malformed_injected = 0;
  std::uint64_t malformed_rejected = 0;  ///< typed CORRUPTED came back
  std::uint64_t resets_injected = 0;
  std::uint64_t slow_reads = 0;
  std::uint64_t reconnects = 0;
  // Conductor-side view.
  std::uint64_t swaps = 0;
  std::uint64_t load_unload_cycles = 0;
  // Lifecycle.
  bool drained_in_grace = false;
  std::string first_failure;
  bool goals_met = false;
  std::string verdict;  ///< one-line human summary
};

/// Run the soak.  Setup errors (fixture build, snapshot IO, server
/// start) are the returned Status; a completed soak always returns an
/// outcome — judge it via goals_met / failed / wrong_answers.  Runs for
/// `duration`, extending (up to ~6x) until every goal is observed.
[[nodiscard]] coop::Expected<WireSoakOutcome> run_wire_soak(
    const WireSoakOptions& opts);

}  // namespace net
