#include "net/quota.hpp"

#include <string>

namespace net {

using coop::Status;

TenantQuotas::TenantQuotas(QuotaOptions opts) : opts_(opts) {}

Status TenantQuotas::admit(std::uint64_t tenant, std::uint64_t now_ns,
                           std::uint64_t cost) {
  if (!enabled() || cost == 0) {
    return coop::OkStatus();
  }
  const std::uint64_t cap = opts_.burst * kScale;
  const std::uint64_t need = cost * kScale;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = buckets_.try_emplace(tenant);
  Bucket& b = it->second;
  if (fresh) {
    b.scaled_tokens = cap;  // new tenants may burst immediately
    b.last_refill_ns = now_ns;
  }
  if (now_ns > b.last_refill_ns) {
    // kScale scaled-tokens per token and 1e9 ns per second cancel:
    // refill is exactly elapsed_ns * tokens_per_sec scaled-tokens.
    // Clamp the elapsed time to what fills the bucket from empty before
    // multiplying, so a long-idle tenant cannot overflow the product.
    std::uint64_t elapsed = now_ns - b.last_refill_ns;
    const std::uint64_t to_full = cap / opts_.tokens_per_sec + 1;
    if (elapsed > to_full) {
      elapsed = to_full;
    }
    const std::uint64_t refill = elapsed * opts_.tokens_per_sec;
    b.scaled_tokens = refill > cap - std::min(b.scaled_tokens, cap)
                          ? cap
                          : b.scaled_tokens + refill;
    b.last_refill_ns = now_ns;
  }
  if (b.scaled_tokens < need) {
    ++b.stats.shed;
    return Status::resource_exhausted(
        "tenant " + std::to_string(tenant) + " quota exhausted (" +
        std::to_string(opts_.tokens_per_sec) + "/s, burst " +
        std::to_string(opts_.burst) + ")");
  }
  b.scaled_tokens -= need;
  ++b.stats.admitted;
  return coop::OkStatus();
}

TenantStats TenantQuotas::stats(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? TenantStats{} : it->second.stats;
}

}  // namespace net
