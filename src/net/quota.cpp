#include "net/quota.hpp"

#include <algorithm>
#include <string>

namespace net {

using coop::Status;

TenantQuotas::TenantQuotas(QuotaOptions opts) : opts_(opts) {}

std::uint64_t TenantQuotas::refilled_tokens(const Bucket& b,
                                            std::uint64_t now_ns,
                                            std::uint64_t cap) const {
  const std::uint64_t have = std::min(b.scaled_tokens, cap);
  if (now_ns <= b.last_refill_ns) {
    return have;
  }
  // kScale scaled-tokens per token and 1e9 ns per second cancel:
  // refill is exactly elapsed_ns * tokens_per_sec scaled-tokens.
  // Clamp the elapsed time to what fills the bucket from empty before
  // multiplying, so a long-idle tenant cannot overflow the product.
  std::uint64_t elapsed = now_ns - b.last_refill_ns;
  const std::uint64_t to_full = cap / opts_.tokens_per_sec + 1;
  if (elapsed > to_full) {
    elapsed = to_full;
  }
  const std::uint64_t refill = elapsed * opts_.tokens_per_sec;
  return refill > cap - have ? cap : have + refill;
}

bool TenantQuotas::evict_one(std::uint64_t now_ns, std::uint64_t cap) {
  // Only a bucket that refills to full is evictable: its owner would get
  // a fresh full bucket on return anyway, so the admission sequence
  // cannot tell (beyond the evictee's stats resetting).  Buckets still
  // draining belong to live tenants and stay — an id-cycling attacker
  // sheds itself, never a resident.  The (last_refill_ns, tenant) order
  // keeps the victim deterministic despite unordered_map iteration.
  auto victim = buckets_.end();
  for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
    if (refilled_tokens(it->second, now_ns, cap) < cap) {
      continue;
    }
    if (victim == buckets_.end() ||
        it->second.last_refill_ns < victim->second.last_refill_ns ||
        (it->second.last_refill_ns == victim->second.last_refill_ns &&
         it->first < victim->first)) {
      victim = it;
    }
  }
  if (victim == buckets_.end()) {
    return false;
  }
  buckets_.erase(victim);
  ++evicted_;
  return true;
}

Status TenantQuotas::admit(std::uint64_t tenant, std::uint64_t now_ns,
                           std::uint64_t cost) {
  if (!enabled() || cost == 0) {
    return coop::OkStatus();
  }
  const std::uint64_t cap = opts_.burst * kScale;
  const std::uint64_t need = cost * kScale;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    if (opts_.max_tenants != 0 && buckets_.size() >= opts_.max_tenants &&
        !evict_one(now_ns, cap)) {
      return Status::resource_exhausted(
          "tenant table full (" + std::to_string(opts_.max_tenants) +
          " active tenants); tenant " + std::to_string(tenant) + " shed");
    }
    it = buckets_.try_emplace(tenant).first;
    it->second.scaled_tokens = cap;  // new tenants may burst immediately
    it->second.last_refill_ns = now_ns;
  }
  Bucket& b = it->second;
  if (now_ns > b.last_refill_ns) {
    b.scaled_tokens = refilled_tokens(b, now_ns, cap);
    b.last_refill_ns = now_ns;
  }
  if (b.scaled_tokens < need) {
    ++b.stats.shed;
    return Status::resource_exhausted(
        "tenant " + std::to_string(tenant) + " quota exhausted (" +
        std::to_string(opts_.tokens_per_sec) + "/s, burst " +
        std::to_string(opts_.burst) + ")");
  }
  b.scaled_tokens -= need;
  ++b.stats.admitted;
  return coop::OkStatus();
}

TenantStats TenantQuotas::stats(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = buckets_.find(tenant);
  return it == buckets_.end() ? TenantStats{} : it->second.stats;
}

std::size_t TenantQuotas::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

std::uint64_t TenantQuotas::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

}  // namespace net
