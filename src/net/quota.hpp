#pragma once

// Per-tenant admission quotas (DESIGN.md §11): a token bucket per tenant
// id, sitting *in front of* the frontend's global bounded admission.  The
// global budget protects the process; the per-tenant buckets protect
// tenants from each other — a hot tenant exhausts its own bucket and is
// shed with kResourceExhausted while a quiet tenant's traffic still
// admits.
//
// Determinism: the bucket does no clock reads.  Callers pass `now_ns`
// (the server passes its steady clock; tests and the wire soak pass a
// scripted clock), and all arithmetic is fixed-point integer — tokens
// are stored scaled by 1e9, refill is elapsed_ns * rate_per_sec — so a
// replayed admission sequence is byte-identical across runs and
// platforms.  No floating point anywhere.
//
// The bucket table itself is bounded: tenant ids come off the wire, so a
// hostile client cycling ids must not grow the map without limit (that
// would be a memory-exhaustion DoS inside the layer meant to prevent
// DoS).  At `max_tenants` a new tenant may only enter by evicting a
// bucket that is (or would refill to) full — a returning tenant gets a
// fresh full bucket anyway, so eviction changes nothing the admission
// sequence observes except the evictee's stats.  If every resident
// bucket is still draining (actively used), the *new* tenant is shed
// instead: an id-cycling attacker can never push out a live tenant.
// Victim choice is by (oldest last_refill_ns, lowest tenant id), a total
// order, so the trace stays deterministic.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "robust/status.hpp"

namespace net {

struct QuotaOptions {
  /// Sustained admissions per second per tenant; 0 disables quotas
  /// (every request admits).
  std::uint64_t tokens_per_sec = 0;
  /// Bucket capacity: how many admissions a tenant can burst after idling.
  std::uint64_t burst = 1;
  /// Upper bound on distinct tenant buckets kept resident (tenant ids
  /// are peer-controlled; the table must not grow without bound).
  /// 0 removes the bound — only for trusted-tenant deployments.
  std::uint64_t max_tenants = 4096;
};

struct TenantStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
};

/// Token buckets keyed by tenant id.  Thread-safe; buckets are created
/// full on a tenant's first request (a new tenant can burst immediately).
class TenantQuotas {
 public:
  explicit TenantQuotas(QuotaOptions opts = {});

  /// Admit `cost` requests for `tenant` at time `now_ns`, refilling the
  /// bucket by the elapsed time first.  OK admits (and debits);
  /// kResourceExhausted names the tenant and leaves the bucket unchanged
  /// (failed admissions must not advance anything a retry would observe
  /// — except the refill, which is a pure function of now_ns).  A new
  /// tenant arriving with the table at max_tenants is also shed with
  /// kResourceExhausted when no idle-full bucket can be evicted.
  [[nodiscard]] coop::Status admit(std::uint64_t tenant, std::uint64_t now_ns,
                                   std::uint64_t cost = 1);

  [[nodiscard]] TenantStats stats(std::uint64_t tenant) const;
  [[nodiscard]] bool enabled() const { return opts_.tokens_per_sec > 0; }
  [[nodiscard]] const QuotaOptions& options() const { return opts_; }

  /// Distinct tenant buckets currently resident (bounded by max_tenants).
  [[nodiscard]] std::size_t tenant_count() const;
  /// Idle-full buckets evicted to make room for new tenants.
  [[nodiscard]] std::uint64_t evicted() const;

 private:
  /// Tokens scaled by kScale (1e9), so one token per second refills at
  /// exactly 1 scaled-token per nanosecond with zero rounding drift.
  static constexpr std::uint64_t kScale = 1'000'000'000ULL;

  struct Bucket {
    std::uint64_t scaled_tokens = 0;
    std::uint64_t last_refill_ns = 0;
    TenantStats stats;
  };

  [[nodiscard]] std::uint64_t refilled_tokens(const Bucket& b,
                                              std::uint64_t now_ns,
                                              std::uint64_t cap) const;
  /// Erase the oldest bucket that refills to full at now_ns (lossless to
  /// evict); false when every bucket is still draining.  mu_ held.
  bool evict_one(std::uint64_t now_ns, std::uint64_t cap);

  const QuotaOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::uint64_t evicted_ = 0;
};

}  // namespace net
