#pragma once

// Per-tenant admission quotas (DESIGN.md §11): a token bucket per tenant
// id, sitting *in front of* the frontend's global bounded admission.  The
// global budget protects the process; the per-tenant buckets protect
// tenants from each other — a hot tenant exhausts its own bucket and is
// shed with kResourceExhausted while a quiet tenant's traffic still
// admits.
//
// Determinism: the bucket does no clock reads.  Callers pass `now_ns`
// (the server passes its steady clock; tests and the wire soak pass a
// scripted clock), and all arithmetic is fixed-point integer — tokens
// are stored scaled by 1e9, refill is elapsed_ns * rate_per_sec — so a
// replayed admission sequence is byte-identical across runs and
// platforms.  No floating point anywhere.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "robust/status.hpp"

namespace net {

struct QuotaOptions {
  /// Sustained admissions per second per tenant; 0 disables quotas
  /// (every request admits).
  std::uint64_t tokens_per_sec = 0;
  /// Bucket capacity: how many admissions a tenant can burst after idling.
  std::uint64_t burst = 1;
};

struct TenantStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
};

/// Token buckets keyed by tenant id.  Thread-safe; buckets are created
/// full on a tenant's first request (a new tenant can burst immediately).
class TenantQuotas {
 public:
  explicit TenantQuotas(QuotaOptions opts = {});

  /// Admit `cost` requests for `tenant` at time `now_ns`, refilling the
  /// bucket by the elapsed time first.  OK admits (and debits);
  /// kResourceExhausted names the tenant and leaves the bucket unchanged
  /// (failed admissions must not advance anything a retry would observe
  /// — except the refill, which is a pure function of now_ns).
  [[nodiscard]] coop::Status admit(std::uint64_t tenant, std::uint64_t now_ns,
                                   std::uint64_t cost = 1);

  [[nodiscard]] TenantStats stats(std::uint64_t tenant) const;
  [[nodiscard]] bool enabled() const { return opts_.tokens_per_sec > 0; }
  [[nodiscard]] const QuotaOptions& options() const { return opts_; }

 private:
  /// Tokens scaled by kScale (1e9), so one token per second refills at
  /// exactly 1 scaled-token per nanosecond with zero rounding drift.
  static constexpr std::uint64_t kScale = 1'000'000'000ULL;

  struct Bucket {
    std::uint64_t scaled_tokens = 0;
    std::uint64_t last_refill_ns = 0;
    TenantStats stats;
  };

  const QuotaOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace net
