#pragma once

// Codec for the framed-TCP serving protocol (DESIGN.md §11): frame
// encode/decode plus the typed payloads that ride inside frames.  Every
// decoder treats its input as hostile — bounds-checked reads, explicit
// limits, descriptive Status on the first violation — because these
// bytes arrive straight off a socket.  Layout constants live in
// frame_format.hpp (self-contained, shared with robust::corrupt_frame).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/primitives.hpp"
#include "net/frame_format.hpp"
#include "robust/status.hpp"
#include "serve/frontend.hpp"
#include "serve/query_engine.hpp"

namespace net {

/// Caps a decoder enforces before allocating anything a peer asked for.
struct DecodeLimits {
  std::size_t max_frame_bytes = 1u << 20;  ///< whole frame incl. prefix
  std::size_t max_name_len = 256;          ///< collection names, paths
  std::size_t max_queries = 1u << 16;      ///< queries per batch
  std::size_t max_path_len = 1u << 10;     ///< nodes per explicit path
};

/// A decoded frame: validated header + the raw payload bytes (CRC
/// already checked).  Payload decoding is a second, per-type step.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Serialize one complete frame (length prefix + header with forged CRC
/// + payload + payload CRC trailer).  `h.payload_len` and `h.header_crc`
/// are filled in here; callers set the routing fields only.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameHeader h, std::span<const std::uint8_t> payload);

/// Validate + split one complete frame (including the 4-byte length
/// prefix).  Rejections, in checking order, each with its own message:
/// too-small buffer, oversize frame, length-prefix/buffer disagreement
/// (truncation), bad magic, unsupported version, header CRC mismatch,
/// header/prefix payload_len disagreement (length lie), payload CRC
/// mismatch (bit flip).
[[nodiscard]] coop::Expected<Frame> decode_frame(
    std::span<const std::uint8_t> bytes, const DecodeLimits& limits = {});

// ---------------------------------------------------------------------
// Payloads.  encode_* returns the payload bytes to wrap in a frame;
// decode_* parses hostile payload bytes under the limits and rejects
// trailing garbage.

struct PathBatchRequest {
  std::string collection;
  std::vector<serve::PathQuery> queries;
};

struct PathBatchResponse {
  std::uint64_t served_version = 0;
  bool degraded = false;
  std::vector<serve::PathAnswer> answers;
};

struct PointBatchRequest {
  std::string collection;
  std::vector<geom::Point> points;
};

struct PointBatchResponse {
  std::uint64_t served_version = 0;
  bool degraded = false;
  std::vector<std::uint64_t> regions;
};

/// The one typed error shape: a StatusCode + message, so a shed, expired,
/// or refused request reports *which* failure it was across the wire.
struct ErrorResponse {
  std::uint32_t code = 0;  ///< coop::StatusCode
  std::string message;
};

struct CollectionHealth {
  std::string name;
  std::uint64_t version = 0;
  std::uint8_t health = 0;  ///< serve::HealthState
};

struct HealthResponse {
  std::uint8_t draining = 0;
  std::vector<CollectionHealth> collections;
};

/// LOAD/SWAP carry a snapshot path; UNLOAD/DRAIN leave it empty.
struct AdminRequest {
  std::string collection;
  std::string snapshot_path;
};

struct AdminResponse {
  std::uint64_t version = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const PathBatchRequest& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PathBatchResponse& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PointBatchRequest& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PointBatchResponse& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ErrorResponse& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HealthResponse& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const AdminRequest& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const AdminResponse& m);

[[nodiscard]] coop::Expected<PathBatchRequest> decode_path_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<PathBatchResponse> decode_path_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<PointBatchRequest> decode_point_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<PointBatchResponse> decode_point_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<ErrorResponse> decode_error(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<HealthResponse> decode_health(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<AdminRequest> decode_admin_request(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});
[[nodiscard]] coop::Expected<AdminResponse> decode_admin_response(
    std::span<const std::uint8_t> payload, const DecodeLimits& limits = {});

/// Map a non-OK Status to its wire error payload and back.  Unknown
/// codes coming off the wire collapse to kInternal (never UB, never OK).
[[nodiscard]] ErrorResponse to_wire_error(const coop::Status& s);
[[nodiscard]] coop::Status from_wire_error(const ErrorResponse& e);

}  // namespace net
