#pragma once

// Fault-tolerant framed-TCP serving plane (DESIGN.md §11).  One IO
// thread runs the event loop (epoll on Linux, poll() fallback — set
// COOPNET_FORCE_POLL=1 to force the fallback) over nonblocking sockets:
// it accepts, reassembles frames from the byte stream, enforces
// connection hygiene, and hands complete validated frames to a worker
// pool that serves them through each collection's serve::Frontend.
//
// Hygiene discipline — a hostile or broken peer can never take the
// process down, only its own connection:
//   malformed     any frame decode_frame rejects gets a typed ERROR
//                 response, then the connection is closed after the
//                 flush (one bad frame forfeits the stream: framing is
//                 unrecoverable once bytes are untrusted).
//   oversize      a length prefix above max_frame_bytes is rejected
//                 before buffering the body (no allocation bombs).
//   slowloris     connections idle past idle_timeout are reaped; so are
//                 readers that let their response backlog stall past
//                 write_stall_timeout.
//   deadlines     a request's relative deadline_ns becomes an absolute
//                 deadline at arrival; it is checked before dispatch,
//                 propagated into the engine's batch watchdog, and
//                 re-checked after serving — an expired request gets a
//                 typed kDeadlineExceeded ERROR, never a late answer.
//   quotas        per-tenant token buckets shed hot tenants with
//                 kResourceExhausted before the global admission gate.
//   drain         begin_drain() stops accepting, refuses new batch and
//                 admin frames with kUnavailable (HEALTH and METRICS
//                 still answer), finishes everything in flight, and
//                 wait_drained() reports when the last byte flushed.
//   admin trust   LOAD/SWAP/UNLOAD name server-side filesystem paths and
//                 DRAIN stops the world, and the wire carries no
//                 authentication — so admin frames are honoured only on
//                 loopback binds, with kPermissionDenied elsewhere,
//                 unless enable_remote_admin explicitly opts in.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/collections.hpp"
#include "net/quota.hpp"
#include "net/wire.hpp"
#include "robust/status.hpp"
#include "serve/frontend.hpp"
#include "serve/query_engine.hpp"

namespace net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see Server::port)
  std::size_t workers = 2;
  std::size_t max_connections = 256;
  DecodeLimits limits;
  std::chrono::nanoseconds idle_timeout{std::chrono::seconds(30)};
  std::chrono::nanoseconds write_stall_timeout{std::chrono::seconds(10)};
  QuotaOptions quota;
  serve::FrontendOptions frontend;
  /// Threads of the shared QueryEngine (0 = hardware concurrency).
  std::size_t engine_threads = 0;
  /// Honour admin frames (LOAD/SWAP/UNLOAD/DRAIN) on non-loopback binds.
  /// Off by default: the protocol is unauthenticated, and admin verbs
  /// load arbitrary server-side snapshot paths — only enable behind a
  /// trusted network boundary.  Loopback binds always allow admin.
  bool enable_remote_admin = false;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overflow = 0;  ///< over max_connections
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t malformed = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t stall_closed = 0;
  std::uint64_t batches_served = 0;
  std::uint64_t deadline_expired = 0;  ///< typed kDeadlineExceeded sent
  std::uint64_t quota_shed = 0;
  std::uint64_t draining_refused = 0;
  std::uint64_t errors_sent = 0;  ///< total typed ERROR responses
};

class Server {
 public:
  /// Bind, listen, and spawn the IO + worker threads.  On kOk the server
  /// is accepting; port() reports the bound port (useful with port 0).
  [[nodiscard]] static coop::Expected<std::unique_ptr<Server>> start(
      ServerOptions opts);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] CollectionMap& collections() { return *collections_; }
  [[nodiscard]] TenantQuotas& quotas() { return *quotas_; }
  [[nodiscard]] serve::QueryEngine& engine() { return *engine_; }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Enter lame duck: stop accepting, refuse new batches with a typed
  /// kUnavailable, keep serving what is already in flight.  Idempotent.
  void begin_drain();

  /// Block until every dispatched batch finished AND every response byte
  /// flushed (or `timeout` elapsed).  True = fully drained.
  [[nodiscard]] bool wait_drained(std::chrono::nanoseconds timeout);

  /// Hard stop: close every socket, join every thread.  Called by the
  /// destructor; safe to call after (or without) a drain.
  void stop();

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  Server() = default;

  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<CollectionMap> collections_;
  std::unique_ptr<TenantQuotas> quotas_;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
};

}  // namespace net
