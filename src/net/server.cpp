#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "snapshot/snapshot.hpp"

namespace net {

using coop::Status;
using SteadyClock = std::chrono::steady_clock;

namespace {

/// obs handles, resolved once (registration is idempotent by name).
struct NetMetrics {
  obs::Counter accepted;
  obs::Counter frames_in;
  obs::Counter frames_out;
  obs::Counter malformed;
  obs::Counter deadline_expired;
  obs::Counter quota_shed;
  obs::Counter batches;
  obs::Counter draining_refused;
  obs::Counter errors_sent;
  obs::Counter idle_closed;
  obs::Counter stall_closed;
  obs::Gauge open_connections;
  obs::Gauge draining;
  obs::Histogram request_ns;

  static NetMetrics& get() {
    static NetMetrics m = [] {
      auto& r = obs::Registry::global();
      NetMetrics n;
      n.accepted = r.counter("net_server_connections_accepted_total",
                             "Connections accepted by the listener");
      n.frames_in = r.counter("net_server_frames_in_total",
                              "Complete frames received and decoded");
      n.frames_out = r.counter("net_server_frames_out_total",
                               "Response frames fully flushed to peers");
      n.malformed = r.counter(
          "net_server_malformed_frames_total",
          "Frames rejected by the decoder (truncated, length lie, CRC, "
          "bad magic/version); the connection is closed after a typed "
          "error");
      n.deadline_expired = r.counter(
          "net_server_deadline_expired_total",
          "Requests answered with a typed DEADLINE_EXCEEDED error "
          "(expired before dispatch or completed too late)");
      n.quota_shed = r.counter(
          "net_server_quota_shed_total",
          "Requests shed by per-tenant token buckets "
          "(RESOURCE_EXHAUSTED)");
      n.batches = r.counter("net_server_batches_served_total",
                            "Path/point batches answered successfully");
      n.draining_refused = r.counter(
          "net_server_draining_refused_total",
          "Batch/admin frames refused with UNAVAILABLE during drain");
      n.errors_sent = r.counter("net_server_errors_sent_total",
                                "Typed ERROR responses sent (all causes)");
      n.idle_closed = r.counter("net_server_idle_closed_total",
                                "Connections reaped by the idle timeout");
      n.stall_closed = r.counter(
          "net_server_stall_closed_total",
          "Connections reaped because the peer stopped reading "
          "responses (write stall)");
      n.open_connections = r.gauge("net_server_open_connections",
                                   "Currently open connections");
      n.draining = r.gauge("net_server_draining",
                           "1 while the server is in lame-duck drain");
      n.request_ns = r.histogram("net_server_request_ns",
                                 obs::latency_bounds_ns(),
                                 "Dispatch-to-response latency per frame");
      return n;
    }();
    return m;
  }
};

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Readiness abstraction: epoll where available, poll() everywhere (and
/// on Linux too when COOPNET_FORCE_POLL=1, which CI uses to cover the
/// fallback).  The fd set is tiny (hundreds), so the poll fallback's
/// O(n) rebuild per wait is fine.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool broken = false;  ///< HUP / ERR
  };

  Poller() {
#ifdef __linux__
    const char* force = std::getenv("COOPNET_FORCE_POLL");
    if (force == nullptr || force[0] == '\0' || force[0] == '0') {
      epfd_ = epoll_create1(EPOLL_CLOEXEC);
    }
#endif
  }
  ~Poller() {
#ifdef __linux__
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
#endif
  }

  void add(int fd, bool want_write) {
    want_write_[fd] = want_write;
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev = make_event(fd, want_write);
      (void)epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }

  void update(int fd, bool want_write) {
    want_write_[fd] = want_write;
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event ev = make_event(fd, want_write);
      (void)epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
    }
#endif
  }

  void remove(int fd) {
    want_write_.erase(fd);
#ifdef __linux__
    if (epfd_ >= 0) {
      (void)epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
  }

  void wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
#ifdef __linux__
    if (epfd_ >= 0) {
      epoll_event evs[64];
      const int n = epoll_wait(epfd_, evs, 64, timeout_ms);
      for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = static_cast<int>(evs[i].data.fd);
        e.readable = (evs[i].events & EPOLLIN) != 0;
        e.writable = (evs[i].events & EPOLLOUT) != 0;
        e.broken = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out.push_back(e);
      }
      return;
    }
#endif
    std::vector<pollfd> pfds;
    pfds.reserve(want_write_.size());
    for (const auto& [fd, ww] : want_write_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (ww ? POLLOUT : 0));
      pfds.push_back(p);
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n <= 0) {
      return;
    }
    for (const pollfd& p : pfds) {
      if (p.revents == 0) {
        continue;
      }
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
#ifdef __linux__
  static epoll_event make_event(int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }
  int epfd_ = -1;
#endif
  std::unordered_map<int, bool> want_write_;
};

std::uint64_t steady_ns(SteadyClock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

}  // namespace

struct Server::Impl {
  Server* self = nullptr;
  ServerOptions opts;
  /// Decided once at bind time: loopback bind or explicit opt-in.
  bool admin_allowed = false;

  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  Poller poller;
  std::thread io_thread;
  std::vector<std::thread> worker_threads;

  /// Connections are addressed by a monotonic id, not by fd: a worker's
  /// response must never land on a recycled fd of a different peer.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> inbuf;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t out_off = 0;
    SteadyClock::time_point last_activity{};
    SteadyClock::time_point stall_since{};
    std::size_t inflight = 0;  ///< dispatched frames awaiting a response
    bool close_after_flush = false;
    bool want_write = false;
  };
  // IO-thread-only state.
  std::unordered_map<std::uint64_t, Conn> conns;
  std::unordered_map<int, std::uint64_t> fd_to_id;
  std::uint64_t next_conn_id = 1;

  struct Task {
    std::uint64_t conn_id = 0;
    Frame frame;
    SteadyClock::time_point arrival{};
  };
  std::mutex task_mu;
  std::condition_variable task_cv;
  std::deque<Task> tasks;
  std::size_t active_tasks = 0;  ///< popped, still being processed
  bool shutdown_workers = false;

  /// Worker -> IO thread: finished responses, routed by connection id.
  std::mutex out_mu;
  std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> outbox;

  std::mutex drain_mu;
  std::condition_variable drain_cv;
  bool drained = false;

  std::atomic<bool> stop_flag{false};

  mutable std::mutex stats_mu;
  ServerStats stats;

  void bump(std::uint64_t ServerStats::* field) {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++(stats.*field);
  }

  void wake() {
    const char b = 1;
    (void)::write(wake_w, &b, 1);
  }

  // ---- response plumbing -------------------------------------------

  static std::vector<std::uint8_t> make_response(
      const FrameHeader& req, MsgType type,
      std::span<const std::uint8_t> payload) {
    FrameHeader h;
    h.type = static_cast<std::uint16_t>(static_cast<std::uint16_t>(type) |
                                        kResponseBit);
    h.request_id = req.request_id;
    h.tenant = req.tenant;
    return encode_frame(h, payload);
  }

  std::vector<std::uint8_t> error_frame(const FrameHeader& req,
                                        const Status& s) {
    bump(&ServerStats::errors_sent);
    NetMetrics::get().errors_sent.inc();
    const std::vector<std::uint8_t> payload = encode(to_wire_error(s));
    return make_response(req, MsgType::kError, payload);
  }

  // ---- worker side -------------------------------------------------

  void worker_loop() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(task_mu);
        task_cv.wait(lock,
                     [&] { return shutdown_workers || !tasks.empty(); });
        if (tasks.empty()) {
          return;  // shutdown with nothing left
        }
        task = std::move(tasks.front());
        tasks.pop_front();
        ++active_tasks;
      }
      std::vector<std::uint8_t> response = process(task);
      {
        std::lock_guard<std::mutex> lock(out_mu);
        outbox.emplace_back(task.conn_id, std::move(response));
      }
      {
        std::lock_guard<std::mutex> lock(task_mu);
        --active_tasks;
      }
      wake();
    }
  }

  std::vector<std::uint8_t> process(const Task& task) {
    const FrameHeader& h = task.frame.header;
    const auto type = static_cast<MsgType>(h.type);
    const SteadyClock::time_point t0 = SteadyClock::now();
    std::vector<std::uint8_t> out;
    switch (type) {
      case MsgType::kPathBatch:
        out = process_paths(task);
        break;
      case MsgType::kPointBatch:
        out = process_points(task);
        break;
      case MsgType::kHealth:
        out = process_health(h);
        break;
      case MsgType::kMetrics: {
        const std::string text =
            obs::to_prometheus(obs::Registry::global().scrape());
        out = make_response(
            h, MsgType::kMetrics,
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
        break;
      }
      case MsgType::kLoad:
      case MsgType::kSwap:
      case MsgType::kUnload:
      case MsgType::kDrain:
        if (!admin_allowed) {
          out = error_frame(
              h, Status::permission_denied(
                     "admin frames are disabled on non-loopback binds; "
                     "restart with enable_remote_admin to accept "
                     "LOAD/SWAP/UNLOAD/DRAIN from remote peers"));
          break;
        }
        out = process_admin(h, task.frame.payload, type);
        break;
      case MsgType::kError:
        out = error_frame(
            h, Status::invalid_argument("ERROR is a response type, not a "
                                        "request"));
        break;
      default:
        out = error_frame(h, Status::invalid_argument(
                                 "unknown message type " +
                                 std::to_string(h.type)));
        break;
    }
    NetMetrics::get().request_ns.record(
        steady_ns(SteadyClock::now()) - steady_ns(t0));
    return out;
  }

  /// The absolute deadline of a request, derived once from its arrival
  /// time; {} when the request did not carry one.  `deadline_ns` is an
  /// attacker-controlled u64: values near INT64_MAX would wrap the signed
  /// chrono rep negative and the addition would overflow (UB).  Anything
  /// above an hour is effectively unbounded, so saturate there.
  static bool deadline_of(const Task& task, SteadyClock::time_point& at) {
    std::uint64_t ns = task.frame.header.deadline_ns;
    if (ns == 0) {
      return false;
    }
    constexpr std::uint64_t kMaxDeadlineNs = 3'600'000'000'000ULL;  // 1 h
    if (ns > kMaxDeadlineNs) {
      ns = kMaxDeadlineNs;
    }
    at = task.arrival +
         std::chrono::nanoseconds(static_cast<std::int64_t>(ns));
    return true;
  }

  std::vector<std::uint8_t> expired(const FrameHeader& h, const char* when) {
    bump(&ServerStats::deadline_expired);
    NetMetrics::get().deadline_expired.inc();
    return error_frame(
        h, Status::deadline_exceeded(
               std::string("request deadline of ") +
               std::to_string(h.deadline_ns) + "ns expired " + when));
  }

  std::vector<std::uint8_t> process_paths(const Task& task) {
    const FrameHeader& h = task.frame.header;
    auto req = decode_path_request(task.frame.payload, opts.limits);
    if (!req.ok()) {
      return error_frame(h, req.status());
    }
    const std::shared_ptr<Collection> c =
        self->collections_->find(req->collection);
    if (c == nullptr) {
      return error_frame(h, Status::invalid_argument(
                                "unknown collection '" + req->collection +
                                "'"));
    }
    SteadyClock::time_point deadline_at;
    const bool has_deadline = deadline_of(task, deadline_at);
    if (has_deadline && SteadyClock::now() >= deadline_at) {
      return expired(h, "before dispatch");
    }
    // Validate every untrusted path against the current snapshot before
    // the assert-free grouped kernel sees it.  The pin is held across
    // the serve call so the validated generation cannot be reclaimed
    // mid-batch (the serving contract requires SWAP generations to keep
    // the node-id space — see DESIGN.md §11).
    const snapshot::Registry::Pin pin = c->registry.pin();
    if (!pin.has_snapshot()) {
      return error_frame(h, Status::failed_precondition(
                                "collection '" + req->collection +
                                "' has no published snapshot"));
    }
    if (pin.snapshot().kind != snapshot::SnapshotKind::kCascade) {
      return error_frame(h, Status::failed_precondition(
                                "collection '" + req->collection +
                                "' serves point location, not path "
                                "search"));
    }
    for (const serve::PathQuery& q : req->queries) {
      if (Status s = pin.snapshot().cascade.validate_path(q.path);
          !s.ok()) {
        return error_frame(h, s);
      }
    }
    serve::BatchOptions bo = opts.frontend.batch;
    if (has_deadline) {
      bo.deadline = deadline_at - SteadyClock::now();
      if (bo.deadline <= std::chrono::nanoseconds(0)) {
        return expired(h, "before dispatch");
      }
    }
    PathBatchResponse resp;
    serve::BatchReport report;
    const Status s = c->frontend.serve_paths(
        req->queries, resp.answers, &report, &resp.served_version,
        has_deadline ? &bo : nullptr);
    if (!s.ok()) {
      return error_frame(h, s);
    }
    if (has_deadline && SteadyClock::now() >= deadline_at) {
      return expired(h, "during serving (late answer suppressed)");
    }
    resp.degraded = report.degraded;
    bump(&ServerStats::batches_served);
    NetMetrics::get().batches.inc();
    return make_response(h, MsgType::kPathBatch, encode(resp));
  }

  std::vector<std::uint8_t> process_points(const Task& task) {
    const FrameHeader& h = task.frame.header;
    auto req = decode_point_request(task.frame.payload, opts.limits);
    if (!req.ok()) {
      return error_frame(h, req.status());
    }
    const std::shared_ptr<Collection> c =
        self->collections_->find(req->collection);
    if (c == nullptr) {
      return error_frame(h, Status::invalid_argument(
                                "unknown collection '" + req->collection +
                                "'"));
    }
    SteadyClock::time_point deadline_at;
    const bool has_deadline = deadline_of(task, deadline_at);
    if (has_deadline && SteadyClock::now() >= deadline_at) {
      return expired(h, "before dispatch");
    }
    serve::BatchOptions bo = opts.frontend.batch;
    if (has_deadline) {
      bo.deadline = deadline_at - SteadyClock::now();
      if (bo.deadline <= std::chrono::nanoseconds(0)) {
        return expired(h, "before dispatch");
      }
    }
    PointBatchResponse resp;
    serve::BatchReport report;
    std::vector<std::size_t> regions;
    const Status s = c->frontend.serve_points(
        req->points, regions, &report, &resp.served_version,
        has_deadline ? &bo : nullptr);
    if (!s.ok()) {
      return error_frame(h, s);
    }
    if (has_deadline && SteadyClock::now() >= deadline_at) {
      return expired(h, "during serving (late answer suppressed)");
    }
    resp.regions.assign(regions.begin(), regions.end());
    resp.degraded = report.degraded;
    bump(&ServerStats::batches_served);
    NetMetrics::get().batches.inc();
    return make_response(h, MsgType::kPointBatch, encode(resp));
  }

  std::vector<std::uint8_t> process_health(const FrameHeader& h) {
    HealthResponse resp;
    resp.draining = self->draining() ? 1 : 0;
    for (const std::shared_ptr<Collection>& c :
         self->collections_->all()) {
      CollectionHealth ch;
      ch.name = c->name;
      ch.version = c->registry.current_version();
      ch.health = static_cast<std::uint8_t>(c->frontend.health());
      resp.collections.push_back(std::move(ch));
    }
    return make_response(h, MsgType::kHealth, encode(resp));
  }

  std::vector<std::uint8_t> process_admin(
      const FrameHeader& h, std::span<const std::uint8_t> payload,
      MsgType type) {
    auto req = decode_admin_request(payload, opts.limits);
    if (!req.ok()) {
      return error_frame(h, req.status());
    }
    AdminResponse resp;
    switch (type) {
      case MsgType::kLoad:
      case MsgType::kSwap: {
        auto snap = snapshot::open(req->snapshot_path);
        if (!snap.ok()) {
          return error_frame(h, snap.status());
        }
        const Status s =
            type == MsgType::kLoad
                ? self->collections_->load(req->collection, snap.take(),
                                           &resp.version)
                : self->collections_->swap(req->collection, snap.take(),
                                           &resp.version);
        if (!s.ok()) {
          return error_frame(h, s);
        }
        break;
      }
      case MsgType::kUnload: {
        if (Status s = self->collections_->unload(req->collection);
            !s.ok()) {
          return error_frame(h, s);
        }
        break;
      }
      case MsgType::kDrain:
        self->begin_drain();
        break;
      default:
        return error_frame(h, Status::internal("bad admin dispatch"));
    }
    return make_response(h, type, encode(resp));
  }

  // ---- IO-thread side ----------------------------------------------

  /// Queue a response and opportunistically flush it (most responses fit
  /// the socket buffer).  Returns false when the flush destroyed the
  /// connection (peer RST etc.) — `conn` is dangling then and the caller
  /// must stop touching it.
  [[nodiscard]] bool queue_response(Conn& conn,
                                    std::vector<std::uint8_t> bytes) {
    if (conn.outq.empty()) {
      conn.stall_since = SteadyClock::now();
    }
    conn.outq.push_back(std::move(bytes));
    return flush(conn);
  }

  /// Try to push queued bytes; arms EPOLLOUT when the socket is full.
  /// Returns false when the connection died.
  bool flush(Conn& conn) {
    while (!conn.outq.empty()) {
      const std::vector<std::uint8_t>& front = conn.outq.front();
      const ssize_t n = ::send(conn.fd, front.data() + conn.out_off,
                               front.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        destroy(conn.id);
        return false;
      }
      if (n == 0) {
        break;  // send() contract says this cannot happen; don't spin
      }
      conn.out_off += static_cast<std::size_t>(n);
      // Any byte progress resets the stall clock: a slow-but-draining
      // reader of one large response must not be reaped as stalled.
      conn.stall_since = SteadyClock::now();
      if (conn.out_off == front.size()) {
        conn.outq.pop_front();
        conn.out_off = 0;
        bump(&ServerStats::frames_out);
        NetMetrics::get().frames_out.inc();
      }
    }
    const bool want = !conn.outq.empty();
    if (want != conn.want_write) {
      conn.want_write = want;
      poller.update(conn.fd, want);
    }
    if (conn.outq.empty() && conn.close_after_flush && conn.inflight == 0) {
      destroy(conn.id);
      return false;
    }
    return true;
  }

  void destroy(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) {
      return;
    }
    poller.remove(it->second.fd);
    ::close(it->second.fd);
    fd_to_id.erase(it->second.fd);
    conns.erase(it);
    NetMetrics::get().open_connections.add(-1);
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        return;  // EAGAIN or transient error: try again next round
      }
      if (conns.size() >= opts.max_connections ||
          self->draining()) {
        // Over budget (or lame duck): refuse at the door.  No frame has
        // been read, so there is nothing to answer — the close itself is
        // the signal.
        ::close(fd);
        bump(&ServerStats::rejected_overflow);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Conn conn;
      conn.fd = fd;
      conn.id = next_conn_id++;
      conn.last_activity = SteadyClock::now();
      fd_to_id[fd] = conn.id;
      poller.add(fd, false);
      conns.emplace(conn.id, std::move(conn));
      bump(&ServerStats::accepted);
      NetMetrics::get().accepted.inc();
      NetMetrics::get().open_connections.add(1);
    }
  }

  /// Read everything available; false when the connection died.
  bool read_ready(Conn& conn) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
        conn.last_activity = SteadyClock::now();
        if (static_cast<std::size_t>(n) < sizeof(buf)) {
          break;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // 0 = orderly close; other errors (ECONNRESET mid-batch included)
      // tear the connection down.  In-flight work finishes and its
      // response is dropped at routing time — never a crash.
      destroy(conn.id);
      return false;
    }
    return parse_frames(conn);
  }

  /// Cut complete frames out of the reassembly buffer; false when the
  /// connection died.  One malformed frame forfeits the stream.
  bool parse_frames(Conn& conn) {
    for (;;) {
      if (conn.close_after_flush) {
        conn.inbuf.clear();  // stream already condemned
        return true;
      }
      if (conn.inbuf.size() < sizeof(std::uint32_t)) {
        return true;
      }
      std::uint32_t prefix = 0;
      std::memcpy(&prefix, conn.inbuf.data(), sizeof(prefix));
      const std::size_t total = sizeof(prefix) + std::size_t{prefix};
      if (std::size_t{prefix} <
              sizeof(FrameHeader) + sizeof(std::uint32_t) ||
          total > opts.limits.max_frame_bytes) {
        return reject_malformed(
            conn, Status::corrupted(
                      "frame length prefix " + std::to_string(prefix) +
                      " outside [" +
                      std::to_string(sizeof(FrameHeader) +
                                     sizeof(std::uint32_t)) +
                      ", " + std::to_string(opts.limits.max_frame_bytes) +
                      ")"));
      }
      if (conn.inbuf.size() < total) {
        return true;  // wait for the rest
      }
      auto frame = decode_frame(
          std::span<const std::uint8_t>(conn.inbuf.data(), total),
          opts.limits);
      conn.inbuf.erase(conn.inbuf.begin(),
                       conn.inbuf.begin() +
                           static_cast<std::ptrdiff_t>(total));
      if (!frame.ok()) {
        return reject_malformed(conn, frame.status());
      }
      bump(&ServerStats::frames_in);
      NetMetrics::get().frames_in.inc();
      if (!dispatch(conn, std::move(frame.value()))) {
        return false;  // refusal flush hit a dead peer; conn is gone
      }
    }
  }

  bool reject_malformed(Conn& conn, const Status& s) {
    bump(&ServerStats::malformed);
    NetMetrics::get().malformed.inc();
    conn.inbuf.clear();
    conn.close_after_flush = true;
    FrameHeader anon;  // the offending header is untrusted: respond id 0
    return queue_response(conn, error_frame(anon, s));
  }

  /// Route a decoded frame: refuse (drain/quota) with a typed error, or
  /// hand it to the worker pool.  Returns false when the refusal's flush
  /// destroyed the connection — `conn` is dangling then and parse_frames
  /// must stop iterating on it.
  [[nodiscard]] bool dispatch(Conn& conn, Frame frame) {
    const auto now = SteadyClock::now();
    const auto type = static_cast<MsgType>(frame.header.type);
    const bool is_batch =
        type == MsgType::kPathBatch || type == MsgType::kPointBatch;
    const bool is_admin = type == MsgType::kLoad ||
                          type == MsgType::kSwap ||
                          type == MsgType::kUnload;
    if (self->draining() && (is_batch || is_admin)) {
      bump(&ServerStats::draining_refused);
      NetMetrics::get().draining_refused.inc();
      return queue_response(conn,
                            error_frame(frame.header,
                                        Status::unavailable(
                                            "server is draining; no new "
                                            "batches accepted")));
    }
    if (is_batch) {
      if (Status s = self->quotas_->admit(frame.header.tenant,
                                          steady_ns(now));
          !s.ok()) {
        bump(&ServerStats::quota_shed);
        NetMetrics::get().quota_shed.inc();
        return queue_response(conn, error_frame(frame.header, s));
      }
    }
    ++conn.inflight;
    {
      std::lock_guard<std::mutex> lock(task_mu);
      tasks.push_back(Task{conn.id, std::move(frame), now});
    }
    task_cv.notify_one();
    return true;
  }

  void drain_outbox() {
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> batch;
    {
      std::lock_guard<std::mutex> lock(out_mu);
      batch.swap(outbox);
    }
    for (auto& [id, bytes] : batch) {
      const auto it = conns.find(id);
      if (it == conns.end()) {
        continue;  // peer died mid-batch; drop the orphaned response
      }
      if (it->second.inflight > 0) {
        --it->second.inflight;
      }
      // A false return destroyed (and erased) the connection; `it` is
      // invalid either way after this call and is re-found next round.
      (void)queue_response(it->second, std::move(bytes));
    }
  }

  void reap_timers() {
    const auto now = SteadyClock::now();
    std::vector<std::uint64_t> doomed;
    for (auto& [id, conn] : conns) {
      if (conn.inflight == 0 && conn.outq.empty() &&
          now - conn.last_activity > opts.idle_timeout) {
        bump(&ServerStats::idle_closed);
        NetMetrics::get().idle_closed.inc();
        doomed.push_back(id);
      } else if (!conn.outq.empty() &&
                 now - conn.stall_since > opts.write_stall_timeout) {
        bump(&ServerStats::stall_closed);
        NetMetrics::get().stall_closed.inc();
        doomed.push_back(id);
      }
    }
    for (const std::uint64_t id : doomed) {
      destroy(id);
    }
  }

  void check_drained() {
    if (!self->draining()) {
      return;
    }
    bool queues_empty;
    {
      std::lock_guard<std::mutex> lock(task_mu);
      queues_empty = tasks.empty() && active_tasks == 0;
    }
    if (queues_empty) {
      std::lock_guard<std::mutex> lock(out_mu);
      queues_empty = outbox.empty();
    }
    if (!queues_empty) {
      return;
    }
    for (const auto& [id, conn] : conns) {
      if (conn.inflight != 0 || !conn.outq.empty()) {
        return;
      }
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu);
      drained = true;
    }
    drain_cv.notify_all();
  }

  void io_loop() {
    std::vector<Poller::Event> events;
    bool listening = true;
    while (!stop_flag.load(std::memory_order_acquire)) {
      if (listening && self->draining()) {
        poller.remove(listen_fd);
        ::close(listen_fd);
        listen_fd = -1;
        listening = false;
        NetMetrics::get().draining.set(1);
      }
      drain_outbox();
      poller.wait(events, 100);
      for (const Poller::Event& e : events) {
        if (e.fd == wake_r) {
          std::uint8_t sink[256];
          while (::read(wake_r, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (listening && e.fd == listen_fd) {
          accept_ready();
          continue;
        }
        const auto fid = fd_to_id.find(e.fd);
        if (fid == fd_to_id.end()) {
          continue;
        }
        const std::uint64_t id = fid->second;
        Conn& conn = conns.at(id);
        if (e.broken && !e.readable) {
          destroy(id);
          continue;
        }
        if (e.readable && !read_ready(conn)) {
          continue;  // destroyed
        }
        if (e.writable) {
          const auto again = conns.find(id);
          if (again != conns.end()) {
            (void)flush(again->second);
          }
        }
      }
      reap_timers();
      check_drained();
    }
    // Hard stop: close everything still open.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (const auto& [id, conn] : conns) {
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) {
      destroy(id);
    }
    if (listening && listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
  }
};

coop::Expected<std::unique_ptr<Server>> Server::start(ServerOptions opts) {
  std::unique_ptr<Server> server(new Server());
  server->engine_ =
      std::make_unique<serve::QueryEngine>(opts.engine_threads);
  server->collections_ =
      std::make_unique<CollectionMap>(*server->engine_, opts.frontend);
  server->quotas_ = std::make_unique<TenantQuotas>(opts.quota);
  auto impl = std::make_unique<Impl>();
  impl->self = server.get();
  impl->opts = opts;

  impl->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) {
    return Status::internal(std::string("socket(): ") +
                            std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (inet_pton(AF_INET, opts.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(impl->listen_fd);
    return Status::invalid_argument("bad bind address '" +
                                    opts.bind_address + "'");
  }
  // Admin verbs are unauthenticated, so only a 127/8 bind (where every
  // peer is already on the box) honours them without the explicit opt-in.
  impl->admin_allowed =
      opts.enable_remote_admin ||
      (ntohl(addr.sin_addr.s_addr) >> 24) == 127u;
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Status::internal(std::string("bind(): ") +
                                      std::strerror(errno));
    ::close(impl->listen_fd);
    return s;
  }
  if (::listen(impl->listen_fd, 128) != 0) {
    const Status s = Status::internal(std::string("listen(): ") +
                                      std::strerror(errno));
    ::close(impl->listen_fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  (void)getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len);
  server->port_ = ntohs(addr.sin_port);
  set_nonblocking(impl->listen_fd);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ::close(impl->listen_fd);
    return Status::internal(std::string("pipe(): ") +
                            std::strerror(errno));
  }
  impl->wake_r = pipefd[0];
  impl->wake_w = pipefd[1];
  set_nonblocking(impl->wake_r);
  set_nonblocking(impl->wake_w);
  impl->poller.add(impl->wake_r, false);
  impl->poller.add(impl->listen_fd, false);

  const std::size_t nworkers = std::max<std::size_t>(1, opts.workers);
  impl->worker_threads.reserve(nworkers);
  for (std::size_t i = 0; i < nworkers; ++i) {
    impl->worker_threads.emplace_back(
        [impl = impl.get()] { impl->worker_loop(); });
  }
  impl->io_thread = std::thread([impl = impl.get()] { impl->io_loop(); });

  server->impl_ = std::move(impl);
  return server;
}

Server::~Server() { stop(); }

void Server::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) {
    return;  // idempotent
  }
  if (impl_ != nullptr) {
    impl_->wake();
  }
}

bool Server::wait_drained(std::chrono::nanoseconds timeout) {
  if (impl_ == nullptr) {
    return true;
  }
  std::unique_lock<std::mutex> lock(impl_->drain_mu);
  return impl_->drain_cv.wait_for(lock, timeout,
                                  [&] { return impl_->drained; });
}

void Server::stop() {
  if (impl_ == nullptr) {
    return;
  }
  impl_->stop_flag.store(true, std::memory_order_release);
  impl_->wake();
  if (impl_->io_thread.joinable()) {
    impl_->io_thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->task_mu);
    impl_->shutdown_workers = true;
  }
  impl_->task_cv.notify_all();
  for (std::thread& t : impl_->worker_threads) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (impl_->wake_r >= 0) {
    ::close(impl_->wake_r);
    ::close(impl_->wake_w);
    impl_->wake_r = impl_->wake_w = -1;
  }
  impl_.reset();
}

ServerStats Server::stats() const {
  if (impl_ == nullptr) {
    return {};
  }
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->stats;
}

}  // namespace net
