#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace cat {

/// Catalog keys.  All applications in this repo (including the geometric
/// ones) use 64-bit integer keys; geometry works on integer coordinates so
/// that predicates are exact.
using Key = std::int64_t;

/// The terminal entry +infinity that the paper adds to every catalog.
inline constexpr Key kInfinity = std::numeric_limits<Key>::max();

/// A catalog: an ordered sequence of distinct entries, each with a key and
/// an opaque payload (application data, e.g. an edge id for point location).
/// The last entry is always the +infinity sentinel with payload
/// `kNoPayload`.
class Catalog {
 public:
  static constexpr std::uint64_t kNoPayload =
      std::numeric_limits<std::uint64_t>::max();

  Catalog() { push_sentinel(); }

  /// Build from sorted, strictly increasing keys (< +infinity); payloads
  /// default to the entry's ordinal position.
  static Catalog from_sorted_keys(std::span<const Key> keys);

  /// Build from sorted (key, payload) pairs with strictly increasing keys.
  static Catalog from_sorted(std::span<const Key> keys,
                             std::span<const std::uint64_t> payloads);

  /// Number of entries including the +infinity sentinel.
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Number of real (non-sentinel) entries.
  [[nodiscard]] std::size_t real_size() const { return keys_.size() - 1; }

  [[nodiscard]] Key key(std::size_t i) const { return keys_[i]; }
  [[nodiscard]] std::uint64_t payload(std::size_t i) const {
    return payloads_[i];
  }
  [[nodiscard]] std::span<const Key> keys() const { return keys_; }
  [[nodiscard]] std::span<const std::uint64_t> payloads() const {
    return payloads_;
  }

  /// find(y): index of the smallest entry >= y.  Always succeeds thanks to
  /// the +infinity sentinel.  O(log size).
  [[nodiscard]] std::size_t find(Key y) const {
    return static_cast<std::size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), y) - keys_.begin());
  }

  /// True if keys are strictly increasing and terminated by +infinity.
  [[nodiscard]] bool valid() const;

 private:
  void push_sentinel() {
    keys_.push_back(kInfinity);
    payloads_.push_back(kNoPayload);
  }

  std::vector<Key> keys_;
  std::vector<std::uint64_t> payloads_;
};

inline Catalog Catalog::from_sorted_keys(std::span<const Key> keys) {
  Catalog c;
  c.keys_.clear();
  c.payloads_.clear();
  c.keys_.reserve(keys.size() + 1);
  c.payloads_.reserve(keys.size() + 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    c.keys_.push_back(keys[i]);
    c.payloads_.push_back(i);
  }
  c.push_sentinel();
  return c;
}

inline Catalog Catalog::from_sorted(std::span<const Key> keys,
                                    std::span<const std::uint64_t> payloads) {
  Catalog c;
  c.keys_.clear();
  c.payloads_.clear();
  c.keys_.assign(keys.begin(), keys.end());
  c.payloads_.assign(payloads.begin(), payloads.end());
  c.push_sentinel();
  return c;
}

inline bool Catalog::valid() const {
  if (keys_.empty() || keys_.back() != kInfinity) {
    return false;
  }
  for (std::size_t i = 1; i < keys_.size(); ++i) {
    if (keys_[i - 1] >= keys_[i]) {
      return false;
    }
  }
  return keys_.size() == payloads_.size();
}

}  // namespace cat
