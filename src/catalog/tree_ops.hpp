#pragma once

#include <cstdint>
#include <vector>

#include "catalog/tree.hpp"
#include "pram/machine.hpp"

namespace pram {

/// Wyllie list ranking: given a linked list as a successor array
/// (next[i] == -1 terminates), compute for every element its distance to
/// the end of the list.  Pointer jumping with double buffering:
/// O(log n) EREW steps, O(n log n) work.
///
/// The paper's preprocessing pipeline ([17], which builds the separator
/// tree in parallel) rests on exactly these primitives; they are included
/// so the substrate is complete.
[[nodiscard]] std::vector<std::int64_t> list_rank(
    Machine& m, const std::vector<std::int64_t>& next);

/// Per-node results of the parallel Euler-tour computation.
struct EulerTourResult {
  std::vector<std::uint32_t> depth;         ///< == Tree::depth
  std::vector<std::uint32_t> subtree_size;  ///< nodes in each subtree
  std::vector<std::uint32_t> preorder;      ///< preorder index of each node
};

/// Classic EREW tree preprocessing: build the Euler tour of the tree,
/// rank it, and derive depths, subtree sizes, and preorder numbers.
/// O(log n) steps (from the ranking), O(n log n) work.
[[nodiscard]] EulerTourResult euler_tour(Machine& m, const cat::Tree& tree);

}  // namespace pram
