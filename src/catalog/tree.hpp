#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "catalog/catalog.hpp"

namespace cat {

using NodeId = std::int32_t;
inline constexpr NodeId kNullNode = -1;

/// A rooted, ordered tree whose nodes carry catalogs — the input object of
/// the whole paper.  Node 0 is the root.  Children are ordered left to
/// right; for binary trees child 0 is the left child and child 1 the right.
class Tree {
 public:
  Tree() = default;

  /// Create a tree with `n` nodes and no edges/catalogs; link with
  /// `add_child`, then call `finalize()`.
  explicit Tree(std::size_t n);

  [[nodiscard]] std::size_t num_nodes() const { return parent_.size(); }

  void add_child(NodeId parent, NodeId child);
  void set_catalog(NodeId v, Catalog c) { catalogs_[v] = std::move(c); }

  /// Compute depths, level buckets, subtree inorder ranges.  Must be called
  /// after the structure is fully linked and before queries.
  void finalize();

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] NodeId parent(NodeId v) const { return parent_[v]; }
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const {
    return children_[v];
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    return children_[v].size();
  }
  [[nodiscard]] bool is_leaf(NodeId v) const { return children_[v].empty(); }
  [[nodiscard]] std::uint32_t depth(NodeId v) const { return depth_[v]; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  /// Nodes at a given depth, left-to-right.
  [[nodiscard]] std::span<const NodeId> level(std::uint32_t d) const {
    return levels_[d];
  }
  [[nodiscard]] const Catalog& catalog(NodeId v) const { return catalogs_[v]; }
  [[nodiscard]] Catalog& catalog(NodeId v) { return catalogs_[v]; }

  /// Total number of catalog entries (excluding sentinels) — the paper's n.
  [[nodiscard]] std::size_t total_catalog_size() const;

  /// Max degree over all nodes (cached by finalize()).
  [[nodiscard]] std::size_t max_degree() const { return max_degree_; }

  [[nodiscard]] bool is_binary() const { return max_degree() <= 2; }

  /// True if every internal node of a binary tree has exactly 2 children
  /// and all leaves share the same depth.
  [[nodiscard]] bool is_complete_binary() const;

  /// Child slot (index in parent's child list) of v, or -1 for the root.
  [[nodiscard]] std::int32_t child_slot(NodeId v) const { return slot_[v]; }

  /// Basic structural sanity (single root, acyclic, catalogs valid).
  [[nodiscard]] bool validate() const;

 private:
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<Catalog> catalogs_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::int32_t> slot_;
  std::vector<std::vector<NodeId>> levels_;
  std::uint32_t height_ = 0;
  std::size_t max_degree_ = 0;
};

/// How generated catalog entries are spread over the nodes of a tree.
enum class CatalogShape {
  kUniform,    ///< roughly equal catalog sizes
  kRandom,     ///< multinomial random sizes
  kRootHeavy,  ///< one huge catalog at the root, tiny ones elsewhere
  kLeafHeavy,  ///< entries concentrated at the leaves
  kSkewed,     ///< a few random nodes hold almost everything (the paper's
               ///< "variable number of entries" stress case)
};

/// Build a complete balanced binary tree of the given height (root depth 0,
/// leaves at depth `height`) carrying `total_entries` catalog entries spread
/// according to `shape`, keys drawn without replacement per catalog from
/// [0, key_range).
[[nodiscard]] Tree make_balanced_binary(std::uint32_t height,
                                        std::size_t total_entries,
                                        CatalogShape shape, std::mt19937_64& rng,
                                        Key key_range = 1'000'000'000);

/// Build a random rooted tree with `n_nodes` nodes and max degree `d`,
/// carrying `total_entries` entries.
[[nodiscard]] Tree make_random_tree(std::size_t n_nodes, std::size_t max_degree,
                                    std::size_t total_entries,
                                    CatalogShape shape, std::mt19937_64& rng,
                                    Key key_range = 1'000'000'000);

/// Build a path (each node one child) of `length` nodes — the long-search-
/// path regime of Theorem 2.
[[nodiscard]] Tree make_path_tree(std::size_t length, std::size_t total_entries,
                                  CatalogShape shape, std::mt19937_64& rng,
                                  Key key_range = 1'000'000'000);

/// Replace every node of degree > 2 by a left-leaning binary caterpillar of
/// its children (the standard degree-reduction of Theorem 3).  Auxiliary
/// nodes get empty catalogs.  Returns the binarized tree and fills
/// `orig_of_new[v]` with the original node a new node represents
/// (kNullNode for auxiliary nodes).
[[nodiscard]] Tree binarize(const Tree& t, std::vector<NodeId>& orig_of_new);

/// Draw `count` sorted distinct keys uniformly from [0, key_range).
[[nodiscard]] std::vector<Key> random_sorted_keys(std::size_t count,
                                                  Key key_range,
                                                  std::mt19937_64& rng);

/// Split `total` entries into `parts` non-negative sizes per `shape`.
[[nodiscard]] std::vector<std::size_t> split_sizes(std::size_t total,
                                                   std::size_t parts,
                                                   CatalogShape shape,
                                                   std::mt19937_64& rng);

}  // namespace cat
