#include "catalog/tree_ops.hpp"

#include <cassert>

#include "pram/memory.hpp"
#include "pram/primitives.hpp"

namespace pram {

std::vector<std::int64_t> list_rank(Machine& m,
                                    const std::vector<std::int64_t>& next) {
  const std::size_t n = next.size();
  if (n == 0) {
    return {};
  }
  // Double-buffered pointer jumping: rank[i] accumulates the distance
  // covered by succ[i].
  SharedArray<std::int64_t> succ_a(n), succ_b(n);
  SharedArray<std::int64_t> rank_a(n), rank_b(n);
  m.exec(n, [&](std::size_t i) {
    succ_a.write(i, next[i]);
    rank_a.write(i, next[i] == -1 ? 0 : 1);
  });
  SharedArray<std::int64_t>* succ_r = &succ_a;
  SharedArray<std::int64_t>* succ_w = &succ_b;
  SharedArray<std::int64_t>* rank_r = &rank_a;
  SharedArray<std::int64_t>* rank_w = &rank_b;
  const std::uint32_t rounds = ceil_log2(n) + 1;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    m.exec(n, [&](std::size_t i) {
      const std::int64_t s = succ_r->read(i);
      if (s == -1) {
        succ_w->write(i, -1);
        rank_w->write(i, rank_r->read(i));
      } else {
        // Reading succ/rank of s is a concurrent read only if two
        // elements share a successor, which cannot happen in a list;
        // rank_r->read(s) and the i == s reads never collide (EREW).
        succ_w->write(i, succ_r->read(static_cast<std::size_t>(s)));
        rank_w->write(i, rank_r->read(i) +
                             rank_r->read(static_cast<std::size_t>(s)));
      }
    });
    std::swap(succ_r, succ_w);
    std::swap(rank_r, rank_w);
  }
  std::vector<std::int64_t> out(n);
  m.exec(n, [&](std::size_t i) { out[i] = rank_r->read(i); });
  return out;
}

EulerTourResult euler_tour(Machine& m, const cat::Tree& tree) {
  const std::size_t n = tree.num_nodes();
  EulerTourResult out;
  out.depth.assign(n, 0);
  out.subtree_size.assign(n, 1);
  out.preorder.assign(n, 0);
  if (n <= 1) {
    return out;
  }

  // Arcs: for the edge to child v (v != root), down(v) = 2(v-1) and
  // up(v) = 2(v-1)+1.  The Euler tour successor function is local:
  //   next(down(v)) = down(first child of v)   or up(v) if v is a leaf
  //   next(up(v))   = down(next sibling of v)  or up(parent) / end.
  const std::size_t arcs = 2 * (n - 1);
  std::vector<std::int64_t> next(arcs, -1);
  const auto down = [](cat::NodeId v) { return std::int64_t(2 * (v - 1)); };
  const auto up = [](cat::NodeId v) { return std::int64_t(2 * (v - 1) + 1); };
  m.exec(arcs, [&](std::size_t a) {
    const auto v = cat::NodeId(a / 2 + 1);
    if (a % 2 == 0) {  // down(v)
      next[a] = tree.is_leaf(v) ? up(v) : down(tree.children(v)[0]);
    } else {  // up(v)
      const cat::NodeId parent = tree.parent(v);
      const auto slot = static_cast<std::size_t>(tree.child_slot(v));
      const auto siblings = tree.children(parent);
      if (slot + 1 < siblings.size()) {
        next[a] = down(siblings[slot + 1]);
      } else if (parent != tree.root()) {
        next[a] = up(parent);
      } else {
        next[a] = -1;  // tour ends back at the root
      }
    }
  });

  // rank_from_end[a]: arcs after a; position in tour = arcs - 1 - that.
  const auto rank_from_end = list_rank(m, next);

  // Serialize the tour, then prefix-sum the +1/-1 arc values to get
  // depths; subtree sizes and preorder come from arc positions.
  SharedArray<std::int64_t> value(arcs);
  std::vector<std::size_t> pos(arcs);
  m.exec(arcs, [&](std::size_t a) {
    pos[a] = arcs - 1 - static_cast<std::size_t>(rank_from_end[a]);
    value.write(pos[a] /*distinct*/, a % 2 == 0 ? 1 : -1);
  });
  SharedArray<std::int64_t> prefix;
  inclusive_scan(m, value, prefix, std::int64_t{0},
                 [](std::int64_t x, std::int64_t y) { return x + y; });

  m.exec(arcs, [&](std::size_t a) {
    const auto v = cat::NodeId(a / 2 + 1);
    if (a % 2 == 0) {
      out.depth[v] = static_cast<std::uint32_t>(prefix[pos[a]]);
      // Preorder: the number of down-arcs at or before this position is
      // (position + depth-after-arc) / 2 + ... simpler: down-arc count =
      // (pos + prefix)/2 since prefix = downs - ups and pos+1 = downs+ups.
      const std::int64_t downs = (std::int64_t(pos[a]) + 1 + prefix[pos[a]]) / 2;
      out.preorder[v] = static_cast<std::uint32_t>(downs);  // root is 0
    }
  });
  m.exec(n - 1, [&](std::size_t i) {
    const auto v = cat::NodeId(i + 1);
    const auto pd = pos[static_cast<std::size_t>(down(v))];
    const auto pu = pos[static_cast<std::size_t>(up(v))];
    out.subtree_size[v] = static_cast<std::uint32_t>((pu - pd + 1) / 2);
  });
  out.subtree_size[tree.root()] = static_cast<std::uint32_t>(n);
  out.preorder[tree.root()] = 0;
  return out;
}

}  // namespace pram
