#include "catalog/tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace cat {

Tree::Tree(std::size_t n)
    : parent_(n, kNullNode),
      children_(n),
      catalogs_(n),
      depth_(n, 0),
      slot_(n, -1) {}

void Tree::add_child(NodeId parent, NodeId child) {
  assert(parent_[child] == kNullNode && child != 0);
  parent_[child] = parent;
  slot_[child] = static_cast<std::int32_t>(children_[parent].size());
  children_[parent].push_back(child);
}

void Tree::finalize() {
  const std::size_t n = num_nodes();
  height_ = 0;
  // BFS from root to compute depths; children were appended in order.
  std::vector<NodeId> queue;
  queue.reserve(n);
  queue.push_back(root());
  depth_[root()] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    height_ = std::max(height_, depth_[v]);
    for (NodeId w : children_[v]) {
      depth_[w] = depth_[v] + 1;
      queue.push_back(w);
    }
  }
  levels_.assign(height_ + 1, {});
  for (NodeId v : queue) {
    levels_[depth_[v]].push_back(v);
  }
  max_degree_ = 0;
  for (const auto& ch : children_) {
    max_degree_ = std::max(max_degree_, ch.size());
  }
}

std::size_t Tree::total_catalog_size() const {
  std::size_t total = 0;
  for (const auto& c : catalogs_) {
    total += c.real_size();
  }
  return total;
}

bool Tree::is_complete_binary() const {
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    const std::size_t deg = children_[v].size();
    if (deg != 0 && deg != 2) {
      return false;
    }
    if (deg == 0 && depth_[v] != height_) {
      return false;
    }
  }
  return true;
}

bool Tree::validate() const {
  const std::size_t n = num_nodes();
  if (n == 0 || parent_[0] != kNullNode) {
    return false;
  }
  std::size_t reachable = 0;
  for (std::uint32_t d = 0; d < levels_.size(); ++d) {
    for (NodeId v : levels_[d]) {
      ++reachable;
      if (depth_[v] != d) {
        return false;
      }
    }
  }
  if (reachable != n) {
    return false;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!catalogs_[v].valid()) {
      return false;
    }
  }
  return true;
}

std::vector<Key> random_sorted_keys(std::size_t count, Key key_range,
                                    std::mt19937_64& rng) {
  std::unordered_set<Key> seen;
  seen.reserve(count * 2);
  std::uniform_int_distribution<Key> dist(0, key_range - 1);
  std::vector<Key> keys;
  keys.reserve(count);
  while (keys.size() < count) {
    const Key k = dist(rng);
    if (seen.insert(k).second) {
      keys.push_back(k);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::size_t> split_sizes(std::size_t total, std::size_t parts,
                                     CatalogShape shape,
                                     std::mt19937_64& rng) {
  std::vector<std::size_t> sizes(parts, 0);
  if (parts == 0) {
    return sizes;
  }
  switch (shape) {
    case CatalogShape::kUniform: {
      for (std::size_t i = 0; i < parts; ++i) {
        sizes[i] = total / parts + (i < total % parts ? 1 : 0);
      }
      break;
    }
    case CatalogShape::kRandom: {
      std::uniform_int_distribution<std::size_t> pick(0, parts - 1);
      for (std::size_t e = 0; e < total; ++e) {
        sizes[pick(rng)] += 1;
      }
      break;
    }
    case CatalogShape::kRootHeavy: {
      const std::size_t rest = std::min(total, parts - 1);
      for (std::size_t i = 1; i <= rest; ++i) {
        sizes[i] = 1;
      }
      sizes[0] = total - rest;
      break;
    }
    case CatalogShape::kLeafHeavy: {
      // Caller passes parts == num nodes with leaves occupying the tail of
      // the BFS order in our builders; concentrate entries in the last
      // half of the id space.
      const std::size_t first_leafish = parts / 2;
      const std::size_t span = parts - first_leafish;
      for (std::size_t e = 0; e < total; ++e) {
        sizes[first_leafish + e % span] += 1;
      }
      break;
    }
    case CatalogShape::kSkewed: {
      // ~sqrt(parts) random hubs share 90% of the entries.
      const std::size_t hubs =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       std::sqrt(static_cast<double>(parts))));
      std::uniform_int_distribution<std::size_t> pick_hub(0, parts - 1);
      std::vector<std::size_t> hub_ids;
      for (std::size_t h = 0; h < hubs; ++h) {
        hub_ids.push_back(pick_hub(rng));
      }
      std::uniform_int_distribution<std::size_t> pick(0, parts - 1);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      std::uniform_int_distribution<std::size_t> pick_in_hub(0, hubs - 1);
      for (std::size_t e = 0; e < total; ++e) {
        if (coin(rng) < 0.9) {
          sizes[hub_ids[pick_in_hub(rng)]] += 1;
        } else {
          sizes[pick(rng)] += 1;
        }
      }
      break;
    }
  }
  return sizes;
}

namespace {

void fill_catalogs(Tree& t, std::size_t total_entries, CatalogShape shape,
                   Key key_range, std::mt19937_64& rng) {
  const auto sizes = split_sizes(total_entries, t.num_nodes(), shape, rng);
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const auto keys = random_sorted_keys(sizes[v], key_range, rng);
    t.set_catalog(static_cast<NodeId>(v), Catalog::from_sorted_keys(keys));
  }
}

}  // namespace

Tree make_balanced_binary(std::uint32_t height, std::size_t total_entries,
                          CatalogShape shape, std::mt19937_64& rng,
                          Key key_range) {
  const std::size_t n = (std::size_t{1} << (height + 1)) - 1;
  Tree t(n);
  // Heap layout: children of v are 2v+1 and 2v+2; BFS ids coincide.
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t l = 2 * v + 1, r = 2 * v + 2;
    if (l < n) {
      t.add_child(static_cast<NodeId>(v), static_cast<NodeId>(l));
    }
    if (r < n) {
      t.add_child(static_cast<NodeId>(v), static_cast<NodeId>(r));
    }
  }
  t.finalize();
  fill_catalogs(t, total_entries, shape, key_range, rng);
  return t;
}

Tree make_random_tree(std::size_t n_nodes, std::size_t max_degree,
                      std::size_t total_entries, CatalogShape shape,
                      std::mt19937_64& rng, Key key_range) {
  assert(n_nodes >= 1 && max_degree >= 1);
  Tree t(n_nodes);
  std::vector<std::size_t> deg(n_nodes, 0);
  // Attach node v to a random earlier node that still has degree room.
  for (std::size_t v = 1; v < n_nodes; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, v - 1);
    std::size_t u = pick(rng);
    while (deg[u] >= max_degree) {
      u = pick(rng);
    }
    deg[u] += 1;
    t.add_child(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  t.finalize();
  fill_catalogs(t, total_entries, shape, key_range, rng);
  return t;
}

Tree make_path_tree(std::size_t length, std::size_t total_entries,
                    CatalogShape shape, std::mt19937_64& rng, Key key_range) {
  assert(length >= 1);
  Tree t(length);
  for (std::size_t v = 1; v < length; ++v) {
    t.add_child(static_cast<NodeId>(v - 1), static_cast<NodeId>(v));
  }
  t.finalize();
  fill_catalogs(t, total_entries, shape, key_range, rng);
  return t;
}

Tree binarize(const Tree& t, std::vector<NodeId>& orig_of_new) {
  // First pass: count nodes.  A node with d > 2 children is expanded into a
  // caterpillar with d-2 auxiliary nodes (each auxiliary node has one
  // original child and one auxiliary/original continuation).
  std::size_t total = t.num_nodes();
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const std::size_t d = t.degree(static_cast<NodeId>(v));
    if (d > 2) {
      total += d - 2;
    }
  }
  Tree out(total);
  orig_of_new.assign(total, kNullNode);
  // Original node v keeps id v; auxiliary ids are allocated after.
  NodeId next_aux = static_cast<NodeId>(t.num_nodes());
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    orig_of_new[v] = static_cast<NodeId>(v);
    const auto kids = t.children(static_cast<NodeId>(v));
    if (kids.size() <= 2) {
      for (NodeId w : kids) {
        out.add_child(static_cast<NodeId>(v), w);
      }
      continue;
    }
    // v -> kids[0], aux0; aux_i -> kids[i+1], aux_{i+1}; last aux -> last 2.
    NodeId attach = static_cast<NodeId>(v);
    for (std::size_t i = 0; i + 2 < kids.size(); ++i) {
      out.add_child(attach, kids[i]);
      const NodeId aux = next_aux++;
      out.add_child(attach, aux);
      attach = aux;
    }
    out.add_child(attach, kids[kids.size() - 2]);
    out.add_child(attach, kids[kids.size() - 1]);
  }
  out.finalize();
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    out.set_catalog(static_cast<NodeId>(v), t.catalog(static_cast<NodeId>(v)));
  }
  return out;
}

}  // namespace cat
