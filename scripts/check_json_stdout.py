#!/usr/bin/env python3
"""Run a command and assert its stdout is exactly one valid JSON document.

Usage:
    python3 scripts/check_json_stdout.py [--] CMD [ARGS...]

The child's stderr passes through untouched (that is where diagnostics
belong); its stdout is captured and fed to json.loads.  Exits with the
child's code if the child fails, 1 if stdout is not valid JSON, 0
otherwise.  CI uses this to guarantee that every `--json` invocation and
`coopsearch_cli stats` stays machine-parseable — a stray printf to
stdout anywhere in the serving stack trips this gate.
"""

import json
import subprocess
import sys


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        print("usage: check_json_stdout.py [--] CMD [ARGS...]",
              file=sys.stderr)
        return 2
    proc = subprocess.run(argv, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        print(f"error: {argv[0]} exited {proc.returncode}", file=sys.stderr)
        return proc.returncode
    text = proc.stdout.decode("utf-8", errors="replace")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"REGRESSION: stdout of {' '.join(argv)} is not valid JSON: "
              f"{e}", file=sys.stderr)
        head = text[:400]
        print(f"stdout began with:\n{head}", file=sys.stderr)
        return 1
    kind = type(doc).__name__
    print(f"ok: stdout is one valid JSON {kind} ({len(text)} bytes)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
