#!/usr/bin/env python3
"""Fail CI when serving throughput regresses against committed baselines.

Usage:
    python3 scripts/check_bench_regression.py [options] BENCH_*.json
    python3 scripts/check_bench_regression.py --self-test

Each fresh JSON (written by `bench_retrieval --json` / `bench_pointloc
--json`, and in soak form by `coopsearch_cli serve --soak ... --json`) is
matched to `bench/baselines/<bench>.json` by its "bench" field.  Rows are
keyed by (mode, threads) and compared:

* qps floor:    fresh.qps  >= baseline.qps * (1 - --qps-tolerance)
* p99 ceiling:  fresh.p99_ns <= baseline.p99_ns * (1 + --p99-tolerance)
  (checked only when both sides carry p99_ns)

Any violated floor/ceiling prints a REGRESSION line and the script exits
nonzero.  Rows present on only one side are reported but do not fail the
gate (so adding a bench mode does not break CI until its baseline lands).

--require-row BENCH:MODE[@THREADS] (repeatable) makes the gate fail unless
the named row appears in one of the fresh JSONs — the teeth behind rows
whose very *presence* is the guarantee, e.g. serve_paths:flat_simd@1 on an
avx2 CI runner: a dispatch-ladder regression that silently dropped the
vector kernel would otherwise just vanish from the report as a benign
"MISSING".  Do not require flat_simd on the -DCOOPSEARCH_DISABLE_SIMD=ON
leg, where its absence is the expected outcome.

Refreshing baselines
--------------------
Baselines are smoke-sized runs committed under bench/baselines/.  To
refresh after an intentional perf change:

    cmake --build build -j
    ./build/bench/bench_retrieval --json=bench/baselines/serve_paths.json --smoke
    ./build/bench/bench_pointloc --json=bench/baselines/serve_pointloc.json --smoke
    git add bench/baselines/ && git commit

or download the `bench-serve-json` artifact from a green CI run of the
bench-smoke job and copy its files over bench/baselines/ (renaming to
<bench>.json).  CI runners are noisy, so the CI gate runs with a lenient
tolerance (see .github/workflows/ci.yml); the default below is tighter
and suited to comparing runs on one machine.
"""

import argparse
import json
import os
import sys
import tempfile


def load(path):
    with open(path) as f:
        return json.load(f)


def rows_by_key(doc):
    return {(r["mode"], r.get("threads", 1)): r for r in doc.get("rows", [])}


def check_doc(fresh, baseline, qps_tol, p99_tol, out=sys.stderr):
    """Return the number of regressions between one fresh/baseline pair."""
    bad = 0
    fresh_rows = rows_by_key(fresh)
    base_rows = rows_by_key(baseline)
    for key in sorted(base_rows.keys() | fresh_rows.keys()):
        mode, threads = key
        label = f"{fresh.get('bench', '?')}/{mode}@{threads}"
        if key not in fresh_rows:
            print(f"  MISSING   {label}: in baseline but not in fresh run",
                  file=out)
            continue
        if key not in base_rows:
            print(f"  NEW       {label}: no baseline yet", file=out)
            continue
        f_row, b_row = fresh_rows[key], base_rows[key]
        floor = b_row["qps"] * (1.0 - qps_tol)
        if f_row["qps"] < floor:
            print(f"  REGRESSION {label}: qps {f_row['qps']:.0f} < floor "
                  f"{floor:.0f} (baseline {b_row['qps']:.0f}, "
                  f"tolerance {qps_tol:.0%})", file=out)
            bad += 1
        else:
            print(f"  ok        {label}: qps {f_row['qps']:.0f} "
                  f"(baseline {b_row['qps']:.0f})", file=out)
        if "p99_ns" in f_row and "p99_ns" in b_row and b_row["p99_ns"] > 0:
            ceiling = b_row["p99_ns"] * (1.0 + p99_tol)
            if f_row["p99_ns"] > ceiling:
                print(f"  REGRESSION {label}: p99 {f_row['p99_ns']:.0f}ns > "
                      f"ceiling {ceiling:.0f}ns (baseline "
                      f"{b_row['p99_ns']:.0f}ns, tolerance {p99_tol:.0%})",
                      file=out)
                bad += 1
    return bad


def parse_requirement(spec):
    """'bench:mode@threads' -> (bench, mode, threads); threads defaults to 1."""
    bench, _, row = spec.partition(":")
    if not bench or not row:
        raise ValueError(f"bad --require-row {spec!r} "
                         "(want BENCH:MODE[@THREADS])")
    mode, _, threads = row.partition("@")
    return bench, mode, int(threads) if threads else 1


def run_gate(args):
    total_bad = 0
    required = {parse_requirement(s) for s in getattr(args, "require_row", [])}
    satisfied = set()
    for path in args.fresh:
        fresh = load(path)
        bench = fresh.get("bench")
        if bench is None:
            print(f"error: {path} has no 'bench' field", file=sys.stderr)
            return 2
        for key in rows_by_key(fresh):
            satisfied.add((bench, key[0], key[1]))
        base_path = os.path.join(args.baseline_dir, f"{bench}.json")
        if not os.path.exists(base_path):
            print(f"warning: no baseline {base_path} for {path}; skipping",
                  file=sys.stderr)
            continue
        print(f"{path} vs {base_path}:", file=sys.stderr)
        total_bad += check_doc(fresh, load(base_path), args.qps_tolerance,
                               args.p99_tolerance)
    for bench, mode, threads in sorted(required - satisfied):
        print(f"  REGRESSION {bench}/{mode}@{threads}: required row is "
              "absent from every fresh run", file=sys.stderr)
        total_bad += 1
    if total_bad:
        print(f"FAIL: {total_bad} regression(s)", file=sys.stderr)
        return 1
    print("PASS: no regressions", file=sys.stderr)
    return 0


def self_test():
    """Prove the gate trips on a 20% qps drop and passes on the baseline."""
    baseline = {
        "bench": "selftest",
        "rows": [
            {"mode": "flat", "threads": 1, "qps": 1_000_000.0,
             "p99_ns": 2000.0},
            {"mode": "flat_batch", "threads": 4, "qps": 2_500_000.0},
        ],
    }
    dropped = json.loads(json.dumps(baseline))
    for row in dropped["rows"]:
        row["qps"] *= 0.8  # the injected 20% regression

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baselines")
        os.mkdir(base_dir)
        with open(os.path.join(base_dir, "selftest.json"), "w") as f:
            json.dump(baseline, f)
        fresh_ok = os.path.join(tmp, "fresh_ok.json")
        fresh_bad = os.path.join(tmp, "fresh_bad.json")
        with open(fresh_ok, "w") as f:
            json.dump(baseline, f)
        with open(fresh_bad, "w") as f:
            json.dump(dropped, f)

        args = argparse.Namespace(baseline_dir=base_dir, qps_tolerance=0.10,
                                  p99_tolerance=0.25, fresh=[fresh_ok],
                                  require_row=[])
        if run_gate(args) != 0:
            print("self-test FAILED: identical run was flagged",
                  file=sys.stderr)
            return 1
        args.fresh = [fresh_bad]
        if run_gate(args) == 0:
            print("self-test FAILED: 20% qps drop was not flagged",
                  file=sys.stderr)
            return 1
        args.fresh = [fresh_ok]
        args.require_row = ["selftest:flat@1"]
        if run_gate(args) != 0:
            print("self-test FAILED: satisfied --require-row was flagged",
                  file=sys.stderr)
            return 1
        args.require_row = ["selftest:flat_simd@1"]
        if run_gate(args) == 0:
            print("self-test FAILED: absent required row was not flagged",
                  file=sys.stderr)
            return 1
    print("self-test PASS: gate trips on a 20% drop and passes on baseline",
          file=sys.stderr)
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("fresh", nargs="*", help="fresh BENCH_*.json files")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--qps-tolerance", type=float, default=0.15,
                    help="allowed fractional qps drop (default 0.15)")
    ap.add_argument("--p99-tolerance", type=float, default=0.25,
                    help="allowed fractional p99 rise (default 0.25)")
    ap.add_argument("--require-row", action="append", default=[],
                    metavar="BENCH:MODE[@THREADS]",
                    help="fail unless this row is present in a fresh run "
                         "(repeatable; threads defaults to 1)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic on synthetic data and exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.fresh:
        ap.error("no fresh JSON files given (or use --self-test)")
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
