#!/usr/bin/env python3
"""Summarize benchmark output into per-experiment tables.

Usage:
    python3 scripts/summarize_bench.py [bench_output.txt | BENCH_*.json ...]

Two input kinds, decided per file by extension:

* google-benchmark console output (with UserCounters), as captured to
  bench_output.txt — printed as one aligned table per benchmark family;
* the serving-layer JSON emitted by `bench_retrieval --json` /
  `bench_pointloc --json` (BENCH_serve.json, BENCH_pointloc_serve.json) —
  printed as a throughput table plus the flat-vs-simulator speedup and
  the differential-check verdict.
"""

import json
import re
import sys
from collections import defaultdict


def parse(path):
    fams = defaultdict(list)
    line_re = re.compile(r"^(BM_\w+)(/[^\s]*)?\s+[\d.]+ \S+\s+[\d.]+ \S+\s+\d+\s*(.*)$")
    counter_re = re.compile(r"(\w+)=([\d.kMG]+m?)")
    with open(path) as f:
        for line in f:
            m = line_re.match(line.strip())
            if not m:
                continue
            name, args, counters = m.group(1), m.group(2) or "", m.group(3)
            row = {"args": args.lstrip("/")}
            for cm in counter_re.finditer(counters):
                row[cm.group(1)] = cm.group(2)
            fams[name].append(row)
    return fams


def fmt_table(rows):
    cols = ["args"] + sorted({k for r in rows for k in r} - {"args"})
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    out = ["  ".join(c.ljust(widths[c]) for c in cols)]
    out.append("  ".join("-" * widths[c] for c in cols))
    for r in rows:
        out.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(out)


def summarize_console(path):
    fams = parse(path)
    if not fams:
        print(f"no benchmark rows found in {path}", file=sys.stderr)
        return 1
    for name in sorted(fams):
        print(f"== {name}")
        print(fmt_table(fams[name]))
        print()
    return 0


def summarize_serve_json(path):
    with open(path) as f:
        data = json.load(f)
    for key in ("bench", "rows", "speedup_flat_vs_simulator", "equal_answers"):
        if key not in data:
            print(f"{path}: missing '{key}' — not a serve bench file?",
                  file=sys.stderr)
            return 1
    kind = "smoke" if data.get("smoke") else "full"
    print(f"== {data['bench']} ({kind}: n={data.get('n')}, "
          f"{data.get('queries')} queries)")
    rows = [
        {"args": f"{r['mode']}/t{r['threads']}", "qps": f"{r['qps']:,.0f}"}
        for r in data["rows"]
    ]
    print(fmt_table(rows))
    print(f"flat vs simulator (single thread): "
          f"{data['speedup_flat_vs_simulator']:.2f}x")
    verdict = "yes" if data["equal_answers"] else "NO — MISMATCH"
    print(f"answers equal across modes: {verdict}")
    print()
    return 0 if data["equal_answers"] else 1


def main():
    paths = sys.argv[1:] if len(sys.argv) > 1 else ["bench_output.txt"]
    rc = 0
    for path in paths:
        if path.endswith(".json"):
            rc |= summarize_serve_json(path)
        else:
            rc |= summarize_console(path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
