#!/usr/bin/env python3
"""Summarize benchmark output into per-experiment tables.

Usage:
    python3 scripts/summarize_bench.py [bench_output.txt | BENCH_*.json ...]

Two input kinds, decided per file by extension:

* google-benchmark console output (with UserCounters), as captured to
  bench_output.txt — printed as one aligned table per benchmark family;
* the serving-layer JSON emitted by `bench_retrieval --json` /
  `bench_pointloc --json` (BENCH_serve.json, BENCH_pointloc_serve.json) —
  printed as a throughput table plus the flat-vs-simulator speedup and
  the differential-check verdict.
"""

import json
import re
import sys
from collections import defaultdict


def parse(path):
    fams = defaultdict(list)
    line_re = re.compile(r"^(BM_\w+)(/[^\s]*)?\s+[\d.]+ \S+\s+[\d.]+ \S+\s+\d+\s*(.*)$")
    counter_re = re.compile(r"(\w+)=([\d.kMG]+m?)")
    with open(path) as f:
        for line in f:
            m = line_re.match(line.strip())
            if not m:
                continue
            name, args, counters = m.group(1), m.group(2) or "", m.group(3)
            row = {"args": args.lstrip("/")}
            for cm in counter_re.finditer(counters):
                row[cm.group(1)] = cm.group(2)
            fams[name].append(row)
    return fams


def fmt_table(rows):
    cols = ["args"] + sorted({k for r in rows for k in r} - {"args"})
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    out = ["  ".join(c.ljust(widths[c]) for c in cols)]
    out.append("  ".join("-" * widths[c] for c in cols))
    for r in rows:
        out.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(out)


def summarize_console(path):
    fams = parse(path)
    if not fams:
        print(f"no benchmark rows found in {path}", file=sys.stderr)
        return 1
    for name in sorted(fams):
        print(f"== {name}")
        print(fmt_table(fams[name]))
        print()
    return 0


def summarize_snapshot_json(path, data):
    keys = ("cold_build_sec", "mmap_load_sec", "load_speedup",
            "swap_publishes", "swap_qps", "swap_mismatches", "equal_answers")
    for key in keys:
        if key not in data:
            print(f"{path}: missing '{key}' — not a snapshot bench file?",
                  file=sys.stderr)
            return 1
    kind = "smoke" if data.get("smoke") else "full"
    print(f"== snapshot ({kind}: n={data.get('n')}, "
          f"{data.get('queries')} queries/batch)")
    rows = [
        {"args": "cold build", "sec": f"{data['cold_build_sec']:.3f}"},
        {"args": "snapshot write", "sec": f"{data['snapshot_write_sec']:.3f}"},
        {"args": "mmap load", "sec": f"{data['mmap_load_sec']:.3f}"},
    ]
    print(fmt_table(rows))
    print(f"mmap load vs cold build: {data['load_speedup']:.1f}x faster")
    print(f"hot swap: {data['swap_publishes']} publishes, "
          f"{data['swap_qps']:,.0f} qps, "
          f"{data['swap_mismatches']} mismatches")
    verdict = "yes" if data["equal_answers"] else "NO — MISMATCH"
    print(f"answers equal after round-trip: {verdict}")
    print()
    ok = data["equal_answers"] and data["swap_mismatches"] == 0
    return 0 if ok else 1


def summarize_overload_json(path, data):
    keys = ("capacity_qps", "offered_qps", "admitted_qps", "shed_qps",
            "p50_ms", "p99_ms", "equal_answers")
    for key in keys:
        if key not in data:
            print(f"{path}: missing '{key}' — not an overload bench file?",
                  file=sys.stderr)
            return 1
    kind = "smoke" if data.get("smoke") else "full"
    print(f"== overload ({kind}: n={data.get('n')}, "
          f"{data.get('queries')} queries/batch, "
          f"{data.get('clients')} clients vs "
          f"max_inflight={data.get('max_inflight')})")
    rows = [
        {"args": "capacity (1 client)", "qps": f"{data['capacity_qps']:,.0f}"},
        {"args": "offered (~2x)", "qps": f"{data['offered_qps']:,.0f}"},
        {"args": "admitted", "qps": f"{data['admitted_qps']:,.0f}"},
        {"args": "shed", "qps": f"{data['shed_qps']:,.0f}"},
    ]
    print(fmt_table(rows))
    print(f"admitted batch latency: p50 {data['p50_ms']:.2f} ms, "
          f"p99 {data['p99_ms']:.2f} ms")
    verdict = "yes" if data["equal_answers"] else "NO — MISMATCH"
    print(f"answers equal: {verdict}")
    print()
    ok = data["equal_answers"] and data.get("other_errors", 0) == 0
    return 0 if ok else 1


def summarize_wire_json(path, data):
    """coopload --json: over-the-wire throughput per collection."""
    if "rows" not in data:
        print(f"{path}: missing 'rows' — not a wire bench file?",
              file=sys.stderr)
        return 1
    kind = "smoke" if data.get("smoke") else "full"
    print(f"== wire ({kind}: framed-TCP loopback, "
          f"{'checked' if data.get('checked') else 'unchecked'})")
    rows = [
        {"args": f"{r['mode']}@t{r.get('threads', 1)}",
         "qps": f"{r['qps']:,.0f}",
         "p99_ms": f"{r.get('p99_ns', 0) / 1e6:.3f}"}
        for r in data["rows"]
    ]
    print(fmt_table(rows))
    print(f"oracle mismatches: {data.get('mismatches', 0)}, "
          f"request errors: {data.get('errors', 0)}")
    print()
    ok = data.get("mismatches", 0) == 0 and data.get("errors", 0) == 0
    return 0 if ok else 1


def summarize_serve_json(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("bench") == "snapshot":
        return summarize_snapshot_json(path, data)
    if data.get("bench") == "overload":
        return summarize_overload_json(path, data)
    if data.get("bench") == "wire":
        return summarize_wire_json(path, data)
    for key in ("bench", "rows", "speedup_flat_vs_simulator", "equal_answers"):
        if key not in data:
            print(f"{path}: missing '{key}' — not a serve bench file?",
                  file=sys.stderr)
            return 1
    kind = "smoke" if data.get("smoke") else "full"
    print(f"== {data['bench']} ({kind}: n={data.get('n')}, "
          f"{data.get('queries')} queries)")
    rows = [
        {"args": f"{r['mode']}/t{r['threads']}", "qps": f"{r['qps']:,.0f}"}
        for r in data["rows"]
    ]
    print(fmt_table(rows))
    print(f"flat vs simulator (single thread): "
          f"{data['speedup_flat_vs_simulator']:.2f}x")
    verdict = "yes" if data["equal_answers"] else "NO — MISMATCH"
    print(f"answers equal across modes: {verdict}")
    print()
    return 0 if data["equal_answers"] else 1


def main():
    paths = sys.argv[1:] if len(sys.argv) > 1 else ["bench_output.txt"]
    rc = 0
    for path in paths:
        if path.endswith(".json"):
            rc |= summarize_serve_json(path)
        else:
            rc |= summarize_console(path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
