#!/usr/bin/env python3
"""Summarize bench_output.txt into per-experiment tables.

Usage:
    python3 scripts/summarize_bench.py [bench_output.txt]

Parses google-benchmark console output (with UserCounters) and prints one
aligned table per benchmark family, keeping the counters that matter for
the EXPERIMENTS.md narrative.
"""

import re
import sys
from collections import defaultdict


def parse(path):
    fams = defaultdict(list)
    line_re = re.compile(r"^(BM_\w+)(/[^\s]*)?\s+[\d.]+ \S+\s+[\d.]+ \S+\s+\d+\s*(.*)$")
    counter_re = re.compile(r"(\w+)=([\d.kMG]+m?)")
    with open(path) as f:
        for line in f:
            m = line_re.match(line.strip())
            if not m:
                continue
            name, args, counters = m.group(1), m.group(2) or "", m.group(3)
            row = {"args": args.lstrip("/")}
            for cm in counter_re.finditer(counters):
                row[cm.group(1)] = cm.group(2)
            fams[name].append(row)
    return fams


def fmt_table(rows):
    cols = ["args"] + sorted({k for r in rows for k in r} - {"args"})
    widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    out = ["  ".join(c.ljust(widths[c]) for c in cols)]
    out.append("  ".join("-" * widths[c] for c in cols))
    for r in rows:
        out.append("  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(out)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    fams = parse(path)
    if not fams:
        print(f"no benchmark rows found in {path}", file=sys.stderr)
        return 1
    for name in sorted(fams):
        print(f"== {name}")
        print(fmt_table(fams[name]))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
