// End-to-end loopback tests for the framed-TCP serving plane: real
// sockets, a real Server, a real Client, and the catalog oracle.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <random>

#include "catalog/tree.hpp"
#include "fc/build.hpp"
#include "net/client.hpp"
#include "robust/corrupt.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using coop::Status;
using coop::StatusCode;

constexpr const char* kSnapPath = "test_net_server.snap";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(7);
    tree_ = cat::make_balanced_binary(5, 1500, cat::CatalogShape::kRandom,
                                      rng);
    auto structure = fc::Structure::build_checked(tree_);
    ASSERT_TRUE(structure.ok()) << structure.status().to_string();
    auto flat = serve::FlatCascade::compile(*structure);
    ASSERT_TRUE(flat.ok()) << flat.status().to_string();
    ASSERT_TRUE(snapshot::write(*flat, kSnapPath).ok());

    net::ServerOptions opts;
    opts.workers = 2;
    opts.engine_threads = 2;
    auto started = net::Server::start(customize(opts));
    ASSERT_TRUE(started.ok()) << started.status().to_string();
    server_ = started.take();
    auto snap = snapshot::open(kSnapPath);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    ASSERT_TRUE(server_->collections().load("main", snap.take()).ok());
  }

  void TearDown() override {
    server_.reset();
    std::remove(kSnapPath);
  }

  virtual net::ServerOptions customize(net::ServerOptions opts) {
    return opts;
  }

  net::Client connect(std::uint64_t tenant = 1) {
    net::ClientOptions copts;
    copts.tenant = tenant;
    auto c = net::Client::connect("127.0.0.1", server_->port(), copts);
    EXPECT_TRUE(c.ok()) << c.status().to_string();
    return c.take();
  }

  std::vector<serve::PathQuery> make_batch(std::size_t n,
                                           std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<serve::PathQuery> batch(n);
    for (auto& q : batch) {
      std::vector<cat::NodeId> path{tree_.root()};
      while (!tree_.is_leaf(path.back())) {
        const auto kids = tree_.children(path.back());
        path.push_back(kids[rng() % kids.size()]);
      }
      q.path = std::move(path);
      q.y = static_cast<cat::Key>(rng() % 1'000'000);
    }
    return batch;
  }

  cat::Tree tree_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(ServerTest, PathBatchMatchesOracle) {
  net::Client client = connect();
  const auto batch = make_batch(64, 11);
  auto resp = client.path_batch("main", batch);
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  ASSERT_EQ(resp->answers.size(), batch.size());
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    ASSERT_EQ(resp->answers[qi].proper_index.size(), batch[qi].path.size());
    for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
      EXPECT_EQ(resp->answers[qi].proper_index[i],
                tree_.catalog(batch[qi].path[i]).find(batch[qi].y));
    }
  }
  EXPECT_GT(resp->served_version, 0u);
}

TEST_F(ServerTest, SequentialRequestsReuseTheConnection) {
  net::Client client = connect();
  for (int i = 0; i < 20; ++i) {
    auto resp = client.path_batch("main", make_batch(8, 100 + i));
    ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  }
  EXPECT_EQ(server_->stats().accepted, 1u);
}

TEST_F(ServerTest, UnknownCollectionIsATypedError) {
  net::Client client = connect();
  auto resp = client.path_batch("nope", make_batch(2, 1));
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(resp.status().to_string().find("nope"), std::string::npos);
  // The connection survives a well-formed but unserviceable request.
  EXPECT_TRUE(client.path_batch("main", make_batch(2, 2)).ok());
}

TEST_F(ServerTest, InvalidPathIsRejectedBeforeTheKernel) {
  net::Client client = connect();
  auto batch = make_batch(2, 3);
  batch[1].path = {0, 999'999};  // node id far out of range
  auto resp = client.path_batch("main", batch);
  ASSERT_FALSE(resp.ok());
  EXPECT_FALSE(resp.status().ok());
  // And the server is still healthy afterwards.
  EXPECT_TRUE(client.path_batch("main", make_batch(2, 4)).ok());
}

TEST_F(ServerTest, WrongKindCollectionIsATypedError) {
  net::Client client = connect();
  std::vector<geom::Point> pts{{1, 2}};
  auto resp = client.point_batch("main", pts);  // cascade, not pointloc
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, TinyDeadlineComesBackAsTypedDeadlineExceeded) {
  net::Client client = connect();
  client.options().deadline_ns = 1;  // expires in transit, guaranteed
  auto resp = client.path_batch("main", make_batch(32, 5));
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server_->stats().deadline_expired, 1u);
  // A deadline miss is the request's problem, not the connection's.
  client.options().deadline_ns = 0;
  EXPECT_TRUE(client.path_batch("main", make_batch(2, 6)).ok());
}

TEST_F(ServerTest, GenerousDeadlineStillServes) {
  net::Client client = connect();
  client.options().deadline_ns = 30ull * 1'000'000'000;  // 30 s
  auto resp = client.path_batch("main", make_batch(16, 7));
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
}

TEST_F(ServerTest, AbsurdDeadlineIsSaturatedNotOverflowed) {
  // deadline_ns is an attacker-controlled u64; near-INT64_MAX values
  // must saturate (serve normally) instead of wrapping the chrono
  // arithmetic (UB under UBSan, or an instant spurious expiry).
  net::Client client = connect();
  for (const std::uint64_t ns :
       {std::numeric_limits<std::uint64_t>::max(),
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
        std::numeric_limits<std::uint64_t>::max() / 2}) {
    client.options().deadline_ns = ns;
    auto resp = client.path_batch("main", make_batch(8, 16));
    ASSERT_TRUE(resp.ok()) << "deadline_ns=" << ns << ": "
                           << resp.status().to_string();
  }
  EXPECT_EQ(server_->stats().deadline_expired, 0u);
}

TEST_F(ServerTest, HealthReportsCollectionsAndMetricsScrape) {
  net::Client client = connect();
  auto h = client.health();
  ASSERT_TRUE(h.ok()) << h.status().to_string();
  EXPECT_EQ(h->draining, 0);
  ASSERT_EQ(h->collections.size(), 1u);
  EXPECT_EQ(h->collections[0].name, "main");
  EXPECT_GT(h->collections[0].version, 0u);

  auto m = client.metrics();
  ASSERT_TRUE(m.ok()) << m.status().to_string();
  EXPECT_NE(m->find("net_server_frames_in_total"), std::string::npos);
}

TEST_F(ServerTest, MalformedFrameGetsTypedErrorThenClose) {
  net::Client client = connect();
  net::PathBatchRequest req;
  req.collection = "main";
  req.queries = make_batch(1, 8);
  net::FrameHeader fh;
  fh.type = static_cast<std::uint16_t>(net::MsgType::kPathBatch);
  fh.request_id = 77;
  auto frame = net::encode_frame(fh, net::encode(req));
  ASSERT_TRUE(robust::corrupt_frame(
                  frame, robust::CorruptionKind::kWireBitFlip, 3)
                  .ok());
  ASSERT_TRUE(client.send_raw(frame).ok());
  auto resp = client.read_frame();
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  ASSERT_EQ(resp->header.type,
            static_cast<std::uint16_t>(net::MsgType::kError) |
                net::kResponseBit);
  auto err = net::decode_error(resp->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(static_cast<StatusCode>(err->code), StatusCode::kCorrupted);
  // One bad frame forfeits the stream: the server closes after the
  // error flushes.
  auto next = client.read_frame();
  EXPECT_FALSE(next.ok());
  EXPECT_GE(server_->stats().malformed, 1u);
  // ...but the *server* is fine: a new connection serves normally.
  net::Client again = connect();
  EXPECT_TRUE(again.path_batch("main", make_batch(2, 9)).ok());
}

TEST_F(ServerTest, OversizePrefixIsRejectedWithoutBuffering) {
  net::Client client = connect();
  std::uint32_t huge = 100u << 20;  // 100 MB announcement
  std::vector<std::uint8_t> prefix(sizeof(huge));
  std::memcpy(prefix.data(), &huge, sizeof(huge));
  ASSERT_TRUE(client.send_raw(prefix).ok());
  auto resp = client.read_frame();
  if (resp.ok()) {
    // Either a typed error...
    EXPECT_EQ(resp->header.type,
              static_cast<std::uint16_t>(net::MsgType::kError) |
                  net::kResponseBit);
  }
  // ...and in all cases the stream ends rather than allocating 100 MB.
  EXPECT_FALSE(client.read_frame().ok());
}

TEST_F(ServerTest, SwapBumpsVersionUnloadRemoves) {
  net::Client client = connect();
  auto v1 = client.health();
  ASSERT_TRUE(v1.ok());
  const std::uint64_t before = v1->collections[0].version;
  auto v2 = client.swap("main", kSnapPath);
  ASSERT_TRUE(v2.ok()) << v2.status().to_string();
  EXPECT_GT(v2.value(), before);
  // Queries still serve across the swap.
  EXPECT_TRUE(client.path_batch("main", make_batch(4, 10)).ok());
  // Admin errors are typed: swapping a collection that is not loaded.
  auto missing = client.swap("ghost", kSnapPath);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kFailedPrecondition);
  // load over an existing name is refused (use SWAP).
  auto dup = client.load("main", kSnapPath);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
  // unload, then the collection is gone.
  ASSERT_TRUE(client.unload("main").ok());
  auto gone = client.path_batch("main", make_batch(2, 11));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, DrainRefusesNewWorkButAnswersHealth) {
  net::Client client = connect();
  ASSERT_TRUE(client.path_batch("main", make_batch(4, 12)).ok());
  server_->begin_drain();
  EXPECT_TRUE(server_->draining());
  // New batch and admin work is refused with a typed UNAVAILABLE.
  auto refused = client.path_batch("main", make_batch(4, 13));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  auto refused_admin = client.swap("main", kSnapPath);
  ASSERT_FALSE(refused_admin.ok());
  EXPECT_EQ(refused_admin.status().code(), StatusCode::kUnavailable);
  // HEALTH and METRICS still answer, and health says draining.
  auto h = client.health();
  ASSERT_TRUE(h.ok()) << h.status().to_string();
  EXPECT_EQ(h->draining, 1);
  EXPECT_TRUE(client.metrics().ok());
  client.close();
  EXPECT_TRUE(server_->wait_drained(std::chrono::seconds(5)));
  EXPECT_GE(server_->stats().draining_refused, 2u);
}

TEST_F(ServerTest, DrainViaWireFrame) {
  net::Client client = connect();
  ASSERT_TRUE(client.drain().ok());
  EXPECT_TRUE(server_->draining());
  client.close();
  EXPECT_TRUE(server_->wait_drained(std::chrono::seconds(5)));
}

// --- Variant fixtures ---

class QuotaServerTest : public ServerTest {
 protected:
  net::ServerOptions customize(net::ServerOptions opts) override {
    opts.quota.tokens_per_sec = 1;
    opts.quota.burst = 3;
    return opts;
  }
};

TEST_F(QuotaServerTest, HotTenantIsShedQuietTenantIsNot) {
  net::Client hot = connect(/*tenant=*/5);
  const auto batch = make_batch(2, 14);
  int served = 0;
  Status shed = coop::OkStatus();
  for (int i = 0; i < 10; ++i) {
    auto resp = hot.path_batch("main", batch);
    if (resp.ok()) {
      ++served;
    } else {
      shed = resp.status();
      break;
    }
  }
  EXPECT_EQ(served, 3);  // exactly the burst
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.to_string().find("tenant 5"), std::string::npos);
  EXPECT_GE(server_->stats().quota_shed, 1u);
  // A different tenant still has its own full bucket.
  net::Client quiet = connect(/*tenant=*/6);
  EXPECT_TRUE(quiet.path_batch("main", batch).ok());
}

class NonLoopbackServerTest : public ServerTest {
 protected:
  net::ServerOptions customize(net::ServerOptions opts) override {
    opts.bind_address = "0.0.0.0";  // reachable beyond the box
    return opts;
  }
};

TEST_F(NonLoopbackServerTest, AdminVerbsAreDeniedWithoutOptIn) {
  // The protocol is unauthenticated and LOAD/SWAP name server-side
  // filesystem paths, so a non-loopback bind locks admin verbs out
  // unless enable_remote_admin was set.
  net::Client client = connect();
  // Query, health, and metrics traffic is unaffected...
  EXPECT_TRUE(client.path_batch("main", make_batch(4, 17)).ok());
  EXPECT_TRUE(client.health().ok());
  // ...but every admin verb is a typed PERMISSION_DENIED.
  auto swapped = client.swap("main", kSnapPath);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kPermissionDenied);
  auto loaded = client.load("extra", kSnapPath);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kPermissionDenied);
  auto unloaded = client.unload("main");
  EXPECT_EQ(unloaded.code(), StatusCode::kPermissionDenied);
  auto drained = client.drain();
  EXPECT_EQ(drained.code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE(server_->draining());
  // A denied admin frame is the request's problem, not the stream's.
  EXPECT_TRUE(client.path_batch("main", make_batch(4, 18)).ok());
}

class RemoteAdminServerTest : public ServerTest {
 protected:
  net::ServerOptions customize(net::ServerOptions opts) override {
    opts.bind_address = "0.0.0.0";
    opts.enable_remote_admin = true;
    return opts;
  }
};

TEST_F(RemoteAdminServerTest, ExplicitOptInRestoresAdmin) {
  net::Client client = connect();
  auto swapped = client.swap("main", kSnapPath);
  EXPECT_TRUE(swapped.ok()) << swapped.status().to_string();
  EXPECT_TRUE(client.drain().ok());
  EXPECT_TRUE(server_->draining());
}

class PollFallbackServerTest : public ServerTest {
 protected:
  void SetUp() override {
    setenv("COOPNET_FORCE_POLL", "1", 1);
    ServerTest::SetUp();
  }
  void TearDown() override {
    ServerTest::TearDown();
    unsetenv("COOPNET_FORCE_POLL");
  }
};

TEST_F(PollFallbackServerTest, ServesWithPollBackend) {
  net::Client client = connect();
  const auto batch = make_batch(16, 15);
  auto resp = client.path_batch("main", batch);
  ASSERT_TRUE(resp.ok()) << resp.status().to_string();
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    for (std::size_t i = 0; i < batch[qi].path.size(); ++i) {
      EXPECT_EQ(resp->answers[qi].proper_index[i],
                tree_.catalog(batch[qi].path[i]).find(batch[qi].y));
    }
  }
}

}  // namespace
