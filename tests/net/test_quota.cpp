#include "net/quota.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace {

using coop::StatusCode;
using net::QuotaOptions;
using net::TenantQuotas;

constexpr std::uint64_t kNs = 1;
constexpr std::uint64_t kMs = 1'000'000;
constexpr std::uint64_t kSec = 1'000'000'000;

TEST(Quota, DisabledQuotasAdmitEverything) {
  TenantQuotas q;  // tokens_per_sec = 0 -> disabled
  EXPECT_FALSE(q.enabled());
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(q.admit(1, i * kNs).ok());
  }
}

TEST(Quota, NewTenantCanBurstToCapacityThenIsShed) {
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/5});
  // Full bucket on first contact: exactly `burst` admissions at t=0.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.admit(1, 0).ok()) << "burst admission " << i;
  }
  const auto s = q.admit(1, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.to_string().find("tenant 1"), std::string::npos);
  EXPECT_EQ(q.stats(1).admitted, 5u);
  EXPECT_EQ(q.stats(1).shed, 1u);
}

TEST(Quota, RefillIsExactIntegerArithmetic) {
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/5});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.admit(1, 0).ok());
  }
  ASSERT_FALSE(q.admit(1, 0).ok());
  // 10 tokens/sec = 1 token per 100 ms.  At 99,999,999 ns the bucket
  // still holds a hair under one token; at exactly 100 ms it admits.
  EXPECT_FALSE(q.admit(1, 100 * kMs - 1).ok());
  EXPECT_TRUE(q.admit(1, 100 * kMs).ok());
  EXPECT_FALSE(q.admit(1, 100 * kMs).ok());
}

TEST(Quota, FailedAdmissionDoesNotDebit) {
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/2});
  ASSERT_TRUE(q.admit(1, 0).ok());
  ASSERT_TRUE(q.admit(1, 0).ok());
  // Hammering an empty bucket must not push the next admission further
  // out: after the same 100 ms it admits regardless of 1000 failures.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(q.admit(1, 0).ok());
  }
  EXPECT_TRUE(q.admit(1, 100 * kMs).ok());
  EXPECT_EQ(q.stats(1).shed, 1000u);
}

TEST(Quota, BurstThenSustainTraceIsByteIdentical) {
  // The satellite contract: a scripted clock produces the exact same
  // admit/shed sequence on every run and platform (pure integer math).
  const auto run = [] {
    TenantQuotas q({/*tokens_per_sec=*/7, /*burst=*/3});
    std::string trace;
    std::uint64_t now = 0;
    for (int i = 0; i < 400; ++i) {
      // A jittery but deterministic clock: advances 0-186 ms in a
      // pattern that interleaves bursts with sustained load.
      now += (static_cast<std::uint64_t>(i) * 31 % 187) * kMs;
      trace += q.admit(42, now).ok() ? 'A' : 's';
    }
    return trace;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // And the trace must contain both outcomes (the schedule actually
  // exercises refill and exhaustion).
  EXPECT_NE(first.find('A'), std::string::npos);
  EXPECT_NE(first.find('s'), std::string::npos);
  // Sustained-rate sanity: over ~37 s of scripted time at 7/s the
  // admitted count can never exceed burst + rate * elapsed.
  std::uint64_t elapsed = 0;
  for (int i = 0; i < 400; ++i) {
    elapsed += (static_cast<std::uint64_t>(i) * 31 % 187) * kMs;
  }
  const auto admitted = static_cast<std::uint64_t>(
      std::count(first.begin(), first.end(), 'A'));
  EXPECT_LE(admitted, 3 + 7 * (elapsed / kSec + 1));
}

TEST(Quota, HotTenantCannotStarveQuietTenant) {
  TenantQuotas q({/*tokens_per_sec=*/100, /*burst=*/10});
  std::uint64_t now = 0;
  std::uint64_t hot_shed = 0;
  std::uint64_t quiet_shed = 0;
  // The hot tenant fires every 100 us (10000/s, 100x its rate); the
  // quiet tenant once every 50 ms (20/s, well under its 100/s).
  for (int i = 1; i <= 10'000; ++i) {
    now = static_cast<std::uint64_t>(i) * 100'000;  // 100 us steps
    if (!q.admit(1, now).ok()) {
      ++hot_shed;
    }
    if (i % 500 == 0 && !q.admit(2, now).ok()) {
      ++quiet_shed;
    }
  }
  EXPECT_GT(hot_shed, 8'000u);   // the hot tenant was mostly shed
  EXPECT_EQ(quiet_shed, 0u);     // the quiet tenant never was
  EXPECT_GT(q.stats(1).admitted, 0u);
}

TEST(Quota, LongIdleDoesNotOverflowTheBucket) {
  TenantQuotas q({/*tokens_per_sec=*/1'000'000'000, /*burst=*/4});
  ASSERT_TRUE(q.admit(1, 0).ok());
  // Decades of idle time at a huge rate: the refill multiply would
  // overflow u64 without clamping.  The bucket must cap at burst.
  const std::uint64_t decades = 40ull * 365 * 24 * 3600 * kSec;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.admit(1, decades).ok());
  }
  EXPECT_FALSE(q.admit(1, decades).ok());
}

TEST(Quota, CostAboveOneDebitsProportionally) {
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/6});
  EXPECT_TRUE(q.admit(1, 0, /*cost=*/4).ok());
  EXPECT_FALSE(q.admit(1, 0, /*cost=*/3).ok());
  EXPECT_TRUE(q.admit(1, 0, /*cost=*/2).ok());
}

TEST(Quota, TenantTableIsBoundedUnderIdCycling) {
  // Tenant ids are peer-controlled: a hostile client cycling fresh ids
  // must not grow the bucket map past max_tenants.  With each arrival a
  // second apart, every resident bucket has refilled to full and is
  // evictable, so every new tenant still gets its burst.
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/2, /*max_tenants=*/4});
  for (std::uint64_t t = 0; t < 10'000; ++t) {
    EXPECT_TRUE(q.admit(t, t * kSec).ok()) << "tenant " << t;
    EXPECT_LE(q.tenant_count(), 4u);
  }
  EXPECT_EQ(q.tenant_count(), 4u);
  EXPECT_EQ(q.evicted(), 10'000u - 4u);
}

TEST(Quota, ActiveTenantsAreNeverEvictedByIdCycling) {
  // Two live tenants have drained (non-full) buckets; a storm of fresh
  // ids at the same instant finds nothing lossless to evict, so the
  // *new* tenants are shed and the residents keep their state.
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/4, /*max_tenants=*/2});
  ASSERT_TRUE(q.admit(1, 0).ok());
  ASSERT_TRUE(q.admit(2, 0).ok());
  for (std::uint64_t t = 100; t < 600; ++t) {
    const auto s = q.admit(t, 0);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(s.to_string().find("tenant table full"), std::string::npos);
  }
  EXPECT_EQ(q.tenant_count(), 2u);
  EXPECT_EQ(q.evicted(), 0u);
  // The residents' buckets are intact: 3 burst tokens each remain.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.admit(1, 0).ok());
    EXPECT_TRUE(q.admit(2, 0).ok());
  }
  EXPECT_FALSE(q.admit(1, 0).ok());
}

TEST(Quota, EvictionPrefersTheOldestFullBucket) {
  TenantQuotas q({/*tokens_per_sec=*/1'000, /*burst=*/1, /*max_tenants=*/2});
  ASSERT_TRUE(q.admit(7, 0).ok());       // refills by 1 ms
  ASSERT_TRUE(q.admit(9, 5 * kMs).ok()); // refills by 6 ms
  // At t=10ms both are full again; tenant 7 (oldest last_refill) goes.
  ASSERT_TRUE(q.admit(3, 10 * kMs).ok());
  EXPECT_EQ(q.evicted(), 1u);
  EXPECT_EQ(q.stats(7).admitted, 0u);  // evicted: stats reset
  EXPECT_EQ(q.stats(9).admitted, 1u);  // survivor keeps its stats
}

TEST(Quota, ZeroMaxTenantsDisablesTheBound) {
  TenantQuotas q({/*tokens_per_sec=*/10, /*burst=*/1, /*max_tenants=*/0});
  for (std::uint64_t t = 0; t < 1'000; ++t) {
    EXPECT_TRUE(q.admit(t, 0).ok());
  }
  EXPECT_EQ(q.tenant_count(), 1'000u);
  EXPECT_EQ(q.evicted(), 0u);
}

}  // namespace
